package ncq

// Tests for the iterator-native execution core: the equivalence of
// every consumption style of one answer set (Results, Run, paginated
// Run, RunStream), the incremental-delivery property the redesign
// exists for, cancellation mid-stream, and cursor staleness across
// corpus mutations.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ncq/internal/xmltree"
)

// collectResults drains a Results sequence, failing the test on any
// yielded error.
func collectResults(t *testing.T, q Querier, req Request) []CorpusMeet {
	t.Helper()
	var out []CorpusMeet
	for m, err := range q.Results(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

// TestResultsEquivalenceRandom is the property test of the redesign:
// over randomized corpora — plain and sharded members mixed — the
// Results sequence, the pages of a paginated Run concatenated across
// cursors, and the legacy RunStream all produce exactly the ordered
// answer set of an unlimited Run.
func TestResultsEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(20260728))
	vocab := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		c := NewCorpus()
		nMembers := 1 + r.Intn(4)
		for i := 0; i < nMembers; i++ {
			doc := xmltree.Random(r, 150+r.Intn(250))
			name := fmt.Sprintf("m%d", i)
			if r.Intn(2) == 0 {
				if _, _, err := c.AddSharded(name, doc, 2+r.Intn(3)); err != nil {
					t.Fatal(err)
				}
			} else {
				db, err := FromDocument(doc)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Add(name, db); err != nil {
					t.Fatal(err)
				}
			}
		}
		terms := make([]string, 2+r.Intn(2))
		for i := range terms {
			terms[i] = vocab[r.Intn(len(vocab))]
		}
		req := Request{Terms: terms}
		if r.Intn(2) == 0 {
			req.Options = ExcludeRoot()
		}

		full, err := c.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}

		if got := collectResults(t, c, req); !reflect.DeepEqual(got, full.Meets) {
			t.Fatalf("trial %d: Results diverged from Run: %d vs %d meets",
				trial, len(got), len(full.Meets))
		}

		var streamed []CorpusMeet
		if err := c.RunStream(ctx, req, func(m CorpusMeet) bool {
			streamed = append(streamed, m)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(streamed, full.Meets) {
			t.Fatalf("trial %d: RunStream diverged from Run", trial)
		}

		paged := req
		paged.Limit = 1 + r.Intn(5)
		var collected []CorpusMeet
		for pages := 0; ; pages++ {
			res, err := c.Run(ctx, paged)
			if err != nil {
				t.Fatal(err)
			}
			collected = append(collected, res.Meets...)
			if res.NextCursor == "" {
				break
			}
			paged.Cursor = res.NextCursor
			if pages > len(full.Meets) {
				t.Fatalf("trial %d: pagination does not terminate", trial)
			}
		}
		if !reflect.DeepEqual(collected, full.Meets) {
			t.Fatalf("trial %d: concatenated pages diverged from Run: %d vs %d",
				trial, len(collected), len(full.Meets))
		}
	}

	// The same equivalence holds for a single Database.
	db, err := FromDocument(bigBib(20))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot()}
	full, err := db.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Meets) == 0 {
		t.Fatal("workload too small")
	}
	if got := collectResults(t, db, req); !reflect.DeepEqual(got, full.Meets) {
		t.Errorf("database Results diverged from Run")
	}
}

// TestResultsFirstYieldBeforeSlowMemberDrains is the acceptance test
// of incremental delivery: on a five-member corpus with one
// instrumented slow member (every pull from its local stream is
// delayed), the first globally ranked yield completes while the slow
// member's stream still holds pending meets — i.e. before its
// incremental termMeets drain returns — so end-to-end latency is
// bounded by the slowest member's first result, not its full answer
// set.
func TestResultsFirstYieldBeforeSlowMemberDrains(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 4; i++ {
		db, err := FromDocument(bigBib(15))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Add(fmt.Sprintf("m%d", i), db); err != nil {
			t.Fatal(err)
		}
	}
	slowDB, err := FromDocument(bigBib(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("slow", slowDB); err != nil {
		t.Fatal(err)
	}

	// The merge runs on the consuming goroutine, so the hook and the
	// range body observe each other without synchronisation.
	var (
		firstYield        time.Time
		slowExhausted     time.Time
		slowPulls         int
		pullsAtFirstYield = -1
	)
	testStreamPull = func(source string, shard, remaining int) {
		if source != "slow" {
			return
		}
		slowPulls++
		if remaining == 0 {
			slowExhausted = time.Now()
		}
		time.Sleep(time.Millisecond)
	}
	defer func() { testStreamPull = nil }()

	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot()}
	yields := 0
	for m, err := range c.Results(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		if yields == 0 {
			firstYield = time.Now()
			pullsAtFirstYield = slowPulls
		}
		yields++
		_ = m
	}
	if yields == 0 || slowPulls < 2 {
		t.Fatalf("workload too small: %d yields, %d slow pulls", yields, slowPulls)
	}
	if slowExhausted.IsZero() {
		t.Fatal("slow member's stream never drained")
	}
	if !firstYield.Before(slowExhausted) {
		t.Errorf("first yield at %v, but the slow member had already drained at %v",
			firstYield, slowExhausted)
	}
	if pullsAtFirstYield >= slowPulls {
		t.Errorf("no slow-member pulls after the first yield (%d of %d): stream was not mid-flight",
			pullsAtFirstYield, slowPulls)
	}
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline, failing after two seconds — the pool-drain assertion.
func waitForGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Errorf("goroutines after %s: %d (baseline %d) — pool leak", what, got, base)
	}
}

// TestResultsCancelMidYield cancels a stream from inside the consuming
// range: the next yield delivers the context error, the sequence ends,
// and no fan-out worker outlives it (run with -race).
func TestResultsCancelMidYield(t *testing.T) {
	c := pagingCorpus(t)
	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot()}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yields := 0
	var finalErr error
	for _, err := range c.Results(ctx, req) {
		if err != nil {
			finalErr = err
			continue
		}
		yields++
		cancel()
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("cancelled stream yielded error %v, want context.Canceled", finalErr)
	}
	if yields != 1 {
		t.Errorf("stream yielded %d meets after mid-yield cancel, want 1", yields)
	}
	waitForGoroutines(t, base, "mid-yield cancel")

	// A consumer breaking out of the range (the pushed-down limit) also
	// leaves no workers behind.
	n := 0
	for _, err := range c.Results(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	waitForGoroutines(t, base, "early break")

	// A context cancelled before the stream starts yields the error
	// first.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	for _, err := range c.Results(pre, req) {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled stream yielded %v", err)
		}
	}
	waitForGoroutines(t, base, "pre-cancelled stream")
}

// TestResultsRejectsQueryLanguage pins the streaming surface's mode
// restriction and error delivery.
func TestResultsRejectsQueryLanguage(t *testing.T) {
	c := pagingCorpus(t)
	seen := 0
	for _, err := range c.Results(context.Background(), Request{Query: "SELECT tag(e) FROM //x AS e"}) {
		seen++
		if err == nil {
			t.Fatal("query-language request streamed")
		}
	}
	if seen != 1 {
		t.Errorf("error sequence yielded %d times, want 1", seen)
	}
}

// TestStaleCursorAfterMutation pins the cursor-stability satellite: a
// cursor pages on fine while the corpus is unchanged, and fails with
// ErrStaleCursor — on Run, Results and the query-language path — once
// any mutation re-ranks the answer set. Database cursors never go
// stale: a loaded document is immutable.
func TestStaleCursorAfterMutation(t *testing.T) {
	ctx := context.Background()
	c := pagingCorpus(t)
	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot(), Limit: 3}
	first, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.NextCursor == "" {
		t.Fatal("first page minted no cursor")
	}
	next := req
	next.Cursor = first.NextCursor
	if _, err := c.Run(ctx, next); err != nil {
		t.Fatalf("pre-mutation page: %v", err)
	}

	extra, err := FromDocument(bigBib(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("extra", extra); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, next); !errors.Is(err, ErrStaleCursor) {
		t.Errorf("post-mutation Run = %v, want ErrStaleCursor", err)
	}
	sawStale := false
	for _, err := range c.Results(ctx, next) {
		if errors.Is(err, ErrStaleCursor) {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("post-mutation Results did not yield ErrStaleCursor")
	}

	// Query-language pagination is generation-checked too.
	qreq := Request{Query: "SELECT tag(e) FROM //author AS e", Limit: 2}
	firstQ, err := c.Run(ctx, qreq)
	if err != nil {
		t.Fatal(err)
	}
	if firstQ.NextCursor == "" {
		t.Fatal("query page minted no cursor")
	}
	nextQ := qreq
	nextQ.Cursor = firstQ.NextCursor
	if !c.Remove("extra") {
		t.Fatal("Remove failed")
	}
	if _, err := c.Run(ctx, nextQ); !errors.Is(err, ErrStaleCursor) {
		t.Errorf("post-removal query Run = %v, want ErrStaleCursor", err)
	}

	// A Database cannot mutate; its cursors always resume.
	db, err := FromDocument(bigBib(30))
	if err != nil {
		t.Fatal(err)
	}
	dreq := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot(), Limit: 2}
	p1, err := db.Run(ctx, dreq)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NextCursor == "" {
		t.Fatal("database page minted no cursor")
	}
	dreq.Cursor = p1.NextCursor
	if _, err := db.Run(ctx, dreq); err != nil {
		t.Errorf("database cursor resume: %v", err)
	}
}

// TestResultsStatsPublishedBeforeFirstYield pins the StreamStats
// contract the NDJSON trailer depends on: the counters are complete by
// the time the first meet arrives.
func TestResultsStatsPublishedBeforeFirstYield(t *testing.T) {
	c := pagingCorpus(t)
	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot(), Limit: 2}
	full, err := c.Run(context.Background(), Request{Terms: req.Terms, Options: req.Options})
	if err != nil {
		t.Fatal(err)
	}
	seq, stats := c.ResultsWithStats(context.Background(), req)
	checked := false
	n := 0
	for _, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		if !checked {
			checked = true
			if stats.Total != len(full.Meets) {
				t.Errorf("stats.Total = %d at first yield, want %d", stats.Total, len(full.Meets))
			}
			if !stats.Truncated || stats.NextCursor == "" {
				t.Errorf("stats at first yield = %+v, want truncated with cursor", *stats)
			}
		}
		n++
	}
	if n != req.Limit {
		t.Errorf("limited stream yielded %d, want %d", n, req.Limit)
	}
	if !checked {
		t.Fatal("stream yielded nothing")
	}
}
