package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New(4)
	k := Key{Gen: 1, Query: "q"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "answer")
	v, ok := c.Get(k)
	if !ok || v.(string) != "answer" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Cap != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// TestGenerationInvalidates is the invalidation contract: the same
// normalized query under a bumped generation must miss.
func TestGenerationInvalidates(t *testing.T) {
	c := New(4)
	c.Put(Key{Gen: 1, Query: "q"}, "old")
	if _, ok := c.Get(Key{Gen: 2, Query: "q"}); ok {
		t.Fatal("stale generation served")
	}
	if _, ok := c.Get(Key{Gen: 1, Query: "q"}); !ok {
		t.Fatal("old generation entry should still resolve under its own key")
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put(Key{Query: "a"}, 1)
	c.Put(Key{Query: "b"}, 2)
	c.Get(Key{Query: "a"}) // a is now most recently used
	c.Put(Key{Query: "c"}, 3)
	if _, ok := c.Get(Key{Query: "b"}); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get(Key{Query: "a"}); !ok {
		t.Error("recently used entry a was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(2)
	k := Key{Query: "a"}
	c.Put(k, 1)
	c.Put(k, 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, _ := c.Get(k); v.(int) != 2 {
		t.Errorf("Get = %v", v)
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	for i := 0; i < 5; i++ {
		c.Put(Key{Query: fmt.Sprint(i)}, i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if st := c.Stats(); st.Purges != 5 {
		t.Errorf("purges = %d", st.Purges)
	}
	if _, ok := c.Get(Key{Query: "3"}); ok {
		t.Error("purged entry served")
	}
}

// TestDisabled: capacity zero means a pass-through cache.
func TestDisabled(t *testing.T) {
	c := New(0)
	c.Put(Key{Query: "a"}, 1)
	if _, ok := c.Get(Key{Query: "a"}); ok {
		t.Error("disabled cache stored an entry")
	}
	c = New(-3)
	c.Put(Key{Query: "a"}, 1)
	if c.Len() != 0 {
		t.Error("negative capacity stored an entry")
	}
}

// TestConcurrent hammers the cache from many goroutines (run with
// -race): overlapping key space forces hit, miss, replace and eviction
// paths to interleave.
func TestConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Gen: uint64(i % 3), Query: fmt.Sprint(i % 24)}
				if i%2 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
				if i%50 == 0 && g == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 16 {
		t.Errorf("size %d exceeds cap", st.Size)
	}
}
