package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHitMiss(t *testing.T) {
	c := New(1 << 20)
	k := Key{Gen: 1, Query: "q"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "answer", 6)
	v, ok := c.Get(k)
	if !ok || v.(string) != "answer" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.CapBytes != 1<<20 {
		t.Errorf("stats = %+v", st)
	}
	if want := charge(k, 6); st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

// TestGenerationInvalidates is the invalidation contract: the same
// normalized query under a bumped generation must miss.
func TestGenerationInvalidates(t *testing.T) {
	c := New(1 << 20)
	c.Put(Key{Gen: 1, Query: "q"}, "old", 3)
	if _, ok := c.Get(Key{Gen: 2, Query: "q"}); ok {
		t.Fatal("stale generation served")
	}
	if _, ok := c.Get(Key{Gen: 1, Query: "q"}); !ok {
		t.Fatal("old generation entry should still resolve under its own key")
	}
}

func TestEvictionOrder(t *testing.T) {
	// Room for exactly two single-byte entries with one-byte keys.
	c := New(2 * charge(Key{Query: "a"}, 1))
	c.Put(Key{Query: "a"}, 1, 1)
	c.Put(Key{Query: "b"}, 2, 1)
	c.Get(Key{Query: "a"}) // a is now most recently used
	c.Put(Key{Query: "c"}, 3, 1)
	if _, ok := c.Get(Key{Query: "b"}); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get(Key{Query: "a"}); !ok {
		t.Error("recently used entry a was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

// TestByteAccounting: one large value displaces several small ones.
func TestByteAccounting(t *testing.T) {
	capBytes := 4 * charge(Key{Query: "0"}, 16)
	c := New(capBytes)
	for i := 0; i < 4; i++ {
		c.Put(Key{Query: fmt.Sprint(i)}, i, 16)
	}
	if st := c.Stats(); st.Entries != 4 || st.Evictions != 0 {
		t.Fatalf("setup stats = %+v", st)
	}
	// A value charged like three small entries evicts three of them.
	bigSize := int(3*charge(Key{Query: "0"}, 16) - charge(Key{Query: "big"}, 0))
	c.Put(Key{Query: "big"}, "x", bigSize)
	st := c.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (big + one survivor)", st.Entries)
	}
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
	if st.Bytes > capBytes {
		t.Errorf("bytes %d exceed cap %d", st.Bytes, capBytes)
	}
	if _, ok := c.Get(Key{Query: "3"}); !ok {
		t.Error("most recently used small entry was evicted")
	}
}

// TestOversizedValueNotStored: a value that cannot fit even in an
// empty cache is dropped instead of flushing everything.
func TestOversizedValueNotStored(t *testing.T) {
	c := New(256)
	c.Put(Key{Query: "small"}, 1, 1)
	c.Put(Key{Query: "huge"}, 2, 10_000)
	if _, ok := c.Get(Key{Query: "huge"}); ok {
		t.Error("oversized value was stored")
	}
	if _, ok := c.Get(Key{Query: "small"}); !ok {
		t.Error("oversized Put evicted existing entries")
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(1 << 20)
	k := Key{Query: "a"}
	c.Put(k, 1, 100)
	c.Put(k, 2, 50)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, _ := c.Get(k); v.(int) != 2 {
		t.Errorf("Get = %v", v)
	}
	if got, want := c.Bytes(), charge(k, 50); got != want {
		t.Errorf("Bytes after replace = %d, want %d", got, want)
	}
}

func TestPurge(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 5; i++ {
		c.Put(Key{Query: fmt.Sprint(i)}, i, 8)
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("Len/Bytes after purge = %d/%d", c.Len(), c.Bytes())
	}
	if st := c.Stats(); st.Purges != 5 {
		t.Errorf("purges = %d", st.Purges)
	}
	if _, ok := c.Get(Key{Query: "3"}); ok {
		t.Error("purged entry served")
	}
}

// TestDisabled: capacity zero means a pass-through cache.
func TestDisabled(t *testing.T) {
	c := New(0)
	c.Put(Key{Query: "a"}, 1, 1)
	if _, ok := c.Get(Key{Query: "a"}); ok {
		t.Error("disabled cache stored an entry")
	}
	c = New(-3)
	c.Put(Key{Query: "a"}, 1, 1)
	if c.Len() != 0 {
		t.Error("negative capacity stored an entry")
	}
}

// TestTTLExpiry drives the TTL with an injected clock: an entry is
// served until its deadline, dropped at it, and a re-Put restarts it.
func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New(1<<20, WithTTL(time.Minute), WithClock(clock))
	k := Key{Gen: 1, Query: "q"}
	c.Put(k, "v", 4)
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Get(k); !ok {
		t.Fatal("entry expired before its deadline")
	}
	now = now.Add(time.Second) // exactly at the deadline: expired
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after expiry = %+v", st)
	}
	// A replacing Put restarts the clock.
	c.Put(k, "v2", 4)
	now = now.Add(30 * time.Second)
	c.Put(k, "v3", 4)
	now = now.Add(45 * time.Second) // 75s after first Put, 45s after replace
	if v, ok := c.Get(k); !ok || v.(string) != "v3" {
		t.Errorf("replaced entry = %v, %t; want v3 under restarted TTL", v, ok)
	}
}

// TestNoTTLNeverExpires: without WithTTL entries live until evicted.
func TestNoTTLNeverExpires(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(1<<20, WithClock(func() time.Time { return now }))
	k := Key{Query: "q"}
	c.Put(k, "v", 4)
	now = now.Add(10 * 365 * 24 * time.Hour)
	if _, ok := c.Get(k); !ok {
		t.Error("entry without TTL expired")
	}
	// WithTTL(0) means the same thing.
	c2 := New(1<<20, WithTTL(0), WithClock(func() time.Time { return now }))
	c2.Put(k, "v", 4)
	now = now.Add(10 * 365 * 24 * time.Hour)
	if _, ok := c2.Get(k); !ok {
		t.Error("entry under zero TTL expired")
	}
	if st := c2.Stats(); st.Expirations != 0 {
		t.Errorf("expirations = %d", st.Expirations)
	}
}

// TestConcurrent hammers the cache from many goroutines (run with
// -race): overlapping key space forces hit, miss, replace and eviction
// paths to interleave.
func TestConcurrent(t *testing.T) {
	capBytes := 16 * charge(Key{Query: "00"}, 8)
	c := New(capBytes)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Gen: uint64(i % 3), Query: fmt.Sprint(i % 24)}
				if i%2 == 0 {
					c.Put(k, i, 8)
				} else {
					c.Get(k)
				}
				if i%50 == 0 && g == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > capBytes {
		t.Errorf("bytes %d exceed cap %d", st.Bytes, capBytes)
	}
}
