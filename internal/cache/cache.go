// Package cache provides the query-result cache of the ncqd server: a
// mutex-guarded LRU keyed by (corpus generation, normalized query).
//
// The generation is part of the key, so any corpus mutation — which
// bumps the generation — implicitly invalidates every cached result:
// lookups for the new generation cannot match entries computed under
// the old one, and the stale entries age out at the cold end of the
// LRU list (or are dropped eagerly via Purge). Including the
// generation also makes a slow query racing a mutation harmless: its
// insert lands under the generation it was computed against and can
// never be served to a post-mutation client.
//
// Capacity is accounted in bytes, not entries: callers pass the
// approximate encoding size of each value with Put, and the LRU evicts
// from the cold end until the total charged size fits the budget. One
// huge result therefore displaces many small ones instead of hiding
// behind an entry count.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached result.
type Key struct {
	Gen   uint64 // corpus generation the result was computed against
	Query string // normalized request (doc, mode, terms/query, options)
}

// entryOverhead approximates the per-entry bookkeeping cost (list
// element, map bucket share, key struct) charged on top of the key
// string and the caller-supplied value size.
const entryOverhead = 128

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`     // charged size of all entries
	CapBytes  int64  `json:"cap_bytes"` // byte budget; 0 = disabled
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Purges    uint64 `json:"purges"` // entries dropped by Purge
}

type entry struct {
	key  Key
	val  any
	size int64 // charged bytes, overhead included
}

// LRU is a byte-bounded least-recently-used cache, safe for concurrent
// use. A capacity of zero (or negative) disables caching: every Get
// misses and Put is a no-op.
type LRU struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	stats    Stats
}

// New returns an LRU holding at most maxBytes of charged entry size.
func New(maxBytes int64) *LRU {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &LRU{
		capBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// charge returns the bytes an entry of the given value size costs.
func charge(k Key, size int) int64 {
	if size < 0 {
		size = 0
	}
	return int64(size) + int64(len(k.Query)) + entryOverhead
}

// Get returns the value cached under k and marks it most recently used.
func (c *LRU) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put caches v under k, charging size bytes for it (the caller's
// approximation of the value's encoded size, typically its JSON
// length), and evicts least recently used entries until the budget
// fits again. A value whose charge alone exceeds the budget is not
// stored at all.
func (c *LRU) Put(k Key, v any, size int) {
	if c.capBytes == 0 {
		return
	}
	sz := charge(k, size)
	if sz > c.capBytes {
		return // would evict the whole cache and still not fit
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.bytes += sz - e.size
		e.val, e.size = v, sz
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: v, size: sz})
		c.bytes += sz
	}
	for c.bytes > c.capBytes {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.stats.Evictions++
	}
}

// Purge drops every entry. The server calls it on corpus mutations to
// free memory immediately rather than waiting for stale generations to
// age out.
func (c *LRU) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Purges += uint64(c.ll.Len())
	c.ll.Init()
	clear(c.items)
	c.bytes = 0
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the charged size of all cached entries.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.ll.Len()
	st.Bytes = c.bytes
	st.CapBytes = c.capBytes
	return st
}
