// Package cache provides the query-result cache of the ncqd server: a
// mutex-guarded LRU keyed by (corpus generation, normalized query).
//
// The generation is part of the key, so any corpus mutation — which
// bumps the generation — implicitly invalidates every cached result:
// lookups for the new generation cannot match entries computed under
// the old one, and the stale entries age out at the cold end of the
// LRU list (or are dropped eagerly via Purge). Including the
// generation also makes a slow query racing a mutation harmless: its
// insert lands under the generation it was computed against and can
// never be served to a post-mutation client.
//
// Capacity is accounted in bytes, not entries: callers pass the
// approximate encoding size of each value with Put, and the LRU evicts
// from the cold end until the total charged size fits the budget. One
// huge result therefore displaces many small ones instead of hiding
// behind an entry count.
//
// An optional TTL (WithTTL) additionally expires entries by age:
// lookups past an entry's deadline miss and drop the entry. The
// generation key already rules out stale results, so the TTL is an
// admission-control knob — it caps how long a rarely-hit result may
// occupy budget on a corpus that never mutates.
package cache

import (
	"container/list"
	"sync"
	"time"
)

// Key identifies one cached result.
type Key struct {
	Gen   uint64 // corpus generation the result was computed against
	Query string // normalized request (doc, mode, terms/query, options)
}

// entryOverhead approximates the per-entry bookkeeping cost (list
// element, map bucket share, key struct) charged on top of the key
// string and the caller-supplied value size.
const entryOverhead = 128

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`     // charged size of all entries
	CapBytes    int64  `json:"cap_bytes"` // byte budget; 0 = disabled
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Expirations uint64 `json:"expirations"` // entries dropped past their TTL
	Purges      uint64 `json:"purges"`      // entries dropped by Purge
}

type entry struct {
	key     Key
	val     any
	size    int64     // charged bytes, overhead included
	expires time.Time // zero = never
}

// LRU is a byte-bounded least-recently-used cache, safe for concurrent
// use. A capacity of zero (or negative) disables caching: every Get
// misses and Put is a no-op.
type LRU struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	ttl      time.Duration    // 0 = entries never expire
	now      func() time.Time // injectable for tests
	ll       *list.List       // front = most recently used
	items    map[Key]*list.Element
	stats    Stats
}

// Option customises an LRU.
type Option func(*LRU)

// WithTTL expires entries d after insertion; d <= 0 (the default)
// means entries never expire by age.
func WithTTL(d time.Duration) Option {
	return func(c *LRU) {
		if d > 0 {
			c.ttl = d
		}
	}
}

// WithClock injects the time source used for TTL bookkeeping — tests
// substitute a manual clock to make expiry deterministic.
func WithClock(now func() time.Time) Option {
	return func(c *LRU) {
		if now != nil {
			c.now = now
		}
	}
}

// New returns an LRU holding at most maxBytes of charged entry size.
func New(maxBytes int64, opts ...Option) *LRU {
	if maxBytes < 0 {
		maxBytes = 0
	}
	c := &LRU{
		capBytes: maxBytes,
		now:      time.Now,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// charge returns the bytes an entry of the given value size costs.
func charge(k Key, size int) int64 {
	if size < 0 {
		size = 0
	}
	return int64(size) + int64(len(k.Query)) + entryOverhead
}

// Get returns the value cached under k and marks it most recently
// used. An entry past its TTL deadline counts as a miss and is dropped
// on the spot.
func (c *LRU) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && !c.now().Before(e.expires) {
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.stats.Expirations++
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return e.val, true
}

// Put caches v under k, charging size bytes for it (the caller's
// approximation of the value's encoded size, typically its JSON
// length), and evicts least recently used entries until the budget
// fits again. A value whose charge alone exceeds the budget is not
// stored at all.
func (c *LRU) Put(k Key, v any, size int) {
	if c.capBytes == 0 {
		return
	}
	sz := charge(k, size)
	if sz > c.capBytes {
		return // would evict the whole cache and still not fit
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.bytes += sz - e.size
		e.val, e.size, e.expires = v, sz, expires
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: v, size: sz, expires: expires})
		c.bytes += sz
	}
	for c.bytes > c.capBytes {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.stats.Evictions++
	}
}

// Purge drops every entry. The server calls it on corpus mutations to
// free memory immediately rather than waiting for stale generations to
// age out.
func (c *LRU) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Purges += uint64(c.ll.Len())
	c.ll.Init()
	clear(c.items)
	c.bytes = 0
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the charged size of all cached entries.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.ll.Len()
	st.Bytes = c.bytes
	st.CapBytes = c.capBytes
	return st
}
