// Package cache provides the query-result cache of the ncqd server: a
// mutex-guarded LRU keyed by (corpus generation, normalized query).
//
// The generation is part of the key, so any corpus mutation — which
// bumps the generation — implicitly invalidates every cached result:
// lookups for the new generation cannot match entries computed under
// the old one, and the stale entries age out at the cold end of the
// LRU list (or are dropped eagerly via Purge). Including the
// generation also makes a slow query racing a mutation harmless: its
// insert lands under the generation it was computed against and can
// never be served to a post-mutation client.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached result.
type Key struct {
	Gen   uint64 // corpus generation the result was computed against
	Query string // normalized request (doc, mode, terms/query, options)
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Size      int    `json:"size"`
	Cap       int    `json:"cap"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Purges    uint64 `json:"purges"` // entries dropped by Purge
}

type entry struct {
	key Key
	val any
}

// LRU is a fixed-capacity least-recently-used cache, safe for
// concurrent use. A capacity of zero (or negative) disables caching:
// every Get misses and Put is a no-op.
type LRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	stats Stats
}

// New returns an LRU holding at most capacity entries.
func New(capacity int) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}
}

// Get returns the value cached under k and marks it most recently used.
func (c *LRU) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put caches v under k, evicting the least recently used entry when
// the cache is full.
func (c *LRU) Put(k Key, v any) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Purge drops every entry. The server calls it on corpus mutations to
// free memory immediately rather than waiting for stale generations to
// age out.
func (c *LRU) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Purges += uint64(c.ll.Len())
	c.ll.Init()
	clear(c.items)
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Size = c.ll.Len()
	st.Cap = c.cap
	return st
}
