package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
	"ncq/internal/xmltree"
)

func TestMeetMultiBobByteExample(t *testing.T) {
	s := fig1Store(t)
	// "Bob" and "Byte" both hit ⟨o15,"Bob Byte"⟩: the meet is the cdata
	// node itself at distance 0 (paper Section 3.1).
	res, unmatched, err := MeetMulti(s, [][]bat.OID{{15}, {15}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 15 || res[0].Distance != 0 {
		t.Fatalf("MeetMulti = %+v, want self-meet at o15", res)
	}
	if !reflect.DeepEqual(res[0].Witnesses, []bat.OID{15}) {
		t.Errorf("witnesses = %v", res[0].Witnesses)
	}
	if len(unmatched) != 0 {
		t.Errorf("unmatched = %v", unmatched)
	}
}

func TestMeetMultiMixedSelfAndRollup(t *testing.T) {
	s := fig1Store(t)
	// Set 1: {o15, o8}; set 2: {o15, o12}. o15 self-meets; o8 and o12
	// roll up to the article o3.
	res, unmatched, err := MeetMulti(s, [][]bat.OID{{15, 8}, {15, 12}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Meet != 3 || res[1].Meet != 15 {
		t.Errorf("meets = o%d,o%d, want o3,o15 (document order)", res[0].Meet, res[1].Meet)
	}
	if res[1].Distance != 0 || res[0].Distance != 5 {
		t.Errorf("distances = %d,%d", res[0].Distance, res[1].Distance)
	}
	if len(unmatched) != 0 {
		t.Errorf("unmatched = %v", unmatched)
	}
}

func TestMeetMultiSingleSetEqualsMeetOIDs(t *testing.T) {
	s := fig1Store(t)
	oids := []bat.OID{8, 12, 19, 10}
	a, ua, err := MeetMulti(s, [][]bat.OID{oids}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, ub, err := MeetOIDs(s, oids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(a, b) || !reflect.DeepEqual(ua, ub) {
		t.Errorf("single-set MeetMulti diverges from MeetOIDs:\n%+v\nvs\n%+v", a, b)
	}
}

func TestMeetMultiDuplicatesWithinOneSetDoNotSelfMeet(t *testing.T) {
	s := fig1Store(t)
	// The same OID twice in ONE set is one object, not two.
	res, unmatched, err := MeetMulti(s, [][]bat.OID{{15, 15}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results = %+v, want none", res)
	}
	if !reflect.DeepEqual(unmatched, []bat.OID{15}) {
		t.Errorf("unmatched = %v", unmatched)
	}
}

func TestMeetMultiExcludedSelfMeet(t *testing.T) {
	s := fig1Store(t)
	cdPath := s.PathOf(15)
	// Plain exclusion: the self-meet is consumed silently.
	opt := &Options{Exclude: map[pathsum.PathID]bool{cdPath: true}}
	res, unmatched, err := MeetMulti(s, [][]bat.OID{{15}, {15}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || len(unmatched) != 0 {
		t.Errorf("excluded self-meet: results %+v unmatched %v", res, unmatched)
	}
	// SkipExcluded: the object keeps climbing as a single contribution
	// and (being alone) ends unmatched.
	opt.SkipExcluded = true
	res, unmatched, err = MeetMulti(s, [][]bat.OID{{15}, {15}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results = %+v", res)
	}
	if !reflect.DeepEqual(unmatched, []bat.OID{15}) {
		t.Errorf("unmatched = %v, want [15]", unmatched)
	}
	// SkipExcluded with a partner: o15 climbs and meets o17's hit at
	// the second article.
	res, _, err = MeetMulti(s, [][]bat.OID{{15}, {15}, {17}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 13 {
		t.Errorf("results = %+v, want the second article o13", res)
	}
}

func TestMeetMultiErrors(t *testing.T) {
	s := fig1Store(t)
	if _, _, err := MeetMulti(s, [][]bat.OID{{0}}, nil); err == nil {
		t.Error("invalid OID accepted")
	}
	if _, _, err := MeetMulti(s, [][]bat.OID{{99}, {1}}, nil); err == nil {
		t.Error("out-of-range OID accepted")
	}
}

func TestMeetMultiInvariantsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for i := 0; i < 40; i++ {
		doc := xmltree.Random(r, 60)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		n := s.Len()
		// Random number of sets with random overlapping members.
		sets := make([][]bat.OID, 1+r.Intn(4))
		inSets := map[bat.OID]int{}
		all := bat.NewSet()
		for k := range sets {
			members := bat.NewSet()
			for j, jn := 0, r.Intn(8); j < jn; j++ {
				o := bat.OID(r.Intn(n) + 1)
				if members.Add(o) {
					inSets[o]++
				}
				all.Add(o)
				sets[k] = append(sets[k], o)
			}
		}
		results, unmatched, err := MeetMulti(s, sets, nil)
		if err != nil {
			t.Fatal(err)
		}
		consumed := bat.NewSet()
		for _, r0 := range results {
			if len(r0.Witnesses) == 1 {
				w := r0.Witnesses[0]
				if r0.Meet != w || r0.Distance != 0 {
					t.Fatalf("doc %d: singleton result not a self-meet: %+v", i, r0)
				}
				if inSets[w] < 2 {
					t.Fatalf("doc %d: self-meet for %d present in %d set(s)", i, w, inSets[w])
				}
			}
			for _, w := range r0.Witnesses {
				if !consumed.Add(w) {
					t.Fatalf("doc %d: witness %d consumed twice", i, w)
				}
				if !s.Contains(r0.Meet, w) {
					t.Fatalf("doc %d: meet %d does not contain %d", i, r0.Meet, w)
				}
			}
		}
		for _, u := range unmatched {
			if !consumed.Add(u) {
				t.Fatalf("doc %d: OID %d both matched and unmatched", i, u)
			}
		}
		if consumed.Len() != all.Len() {
			t.Fatalf("doc %d: consumed %d of %d distinct inputs", i, consumed.Len(), all.Len())
		}
		// Order invariance: permute the sets and shuffle members.
		perm := r.Perm(len(sets))
		shuffled := make([][]bat.OID, len(sets))
		for k, p := range perm {
			cp := append([]bat.OID(nil), sets[p]...)
			r.Shuffle(len(cp), func(a, b int) { cp[a], cp[b] = cp[b], cp[a] })
			shuffled[k] = cp
		}
		again, againUn, err := MeetMulti(s, shuffled, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(results, again) || !reflect.DeepEqual(unmatched, againUn) {
			t.Fatalf("doc %d: MeetMulti depends on input order", i)
		}
	}
}

func TestMeetMultiEmpty(t *testing.T) {
	s := fig1Store(t)
	res, unmatched, err := MeetMulti(s, nil, nil)
	if err != nil || len(res) != 0 || len(unmatched) != 0 {
		t.Errorf("MeetMulti(nil) = (%v,%v,%v)", res, unmatched, err)
	}
}
