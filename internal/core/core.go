// Package core implements the meet operator, the primary contribution
// of the paper (Section 3): computing the "nearest concept" — the
// lowest common ancestor — of nodes in an XML syntax tree stored in
// Monet transform representation.
//
// Three algorithms are provided, mirroring the paper's Figures 3-5:
//
//   - Meet2 computes the meet of a pair of OIDs, steering the ascent by
//     the prefix order on their paths so that no superfluous parent
//     look-ups happen (Figure 3).
//   - MeetSets computes minimal meets of two homogeneous sets of OIDs
//     (all objects of one set share a path), lifting the deeper set
//     with bulk parent steps and intersecting when the paths coincide
//     (Figure 4). Matched inputs are consumed immediately, which keeps
//     the result size linear and input-order invariant.
//   - Meet computes meets of arbitrarily many input relations grouped
//     by path, rolling the tree-shaped path summary up from the leaves
//     (Figure 5). A node is a meet as soon as at least two live
//     contributions land on it.
//
// The Section 4 extensions are available through Options: result-type
// restriction (meet_P), distance bounds, and distance-based ranking.
package core

import (
	"fmt"
	"sort"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// Result is one meet: the nearest concept of the witnesses.
type Result struct {
	Meet      bat.OID        // the lowest common ancestor found
	Path      pathsum.PathID // its path (the "type" of the nearest concept)
	Witnesses []bat.OID      // the consumed input OIDs, ascending
	Distance  int            // total number of parent joins spent by all witnesses
}

// Options carries the Section 4 extensions of the meet operator.
// The zero value means "plain meet".
type Options struct {
	// Exclude discards results whose meet lies on one of these paths —
	// the paper's meet_P restriction. Typically it holds the document
	// root path so that trivial matches are suppressed (Section 4 and
	// the DBLP case study). Inputs consumed by an excluded meet stay
	// consumed, matching the paper's definition of meet_P as a filter
	// over meet's result set.
	Exclude map[pathsum.PathID]bool

	// SkipExcluded switches Exclude to "transparent" semantics (an
	// extension beyond the paper): an excluded node does not consume
	// its contributions, which continue to lift, so the query returns
	// the nearest *admissible* concept instead of dropping the match.
	SkipExcluded bool

	// MaxLift bounds the number of parent joins any single input may
	// take part in; contributions exceeding it are dropped. Zero means
	// unbounded. It implements the paper's d-bounded meet for sets:
	// with MaxLift = d, no reported meet is farther than d edges from
	// any of its witnesses.
	MaxLift int

	// MaxDistance filters results at emission: a result is kept only
	// if its two closest witnesses are within MaxDistance edges of each
	// other (the pairwise distance of the paper's ⊥-variant). Zero
	// means unbounded.
	MaxDistance int
}

func (o *Options) excluded(p pathsum.PathID) bool {
	return o != nil && o.Exclude != nil && o.Exclude[p]
}

func (o *Options) maxLift() int {
	if o == nil {
		return 0
	}
	return o.MaxLift
}

func (o *Options) maxDistance() int {
	if o == nil {
		return 0
	}
	return o.MaxDistance
}

func (o *Options) skipExcluded() bool { return o != nil && o.SkipExcluded }

// ExcludeRoot returns an Options that discards meets at the document
// root — the restriction used in the paper's DBLP case study.
func ExcludeRoot(s *monetx.Store) *Options {
	return &Options{Exclude: map[pathsum.PathID]bool{s.Summary().Root(): true}}
}

// Rank orders results by ascending distance (the paper's "number of
// joins" ranking heuristic), breaking ties by document order of the
// meet. It sorts in place and returns its argument.
func Rank(results []Result) []Result {
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		return results[i].Meet < results[j].Meet
	})
	return results
}

// RankBySourceProximity orders results by how close together their
// witnesses appear in the source file, measured as the OID span of the
// witness set (OIDs are document order). Section 4 suggests "additional
// heuristics like distances in the source file" for ranking; tight
// spans usually indicate one coherent record, wide spans a coincidental
// co-occurrence. Ties break by join distance, then document order.
func RankBySourceProximity(results []Result) []Result {
	span := func(r Result) bat.OID {
		if len(r.Witnesses) == 0 {
			return 0
		}
		return r.Witnesses[len(r.Witnesses)-1] - r.Witnesses[0] // sorted
	}
	sort.SliceStable(results, func(i, j int) bool {
		si, sj := span(results[i]), span(results[j])
		if si != sj {
			return si < sj
		}
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		return results[i].Meet < results[j].Meet
	})
	return results
}

// SortByDocOrder orders results by the document order of their meets,
// in place, and returns its argument. This is the canonical order used
// by the tests.
func SortByDocOrder(results []Result) []Result {
	sort.SliceStable(results, func(i, j int) bool {
		return results[i].Meet < results[j].Meet
	})
	return results
}

func checkOID(s *monetx.Store, o bat.OID) error {
	if !s.ValidOID(o) {
		return fmt.Errorf("core: OID %d not in store (have 1..%d)", o, s.Len())
	}
	return nil
}

// contribution is one live input travelling up the tree: the original
// OID plus the number of parent joins it has taken so far.
type contribution struct {
	orig  bat.OID
	lifts int32
}

// emit assembles a Result from the contributions that collided on m.
// The same original OID may arrive from both input sets of MeetSets
// (a full-text search where two terms hit one association); it is
// reported as a single witness.
func emit(s *monetx.Store, m bat.OID, contribs []contribution) Result {
	seen := make(map[bat.OID]struct{}, len(contribs))
	ws := make([]bat.OID, 0, len(contribs))
	total := 0
	for _, c := range contribs {
		if _, dup := seen[c.orig]; dup {
			continue
		}
		seen[c.orig] = struct{}{}
		ws = append(ws, c.orig)
		total += int(c.lifts)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return Result{Meet: m, Path: s.PathOf(m), Witnesses: ws, Distance: total}
}

// minPairDistance returns the distance between the two closest
// witnesses: the sum of the two smallest lift counts.
func minPairDistance(contribs []contribution) int {
	return minPair(contribs, func(c contribution) int32 { return c.lifts })
}
