package core

import (
	"fmt"

	"ncq/internal/bat"
	"ncq/internal/monetx"
)

// MeetSetsBAT is MeetSets expressed purely with BAT primitives — the
// relational execution the paper runs inside the Monet server ("the
// function parent(O1,O2) is a shortcut for join(...), a binary join on
// associations"). Each group is an association BAT (original OID →
// current ancestor); lifting is a join with the reversed edge relation
// of the group's path; intersection, consumption and filtering are BAT
// algebra. Its results are identical to MeetSets; the ablation
// benchmark compares the two execution styles.
func MeetSetsBAT(s *monetx.Store, o1, o2 []bat.OID, opt *Options) ([]Result, error) {
	a1, p1, err := newGroup(s, o1)
	if err != nil {
		return nil, fmt.Errorf("core: MeetSetsBAT: first set: %w", err)
	}
	a2, p2, err := newGroup(s, o2)
	if err != nil {
		return nil, fmt.Errorf("core: MeetSetsBAT: second set: %w", err)
	}
	if len(a1) == 0 || len(a2) == 0 {
		return nil, nil
	}
	b1 := bat.New[bat.OID]("O1")
	for _, a := range a1 {
		b1.Append(a.orig, a.cur)
	}
	b2 := bat.New[bat.OID]("O2")
	for _, a := range a2 {
		b2.Append(a.orig, a.cur)
	}
	sum := s.Summary()
	var (
		results        []Result
		lifts1, lifts2 int32
	)
	maxLift := int32(opt.maxLift())
	for b1.Len() > 0 && b2.Len() > 0 {
		if p1 == p2 {
			d := bat.IntersectTails(b1, b2)
			if !d.Empty() {
				consume := bat.NewSet()
				d.Each(func(m bat.OID) bool {
					mp := s.PathOf(m)
					excluded := opt.excluded(mp)
					if excluded && opt.skipExcluded() {
						return true // not consumed, keeps lifting
					}
					consume.Add(m)
					if excluded {
						return true // consumed, not reported
					}
					if md := opt.maxDistance(); md > 0 && int(lifts1+lifts2) > md {
						return true // consumed, beyond the bound
					}
					var contribs []contribution
					for i := 0; i < b1.Len(); i++ {
						if b1.Tail(i) == m {
							contribs = append(contribs, contribution{b1.Head(i), lifts1})
						}
					}
					for i := 0; i < b2.Len(); i++ {
						if b2.Tail(i) == m {
							contribs = append(contribs, contribution{b2.Head(i), lifts2})
						}
					}
					results = append(results, emit(s, m, contribs))
					return true
				})
				b1 = bat.SelectTailNotIn(b1, consume)
				b2 = bat.SelectTailNotIn(b2, consume)
			}
			if p1 == sum.Root() {
				break
			}
		}
		switch {
		case p1 != p2 && sum.IsPrefix(p2, p1):
			lifts1++
			if maxLift > 0 && lifts1 > maxLift {
				b1 = bat.New[bat.OID]("O1")
			} else {
				b1 = s.LiftBAT(b1, p1)
			}
			p1 = sum.Parent(p1)
		case p1 != p2 && sum.IsPrefix(p1, p2):
			lifts2++
			if maxLift > 0 && lifts2 > maxLift {
				b2 = bat.New[bat.OID]("O2")
			} else {
				b2 = s.LiftBAT(b2, p2)
			}
			p2 = sum.Parent(p2)
		default:
			lifts1++
			lifts2++
			if maxLift > 0 && lifts1 > maxLift {
				b1 = bat.New[bat.OID]("O1")
			} else {
				b1 = s.LiftBAT(b1, p1)
			}
			if maxLift > 0 && lifts2 > maxLift {
				b2 = bat.New[bat.OID]("O2")
			} else {
				b2 = s.LiftBAT(b2, p2)
			}
			p1 = sum.Parent(p1)
			p2 = sum.Parent(p2)
		}
	}
	return SortByDocOrder(results), nil
}
