package core

import (
	"fmt"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// MeetSets computes the minimal meets of two homogeneous sets of
// objects — the procedure meet_S of the paper's Figure 4. All objects
// of o1 must share one path, all objects of o2 another (the shape a
// full-text search delivers per relation). Duplicate inputs are
// ignored.
//
// The deeper set is lifted with bulk parent steps until the two paths
// coincide; the intersection of the current ancestor sets yields meets.
// "As soon as the first meet is found subsequent meets are not
// considered anymore because the elements are removed from the input
// sets" — consumed inputs stop participating, so the result is minimal
// and independent of input order. Only cross-set collisions count, per
// the paper's D := O1 ∩ O2 (objects occurring in both input sets meet
// at themselves at distance zero).
//
// Results are returned in document order of the meets.
func MeetSets(s *monetx.Store, o1, o2 []bat.OID, opt *Options) ([]Result, error) {
	a1, p1, err := newGroup(s, o1)
	if err != nil {
		return nil, fmt.Errorf("core: MeetSets: first set: %w", err)
	}
	a2, p2, err := newGroup(s, o2)
	if err != nil {
		return nil, fmt.Errorf("core: MeetSets: second set: %w", err)
	}
	if len(a1) == 0 || len(a2) == 0 {
		return nil, nil
	}
	sum := s.Summary()
	var (
		results        []Result
		lifts1, lifts2 int32
	)
	for len(a1) > 0 && len(a2) > 0 {
		if p1 == p2 {
			// D := O1 ∩ O2 over the current ancestors.
			cur2 := make(map[bat.OID][]int, len(a2))
			for i, a := range a2 {
				cur2[a.cur] = append(cur2[a.cur], i)
			}
			consumed1 := make([]bool, len(a1))
			consumed2 := make([]bool, len(a2))
			matched := map[bat.OID][]contribution{}
			for i, a := range a1 {
				if idxs, ok := cur2[a.cur]; ok {
					consumed1[i] = true
					matched[a.cur] = append(matched[a.cur], contribution{a.orig, lifts1})
					for _, j := range idxs {
						if !consumed2[j] {
							consumed2[j] = true
							matched[a.cur] = append(matched[a.cur], contribution{a2[j].orig, lifts2})
						}
					}
				}
			}
			for m, contribs := range matched {
				if opt.skipExcluded() && opt.excluded(s.PathOf(m)) {
					// Extension: let the contributions continue to lift.
					for i, a := range a1 {
						if a.cur == m {
							consumed1[i] = false
						}
					}
					for j, a := range a2 {
						if a.cur == m {
							consumed2[j] = false
						}
					}
					continue
				}
				if opt.excluded(s.PathOf(m)) {
					continue // meet_P: consumed but not reported
				}
				if d := opt.maxDistance(); d > 0 && int(lifts1+lifts2) > d {
					continue // beyond the pairwise bound: consumed, not reported
				}
				results = append(results, emit(s, m, contribs))
			}
			a1 = compact(a1, consumed1)
			a2 = compact(a2, consumed2)
			if p1 == sum.Root() {
				break
			}
		}
		// Steer by the prefix order, exactly as in meet_2.
		switch {
		case p1 != p2 && sum.IsPrefix(p2, p1):
			a1, p1 = liftGroup(s, a1, p1, opt, &lifts1)
		case p1 != p2 && sum.IsPrefix(p1, p2):
			a2, p2 = liftGroup(s, a2, p2, opt, &lifts2)
		default:
			a1, p1 = liftGroup(s, a1, p1, opt, &lifts1)
			a2, p2 = liftGroup(s, a2, p2, opt, &lifts2)
		}
	}
	return SortByDocOrder(results), nil
}

type assoc struct {
	orig bat.OID
	cur  bat.OID
}

// newGroup validates that all OIDs share one path and initialises the
// association list (orig = cur), dropping duplicates.
func newGroup(s *monetx.Store, oids []bat.OID) ([]assoc, pathsum.PathID, error) {
	if len(oids) == 0 {
		return nil, pathsum.Invalid, nil
	}
	seen := bat.NewSet()
	out := make([]assoc, 0, len(oids))
	var p pathsum.PathID = pathsum.Invalid
	for _, o := range oids {
		if err := checkOID(s, o); err != nil {
			return nil, pathsum.Invalid, err
		}
		if p == pathsum.Invalid {
			p = s.PathOf(o)
		} else if s.PathOf(o) != p {
			return nil, pathsum.Invalid, fmt.Errorf(
				"core: set not homogeneous: OID %d has path %s, expected %s",
				o, s.PathString(o), s.Summary().String(p))
		}
		if seen.Add(o) {
			out = append(out, assoc{orig: o, cur: o})
		}
	}
	return out, p, nil
}

// liftGroup replaces every current ancestor by its parent — the bulk
// join(O, parent) of Figure 4 — and advances the group's path. A
// contribution whose lift count would exceed MaxLift is dropped.
func liftGroup(s *monetx.Store, as []assoc, p pathsum.PathID, opt *Options, lifts *int32) ([]assoc, pathsum.PathID) {
	*lifts++
	max := opt.maxLift()
	out := as[:0]
	for _, a := range as {
		if max > 0 && int(*lifts) > max {
			continue
		}
		parent := s.Parent(a.cur)
		if parent == bat.Nil {
			continue
		}
		out = append(out, assoc{orig: a.orig, cur: parent})
	}
	return out, s.Summary().Parent(p)
}

func compact(as []assoc, consumed []bool) []assoc {
	out := as[:0]
	for i, a := range as {
		if !consumed[i] {
			out = append(out, a)
		}
	}
	return out
}
