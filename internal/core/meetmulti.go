package core

import (
	"fmt"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// MeetMulti computes the meets of several input sets — one per search
// term, as delivered by a multi-term full-text query. It reconciles the
// two faces of the paper's semantics:
//
//   - An object occurring in at least two input sets is its own meet at
//     distance zero. This is the Section 3.1 example where full-text
//     searches for "Bob" and "Byte" both return the association
//     ⟨o15,"Bob Byte"⟩ and meet_S reports the cdata node o15 itself
//     (D := O1 ∩ O2 before any lifting).
//   - All remaining objects are handed to the general roll-up of
//     Figure 5, which groups them by path.
//
// Exclusion applies to the degenerate self-meets as well: an excluded
// self-meet consumes its object silently, unless SkipExcluded is set,
// in which case the object continues into the roll-up as an ordinary
// single contribution.
//
// Results are in document order; unmatched inputs ascending.
func MeetMulti(s *monetx.Store, inputSets [][]bat.OID, opt *Options) ([]Result, []bat.OID, error) {
	// Count, per OID, the number of distinct input sets containing it.
	counts := make(map[bat.OID]int)
	for _, set := range inputSets {
		seen := bat.NewSet()
		for _, o := range set {
			if err := checkOID(s, o); err != nil {
				return nil, nil, fmt.Errorf("core: MeetMulti: %w", err)
			}
			if seen.Add(o) {
				counts[o]++
			}
		}
	}
	var selfMeets []Result
	groups := make(map[pathsum.PathID][]bat.OID)
	for o, k := range counts {
		p := s.PathOf(o)
		if k >= 2 {
			switch {
			case opt.excluded(p) && opt.skipExcluded():
				// Keep climbing as a single contribution.
			case opt.excluded(p):
				continue // consumed, not reported
			default:
				selfMeets = append(selfMeets, Result{
					Meet: o, Path: p, Witnesses: []bat.OID{o}, Distance: 0,
				})
				continue
			}
		}
		groups[p] = append(groups[p], o)
	}
	results, unmatched, err := Meet(s, groups, opt)
	if err != nil {
		return nil, nil, err
	}
	results = append(results, selfMeets...)
	return SortByDocOrder(results), unmatched, nil
}
