package core

import (
	"context"
	"fmt"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"slices"
)

// MeetMulti computes the meets of several input sets — one per search
// term, as delivered by a multi-term full-text query. It reconciles the
// two faces of the paper's semantics:
//
//   - An object occurring in at least two input sets is its own meet at
//     distance zero. This is the Section 3.1 example where full-text
//     searches for "Bob" and "Byte" both return the association
//     ⟨o15,"Bob Byte"⟩ and meet_S reports the cdata node o15 itself
//     (D := O1 ∩ O2 before any lifting).
//   - All remaining objects are handed to the general roll-up of
//     Figure 5, which buckets them by path.
//
// Exclusion applies to the degenerate self-meets as well: an excluded
// self-meet consumes its object silently, unless SkipExcluded is set,
// in which case the object continues into the roll-up as an ordinary
// single contribution.
//
// Results are in document order; unmatched inputs ascending.
func MeetMulti(s *monetx.Store, inputSets [][]bat.OID, opt *Options) ([]Result, []bat.OID, error) {
	return MeetMultiContext(context.Background(), s, inputSets, opt) //lint:ncqvet-ignore ctx-less legacy entry point; ctx-aware callers use MeetMultiContext
}

// MeetMultiContext is MeetMulti with cancellation, checked once per
// contracted level of the roll-up.
func MeetMultiContext(ctx context.Context, s *monetx.Store, inputSets [][]bat.OID, opt *Options) ([]Result, []bat.OID, error) {
	sc := getScratch(s.Summary().Len())
	defer putScratch(sc)
	// Columnar set counting: flatten to (OID, set) pairs, sort, and
	// sweep runs — duplicates within one set collapse, the run length
	// in distinct sets decides between self-meet and roll-up.
	for si, set := range inputSets {
		for _, o := range set {
			if err := checkOID(s, o); err != nil {
				return nil, nil, fmt.Errorf("core: MeetMulti: %w", err)
			}
			sc.pairs = append(sc.pairs, setPair{o: o, set: int32(si)})
		}
	}
	slices.SortFunc(sc.pairs, func(a, b setPair) int {
		if a.o != b.o {
			if a.o < b.o {
				return -1
			}
			return 1
		}
		if a.set != b.set {
			if a.set < b.set {
				return -1
			}
			return 1
		}
		return 0
	})
	var selfMeets []Result
	total := 0
	for i := 0; i < len(sc.pairs); {
		start := i
		o := sc.pairs[i].o
		k := 0
		for ; i < len(sc.pairs) && sc.pairs[i].o == o; i++ {
			if i == start || sc.pairs[i].set != sc.pairs[i-1].set {
				k++
			}
		}
		p := s.PathOf(o)
		if k >= 2 {
			switch {
			case opt.excluded(p) && opt.skipExcluded():
				// Keep climbing as a single contribution.
			case opt.excluded(p):
				continue // consumed, not reported
			default:
				selfMeets = append(selfMeets, Result{
					Meet: o, Path: p, Witnesses: []bat.OID{o}, Distance: 0,
				})
				continue
			}
		}
		sc.add(p, o)
		total++
	}
	if total < 2 && len(selfMeets) == 0 {
		return nil, sc.inputs(), nil
	}
	results, unmatched, err := rollup(ctx, s, sc, opt)
	if err != nil {
		return nil, nil, err
	}
	results = append(results, selfMeets...)
	return SortByDocOrder(results), unmatched, nil
}
