package core

import (
	"ncq/internal/bat"
	"ncq/internal/monetx"
)

// Meet2 computes the nearest concept of a pair of objects — the
// function meet_2 of the paper's Figure 3 — together with the number of
// parent joins spent, which equals the number of edges on the path
// between o1 and o2 (the paper's distance δ of Section 4).
//
// The ascent is steered by the prefix order on the objects' paths
// (Definition 5): when one path is a proper prefix of the other, only
// the deeper object is lifted, because the shallower one may itself be
// the meet; when the paths are incomparable or equal, the meet lies
// strictly above both and both are lifted. This "avoids superfluous
// look-ups" exactly as the paper's case analysis does.
func Meet2(s *monetx.Store, o1, o2 bat.OID) (meet bat.OID, joins int, err error) {
	if err := checkOID(s, o1); err != nil {
		return bat.Nil, 0, err
	}
	if err := checkOID(s, o2); err != nil {
		return bat.Nil, 0, err
	}
	sum := s.Summary()
	for o1 != o2 {
		p1, p2 := s.PathOf(o1), s.PathOf(o2)
		switch {
		case p1 != p2 && sum.IsPrefix(p2, p1): // path(o2) prefix of path(o1): o1 deeper
			o1 = s.Parent(o1)
			joins++
		case p1 != p2 && sum.IsPrefix(p1, p2): // o2 deeper
			o2 = s.Parent(o2)
			joins++
		default: // equal or incomparable paths: meet is strictly above both
			o1 = s.Parent(o1)
			o2 = s.Parent(o2)
			joins += 2
		}
	}
	return o1, joins, nil
}

// Dist returns the number of edges on the unique path between o1 and
// o2, computed as the join count of Meet2 (Section 4: "the number of
// joins executed while calculating meet_2 corresponds to the number of
// edges on the shortest path").
func Dist(s *monetx.Store, o1, o2 bat.OID) (int, error) {
	_, joins, err := Meet2(s, o1, o2)
	return joins, err
}

// Meet2Bounded is the d-bounded variant of Section 4: it returns the
// meet only when the distance between o1 and o2 is at most maxDist,
// and bat.Nil (the paper's ⊥) otherwise. The distance is returned in
// both cases.
func Meet2Bounded(s *monetx.Store, o1, o2 bat.OID, maxDist int) (bat.OID, int, error) {
	m, joins, err := Meet2(s, o1, o2)
	if err != nil {
		return bat.Nil, 0, err
	}
	if joins > maxDist {
		return bat.Nil, joins, nil
	}
	return m, joins, nil
}

// meet2Naive is the unsteered reference: it equalises depths and then
// ascends both objects in lock-step. It performs depth look-ups instead
// of path-prefix tests and is used by the steering ablation benchmark
// and as the correctness oracle in tests.
func meet2Naive(s *monetx.Store, o1, o2 bat.OID) (bat.OID, int) {
	joins := 0
	for s.Depth(o1) > s.Depth(o2) {
		o1 = s.Parent(o1)
		joins++
	}
	for s.Depth(o2) > s.Depth(o1) {
		o2 = s.Parent(o2)
		joins++
	}
	for o1 != o2 {
		o1 = s.Parent(o1)
		o2 = s.Parent(o2)
		joins += 2
	}
	return o1, joins
}

// Meet2AncestorSetForBench exposes the ancestor-set baseline to the
// steering ablation benchmark at the repository root.
func Meet2AncestorSetForBench(s *monetx.Store, o1, o2 bat.OID) (bat.OID, int) {
	return meet2AncestorSet(s, o1, o2)
}

// meet2AncestorSet is a second baseline for the ablation: it collects
// the full ancestor set of o1 (as a user without path information
// would) and walks o2 upward until it hits the set. It spends
// depth(o1) + dist(o2, meet) look-ups — more than Meet2 whenever o1
// sits below the meet.
func meet2AncestorSet(s *monetx.Store, o1, o2 bat.OID) (bat.OID, int) {
	lookups := 0
	anc := make(map[bat.OID]struct{})
	for cur := o1; cur != bat.Nil; cur = s.Parent(cur) {
		anc[cur] = struct{}{}
		lookups++
	}
	for cur := o2; ; cur = s.Parent(cur) {
		if _, ok := anc[cur]; ok {
			return cur, lookups
		}
		lookups++
	}
}
