package core

import (
	"testing"

	"ncq/internal/bat"
)

func TestMeetPairsBaselineExplodes(t *testing.T) {
	s := fig1Store(t)
	// Inputs: both years and both titles. The minimal MeetSets reports
	// exactly the two articles; the pairwise baseline computes all four
	// cross pairs and additionally surfaces the cross-article meets at
	// the institute — the "not so interesting" implied answers.
	o1 := []bat.OID{12, 19}
	o2 := []bat.OID{10, 17}
	minimal, err := MeetSets(s, o1, o2, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline, pairs, err := MeetPairsBaseline(s, o1, o2)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 4 {
		t.Errorf("pairs computed = %d, want 4", pairs)
	}
	if len(minimal) != 2 {
		t.Fatalf("minimal = %+v", minimal)
	}
	if len(baseline) <= len(minimal) {
		t.Errorf("baseline (%d results) should exceed minimal (%d)", len(baseline), len(minimal))
	}
	// The baseline contains the institute (cross-article pairs).
	foundInstitute := false
	for _, r := range baseline {
		if r.Meet == 2 {
			foundInstitute = true
		}
	}
	if !foundInstitute {
		t.Errorf("baseline missing the institute: %+v", baseline)
	}
	// Every minimal meet also appears in the baseline.
	for _, m := range minimal {
		found := false
		for _, b := range baseline {
			if b.Meet == m.Meet {
				found = true
			}
		}
		if !found {
			t.Errorf("minimal meet o%d missing from baseline", m.Meet)
		}
	}
}

func TestMeetPairsBaselineQuadraticWork(t *testing.T) {
	s := fig1Store(t)
	// Duplicates are ignored; work is |O1|·|O2| after dedupe.
	_, pairs, err := MeetPairsBaseline(s, []bat.OID{12, 12, 19}, []bat.OID{10, 17, 17})
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 4 {
		t.Errorf("pairs = %d, want 4 (2x2 after dedupe)", pairs)
	}
	if _, _, err := MeetPairsBaseline(s, []bat.OID{0}, []bat.OID{1}); err == nil {
		t.Error("invalid OID accepted")
	}
}

func TestMeetPairsBaselineEmpty(t *testing.T) {
	s := fig1Store(t)
	res, pairs, err := MeetPairsBaseline(s, nil, []bat.OID{10})
	if err != nil || len(res) != 0 || pairs != 0 {
		t.Errorf("empty baseline = (%v,%d,%v)", res, pairs, err)
	}
}
