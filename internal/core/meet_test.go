package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
	"ncq/internal/xmltree"
)

// naiveMeet is an independent reference implementation of the general
// meet: instead of contracting the path summary (Figure 5) it sweeps
// node depths from the deepest level upward. Contributions collide at
// the same instance nodes either way, so the two formulations must
// agree; they share no code beyond the contribution struct.
func naiveMeet(s *monetx.Store, oids []bat.OID, exclude map[pathsum.PathID]bool) ([]Result, []bat.OID) {
	byDepth := map[int]map[bat.OID][]contribution{}
	seen := bat.NewSet()
	maxDepth := 0
	for _, o := range oids {
		if !seen.Add(o) {
			continue
		}
		d := s.Depth(o)
		if byDepth[d] == nil {
			byDepth[d] = map[bat.OID][]contribution{}
		}
		byDepth[d][o] = append(byDepth[d][o], contribution{o, 0})
		if d > maxDepth {
			maxDepth = d
		}
	}
	var results []Result
	unmatched := bat.NewSet()
	if seen.Len() < 2 {
		return nil, seen.Slice()
	}
	for d := maxDepth; d >= 0; d-- {
		for cur, contribs := range byDepth[d] {
			if len(contribs) >= 2 {
				if exclude == nil || !exclude[s.PathOf(cur)] {
					results = append(results, emit(s, cur, contribs))
				}
				continue
			}
			if d == 0 {
				for _, c := range contribs {
					unmatched.Add(c.orig)
				}
				continue
			}
			parent := s.Parent(cur)
			if byDepth[d-1] == nil {
				byDepth[d-1] = map[bat.OID][]contribution{}
			}
			for _, c := range contribs {
				byDepth[d-1][parent] = append(byDepth[d-1][parent],
					contribution{c.orig, c.lifts + 1})
			}
		}
	}
	return SortByDocOrder(results), unmatched.Slice()
}

func TestMeetPaperQuery(t *testing.T) {
	s := fig1Store(t)
	// The reformulated introduction query: meet of the 'Bit' hits and
	// the '1999' hits. Answer: exactly the article o3 — "a true subset
	// of what the regular path expression solution returned".
	groups := map[pathsum.PathID][]bat.OID{
		s.PathOf(8):  {8},
		s.PathOf(12): {12, 19},
	}
	res, unmatched, err := Meet(s, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 3 {
		t.Fatalf("Meet = %+v, want the single article o3", res)
	}
	if !reflect.DeepEqual(res[0].Witnesses, []bat.OID{8, 12}) {
		t.Errorf("witnesses = %v, want [8 12]", res[0].Witnesses)
	}
	if res[0].Distance != 5 {
		t.Errorf("distance = %d, want 5", res[0].Distance)
	}
	if !reflect.DeepEqual(unmatched, []bat.OID{19}) {
		t.Errorf("unmatched = %v, want [19] (the second 1999 finds no partner)", unmatched)
	}
}

func TestMeetWithinGroupCollision(t *testing.T) {
	s := fig1Store(t)
	// Both 1999 hits alone: they are two input nodes, so their LCA (the
	// institute) is a meet under the extended definition of Section 3.2.
	res, unmatched, err := Meet(s, map[pathsum.PathID][]bat.OID{s.PathOf(12): {12, 19}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 2 {
		t.Fatalf("Meet = %+v, want institute o2", res)
	}
	if res[0].Distance != 6 {
		t.Errorf("distance = %d, want 6", res[0].Distance)
	}
	if len(unmatched) != 0 {
		t.Errorf("unmatched = %v", unmatched)
	}
}

func TestMeetInputIsAncestorOfOther(t *testing.T) {
	s := fig1Store(t)
	// Inputs o3 (article) and o8 (cdata below it): the article is the
	// LCA of the pair — a node can be a meet of itself and a descendant.
	res, unmatched, err := MeetOIDs(s, []bat.OID{3, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 3 {
		t.Fatalf("Meet = %+v, want o3", res)
	}
	if !reflect.DeepEqual(res[0].Witnesses, []bat.OID{3, 8}) {
		t.Errorf("witnesses = %v", res[0].Witnesses)
	}
	if res[0].Distance != 3 {
		t.Errorf("distance = %d, want 3 (o8 lifted thrice, o3 not at all)", res[0].Distance)
	}
	if len(unmatched) != 0 {
		t.Errorf("unmatched = %v", unmatched)
	}
}

func TestMeetSingleInputUnmatched(t *testing.T) {
	s := fig1Store(t)
	res, unmatched, err := MeetOIDs(s, []bat.OID{8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("single input produced meets: %+v", res)
	}
	if !reflect.DeepEqual(unmatched, []bat.OID{8}) {
		t.Errorf("unmatched = %v, want [8]", unmatched)
	}
}

func TestMeetEmptyInput(t *testing.T) {
	s := fig1Store(t)
	res, unmatched, err := Meet(s, nil, nil)
	if err != nil || res != nil || len(unmatched) != 0 {
		t.Errorf("Meet(empty) = (%v,%v,%v)", res, unmatched, err)
	}
}

func TestMeetDuplicateInputsCollapse(t *testing.T) {
	s := fig1Store(t)
	a, ua, err := MeetOIDs(s, []bat.OID{8, 8, 12, 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, ub, err := MeetOIDs(s, []bat.OID{8, 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(a, b) || !reflect.DeepEqual(ua, ub) {
		t.Errorf("duplicates changed result: %+v vs %+v", a, b)
	}
}

func TestMeetErrors(t *testing.T) {
	s := fig1Store(t)
	if _, _, err := Meet(s, map[pathsum.PathID][]bat.OID{999: {1}}, nil); err == nil {
		t.Error("unknown group path accepted")
	}
	if _, _, err := Meet(s, map[pathsum.PathID][]bat.OID{s.PathOf(8): {0}}, nil); err == nil {
		t.Error("invalid OID accepted")
	}
	// OID grouped under the wrong path.
	if _, _, err := Meet(s, map[pathsum.PathID][]bat.OID{s.PathOf(8): {12}}, nil); err == nil {
		t.Error("mis-grouped OID accepted")
	}
	if _, _, err := MeetOIDs(s, []bat.OID{77}, nil); err == nil {
		t.Error("MeetOIDs with out-of-range OID accepted")
	}
}

func TestMeetExcludeRoot(t *testing.T) {
	s := fig1Store(t)
	// o1 (root) and o2 (institute) meet at the root; with ExcludeRoot
	// the match is consumed silently (meet_P is a result filter).
	res, unmatched, err := MeetOIDs(s, []bat.OID{1, 2}, ExcludeRoot(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("root meet reported despite exclusion: %+v", res)
	}
	if len(unmatched) != 0 {
		t.Errorf("unmatched = %v, want none (consumed by the excluded meet)", unmatched)
	}
}

func TestMeetSkipExcludedLiftsPast(t *testing.T) {
	s := fig1Store(t)
	art := artPath(t, s)
	opt := &Options{Exclude: map[pathsum.PathID]bool{art: true}, SkipExcluded: true}
	res, _, err := MeetOIDs(s, []bat.OID{8, 12}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 2 {
		t.Fatalf("SkipExcluded = %+v, want the institute o2", res)
	}
}

func TestMeetSkipExcludedAtRootGoesUnmatched(t *testing.T) {
	s := fig1Store(t)
	opt := &Options{Exclude: map[pathsum.PathID]bool{s.Summary().Root(): true}, SkipExcluded: true}
	res, unmatched, err := MeetOIDs(s, []bat.OID{1, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results = %+v", res)
	}
	if !reflect.DeepEqual(unmatched, []bat.OID{1, 2}) {
		t.Errorf("unmatched = %v, want [1 2]", unmatched)
	}
}

func TestMeetMaxLift(t *testing.T) {
	s := fig1Store(t)
	// o8 needs 3 lifts to the article; a budget of 2 leaves both inputs
	// unmatched (o12 runs out above the article as well).
	res, unmatched, err := MeetOIDs(s, []bat.OID{8, 12}, &Options{MaxLift: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("MaxLift 2 produced %+v", res)
	}
	if !reflect.DeepEqual(unmatched, []bat.OID{8, 12}) {
		t.Errorf("unmatched = %v", unmatched)
	}
	res, _, err = MeetOIDs(s, []bat.OID{8, 12}, &Options{MaxLift: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 3 {
		t.Errorf("MaxLift 3 = %+v, want the article", res)
	}
}

func TestMeetMaxDistance(t *testing.T) {
	s := fig1Store(t)
	res, _, err := MeetOIDs(s, []bat.OID{8, 12}, &Options{MaxDistance: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("MaxDistance 4 produced %+v", res)
	}
	res, _, err = MeetOIDs(s, []bat.OID{8, 12}, &Options{MaxDistance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("MaxDistance 5 produced %+v", res)
	}
}

func TestMeetAgainstDepthSweepReference(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 40; i++ {
		doc := xmltree.Random(r, 70)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		n := s.Len()
		// Random input multiset of up to 12 OIDs.
		var oids []bat.OID
		for k, kn := 0, r.Intn(12); k < kn; k++ {
			oids = append(oids, bat.OID(r.Intn(n)+1))
		}
		got, gotUn, err := MeetOIDs(s, oids, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, wantUn := naiveMeet(s, oids, nil)
		if !resultsEqual(got, want) {
			t.Fatalf("doc %d inputs %v:\npath roll-up: %+v\ndepth sweep:  %+v", i, oids, got, want)
		}
		if !reflect.DeepEqual(gotUn, wantUn) {
			t.Fatalf("doc %d inputs %v: unmatched %v vs %v", i, oids, gotUn, wantUn)
		}
		// With root exclusion as well.
		got, _, err = MeetOIDs(s, oids, ExcludeRoot(s))
		if err != nil {
			t.Fatal(err)
		}
		want, _ = naiveMeet(s, oids, map[pathsum.PathID]bool{s.Summary().Root(): true})
		if !resultsEqual(got, want) {
			t.Fatalf("doc %d inputs %v (root excluded): %+v vs %+v", i, oids, got, want)
		}
	}
}

// TestMeetRandomExclusionAgainstReference draws random excluded path
// sets and checks the roll-up against the depth-sweep oracle.
func TestMeetRandomExclusionAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 30; i++ {
		doc := xmltree.Random(r, 60)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		paths := s.Summary().ElemPaths()
		exclude := map[pathsum.PathID]bool{}
		for _, p := range paths {
			if r.Intn(4) == 0 {
				exclude[p] = true
			}
		}
		var oids []bat.OID
		for k, kn := 0, r.Intn(12); k < kn; k++ {
			oids = append(oids, bat.OID(r.Intn(s.Len())+1))
		}
		got, gotUn, err := MeetOIDs(s, oids, &Options{Exclude: exclude})
		if err != nil {
			t.Fatal(err)
		}
		want, wantUn := naiveMeet(s, oids, exclude)
		if !resultsEqual(got, want) || !reflect.DeepEqual(gotUn, wantUn) {
			t.Fatalf("doc %d inputs %v exclude %v:\ngot  %+v %v\nwant %+v %v",
				i, oids, exclude, got, gotUn, want, wantUn)
		}
		// No result may lie on an excluded path.
		for _, r0 := range got {
			if exclude[r0.Path] {
				t.Fatalf("doc %d: excluded meet reported: %+v", i, r0)
			}
		}
	}
}

// TestMeetSkipExcludedInvariants checks the climbing semantics: with
// SkipExcluded every reported meet is admissible and is the deepest
// admissible common ancestor of its witnesses.
func TestMeetSkipExcludedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for i := 0; i < 30; i++ {
		doc := xmltree.Random(r, 60)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		paths := s.Summary().ElemPaths()
		exclude := map[pathsum.PathID]bool{}
		for _, p := range paths {
			if r.Intn(3) == 0 {
				exclude[p] = true
			}
		}
		var oids []bat.OID
		for k, kn := 0, 2+r.Intn(10); k < kn; k++ {
			oids = append(oids, bat.OID(r.Intn(s.Len())+1))
		}
		got, _, err := MeetOIDs(s, oids, &Options{Exclude: exclude, SkipExcluded: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r0 := range got {
			if exclude[r0.Path] {
				t.Fatalf("doc %d: inadmissible meet %+v", i, r0)
			}
			for _, w := range r0.Witnesses {
				if !s.Contains(r0.Meet, w) {
					t.Fatalf("doc %d: meet %d does not contain witness %d", i, r0.Meet, w)
				}
			}
			// Between the true LCA of the witnesses and the reported
			// meet, every node must be excluded (the climb was forced).
			lca := r0.Witnesses[0]
			for _, w := range r0.Witnesses[1:] {
				m, _, err := Meet2(s, lca, w)
				if err != nil {
					t.Fatal(err)
				}
				lca = m
			}
			for cur := lca; cur != r0.Meet; cur = s.Parent(cur) {
				if !exclude[s.PathOf(cur)] {
					t.Fatalf("doc %d: climb passed admissible node %d (path %s)",
						i, cur, s.PathString(cur))
				}
			}
		}
	}
}

func TestMeetInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 40; i++ {
		doc := xmltree.Random(r, 70)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		n := s.Len()
		inputs := bat.NewSet()
		for k, kn := 0, r.Intn(14); k < kn; k++ {
			inputs.Add(bat.OID(r.Intn(n) + 1))
		}
		res, unmatched, err := MeetOIDs(s, inputs.Slice(), nil)
		if err != nil {
			t.Fatal(err)
		}
		consumed := bat.NewSet()
		for _, r0 := range res {
			if len(r0.Witnesses) < 2 {
				t.Fatalf("doc %d: meet %d has %d witnesses, want >= 2",
					i, r0.Meet, len(r0.Witnesses))
			}
			for _, w := range r0.Witnesses {
				if !inputs.Has(w) {
					t.Fatalf("doc %d: witness %d is not an input", i, w)
				}
				if !consumed.Add(w) {
					t.Fatalf("doc %d: witness %d consumed twice", i, w)
				}
				if !s.Contains(r0.Meet, w) {
					t.Fatalf("doc %d: meet %d does not contain witness %d", i, r0.Meet, w)
				}
			}
			// The meet is the exact LCA of its witnesses.
			lca := r0.Witnesses[0]
			for _, w := range r0.Witnesses[1:] {
				m, _, err := Meet2(s, lca, w)
				if err != nil {
					t.Fatal(err)
				}
				lca = m
			}
			if lca != r0.Meet {
				t.Fatalf("doc %d: meet %d is not the LCA of its witnesses (LCA=%d)",
					i, r0.Meet, lca)
			}
		}
		// Witnesses plus unmatched partition the inputs.
		for _, u := range unmatched {
			if !consumed.Add(u) {
				t.Fatalf("doc %d: OID %d both matched and unmatched", i, u)
			}
		}
		if consumed.Len() != inputs.Len() {
			t.Fatalf("doc %d: consumed %d of %d inputs", i, consumed.Len(), inputs.Len())
		}
		// Results arrive in document order.
		if !sort.SliceIsSorted(res, func(a, b int) bool { return res[a].Meet < res[b].Meet }) {
			t.Fatalf("doc %d: results not in document order", i)
		}
	}
}

func TestMeetOrderInvariance(t *testing.T) {
	s := fig1Store(t)
	oids := []bat.OID{8, 12, 19, 10, 17, 6}
	base, baseUn, err := MeetOIDs(s, oids, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]bat.OID(nil), oids...)
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, gotUn, err := MeetOIDs(s, shuffled, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, base) || !reflect.DeepEqual(gotUn, baseUn) {
			t.Fatalf("order %v changed the result:\n%+v\nvs\n%+v", shuffled, got, base)
		}
	}
}

func TestRankBySourceProximity(t *testing.T) {
	rs := []Result{
		{Meet: 2, Witnesses: []bat.OID{10, 90}, Distance: 1}, // span 80
		{Meet: 5, Witnesses: []bat.OID{40, 45}, Distance: 9}, // span 5
		{Meet: 7, Witnesses: []bat.OID{1, 6}, Distance: 3},   // span 5, ties on span
		{Meet: 9, Witnesses: []bat.OID{2}, Distance: 0},      // span 0
	}
	RankBySourceProximity(rs)
	wantOrder := []bat.OID{9, 7, 5, 2} // span 0, then span-5 ties by distance, then span 80
	for i, w := range wantOrder {
		if rs[i].Meet != w {
			t.Fatalf("order = %v, want %v", rs, wantOrder)
		}
	}
}

func TestRank(t *testing.T) {
	rs := []Result{
		{Meet: 9, Distance: 7},
		{Meet: 2, Distance: 3},
		{Meet: 1, Distance: 3},
		{Meet: 5, Distance: 1},
	}
	Rank(rs)
	wantOrder := []bat.OID{5, 1, 2, 9}
	for i, w := range wantOrder {
		if rs[i].Meet != w {
			t.Fatalf("Rank order = %v, want %v", rs, wantOrder)
		}
	}
}

func TestMinPairDistance(t *testing.T) {
	cases := []struct {
		lifts []int32
		want  int
	}{
		{[]int32{3, 5, 1}, 4},
		{[]int32{2, 2}, 4},
		{[]int32{0, 0}, 0},
		{[]int32{7}, 0},
		{nil, 0},
	}
	for _, c := range cases {
		var cs []contribution
		for _, l := range c.lifts {
			cs = append(cs, contribution{orig: 1, lifts: l})
		}
		if got := minPairDistance(cs); got != c.want {
			t.Errorf("minPairDistance(%v) = %d, want %d", c.lifts, got, c.want)
		}
	}
}

func TestOptionsNilSafe(t *testing.T) {
	var o *Options
	if o.excluded(0) || o.maxLift() != 0 || o.maxDistance() != 0 || o.skipExcluded() {
		t.Error("nil Options should behave as zero values")
	}
}
