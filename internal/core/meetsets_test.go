package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
	"ncq/internal/xmltree"
)

func artPath(t *testing.T, s *monetx.Store) pathsum.PathID {
	t.Helper()
	p, ok := s.Summary().Lookup([]string{"bibliography", "institute", "article"})
	if !ok {
		t.Fatal("article path missing")
	}
	return p
}

func TestMeetSetsPaperExample(t *testing.T) {
	s := fig1Store(t)
	// Full-text "Bit" = {o8}; "1999" = {o12, o19}. The minimal meet is
	// the first article (o3); the second 1999 finds no partner.
	res, err := MeetSets(s, []bat.OID{8}, []bat.OID{12, 19}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("MeetSets = %+v, want exactly one meet", res)
	}
	r := res[0]
	if r.Meet != 3 {
		t.Errorf("meet = o%d, want o3 (the article)", r.Meet)
	}
	if !reflect.DeepEqual(r.Witnesses, []bat.OID{8, 12}) {
		t.Errorf("witnesses = %v, want [8 12]", r.Witnesses)
	}
	if r.Distance != 5 {
		t.Errorf("distance = %d, want 5", r.Distance)
	}
	if r.Path != artPath(t, s) {
		t.Errorf("path = %s, want the article path", s.Summary().String(r.Path))
	}
}

func TestMeetSetsSameOIDInBothSets(t *testing.T) {
	s := fig1Store(t)
	// "Bob" and "Byte" both hit ⟨o15,"Bob Byte"⟩: the meet is the cdata
	// node itself at distance 0 (paper Section 3.1, second example).
	res, err := MeetSets(s, []bat.OID{15}, []bat.OID{15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 15 || res[0].Distance != 0 {
		t.Fatalf("MeetSets({15},{15}) = %+v, want meet o15 at distance 0", res)
	}
	if !reflect.DeepEqual(res[0].Witnesses, []bat.OID{15}) {
		t.Errorf("witnesses = %v", res[0].Witnesses)
	}
}

func TestMeetSetsTwoYears(t *testing.T) {
	s := fig1Store(t)
	// The two "1999" cdata nodes meet at the institute (o2).
	res, err := MeetSets(s, []bat.OID{12}, []bat.OID{19}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 2 {
		t.Fatalf("MeetSets({12},{19}) = %+v, want institute o2", res)
	}
	if res[0].Distance != 6 {
		t.Errorf("distance = %d, want 6", res[0].Distance)
	}
}

func TestMeetSetsMinimality(t *testing.T) {
	s := fig1Store(t)
	// Both years against both titles: each article pairs its own year
	// and title; no cross-article meets at the institute remain.
	res, err := MeetSets(s, []bat.OID{12, 19}, []bat.OID{10, 17}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("MeetSets = %+v, want two article meets", res)
	}
	if res[0].Meet != 3 || res[1].Meet != 13 {
		t.Errorf("meets = o%d,o%d, want o3,o13", res[0].Meet, res[1].Meet)
	}
	for _, r := range res {
		if len(r.Witnesses) != 2 {
			t.Errorf("meet o%d witnesses = %v, want one year and one title", r.Meet, r.Witnesses)
		}
	}
}

func TestMeetSetsInputOrderInvariance(t *testing.T) {
	s := fig1Store(t)
	a, err := MeetSets(s, []bat.OID{12, 19}, []bat.OID{10, 17}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeetSets(s, []bat.OID{19, 12}, []bat.OID{17, 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("input order changed the result:\n%+v\nvs\n%+v", a, b)
	}
}

func TestMeetSetsDuplicatesIgnored(t *testing.T) {
	s := fig1Store(t)
	a, err := MeetSets(s, []bat.OID{8, 8, 8}, []bat.OID{12, 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeetSets(s, []bat.OID{8}, []bat.OID{12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("duplicates changed the result: %+v vs %+v", a, b)
	}
}

func TestMeetSetsEmptyInputs(t *testing.T) {
	s := fig1Store(t)
	if res, err := MeetSets(s, nil, []bat.OID{12}, nil); err != nil || res != nil {
		t.Errorf("MeetSets(nil, ...) = (%v,%v), want (nil,nil)", res, err)
	}
	if res, err := MeetSets(s, []bat.OID{8}, nil, nil); err != nil || res != nil {
		t.Errorf("MeetSets(..., nil) = (%v,%v), want (nil,nil)", res, err)
	}
}

func TestMeetSetsHeterogeneousInputRejected(t *testing.T) {
	s := fig1Store(t)
	// o8 (lastname cdata) and o12 (year cdata) have different paths.
	if _, err := MeetSets(s, []bat.OID{8, 12}, []bat.OID{19}, nil); err == nil {
		t.Error("heterogeneous first set accepted")
	}
	if _, err := MeetSets(s, []bat.OID{19}, []bat.OID{8, 12}, nil); err == nil {
		t.Error("heterogeneous second set accepted")
	}
	if _, err := MeetSets(s, []bat.OID{0}, []bat.OID{19}, nil); err == nil {
		t.Error("invalid OID accepted")
	}
}

func TestMeetSetsExclude(t *testing.T) {
	s := fig1Store(t)
	art := artPath(t, s)
	opt := &Options{Exclude: map[pathsum.PathID]bool{art: true}}
	// meet_P semantics: the article meet is consumed but not reported,
	// and nothing above is found because the inputs are gone.
	res, err := MeetSets(s, []bat.OID{8}, []bat.OID{12}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("excluded meet reported: %+v", res)
	}
}

func TestMeetSetsSkipExcluded(t *testing.T) {
	s := fig1Store(t)
	art := artPath(t, s)
	opt := &Options{Exclude: map[pathsum.PathID]bool{art: true}, SkipExcluded: true}
	// Extension semantics: the match lifts past the article and lands
	// on the institute.
	res, err := MeetSets(s, []bat.OID{8}, []bat.OID{12}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 2 {
		t.Fatalf("SkipExcluded = %+v, want institute o2", res)
	}
	if !reflect.DeepEqual(res[0].Witnesses, []bat.OID{8, 12}) {
		t.Errorf("witnesses = %v", res[0].Witnesses)
	}
}

func TestMeetSetsMaxDistance(t *testing.T) {
	s := fig1Store(t)
	res, err := MeetSets(s, []bat.OID{8}, []bat.OID{12}, &Options{MaxDistance: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("MaxDistance 4 let a distance-5 meet through: %+v", res)
	}
	res, err = MeetSets(s, []bat.OID{8}, []bat.OID{12}, &Options{MaxDistance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("MaxDistance 5 blocked a distance-5 meet: %+v", res)
	}
}

func TestMeetSetsMaxLift(t *testing.T) {
	s := fig1Store(t)
	// o8 needs 3 lifts to reach the article; cap at 2 starves the set.
	res, err := MeetSets(s, []bat.OID{8}, []bat.OID{12}, &Options{MaxLift: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("MaxLift 2 still met: %+v", res)
	}
	res, err = MeetSets(s, []bat.OID{8}, []bat.OID{12}, &Options{MaxLift: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Meet != 3 {
		t.Errorf("MaxLift 3 = %+v, want the article meet", res)
	}
}

func TestMeetSetsBATEquivalence(t *testing.T) {
	s := fig1Store(t)
	cases := []struct {
		o1, o2 []bat.OID
		opt    *Options
	}{
		{[]bat.OID{8}, []bat.OID{12, 19}, nil},
		{[]bat.OID{12, 19}, []bat.OID{10, 17}, nil},
		{[]bat.OID{15}, []bat.OID{15}, nil},
		{[]bat.OID{12}, []bat.OID{19}, nil},
		{[]bat.OID{8}, []bat.OID{12}, &Options{MaxDistance: 4}},
		{[]bat.OID{8}, []bat.OID{12}, &Options{MaxLift: 2}},
	}
	for i, c := range cases {
		want, err := MeetSets(s, c.o1, c.o2, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MeetSetsBAT(s, c.o1, c.o2, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want) {
			t.Errorf("case %d: BAT variant differs:\narray: %+v\nbat:   %+v", i, want, got)
		}
	}
}

func TestMeetSetsBATEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		doc := xmltree.Random(r, 60)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		// Pick two random homogeneous groups: all OIDs of one path each.
		paths := s.Summary().ElemPaths()
		p1 := paths[r.Intn(len(paths))]
		p2 := paths[r.Intn(len(paths))]
		o1 := append([]bat.OID(nil), s.OIDsAt(p1)...)
		o2 := append([]bat.OID(nil), s.OIDsAt(p2)...)
		want, err := MeetSets(s, o1, o2, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MeetSetsBAT(s, o1, o2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want) {
			t.Fatalf("doc %d: BAT variant differs on paths %s × %s:\narray: %+v\nbat:   %+v",
				i, s.Summary().String(p1), s.Summary().String(p2), want, got)
		}
	}
}

// resultsEqual compares result slices while tolerating nil-vs-empty.
func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Meet != b[i].Meet || a[i].Path != b[i].Path || a[i].Distance != b[i].Distance {
			return false
		}
		if !reflect.DeepEqual(a[i].Witnesses, b[i].Witnesses) {
			return false
		}
	}
	return true
}

func TestMeetSetsWitnessInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 25; i++ {
		doc := xmltree.Random(r, 60)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		paths := s.Summary().ElemPaths()
		p1 := paths[r.Intn(len(paths))]
		p2 := paths[r.Intn(len(paths))]
		o1 := s.OIDsAt(p1)
		o2 := s.OIDsAt(p2)
		res, err := MeetSets(s, o1, o2, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := bat.NewSet()
		for _, r0 := range res {
			if len(r0.Witnesses) < 1 {
				t.Fatalf("doc %d: empty witness set", i)
			}
			for _, w := range r0.Witnesses {
				if !seen.Add(w) {
					t.Fatalf("doc %d: witness %d consumed twice", i, w)
				}
				if !s.Contains(r0.Meet, w) {
					t.Fatalf("doc %d: meet %d does not contain witness %d", i, r0.Meet, w)
				}
			}
		}
	}
}
