package core

// The columnar execution engine of the general meet (Figure 5). The
// paper's pitch is that nearest concept queries run directly on the
// path-partitioned binary relations — a layout chosen for speed — so
// the roll-up keeps contributions in flat, path-bucketed slices
// indexed by the dense PathID space of the path summary instead of
// nested maps. Each contracted level sorts its bucket by current
// ancestor and sweeps collision runs in OID order; the buckets are
// recycled across queries through a sync.Pool, so a steady-state
// query allocates O(results), not O(inputs · levels).

import (
	"context"
	"sync"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
	"slices"
)

// entry is one live contribution in the scratch buffers: the input OID
// it stands for, the ancestor it has reached, and the parent joins
// spent getting there.
type entry struct {
	cur   bat.OID
	orig  bat.OID
	lifts int32
}

// setPair is one (input OID, input set) occurrence, the columnar form
// of MeetMulti's per-OID set counting.
type setPair struct {
	o   bat.OID
	set int32
}

// scratch holds the reusable buffers of one roll-up: a contribution
// bucket per path (indexed by dense PathID), the unmatched
// accumulator, and the pair buffer of MeetMulti. Buffers keep their
// capacity between queries; used is the prefix of perPath that the
// current store's summary spans (pooled scratch may be shared by
// stores with different path counts).
type scratch struct {
	perPath   [][]entry
	unmatched []bat.OID
	pairs     []setPair
	used      int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(nPaths int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if len(sc.perPath) < nPaths {
		sc.perPath = append(sc.perPath, make([][]entry, nPaths-len(sc.perPath))...)
	}
	sc.used = nPaths
	return sc
}

func putScratch(sc *scratch) {
	for i := 0; i < sc.used; i++ {
		sc.perPath[i] = sc.perPath[i][:0]
	}
	sc.unmatched = sc.unmatched[:0]
	sc.pairs = sc.pairs[:0]
	scratchPool.Put(sc)
}

// add places one input contribution in its path's bucket. The caller
// must have validated that o lies on path p.
func (sc *scratch) add(p pathsum.PathID, o bat.OID) {
	sc.perPath[p] = append(sc.perPath[p], entry{cur: o, orig: o, lifts: 0})
}

// inputs returns the distinct input OIDs currently in the scratch,
// ascending — the degenerate answer when fewer than two objects exist.
func (sc *scratch) inputs() []bat.OID {
	out := make([]bat.OID, 0, 1)
	for i := 0; i < sc.used; i++ {
		for _, e := range sc.perPath[i] {
			out = append(out, e.orig)
		}
	}
	return bat.SortDedup(out)
}

// rollup contracts the path summary deepest-first over the scratch
// buffers — the procedure meet of Figure 5 in columnar form. Inputs
// must already have been validated and placed with add; duplicate
// input OIDs collapse during the per-level sweep (a duplicate shares
// its run's cur and orig, so it can never fabricate a collision).
// ctx is checked once per contracted level so a deadline can
// interrupt one huge roll-up mid-meet.
func rollup(ctx context.Context, s *monetx.Store, sc *scratch, opt *Options) ([]Result, []bat.OID, error) {
	sum := s.Summary()
	maxLift := int32(opt.maxLift())
	var results []Result
	for _, p := range sum.DeepestFirst() {
		entries := sc.perPath[p]
		if len(entries) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		parentPath := sum.Parent(p)
		slices.SortFunc(entries, func(a, b entry) int {
			if a.cur != b.cur {
				if a.cur < b.cur {
					return -1
				}
				return 1
			}
			if a.orig != b.orig {
				if a.orig < b.orig {
					return -1
				}
				return 1
			}
			return 0
		})
		for i := 0; i < len(entries); {
			j := i + 1
			for j < len(entries) && entries[j].cur == entries[i].cur {
				j++
			}
			run := dedupRun(entries[i:j])
			i = j
			// A collision of two or more live contributions makes cur
			// a meet (it is the LCA of all of them, since
			// contributions from a common deeper branch would have
			// collided earlier).
			if len(run) >= 2 {
				excluded := opt.excluded(p)
				switch {
				case excluded && opt.skipExcluded():
					// Extension: keep lifting past inadmissible paths.
				case excluded:
					continue // meet_P: consumed, not reported
				default:
					if d := opt.maxDistance(); d > 0 && minPairLifts(run) > d {
						continue // consumed, beyond the pairwise bound
					}
					results = append(results, emitRun(s, run))
					continue
				}
			}
			// Lift the survivors one level.
			if parentPath == pathsum.Invalid {
				for _, e := range run {
					sc.unmatched = append(sc.unmatched, e.orig)
				}
				continue
			}
			parent := s.Parent(run[0].cur)
			for _, e := range run {
				if maxLift > 0 && e.lifts+1 > maxLift {
					sc.unmatched = append(sc.unmatched, e.orig)
					continue
				}
				sc.perPath[parentPath] = append(sc.perPath[parentPath],
					entry{cur: parent, orig: e.orig, lifts: e.lifts + 1})
			}
		}
		sc.perPath[p] = entries[:0]
	}
	unmatched := make([]bat.OID, len(sc.unmatched))
	copy(unmatched, sc.unmatched)
	return SortByDocOrder(results), bat.SortDedup(unmatched), nil
}

// dedupRun collapses entries with equal orig inside one sorted
// collision run. Distinct contributions always carry distinct origs —
// an input travels as exactly one contribution — so this only strips
// literal input duplicates, which all sit at lift 0.
func dedupRun(run []entry) []entry {
	w := 1
	for i := 1; i < len(run); i++ {
		if run[i].orig != run[w-1].orig {
			run[w] = run[i]
			w++
		}
	}
	return run[:w]
}

// emitRun assembles a Result from a collision run. The run is sorted
// by orig, so the witness list is ascending without a further sort.
func emitRun(s *monetx.Store, run []entry) Result {
	ws := make([]bat.OID, len(run))
	total := 0
	for i, e := range run {
		ws[i] = e.orig
		total += int(e.lifts)
	}
	return Result{Meet: run[0].cur, Path: s.PathOf(run[0].cur), Witnesses: ws, Distance: total}
}

// minPairLifts returns the distance between the two closest witnesses
// of a run: the sum of the two smallest lift counts.
func minPairLifts(run []entry) int {
	return minPair(run, func(e entry) int32 { return e.lifts })
}

// minPair implements the two-smallest-lifts sweep shared by the
// columnar roll-up (entry) and the set-oriented meet (contribution).
func minPair[T any](xs []T, lifts func(T) int32) int {
	if len(xs) < 2 {
		return 0
	}
	min1, min2 := int32(1<<30), int32(1<<30)
	for _, x := range xs {
		switch l := lifts(x); {
		case l < min1:
			min1, min2 = l, min1
		case l < min2:
			min2 = l
		}
	}
	return int(min1 + min2)
}
