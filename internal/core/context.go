package core

import (
	"fmt"

	"ncq/internal/bat"
	"ncq/internal/monetx"
)

// This file implements the interpretations of meet_2 that Section 3.1
// of the paper enumerates beyond the plain LCA:
//
//   - path(o1) − path(o) and path(o2) − path(o) "describe the context
//     of o1 and o2 with respect to o",
//   - the two contexts concatenated are "the different contexts we see
//     while traversing from o1 to o2 … trivially, this is also the
//     shortest path from o1 to o2".

// PathBetween returns the nodes on the unique tree path from o1 to o2,
// inclusive of both endpoints. The path ascends from o1 to the meet and
// descends to o2; its length in edges equals Dist(o1, o2).
func PathBetween(s *monetx.Store, o1, o2 bat.OID) ([]bat.OID, error) {
	m, _, err := Meet2(s, o1, o2)
	if err != nil {
		return nil, err
	}
	var up []bat.OID
	for cur := o1; cur != m; cur = s.Parent(cur) {
		up = append(up, cur)
	}
	up = append(up, m)
	var down []bat.OID
	for cur := o2; cur != m; cur = s.Parent(cur) {
		down = append(down, cur)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up, nil
}

// Context returns the label steps from ancestor anc (exclusive) down to
// o (inclusive) — the paper's path(o) − path(anc), the relative context
// of o with respect to its nearest concept. It fails when anc is not an
// ancestor-or-self of o. For o == anc the context is empty.
func Context(s *monetx.Store, anc, o bat.OID) ([]string, error) {
	if err := checkOID(s, anc); err != nil {
		return nil, err
	}
	if err := checkOID(s, o); err != nil {
		return nil, err
	}
	if !s.Contains(anc, o) {
		return nil, fmt.Errorf("core: Context: %d is not an ancestor of %d", anc, o)
	}
	var rev []string
	for cur := o; cur != anc; cur = s.Parent(cur) {
		rev = append(rev, s.Label(cur))
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, nil
}
