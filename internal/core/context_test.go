package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

func TestPathBetween(t *testing.T) {
	s := fig1Store(t)
	cases := []struct {
		name   string
		o1, o2 bat.OID
		want   []bat.OID
	}{
		{"Ben to Bit via the author", 6, 8, []bat.OID{6, 5, 4, 7, 8}},
		{"same node", 15, 15, []bat.OID{15}},
		{"ancestor to descendant", 3, 8, []bat.OID{3, 4, 7, 8}},
		{"descendant to ancestor", 8, 3, []bat.OID{8, 7, 4, 3}},
		{"across the articles", 12, 19, []bat.OID{12, 11, 3, 2, 13, 18, 19}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := PathBetween(s, c.o1, c.o2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("PathBetween(%d,%d) = %v, want %v", c.o1, c.o2, got, c.want)
			}
		})
	}
	if _, err := PathBetween(s, 0, 3); err == nil {
		t.Error("invalid OID accepted")
	}
}

func TestPathBetweenLengthIsDist(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 20; i++ {
		doc := xmltree.Random(r, 60)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		n := s.Len()
		for trial := 0; trial < 100; trial++ {
			o1 := bat.OID(r.Intn(n) + 1)
			o2 := bat.OID(r.Intn(n) + 1)
			path, err := PathBetween(s, o1, o2)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Dist(s, o1, o2)
			if err != nil {
				t.Fatal(err)
			}
			if len(path)-1 != d {
				t.Fatalf("path length %d != distance %d for (%d,%d)", len(path)-1, d, o1, o2)
			}
			if path[0] != o1 || path[len(path)-1] != o2 {
				t.Fatalf("endpoints wrong: %v", path)
			}
			// Consecutive nodes are parent/child pairs.
			for j := 1; j < len(path); j++ {
				a, b := path[j-1], path[j]
				if s.Parent(a) != b && s.Parent(b) != a {
					t.Fatalf("non-adjacent steps %d-%d in %v", a, b, path)
				}
			}
		}
	}
}

func TestContext(t *testing.T) {
	s := fig1Store(t)
	got, err := Context(s, 3, 8) // article down to the 'Bit' cdata
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"author", "lastname", "cdata"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Context = %v, want %v", got, want)
	}
	// Empty context for o == anc.
	got, err = Context(s, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Context(self) = %v, want empty", got)
	}
	// Errors.
	if _, err := Context(s, 8, 3); err == nil {
		t.Error("non-ancestor accepted")
	}
	if _, err := Context(s, 13, 8); err == nil {
		t.Error("sibling subtree accepted")
	}
	if _, err := Context(s, 0, 3); err == nil {
		t.Error("invalid ancestor accepted")
	}
	if _, err := Context(s, 3, 99); err == nil {
		t.Error("invalid descendant accepted")
	}
}
