package core

import (
	"ncq/internal/bat"
	"ncq/internal/monetx"
)

// MeetPairsBaseline computes the meet of every cross pair of the two
// input sets — the naive semantics the paper rejects: "If we apply the
// original motivation to such an input we will end up with a
// combinatorial explosion of the result size" (Section 1). It exists as
// the comparison point for the minimality of MeetSets: same inputs,
// |O1|·|O2| meet_2 computations, and a result bag whose size is the
// product rather than at most min(|O1|,|O2|).
//
// Results are deduplicated per meet node (witness lists merged) but
// every pair is still computed and counted; PairsComputed reports the
// work done. Duplicate inputs are ignored like in MeetSets.
func MeetPairsBaseline(s *monetx.Store, o1, o2 []bat.OID) (results []Result, pairsComputed int, err error) {
	d1 := dedupe(o1)
	d2 := dedupe(o2)
	byMeet := make(map[bat.OID]*Result)
	for _, a := range d1 {
		for _, b := range d2 {
			m, joins, err := Meet2(s, a, b)
			if err != nil {
				return nil, pairsComputed, err
			}
			pairsComputed++
			r := byMeet[m]
			if r == nil {
				r = &Result{Meet: m, Path: s.PathOf(m)}
				byMeet[m] = r
			}
			r.Witnesses = appendUnique(r.Witnesses, a)
			r.Witnesses = appendUnique(r.Witnesses, b)
			r.Distance += joins
		}
	}
	results = make([]Result, 0, len(byMeet))
	for _, r := range byMeet {
		sortOIDs(r.Witnesses)
		results = append(results, *r)
	}
	return SortByDocOrder(results), pairsComputed, nil
}

func dedupe(oids []bat.OID) []bat.OID {
	seen := bat.NewSet()
	out := make([]bat.OID, 0, len(oids))
	for _, o := range oids {
		if seen.Add(o) {
			out = append(out, o)
		}
	}
	return out
}

func appendUnique(s []bat.OID, o bat.OID) []bat.OID {
	for _, x := range s {
		if x == o {
			return s
		}
	}
	return append(s, o)
}

func sortOIDs(s []bat.OID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
