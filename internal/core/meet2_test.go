package core

import (
	"math/rand"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

func fig1Store(t *testing.T) *monetx.Store {
	t.Helper()
	s, err := monetx.Load(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMeet2PaperExamples(t *testing.T) {
	s := fig1Store(t)
	cases := []struct {
		name     string
		o1, o2   bat.OID
		wantMeet bat.OID
		wantDist int
	}{
		// Section 3.1: "Ben" (o6) and "Bit" (o8) constitute an author's name.
		{"Ben+Bit -> author", 6, 8, 4, 4},
		// "Bob" and "Byte" return the same cdata association o15.
		{"BobByte with itself", 15, 15, 15, 0},
		// "Bit" (o8) and the first "1999" (o12): Mr Bit published an article.
		{"Bit+1999 -> article", 8, 12, 3, 5},
		// The two "1999"s only meet at the institute.
		{"1999+1999 -> institute", 12, 19, 2, 6},
		{"ancestor is its own meet with a descendant", 3, 8, 3, 3},
		{"root with leaf", 1, 19, 1, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, joins, err := Meet2(s, c.o1, c.o2)
			if err != nil {
				t.Fatal(err)
			}
			if m != c.wantMeet || joins != c.wantDist {
				t.Errorf("Meet2(o%d,o%d) = (o%d,%d), want (o%d,%d)",
					c.o1, c.o2, m, joins, c.wantMeet, c.wantDist)
			}
			// "Note that meet_2 does not depend on the order of its arguments."
			m2, joins2, err := Meet2(s, c.o2, c.o1)
			if err != nil {
				t.Fatal(err)
			}
			if m2 != m || joins2 != joins {
				t.Errorf("Meet2 not symmetric: (o%d,%d) vs (o%d,%d)", m, joins, m2, joins2)
			}
		})
	}
}

func TestMeet2Errors(t *testing.T) {
	s := fig1Store(t)
	if _, _, err := Meet2(s, 0, 5); err == nil {
		t.Error("Meet2 with Nil OID succeeded")
	}
	if _, _, err := Meet2(s, 5, 99); err == nil {
		t.Error("Meet2 with out-of-range OID succeeded")
	}
}

func TestDist(t *testing.T) {
	s := fig1Store(t)
	d, err := Dist(s, 6, 8)
	if err != nil || d != 4 {
		t.Errorf("Dist(6,8) = (%d,%v), want (4,nil)", d, err)
	}
	if _, err := Dist(s, 0, 1); err == nil {
		t.Error("Dist with invalid OID succeeded")
	}
}

func TestMeet2Bounded(t *testing.T) {
	s := fig1Store(t)
	// Distance between o8 and o12 is 5.
	m, d, err := Meet2Bounded(s, 8, 12, 5)
	if err != nil || m != 3 || d != 5 {
		t.Errorf("Meet2Bounded(8,12,5) = (o%d,%d,%v), want (o3,5,nil)", m, d, err)
	}
	m, d, err = Meet2Bounded(s, 8, 12, 4)
	if err != nil || m != bat.Nil || d != 5 {
		t.Errorf("Meet2Bounded(8,12,4) = (o%d,%d,%v), want (Nil,5,nil) — the paper's ⊥", m, d, err)
	}
	if _, _, err := Meet2Bounded(s, 0, 1, 3); err == nil {
		t.Error("Meet2Bounded with invalid OID succeeded")
	}
}

// TestMeet2AgainstNaiveOnRandomTrees is the central correctness
// property: the path-steered algorithm of Figure 3 must agree with a
// plain depth-equalising LCA walk and with the document-level oracle.
func TestMeet2AgainstNaiveOnRandomTrees(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		doc := xmltree.Random(r, 70)
		s, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		n := bat.OID(s.Len())
		for trial := 0; trial < 200; trial++ {
			o1 := bat.OID(r.Intn(int(n))) + 1
			o2 := bat.OID(r.Intn(int(n))) + 1
			m, joins, err := Meet2(s, o1, o2)
			if err != nil {
				t.Fatal(err)
			}
			nm, njoins := meet2Naive(s, o1, o2)
			if m != nm {
				t.Fatalf("doc %d: Meet2(%d,%d) = %d, naive = %d", i, o1, o2, m, nm)
			}
			if joins != njoins {
				t.Fatalf("doc %d: Meet2(%d,%d) joins = %d, naive = %d", i, o1, o2, joins, njoins)
			}
			want := doc.LCA(doc.Node(o1), doc.Node(o2))
			if m != want.OID {
				t.Fatalf("doc %d: Meet2(%d,%d) = %d, tree oracle = %d", i, o1, o2, m, want.OID)
			}
			if joins != doc.Dist(doc.Node(o1), doc.Node(o2)) {
				t.Fatalf("doc %d: joins(%d,%d) = %d, tree distance = %d",
					i, o1, o2, joins, doc.Dist(doc.Node(o1), doc.Node(o2)))
			}
		}
	}
}

// TestAncestorSetBaselineAgrees checks the second ablation baseline:
// same meet, never fewer look-ups than the steered algorithm needs
// joins on pairs where the first argument sits below the meet.
func TestAncestorSetBaselineAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	doc := xmltree.Random(r, 80)
	s, err := monetx.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	n := int(s.Len())
	for trial := 0; trial < 500; trial++ {
		o1 := bat.OID(r.Intn(n)) + 1
		o2 := bat.OID(r.Intn(n)) + 1
		m, joins, err := Meet2(s, o1, o2)
		if err != nil {
			t.Fatal(err)
		}
		am, alookups := meet2AncestorSet(s, o1, o2)
		if am != m {
			t.Fatalf("ancestor-set baseline disagrees: %d vs %d", am, m)
		}
		// The baseline walks all of o1's ancestors plus o2's climb; the
		// steered version walks only inside the meet's subtree.
		if alookups < joins-1 {
			t.Fatalf("baseline lookups %d < steered joins %d for (%d,%d)", alookups, joins, o1, o2)
		}
	}
}
