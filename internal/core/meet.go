package core

import (
	"context"
	"fmt"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// Meet computes the meets of an arbitrary collection of input objects
// grouped by path — the procedure meet of the paper's Figure 5, the
// form used to post-process full-text results. groups maps each path to
// the input OIDs at that path (as produced by fulltext.Index.Groups);
// every OID must actually lie on its group's path.
//
// The algorithm "rolls up the tree-shaped schema from the bottom by
// iteratively contracting the offspring of nodes whose only offspring
// are leaves": the path summary is processed deepest-first, so when a
// path is contracted all contributions from below have arrived. A node
// on which at least two live contributions collide is a meet — the
// lowest common ancestor of at least two input objects (the paper's
// extended definition). Its contributions are consumed, so meets are
// minimal by construction and the result is independent of input
// order. Surviving single contributions keep lifting; those that reach
// past the root unmatched are returned separately.
//
// Results are in document order of the meets; unmatched inputs are in
// ascending OID order.
func Meet(s *monetx.Store, groups map[pathsum.PathID][]bat.OID, opt *Options) (results []Result, unmatched []bat.OID, err error) {
	return MeetContext(context.Background(), s, groups, opt) //lint:ncqvet-ignore ctx-less legacy entry point; ctx-aware callers use MeetContext
}

// MeetContext is Meet with cancellation: ctx is checked once per
// contracted level of the roll-up, so a deadline interrupts even one
// huge meet mid-flight.
func MeetContext(ctx context.Context, s *monetx.Store, groups map[pathsum.PathID][]bat.OID, opt *Options) (results []Result, unmatched []bat.OID, err error) {
	sum := s.Summary()
	total := 0
	for p, oids := range groups {
		if int(p) < 0 || int(p) >= sum.Len() {
			return nil, nil, fmt.Errorf("core: Meet: unknown group path %d", p)
		}
		for _, o := range oids {
			if err := checkOID(s, o); err != nil {
				return nil, nil, fmt.Errorf("core: Meet: %w", err)
			}
			if s.PathOf(o) != p {
				return nil, nil, fmt.Errorf("core: Meet: OID %d has path %s, grouped under %s",
					o, s.PathString(o), sum.String(p))
			}
		}
		total += len(oids)
	}
	sc := getScratch(sum.Len())
	defer putScratch(sc)
	for p, oids := range groups {
		for _, o := range oids {
			sc.add(p, o)
		}
	}
	if total < 2 {
		// A single object (or none) can never meet anything.
		return nil, sc.inputs(), nil
	}
	return rollup(ctx, s, sc, opt)
}

// MeetOIDs is a convenience wrapper around Meet for callers holding a
// flat list of OIDs: it buckets them by path first.
func MeetOIDs(s *monetx.Store, oids []bat.OID, opt *Options) ([]Result, []bat.OID, error) {
	return MeetOIDsContext(context.Background(), s, oids, opt) //lint:ncqvet-ignore ctx-less legacy entry point; ctx-aware callers use MeetOIDsContext
}

// MeetOIDsContext is MeetOIDs with cancellation, checked once per
// contracted level of the roll-up.
func MeetOIDsContext(ctx context.Context, s *monetx.Store, oids []bat.OID, opt *Options) ([]Result, []bat.OID, error) {
	for _, o := range oids {
		if err := checkOID(s, o); err != nil {
			return nil, nil, fmt.Errorf("core: MeetOIDs: %w", err)
		}
	}
	sc := getScratch(s.Summary().Len())
	defer putScratch(sc)
	for _, o := range oids {
		sc.add(s.PathOf(o), o)
	}
	if len(oids) < 2 {
		return nil, sc.inputs(), nil
	}
	return rollup(ctx, s, sc, opt)
}
