package core

import (
	"fmt"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// Meet computes the meets of an arbitrary collection of input objects
// grouped by path — the procedure meet of the paper's Figure 5, the
// form used to post-process full-text results. groups maps each path to
// the input OIDs at that path (as produced by fulltext.Index.Groups);
// every OID must actually lie on its group's path.
//
// The algorithm "rolls up the tree-shaped schema from the bottom by
// iteratively contracting the offspring of nodes whose only offspring
// are leaves": the path summary is processed deepest-first, so when a
// path is contracted all contributions from below have arrived. A node
// on which at least two live contributions collide is a meet — the
// lowest common ancestor of at least two input objects (the paper's
// extended definition). Its contributions are consumed, so meets are
// minimal by construction and the result is independent of input
// order. Surviving single contributions keep lifting; those that reach
// past the root unmatched are returned separately.
//
// Results are in document order of the meets; unmatched inputs are in
// ascending OID order.
func Meet(s *monetx.Store, groups map[pathsum.PathID][]bat.OID, opt *Options) (results []Result, unmatched []bat.OID, err error) {
	sum := s.Summary()
	// pending[p] holds, per current ancestor at path p, the live
	// contributions that have arrived so far.
	pending := make(map[pathsum.PathID]map[bat.OID][]contribution, len(groups))
	seen := bat.NewSet()
	for p, oids := range groups {
		if int(p) < 0 || int(p) >= sum.Len() {
			return nil, nil, fmt.Errorf("core: Meet: unknown group path %d", p)
		}
		for _, o := range oids {
			if err := checkOID(s, o); err != nil {
				return nil, nil, fmt.Errorf("core: Meet: %w", err)
			}
			if s.PathOf(o) != p {
				return nil, nil, fmt.Errorf("core: Meet: OID %d has path %s, grouped under %s",
					o, s.PathString(o), sum.String(p))
			}
			if !seen.Add(o) {
				continue // duplicate input
			}
			m := pending[p]
			if m == nil {
				m = make(map[bat.OID][]contribution)
				pending[p] = m
			}
			m[o] = append(m[o], contribution{orig: o, lifts: 0})
		}
	}
	if seen.Len() < 2 {
		// A single object (or none) can never meet anything.
		return nil, seen.Slice(), nil
	}

	maxLift := int32(opt.maxLift())
	unmatchedSet := bat.NewSet()
	// Contract the path summary from the deepest paths upward.
	for _, p := range sum.DeepestFirst() {
		nodes := pending[p]
		if len(nodes) == 0 {
			continue
		}
		delete(pending, p)
		parentPath := sum.Parent(p)
		for cur, contribs := range nodes {
			// A collision of two or more live contributions makes cur a
			// meet (it is the LCA of all of them, since contributions
			// from a common deeper branch would have collided earlier).
			if len(contribs) >= 2 {
				excluded := opt.excluded(p)
				switch {
				case excluded && opt.skipExcluded():
					// Extension: keep lifting past inadmissible paths.
				case excluded:
					continue // meet_P: consumed, not reported
				default:
					if d := opt.maxDistance(); d > 0 && minPairDistance(contribs) > d {
						continue // consumed, beyond the pairwise bound
					}
					results = append(results, emit(s, cur, contribs))
					continue
				}
			}
			// Lift the survivors one level.
			if parentPath == pathsum.Invalid {
				for _, c := range contribs {
					unmatchedSet.Add(c.orig)
				}
				continue
			}
			parent := s.Parent(cur)
			pm := pending[parentPath]
			if pm == nil {
				pm = make(map[bat.OID][]contribution)
				pending[parentPath] = pm
			}
			for _, c := range contribs {
				if maxLift > 0 && c.lifts+1 > maxLift {
					unmatchedSet.Add(c.orig)
					continue
				}
				pm[parent] = append(pm[parent], contribution{orig: c.orig, lifts: c.lifts + 1})
			}
		}
	}
	return SortByDocOrder(results), unmatchedSet.Slice(), nil
}

// MeetOIDs is a convenience wrapper around Meet for callers holding a
// flat list of OIDs: it groups them by path first.
func MeetOIDs(s *monetx.Store, oids []bat.OID, opt *Options) ([]Result, []bat.OID, error) {
	groups := make(map[pathsum.PathID][]bat.OID)
	for _, o := range oids {
		if err := checkOID(s, o); err != nil {
			return nil, nil, fmt.Errorf("core: MeetOIDs: %w", err)
		}
		p := s.PathOf(o)
		groups[p] = append(groups[p], o)
	}
	return Meet(s, groups, opt)
}
