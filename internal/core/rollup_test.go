package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
	"ncq/internal/xmltree"
)

// bigStore builds a deep, wide document so the roll-up has many
// contracted levels to check the context between.
func bigStore(t testing.TB) *monetx.Store {
	t.Helper()
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 40; i++ {
		b.WriteString(fmt.Sprintf("<branch n=\"%d\">", i))
		for d := 0; d < 12; d++ {
			b.WriteString("<level>")
		}
		b.WriteString("<leaf>payload</leaf>")
		for d := 0; d < 12; d++ {
			b.WriteString("</level>")
		}
		b.WriteString("</branch>")
	}
	b.WriteString("</root>")
	doc, err := xmltree.Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := monetx.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMeetContextCancelled pins the satellite contract: an already
// cancelled context interrupts the roll-up of one large member
// mid-meet instead of running it to completion.
func TestMeetContextCancelled(t *testing.T) {
	s := bigStore(t)
	oids := make([]bat.OID, 0, s.Len())
	for o := 1; o <= s.Len(); o++ {
		oids = append(oids, bat.OID(o))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MeetOIDsContext(ctx, s, oids, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeetOIDsContext(cancelled) err = %v, want context.Canceled", err)
	}
	if _, _, err := MeetMultiContext(ctx, s, [][]bat.OID{oids[:10], oids[10:]}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeetMultiContext(cancelled) err = %v, want context.Canceled", err)
	}
	g := map[pathsum.PathID][]bat.OID{}
	for _, o := range oids {
		g[s.PathOf(o)] = append(g[s.PathOf(o)], o)
	}
	if _, _, err := MeetContext(ctx, s, g, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeetContext(cancelled) err = %v, want context.Canceled", err)
	}
}

// TestMeetContextBackgroundMatchesPlain pins that the context variants
// are pure pass-throughs for a live context.
func TestMeetContextBackgroundMatchesPlain(t *testing.T) {
	s := bigStore(t)
	oids := []bat.OID{5, 19, 33, 47, 61}
	a, ua, err := MeetOIDs(s, oids, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, ub, err := MeetOIDsContext(context.Background(), s, oids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(a, b) {
		t.Fatalf("context variant diverged: %+v vs %+v", a, b)
	}
	if len(ua) != len(ub) {
		t.Fatalf("unmatched diverged: %v vs %v", ua, ub)
	}
}

// TestMeetScratchReuse hammers one store through the pooled scratch to
// verify recycled buffers never leak state between queries.
func TestMeetScratchReuse(t *testing.T) {
	s := fig1Store(t)
	want, wantUn, err := MeetOIDs(s, []bat.OID{8, 12, 19}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, gotUn, err := MeetOIDs(s, []bat.OID{8, 12, 19}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want) || len(gotUn) != len(wantUn) {
			t.Fatalf("iteration %d: scratch reuse changed the answer: %+v vs %+v", i, got, want)
		}
		// Interleave a differently shaped query on the same pool.
		if _, _, err := MeetMulti(s, [][]bat.OID{{15}, {15, 17}}, nil); err != nil {
			t.Fatal(err)
		}
	}
}
