package shard

import (
	"math/rand"
	"strings"
	"testing"

	"ncq/internal/xmltree"
)

func collectStream(t *testing.T, src string, budget int64, k int) []*xmltree.Document {
	t.Helper()
	var out []*xmltree.Document
	n, err := SplitStream(strings.NewReader(src), budget, k, func(d *xmltree.Document) error {
		out = append(out, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out) {
		t.Fatalf("SplitStream reported %d shards, emitted %d", n, len(out))
	}
	return out
}

// mergeShards concatenates the shards' top-level children back into
// one document under the shared root.
func mergeShards(t *testing.T, shards []*xmltree.Document) *xmltree.Document {
	t.Helper()
	root := shards[0].Root
	b := xmltree.NewBuilder(root.Label)
	if len(root.Attrs) > 0 {
		b.Root().Attrs = append([]xmltree.Attr(nil), root.Attrs...)
	}
	for _, s := range shards {
		for _, c := range s.Root.Children {
			copyInto(b, b.Root(), c)
		}
	}
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSplitStreamSingleShardEqualsParse(t *testing.T) {
	src := `<bib year="2001"><book><title>A</title></book>  <book><title>B</title></book>some text</bib>`
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	shards := collectStream(t, src, 1<<40, MaxShards)
	if len(shards) != 1 {
		t.Fatalf("huge budget produced %d shards", len(shards))
	}
	if !xmltree.Equal(doc, shards[0]) {
		t.Errorf("single-shard stream differs from Parse:\n%s\nvs\n%s", doc.XMLString(), shards[0].XMLString())
	}
}

func TestSplitStreamReassembles(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 20; i++ {
		doc := xmltree.Random(r, 120)
		src := doc.XMLString()
		parsed, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{1, 64, 512} {
			shards := collectStream(t, src, budget, MaxShards)
			if len(shards) > MaxShards {
				t.Fatalf("doc %d: %d shards exceeds cap", i, len(shards))
			}
			merged := mergeShards(t, shards)
			if !xmltree.Equal(parsed, merged) {
				t.Fatalf("doc %d budget %d: shards do not reassemble to the document", i, budget)
			}
			for j, s := range shards {
				if s.Root.Label != parsed.Root.Label {
					t.Fatalf("doc %d shard %d: root label %q", i, j, s.Root.Label)
				}
			}
		}
	}
}

func TestSplitStreamHonoursCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<c><d>payload payload payload</d></c>")
	}
	sb.WriteString("</r>")
	src := sb.String()
	// budget 1: every top-level boundary wants a cut, but the cap wins.
	for _, k := range []int{1, 2, 5} {
		shards := collectStream(t, src, 1, k)
		if len(shards) != k {
			t.Errorf("k=%d: got %d shards", k, len(shards))
		}
		merged := mergeShards(t, shards)
		if got := len(merged.Root.Children); got != 100 {
			t.Errorf("k=%d: merged children = %d", k, got)
		}
	}
	// A generous budget cuts fewer shards than the cap allows.
	shards := collectStream(t, src, int64(len(src)/2), MaxShards)
	if len(shards) > 3 {
		t.Errorf("byte budget ignored: %d shards", len(shards))
	}
}

func TestSplitStreamAgreesWithSplitOnAnswers(t *testing.T) {
	// The equivalence contract: under ExcludeRoot, sharding must not
	// change which subtrees exist — stream shards hold exactly the same
	// node population as Split shards (possibly partitioned elsewhere).
	r := rand.New(rand.NewSource(31))
	doc := xmltree.Random(r, 200)
	src := doc.XMLString()
	parsed, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	streamed := collectStream(t, src, 128, 8)
	split := Split(parsed, 8)
	count := func(shards []*xmltree.Document) int {
		n := 0
		for _, s := range shards {
			n += s.Len() - 1 // all nodes except the replicated root
		}
		return n
	}
	if count(streamed) != count(split) {
		t.Errorf("node population differs: stream %d vs split %d", count(streamed), count(split))
	}
}

func TestSplitStreamErrors(t *testing.T) {
	emit := func(*xmltree.Document) error { return nil }
	if _, err := SplitStream(strings.NewReader(""), 1, 4, emit); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := SplitStream(strings.NewReader("<a><b></a>"), 1, 4, emit); err == nil {
		t.Error("mismatched tags accepted")
	}
	if _, err := SplitStream(strings.NewReader("<a></a><b></b>"), 1, 4, emit); err == nil {
		t.Error("multiple roots accepted")
	}
	if _, err := SplitStream(strings.NewReader("<a><cdata/></a>"), 1, 4, emit); err == nil {
		t.Error("reserved label accepted")
	}
	if _, err := SplitStream(strings.NewReader("<a><b/>"), 1, 4, emit); err == nil {
		t.Error("unclosed root accepted")
	}
	// An emit error aborts the stream.
	calls := 0
	_, err := SplitStream(strings.NewReader("<a><b/><c/><d/></a>"), 1, 4, func(*xmltree.Document) error {
		calls++
		return errStop
	})
	if err != errStop || calls != 1 {
		t.Errorf("emit abort: err=%v calls=%d", err, calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }
