package shard

import (
	"math/rand"
	"testing"

	"ncq/internal/xmltree"
)

// nodeCount returns the number of nodes in a document.
func nodeCount(d *xmltree.Document) int { return d.Len() }

func TestSplitSingleShardIsCopy(t *testing.T) {
	doc := xmltree.Fig1()
	for _, k := range []int{0, 1} {
		shards := Split(doc, k)
		if len(shards) != 1 {
			t.Fatalf("Split(k=%d) = %d shards, want 1", k, len(shards))
		}
		if !xmltree.Equal(doc, shards[0]) {
			t.Errorf("k=%d: single shard differs from source", k)
		}
		if shards[0].Root == doc.Root {
			t.Error("shard shares nodes with the source document")
		}
	}
}

func TestSplitRootWithOneChild(t *testing.T) {
	doc := xmltree.Fig1() // root "bibliography" has one child "institute"
	shards := Split(doc, 4)
	if len(shards) != 1 {
		t.Fatalf("one top-level child split into %d shards", len(shards))
	}
	if !xmltree.Equal(doc, shards[0]) {
		t.Error("shard differs from source")
	}
}

// TestSplitPartition checks the core contract: every top-level child
// lands in exactly one shard, in document order, under the original
// root label and attributes.
func TestSplitPartition(t *testing.T) {
	doc := xmltree.MustDocument("lib", func(b *xmltree.Builder) {
		b.Root().Attrs = []xmltree.Attr{{Name: "v", Value: "1"}}
		for i := 0; i < 10; i++ {
			rec := b.Element(b.Root(), "rec")
			b.Text(b.Element(rec, "t"), "x")
		}
	})
	shards := Split(doc, 3)
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	total := 0
	for _, s := range shards {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid shard: %v", err)
		}
		if s.Root.Label != "lib" {
			t.Errorf("shard root label %q", s.Root.Label)
		}
		if v, ok := s.Root.Attr("v"); !ok || v != "1" {
			t.Errorf("shard root lost attributes")
		}
		total += len(s.Root.Children)
	}
	if total != 10 {
		t.Errorf("shards hold %d top-level children, want 10", total)
	}
}

// TestSplitBalance: on a uniform document the node counts of the
// shards must be close to equal.
func TestSplitBalance(t *testing.T) {
	doc := xmltree.MustDocument("lib", func(b *xmltree.Builder) {
		for i := 0; i < 64; i++ {
			rec := b.Element(b.Root(), "rec")
			b.Text(b.Element(rec, "t"), "x")
		}
	})
	shards := Split(doc, 4)
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	min, max := doc.Len(), 0
	for _, s := range shards {
		if n := nodeCount(s); true {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
	}
	if max > min*2 {
		t.Errorf("unbalanced shards: min %d, max %d nodes", min, max)
	}
}

// TestSplitOversizedChild: a single huge subtree becomes its own shard
// instead of dragging its neighbours along.
func TestSplitOversizedChild(t *testing.T) {
	doc := xmltree.MustDocument("lib", func(b *xmltree.Builder) {
		big := b.Element(b.Root(), "big")
		for i := 0; i < 100; i++ {
			b.Text(b.Element(big, "e"), "x")
		}
		for i := 0; i < 6; i++ {
			b.Text(b.Element(b.Root(), "small"), "y")
		}
	})
	shards := Split(doc, 3)
	if len(shards) < 2 {
		t.Fatalf("got %d shards", len(shards))
	}
	if got := shards[0].Root.Children[0].Label; got != "big" {
		t.Fatalf("first shard starts with %q", got)
	}
	if n := len(shards[0].Root.Children); n != 1 {
		t.Errorf("oversized child shares its shard with %d siblings", n-1)
	}
}

// TestSplitReassembles: concatenating the shards' children in order
// reproduces the original document.
func TestSplitReassembles(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		doc := xmltree.Random(r, 300)
		k := 1 + r.Intn(6)
		shards := Split(doc, k)
		if len(shards) > k || len(shards) == 0 {
			t.Fatalf("Split(k=%d) = %d shards", k, len(shards))
		}
		b := xmltree.NewBuilder(doc.Root.Label)
		for _, s := range shards {
			if err := s.Validate(); err != nil {
				t.Fatalf("invalid shard: %v", err)
			}
			for _, c := range s.Root.Children {
				copyInto(b, b.Root(), c)
			}
		}
		merged, err := b.Done()
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(doc, merged) {
			t.Fatalf("trial %d (k=%d): reassembled shards differ from source", trial, k)
		}
	}
}

func TestSplitCapsShardCount(t *testing.T) {
	doc := xmltree.MustDocument("lib", func(b *xmltree.Builder) {
		for i := 0; i < 2*MaxShards; i++ {
			b.Element(b.Root(), "rec")
		}
	})
	if n := len(Split(doc, 10*MaxShards)); n != MaxShards {
		t.Errorf("got %d shards, want the %d cap", n, MaxShards)
	}
}
