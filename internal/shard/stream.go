package shard

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"ncq/internal/xmltree"
)

// SplitStream parses an XML document from r and splits it into at most
// k shards as the parse streams, emitting each completed shard before
// the next one is built. Unlike Parse-then-Split, at most one shard's
// tree is in memory at a time, so a multi-gigabyte upload costs one
// shard of memory, not the whole document.
//
// Boundaries follow the same rule as Split — cuts happen only between
// top-level children of the root, each shard keeping the root's label
// and attributes — but are decided by input bytes instead of node
// counts: a shard is cut once it spans at least budget bytes of input.
// The final shard takes everything remaining, so no more than k shards
// are ever emitted. The emit callback receives shards in document
// order; a non-nil error from it aborts the parse.
//
// SplitStream returns the number of shards emitted. Answer equivalence
// matches Split: with ExcludeRoot set, the union of per-shard answers
// equals the unsharded document's answers.
func SplitStream(r io.Reader, budget int64, k int, emit func(*xmltree.Document) error) (int, error) {
	if k > MaxShards {
		k = MaxShards
	}
	if k < 1 {
		k = 1
	}
	if budget < 1 {
		budget = 1
	}
	dec := xml.NewDecoder(r)
	var (
		rootLabel  string
		rootAttrs  []xmltree.Attr
		b          *xmltree.Builder
		stack      []*xmltree.Node
		pending    strings.Builder
		emitted    int
		shardStart int64
		sawRoot    bool
		rootClosed bool
	)
	newShard := func() {
		b = xmltree.NewBuilder(rootLabel)
		if len(rootAttrs) > 0 {
			b.Root().Attrs = append([]xmltree.Attr(nil), rootAttrs...)
		}
		stack = append(stack[:0], b.Root())
		shardStart = dec.InputOffset()
	}
	flushText := func() {
		if pending.Len() == 0 {
			return
		}
		text := strings.TrimSpace(pending.String())
		pending.Reset()
		if text == "" {
			return
		}
		b.Text(stack[len(stack)-1], text)
	}
	finish := func() error {
		d, err := b.Done()
		if err != nil {
			return fmt.Errorf("shard: stream: %w", err)
		}
		emitted++
		return emit(d)
	}
	// maybeCut closes the current shard when it has consumed its byte
	// budget. Called only at a top-level boundary (every child of the
	// root is complete), and never once only the final shard remains.
	maybeCut := func() error {
		if emitted >= k-1 || len(b.Root().Children) == 0 {
			return nil
		}
		if dec.InputOffset()-shardStart < budget {
			return nil
		}
		if err := finish(); err != nil {
			return err
		}
		newShard()
		return nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return emitted, fmt.Errorf("shard: stream: parse at byte %d: %w", dec.InputOffset(), err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			label := t.Name.Local
			if label == xmltree.CDataLabel {
				return emitted, fmt.Errorf("shard: stream: parse at byte %d: element uses reserved label %q", dec.InputOffset(), xmltree.CDataLabel)
			}
			attrs := make([]xmltree.Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				attrs = append(attrs, xmltree.Attr{Name: a.Name.Local, Value: a.Value})
			}
			if !sawRoot {
				sawRoot = true
				rootLabel, rootAttrs = label, attrs
				newShard()
				continue
			}
			if rootClosed {
				return emitted, fmt.Errorf("shard: stream: parse at byte %d: multiple root elements", dec.InputOffset())
			}
			flushText()
			if len(stack) == 1 {
				if err := maybeCut(); err != nil {
					return emitted, err
				}
			}
			n := b.Element(stack[len(stack)-1], label, attrs...)
			stack = append(stack, n)
		case xml.EndElement:
			if !sawRoot || rootClosed {
				return emitted, fmt.Errorf("shard: stream: unbalanced end element %s", t.Name.Local)
			}
			flushText()
			if len(stack) == 1 {
				rootClosed = true
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 1 {
				if err := maybeCut(); err != nil {
					return emitted, err
				}
			}
		case xml.CharData:
			if sawRoot && !rootClosed {
				pending.Write(t)
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Outside the paper's data model; skipped (as in Parse).
		}
	}
	if !sawRoot {
		return emitted, fmt.Errorf("shard: stream: empty document")
	}
	if !rootClosed {
		return emitted, fmt.Errorf("shard: stream: %d unclosed element(s)", len(stack))
	}
	if err := finish(); err != nil {
		return emitted, err
	}
	return emitted, nil
}
