// Package shard splits one large XML document into several smaller
// ones so that a nearest concept query — whose cost is dominated by
// the per-document full-text scan (Figure 6 of the paper) — can fan
// out over the shards in parallel instead of serialising behind one
// tree.
//
// The split happens at the top-level children of the root: each shard
// is a new document with the same root element (label and attributes
// preserved) holding a contiguous run of the original root's children.
// Splitting anywhere deeper would move nodes away from their ancestor
// chain and change meet results; at the top level the only concepts a
// shard cannot represent are meets at the document root itself, which
// large-corpus queries exclude anyway (the paper's ExcludeRoot, used
// throughout its DBLP case study). Contiguity preserves document order
// inside every shard, so per-shard answers and OIDs stay meaningful.
//
// Shards are balanced by node count with a greedy contiguous
// partition: each shard takes children until it reaches its fair share
// of the nodes still unassigned. A single oversized subtree therefore
// becomes a shard of its own rather than dragging neighbours along.
package shard

import (
	"ncq/internal/xmltree"
)

// MaxShards bounds how many shards one document may be split into;
// beyond this the per-shard bookkeeping outweighs any fan-out win.
const MaxShards = 64

// Split partitions doc into at most k shards at the top-level children
// of the root. It returns freshly built documents — doc itself is
// never modified, and the shards share no nodes with it. The result
// has fewer than k shards when the root has fewer than k children; a
// document whose root has at most one child (or k <= 1) yields a
// single shard that is a structural copy of doc.
func Split(doc *xmltree.Document, k int) []*xmltree.Document {
	children := doc.Root.Children
	if k > MaxShards {
		k = MaxShards
	}
	if k <= 1 || len(children) <= 1 {
		return []*xmltree.Document{clone(doc.Root, children)}
	}
	if k > len(children) {
		k = len(children)
	}

	// Subtree weights from the preorder intervals: O(1) per child.
	weights := make([]int, len(children))
	remaining := 0
	for i, c := range children {
		weights[i] = int(c.End-c.OID) + 1
		remaining += weights[i]
	}

	var shards []*xmltree.Document
	i := 0
	for j := 0; j < k && i < len(children); j++ {
		left := k - j // shards still to fill, this one included
		target := (remaining + left - 1) / left
		load := weights[i]
		start := i
		i++
		// Keep taking children while staying within the fair share,
		// but always leave at least one child per remaining shard.
		for i < len(children)-(left-1) && load+weights[i] <= target {
			load += weights[i]
			i++
		}
		if j == k-1 { // the last shard takes everything left
			i = len(children)
		}
		remaining -= load
		shards = append(shards, clone(doc.Root, children[start:i]))
	}
	return shards
}

// clone builds a new document with root's label and attributes whose
// children are deep copies of the given subtrees.
func clone(root *xmltree.Node, children []*xmltree.Node) *xmltree.Document {
	b := xmltree.NewBuilder(root.Label)
	if len(root.Attrs) > 0 {
		b.Root().Attrs = append([]xmltree.Attr(nil), root.Attrs...)
	}
	for _, c := range children {
		copyInto(b, b.Root(), c)
	}
	d, err := b.Done()
	if err != nil {
		// The source document already passed the builder's invariants;
		// a copy of it cannot violate them.
		panic(err)
	}
	return d
}

func copyInto(b *xmltree.Builder, parent *xmltree.Node, n *xmltree.Node) {
	if n.Kind == xmltree.CData {
		b.Text(parent, n.Text)
		return
	}
	var attrs []xmltree.Attr
	if len(n.Attrs) > 0 {
		attrs = append(attrs, n.Attrs...)
	}
	el := b.Element(parent, n.Label, attrs...)
	for _, c := range n.Children {
		copyInto(b, el, c)
	}
}
