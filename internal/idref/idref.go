// Package idref implements the paper's future-work extension
// (Section 7): incorporating ID/IDREF references, which "may break the
// tree structure of the database, into the search process".
//
// A Graph augments a Monet XML store with the reference edges induced
// by ID/IDREF attributes. The nearest concept of two nodes generalises
// from the lowest common ancestor to the node minimising the summed
// shortest-path distance over the combined edge set (tree edges in both
// directions plus reference edges in both directions) — the "variant of
// nearest neighbor search" the paper anticipates. Because references
// can create cycles, the search is a pair of breadth-first traversals
// with visited bookkeeping, as the paper warns is necessary.
package idref

import (
	"fmt"
	"strings"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// Graph is a store augmented with reference edges.
type Graph struct {
	store *monetx.Store
	ids   map[string]bat.OID    // ID value -> declaring element
	refs  map[bat.OID][]bat.OID // element -> referenced elements
	rrefs map[bat.OID][]bat.OID // element -> referring elements
}

// New scans the store's attribute relations for idAttr ("id") and
// refAttr ("idref") attributes and materialises the reference edges.
// A refAttr value may hold several whitespace-separated IDs (IDREFS).
// Dangling references are reported as an error, duplicated IDs too.
func New(store *monetx.Store, idAttr, refAttr string) (*Graph, error) {
	g := &Graph{
		store: store,
		ids:   make(map[string]bat.OID),
		refs:  make(map[bat.OID][]bat.OID),
		rrefs: make(map[bat.OID][]bat.OID),
	}
	sum := store.Summary()
	// Pass 1: collect IDs.
	for _, pid := range sum.AllPaths() {
		if sum.Kind(pid) != pathsum.Attr || sum.Label(pid) != idAttr {
			continue
		}
		rel := store.Strings(pid)
		for i := 0; i < rel.Len(); i++ {
			owner, id := rel.Head(i), rel.Tail(i)
			if prev, dup := g.ids[id]; dup {
				return nil, fmt.Errorf("idref: ID %q declared by both node %d and node %d", id, prev, owner)
			}
			g.ids[id] = owner
		}
	}
	// Pass 2: resolve references.
	for _, pid := range sum.AllPaths() {
		if sum.Kind(pid) != pathsum.Attr || sum.Label(pid) != refAttr {
			continue
		}
		rel := store.Strings(pid)
		for i := 0; i < rel.Len(); i++ {
			owner := rel.Head(i)
			for _, id := range strings.Fields(rel.Tail(i)) {
				target, ok := g.ids[id]
				if !ok {
					return nil, fmt.Errorf("idref: node %d references undeclared ID %q", owner, id)
				}
				g.refs[owner] = append(g.refs[owner], target)
				g.rrefs[target] = append(g.rrefs[target], owner)
			}
		}
	}
	return g, nil
}

// Refs returns the number of reference edges in the graph.
func (g *Graph) Refs() int {
	n := 0
	for _, ts := range g.refs {
		n += len(ts)
	}
	return n
}

// Lookup resolves an ID value to its declaring element.
func (g *Graph) Lookup(id string) (bat.OID, bool) {
	o, ok := g.ids[id]
	return o, ok
}

// neighbors appends all nodes one edge away from o: the tree parent and
// children plus outgoing and incoming references.
func (g *Graph) neighbors(o bat.OID, buf []bat.OID) []bat.OID {
	if p := g.store.Parent(o); p != bat.Nil {
		buf = append(buf, p)
	}
	buf = append(buf, g.store.Children(o)...)
	buf = append(buf, g.refs[o]...)
	buf = append(buf, g.rrefs[o]...)
	return buf
}

// bfs returns the distance from src to every reachable node.
func (g *Graph) bfs(src bat.OID) map[bat.OID]int {
	dist := map[bat.OID]int{src: 0}
	frontier := []bat.OID{src}
	var buf []bat.OID
	for len(frontier) > 0 {
		var next []bat.OID
		for _, o := range frontier {
			buf = g.neighbors(o, buf[:0])
			for _, n := range buf {
				if _, seen := dist[n]; !seen {
					dist[n] = dist[o] + 1
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Meet returns the nearest concept of o1 and o2 on the reference-
// augmented graph: the node m minimising dist(o1,m) + dist(o2,m),
// which is the midpoint set of a shortest o1-o2 path. Ties resolve to
// the smallest OID so the result is deterministic. The returned
// distance is dist(o1,m) + dist(o2,m), i.e. the shortest-path length
// between the two inputs.
func (g *Graph) Meet(o1, o2 bat.OID) (m bat.OID, dist int, err error) {
	if !g.store.ValidOID(o1) || !g.store.ValidOID(o2) {
		return bat.Nil, 0, fmt.Errorf("idref: invalid OID pair (%d,%d)", o1, o2)
	}
	d1 := g.bfs(o1)
	d2 := g.bfs(o2)
	best := bat.Nil
	bestSum := -1
	for n, a := range d1 {
		b, ok := d2[n]
		if !ok {
			continue
		}
		if bestSum < 0 || a+b < bestSum || (a+b == bestSum && n < best) {
			best, bestSum = n, a+b
		}
	}
	if bestSum < 0 {
		return bat.Nil, 0, fmt.Errorf("idref: nodes %d and %d are not connected", o1, o2)
	}
	return best, bestSum, nil
}

// Dist returns the shortest-path distance between o1 and o2 on the
// augmented graph.
func (g *Graph) Dist(o1, o2 bat.OID) (int, error) {
	_, d, err := g.Meet(o1, o2)
	return d, err
}

// TreeOnlyMeet computes the plain tree meet for comparison, so callers
// can show how references shorten the nearest-concept distance.
func (g *Graph) TreeOnlyMeet(o1, o2 bat.OID) (bat.OID, int, error) {
	if !g.store.ValidOID(o1) || !g.store.ValidOID(o2) {
		return bat.Nil, 0, fmt.Errorf("idref: invalid OID pair (%d,%d)", o1, o2)
	}
	// Walk up by depth, exactly like core.Meet2's naive form; kept local
	// to avoid a dependency cycle with package core.
	a, b, joins := o1, o2, 0
	for g.store.Depth(a) > g.store.Depth(b) {
		a = g.store.Parent(a)
		joins++
	}
	for g.store.Depth(b) > g.store.Depth(a) {
		b = g.store.Parent(b)
		joins++
	}
	for a != b {
		a, b = g.store.Parent(a), g.store.Parent(b)
		joins += 2
	}
	return a, joins, nil
}
