package idref

import (
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

// refDoc builds a bibliography with cross-references:
//
//	o1 biblio
//	o2   article[id=a1]          o5 article[id=a2, idref=a1]
//	o3     title o4 cdata        o6   title o7 cdata
//	o8   citations[idref="a1 a2"]
func refDoc(t *testing.T) (*monetx.Store, *Graph) {
	t.Helper()
	doc := xmltree.MustDocument("biblio", func(b *xmltree.Builder) {
		a1 := b.Element(b.Root(), "article", xmltree.Attr{Name: "id", Value: "a1"})
		t1 := b.Element(a1, "title")
		b.Text(t1, "First")
		a2 := b.Element(b.Root(), "article",
			xmltree.Attr{Name: "id", Value: "a2"}, xmltree.Attr{Name: "idref", Value: "a1"})
		t2 := b.Element(a2, "title")
		b.Text(t2, "Second")
		b.Element(b.Root(), "citations", xmltree.Attr{Name: "idref", Value: "a1 a2"})
	})
	store, err := monetx.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(store, "id", "idref")
	if err != nil {
		t.Fatal(err)
	}
	return store, g
}

func TestNewCollectsEdges(t *testing.T) {
	_, g := refDoc(t)
	if g.Refs() != 3 {
		t.Errorf("Refs = %d, want 3 (a2->a1, citations->a1, citations->a2)", g.Refs())
	}
	if o, ok := g.Lookup("a1"); !ok || o != 2 {
		t.Errorf("Lookup(a1) = (%d,%v), want (2,true)", o, ok)
	}
	if _, ok := g.Lookup("nope"); ok {
		t.Error("Lookup of unknown ID succeeded")
	}
}

func TestNewErrors(t *testing.T) {
	dup := xmltree.MustDocument("r", func(b *xmltree.Builder) {
		b.Element(b.Root(), "a", xmltree.Attr{Name: "id", Value: "x"})
		b.Element(b.Root(), "b", xmltree.Attr{Name: "id", Value: "x"})
	})
	store, err := monetx.Load(dup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(store, "id", "idref"); err == nil {
		t.Error("duplicate ID accepted")
	}
	dangling := xmltree.MustDocument("r", func(b *xmltree.Builder) {
		b.Element(b.Root(), "a", xmltree.Attr{Name: "idref", Value: "ghost"})
	})
	store2, err := monetx.Load(dangling)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(store2, "id", "idref"); err == nil {
		t.Error("dangling reference accepted")
	}
}

func TestMeetUsesReferenceShortcut(t *testing.T) {
	store, g := refDoc(t)
	// Tree-only: the two title cdata nodes (o4 under a1, o7 under a2)
	// are 6 edges apart via the root.
	_, treeDist, err := g.TreeOnlyMeet(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if treeDist != 6 {
		t.Fatalf("tree distance = %d, want 6", treeDist)
	}
	// With the a2->a1 reference the articles are adjacent: o4-o3-o2,
	// o2-o5 (ref), o5-o6-o7: distance 5.
	m, dist, err := g.Meet(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if dist != 5 {
		t.Errorf("graph distance = %d, want 5 (reference shortcut)", dist)
	}
	if m == bat.Nil {
		t.Error("no meeting node")
	}
	if !(m == 2 || m == 5) { // a midpoint lies on one of the articles
		t.Errorf("meet = o%d, want one of the articles (o2/o5)", m)
	}
	_ = store
}

func TestMeetIdenticalNodes(t *testing.T) {
	_, g := refDoc(t)
	m, d, err := g.Meet(4, 4)
	if err != nil || m != 4 || d != 0 {
		t.Errorf("Meet(o4,o4) = (%d,%d,%v), want (4,0,nil)", m, d, err)
	}
}

func TestMeetErrors(t *testing.T) {
	_, g := refDoc(t)
	if _, _, err := g.Meet(0, 4); err == nil {
		t.Error("invalid OID accepted")
	}
	if _, _, err := g.TreeOnlyMeet(4, 99); err == nil {
		t.Error("TreeOnlyMeet invalid OID accepted")
	}
	if _, err := g.Dist(1, 99); err == nil {
		t.Error("Dist invalid OID accepted")
	}
}

func TestCyclicReferencesTerminate(t *testing.T) {
	doc := xmltree.MustDocument("r", func(b *xmltree.Builder) {
		b.Element(b.Root(), "a",
			xmltree.Attr{Name: "id", Value: "x"}, xmltree.Attr{Name: "idref", Value: "y"})
		b.Element(b.Root(), "b",
			xmltree.Attr{Name: "id", Value: "y"}, xmltree.Attr{Name: "idref", Value: "x"})
	})
	store, err := monetx.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(store, "id", "idref")
	if err != nil {
		t.Fatal(err)
	}
	// a (o2) and b (o3) are mutually referencing: distance 1 despite
	// the cycle; the BFS must terminate.
	m, d, err := g.Meet(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("distance = %d, want 1", d)
	}
	if m != 2 && m != 3 {
		t.Errorf("meet = %d", m)
	}
	// Distance agreement with Dist.
	if dd, err := g.Dist(2, 3); err != nil || dd != 1 {
		t.Errorf("Dist = (%d,%v)", dd, err)
	}
}

func TestGraphDistNeverExceedsTreeDist(t *testing.T) {
	store, g := refDoc(t)
	n := store.Len()
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			_, td, err := g.TreeOnlyMeet(bat.OID(a), bat.OID(b))
			if err != nil {
				t.Fatal(err)
			}
			gd, err := g.Dist(bat.OID(a), bat.OID(b))
			if err != nil {
				t.Fatal(err)
			}
			if gd > td {
				t.Errorf("graph dist(%d,%d) = %d exceeds tree dist %d", a, b, gd, td)
			}
		}
	}
}
