//go:build !race

package fulltext

// Built out under -race: the detector's instrumentation changes
// allocation counts.

import "testing"

// TestSearchSingleAlloc pins the core claim of the compact postings:
// a warm single-token search is a slice view plus exactly one copy —
// the returned []Hit — however many associations the token has.
func TestSearchSingleAlloc(t *testing.T) {
	idx := fig1Index(t)
	idx.Search("1999") // warm
	got := testing.AllocsPerRun(200, func() {
		if len(idx.Search("1999")) != 2 {
			t.Fatal("unexpected hit count")
		}
	})
	if got > 1 {
		t.Errorf("warm single-token Search allocates %.0f/op, pinned at <= 1", got)
	}
}

// TestScanAllocsSteadyState pins the pooled-bitset scan: once the pool
// is warm, a predicate query that matches nothing allocates nothing at
// all, and a matching one allocates only its result slice — O(results),
// like the posting-list searches.
func TestScanAllocsSteadyState(t *testing.T) {
	idx := fig1Index(t)
	idx.SearchFunc(func(string) bool { return false }) // warm the pool
	got := testing.AllocsPerRun(200, func() {
		if idx.SearchFunc(func(string) bool { return false }) != nil {
			t.Fatal("unexpected hits")
		}
	})
	// Steady state is 0; allow one re-allocation in case a GC empties
	// the pool mid-run.
	if got > 1 {
		t.Errorf("warm no-match scan allocates %.0f/op, pinned at <= 1", got)
	}
	got = testing.AllocsPerRun(200, func() {
		if len(idx.SearchFunc(func(v string) bool { return v == "1999" })) != 2 {
			t.Fatal("unexpected hit count")
		}
	})
	// The appends growing the two-hit result slice, plus pool headroom.
	if got > 3 {
		t.Errorf("warm matching scan allocates %.0f/op, pinned at <= 3", got)
	}
}
