//go:build !race

package fulltext

// Built out under -race: the detector's instrumentation changes
// allocation counts.

import "testing"

// TestSearchSingleAlloc pins the core claim of the compact postings:
// a warm single-token search is a slice view plus exactly one copy —
// the returned []Hit — however many associations the token has.
func TestSearchSingleAlloc(t *testing.T) {
	idx := fig1Index(t)
	idx.Search("1999") // warm
	got := testing.AllocsPerRun(200, func() {
		if len(idx.Search("1999")) != 2 {
			t.Fatal("unexpected hit count")
		}
	})
	if got > 1 {
		t.Errorf("warm single-token Search allocates %.0f/op, pinned at <= 1", got)
	}
}
