package fulltext

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

func fig1Index(t *testing.T) *Index {
	t.Helper()
	s, err := monetx.Load(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	return New(s)
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hacking & RSI", []string{"hacking", "rsi"}},
		{"How to Hack", []string{"how", "to", "hack"}},
		{"1999", []string{"1999"}},
		{"BB99", []string{"bb99"}},
		{"", nil},
		{"!!!", nil},
		{"a-b_c", []string{"a", "b", "c"}},
		{"Ben", []string{"ben"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSearchPaperExamples(t *testing.T) {
	idx := fig1Index(t)
	// Paper Section 3.1: full-text "Ben" yields ⟨o6,"Ben"⟩.
	hits := idx.Search("Ben")
	if len(hits) != 1 || hits[0].Owner != 6 || hits[0].Value != "Ben" {
		t.Errorf(`Search("Ben") = %v, want owner o6`, hits)
	}
	// "Bit" yields ⟨o8,"Bit"⟩.
	hits = idx.Search("Bit")
	if len(hits) != 1 || hits[0].Owner != 8 {
		t.Errorf(`Search("Bit") = %v, want owner o8`, hits)
	}
	// "1999" yields ⟨o12,"1999"⟩ and ⟨o19,"1999"⟩.
	hits = idx.Search("1999")
	if len(hits) != 2 || hits[0].Owner != 12 || hits[1].Owner != 19 {
		t.Errorf(`Search("1999") = %v, want owners o12,o19`, hits)
	}
	// "Bob" and "Byte" both resolve to the same association ⟨o15,"Bob Byte"⟩.
	for _, term := range []string{"Bob", "Byte"} {
		hits = idx.Search(term)
		if len(hits) != 1 || hits[0].Owner != 15 || hits[0].Value != "Bob Byte" {
			t.Errorf("Search(%q) = %v, want owner o15", term, hits)
		}
	}
}

func TestSearchCaseInsensitive(t *testing.T) {
	idx := fig1Index(t)
	for _, term := range []string{"ben", "BEN", "Ben"} {
		if hits := idx.Search(term); len(hits) != 1 || hits[0].Owner != 6 {
			t.Errorf("Search(%q) = %v", term, hits)
		}
	}
}

func TestSearchAttributeValues(t *testing.T) {
	idx := fig1Index(t)
	hits := idx.Search("BB99")
	if len(hits) != 1 || hits[0].Owner != 3 {
		t.Errorf(`Search("BB99") = %v, want the owning article o3`, hits)
	}
}

func TestSearchMisses(t *testing.T) {
	idx := fig1Index(t)
	if hits := idx.Search("absent"); len(hits) != 0 {
		t.Errorf("Search(absent) = %v", hits)
	}
	if hits := idx.Search(""); len(hits) != 0 {
		t.Errorf("Search(empty) = %v", hits)
	}
	if hits := idx.Search("   "); len(hits) != 0 {
		t.Errorf("Search(blank) = %v", hits)
	}
}

func TestSearchPhrase(t *testing.T) {
	idx := fig1Index(t)
	hits := idx.Search("Bob Byte")
	if len(hits) != 1 || hits[0].Owner != 15 {
		t.Errorf(`Search("Bob Byte") = %v`, hits)
	}
	// Phrase whose tokens exist but not contiguously in one value.
	if hits := idx.Search("Bob Hack"); len(hits) != 0 {
		t.Errorf(`Search("Bob Hack") = %v, want none`, hits)
	}
}

func TestSearchSubstring(t *testing.T) {
	idx := fig1Index(t)
	// The paper's `contains` is substring-based: 'Hack' occurs in two titles.
	hits := idx.SearchSubstring("Hack")
	if len(hits) != 2 || hits[0].Owner != 10 || hits[1].Owner != 17 {
		t.Errorf(`SearchSubstring("Hack") = %v, want owners o10,o17`, hits)
	}
	// Case sensitive.
	if hits := idx.SearchSubstring("hack"); len(hits) != 0 {
		t.Errorf(`SearchSubstring("hack") = %v, want none (case-sensitive)`, hits)
	}
	if hits := idx.SearchSubstring(""); hits != nil {
		t.Errorf("SearchSubstring(empty) = %v", hits)
	}
}

func TestSearchFunc(t *testing.T) {
	idx := fig1Index(t)
	hits := idx.SearchFunc(func(v string) bool { return strings.HasPrefix(v, "B") })
	// "Bit", "Ben", "Bob Byte", "BB99", "BK99".
	if len(hits) != 5 {
		t.Errorf("SearchFunc(prefix B) returned %d hits: %v", len(hits), hits)
	}
}

func TestOwnersDedup(t *testing.T) {
	hits := []Hit{{Owner: 5}, {Owner: 3}, {Owner: 5}}
	if got := Owners(hits); !reflect.DeepEqual(got, []bat.OID{3, 5}) {
		t.Errorf("Owners = %v, want [3 5]", got)
	}
}

func TestGroups(t *testing.T) {
	idx := fig1Index(t)
	// "1999" hits o12 and o19, both at the same year/cdata path.
	groups := idx.Groups(idx.Search("1999"))
	if len(groups) != 1 {
		t.Fatalf("Groups = %v, want one path group", groups)
	}
	for p, oids := range groups {
		if got := idx.Store().Summary().String(p); got != "/bibliography/institute/article/year/cdata" {
			t.Errorf("group path = %s", got)
		}
		if !reflect.DeepEqual(oids, []bat.OID{12, 19}) {
			t.Errorf("group OIDs = %v, want [12 19]", oids)
		}
	}
	// "Hack" substring hits two different title cdata nodes → one group;
	// adding "Ben" (different path) makes two groups.
	mixed := append(idx.SearchSubstring("Hack"), idx.Search("Ben")...)
	groups = idx.Groups(mixed)
	if len(groups) != 2 {
		t.Errorf("Groups(mixed) has %d path groups, want 2", len(groups))
	}
}

func TestIndexMatchesNaiveScan(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		doc := xmltree.Random(r, 80)
		store, err := monetx.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		idx := New(store)
		// Collect every string in the document, then check that token
		// search through the index equals a naive substring-token scan.
		terms := map[string]bool{}
		doc.Walk(func(n *xmltree.Node) bool {
			for _, tok := range Tokenize(n.Text) {
				terms[tok] = true
			}
			for _, a := range n.Attrs {
				for _, tok := range Tokenize(a.Value) {
					terms[tok] = true
				}
			}
			return true
		})
		for term := range terms {
			got := Owners(idx.Search(term))
			want := bat.NewSet()
			doc.Walk(func(n *xmltree.Node) bool {
				for _, tok := range Tokenize(n.Text) {
					if tok == term {
						want.Add(n.OID)
					}
				}
				for _, a := range n.Attrs {
					for _, tok := range Tokenize(a.Value) {
						if tok == term {
							want.Add(n.OID)
						}
					}
				}
				return true
			})
			if !reflect.DeepEqual(got, want.Slice()) {
				t.Fatalf("doc %d term %q: index %v, naive %v", i, term, got, want.Slice())
			}
		}
	}
}

func TestTermsCount(t *testing.T) {
	idx := fig1Index(t)
	if idx.Terms() == 0 {
		t.Error("index has no terms")
	}
}
