package fulltext

import (
	"testing"
	"unicode"
)

// FuzzTokenize checks the tokenizer's postconditions on arbitrary
// input: tokens are non-empty, lower-case, and consist of letters and
// digits only.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{
		"Hacking & RSI", "1999", "", "!!!", "a-b_c",
		"Bob Byte", "ÄÖÜ straße", "日本語 text", "\x00\xff",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		for _, tok := range Tokenize(in) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator %q", tok, r)
				}
				if unicode.IsUpper(r) {
					t.Fatalf("token %q not lower-cased", tok)
				}
			}
		}
	})
}
