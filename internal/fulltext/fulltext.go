// Package fulltext provides the full-text search engine the paper
// combines with the meet operator ("it can serve as a sensible and
// valuable add-on to an already existing search engine for
// semi-structured or XML data", Section 5).
//
// The engine indexes every string association of a Monet XML store —
// the character data of cdata nodes and all attribute values — in an
// inverted index keyed by lower-cased token. Substring search, the
// semantics of the paper's `contains` predicate, is answered by a scan
// over the path-partitioned string relations.
//
// A hit identifies the node carrying the string: the cdata node's OID
// for character data, the owning element's OID for attribute values.
// These owner OIDs are exactly the inputs the meet operator expects,
// and Groups partitions them by element path — the R_1 … R_n relations
// of the paper's Figure 5.
package fulltext

import (
	"sort"
	"strings"
	"unicode"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// Hit is one matched string association.
type Hit struct {
	Owner bat.OID        // node carrying the string (cdata node or attribute owner)
	Path  pathsum.PathID // the attribute path of the string association
	Value string         // the full stored string
}

// Index is an inverted index over all string associations of a store.
type Index struct {
	store *monetx.Store
	post  map[string][]Hit // token -> hits, in index-build order
}

// Tokenize splits s into lower-cased maximal runs of letters and
// digits. "Hacking & RSI" tokenizes to ["hacking", "rsi"].
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// New builds the inverted index for the store by scanning every string
// relation in the path summary's catalogue.
func New(store *monetx.Store) *Index {
	idx := &Index{store: store, post: make(map[string][]Hit)}
	sum := store.Summary()
	for _, pid := range sum.AllPaths() {
		if sum.Kind(pid) != pathsum.Attr {
			continue
		}
		rel := store.Strings(pid)
		if rel == nil {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			owner, value := rel.Head(i), rel.Tail(i)
			seen := map[string]bool{}
			for _, tok := range Tokenize(value) {
				if seen[tok] {
					continue
				}
				seen[tok] = true
				idx.post[tok] = append(idx.post[tok], Hit{Owner: owner, Path: pid, Value: value})
			}
		}
	}
	return idx
}

// Store returns the store the index was built over.
func (idx *Index) Store() *monetx.Store { return idx.store }

// Terms returns the number of distinct tokens in the index.
func (idx *Index) Terms() int { return len(idx.post) }

// Search returns the associations containing term as a token,
// case-insensitively. The result is ordered by owner OID.
func (idx *Index) Search(term string) []Hit {
	toks := Tokenize(term)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return sortHits(append([]Hit(nil), idx.post[toks[0]]...))
	}
	// Multi-token term: all tokens must occur in the same association;
	// verify the full phrase by substring on the candidates.
	cand := idx.post[toks[0]]
	var out []Hit
	for _, h := range cand {
		if containsFold(h.Value, term) {
			out = append(out, h)
		}
	}
	return sortHits(out)
}

// SearchSubstring returns the associations whose value contains sub as
// a case-sensitive substring — the semantics of the paper's
// `contains` predicate ("o & contains 'Bit'"). It scans the string
// relations directly.
func (idx *Index) SearchSubstring(sub string) []Hit {
	if sub == "" {
		return nil
	}
	return idx.scan(func(v string) bool { return strings.Contains(v, sub) })
}

// SearchFunc returns the associations whose value satisfies pred.
func (idx *Index) SearchFunc(pred func(string) bool) []Hit {
	return idx.scan(pred)
}

func (idx *Index) scan(pred func(string) bool) []Hit {
	sum := idx.store.Summary()
	var out []Hit
	for _, pid := range sum.AllPaths() {
		if sum.Kind(pid) != pathsum.Attr {
			continue
		}
		rel := idx.store.Strings(pid)
		if rel == nil {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			if pred(rel.Tail(i)) {
				out = append(out, Hit{Owner: rel.Head(i), Path: pid, Value: rel.Tail(i)})
			}
		}
	}
	return sortHits(out)
}

// Owners extracts the distinct owner OIDs of hits, in ascending order.
func Owners(hits []Hit) []bat.OID {
	seen := bat.NewSet()
	for _, h := range hits {
		seen.Add(h.Owner)
	}
	return seen.Slice()
}

// Groups partitions the distinct owner OIDs of hits by the owners'
// element path: the R_1 … R_n input relations of the general meet
// (Figure 5). OIDs within a group are in ascending order.
func (idx *Index) Groups(hits []Hit) map[pathsum.PathID][]bat.OID {
	perPath := make(map[pathsum.PathID]*bat.Set)
	for _, h := range hits {
		p := idx.store.PathOf(h.Owner)
		if perPath[p] == nil {
			perPath[p] = bat.NewSet()
		}
		perPath[p].Add(h.Owner)
	}
	out := make(map[pathsum.PathID][]bat.OID, len(perPath))
	for p, s := range perPath {
		out[p] = s.Slice()
	}
	return out
}

func sortHits(hits []Hit) []Hit {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Owner != hits[j].Owner {
			return hits[i].Owner < hits[j].Owner
		}
		return hits[i].Path < hits[j].Path
	})
	return hits
}

func containsFold(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}
