// Package fulltext provides the full-text search engine the paper
// combines with the meet operator ("it can serve as a sensible and
// valuable add-on to an already existing search engine for
// semi-structured or XML data", Section 5).
//
// The engine indexes every string association of a Monet XML store —
// the character data of cdata nodes and all attribute values — in an
// inverted index keyed by lower-cased token. Substring search, the
// semantics of the paper's `contains` predicate, is answered by a scan
// over the distinct stored values.
//
// The index is columnar, matching the path-partitioned binary-relation
// layout it is built over: all associations live in one table of
// parallel columns (owner OID, attribute path, value id) sorted by
// (owner, path), string values are interned once in a shared value
// table — one 4-byte value id per association instead of one string
// copy per token×association — and each posting list is a sorted
// slice of row ids into that table. Single-token search is a single
// gather pass over one posting list; phrase and substring search
// narrow candidates by merging sorted postings before verification.
//
// A hit identifies the node carrying the string: the cdata node's OID
// for character data, the owning element's OID for attribute values.
// These owner OIDs are exactly the inputs the meet operator expects,
// and Groups partitions them by element path — the R_1 … R_n relations
// of the paper's Figure 5.
package fulltext

import (
	"sort"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"ncq/internal/bat"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
	"slices"
)

// Hit is one matched string association.
type Hit struct {
	Owner bat.OID        // node carrying the string (cdata node or attribute owner)
	Path  pathsum.PathID // the attribute path of the string association
	Value string         // the full stored string
}

// valueID indexes the shared value table: every stored string is
// interned once and referenced by id from the association columns.
type valueID uint32

// Index is an inverted index over all string associations of a store.
type Index struct {
	store  *monetx.Store
	values []string // interned distinct strings, in first-seen order

	// The association table: one row per stored string association,
	// sorted by (owner, path). Predicate scans sweep it instead of
	// re-walking the store's string relations, evaluating the
	// predicate once per distinct value.
	owners []bat.OID
	paths  []pathsum.PathID
	vals   []valueID

	// post maps a token to the sorted row ids of the associations
	// containing it — the compact posting lists. Row order is
	// (owner, path) order, so a posting list materialises into an
	// ordered result with a single gather pass, and intersecting two
	// postings is a linear merge of sorted ints.
	post map[string][]int32
}

// Tokenize splits s into lower-cased maximal runs of letters and
// digits. "Hacking & RSI" tokenizes to ["hacking", "rsi"]. Tokens are
// cloned, so retaining one does not pin s in memory.
func Tokenize(s string) []string {
	toks := appendTokens(nil, s)
	for i, t := range toks {
		toks[i] = strings.Clone(t)
	}
	return toks
}

// appendTokens appends the tokens of s to dst. Tokens are sliced out
// of s (or of one lower-cased copy when s contains upper-case runes)
// rather than built rune by rune, so tokenizing allocates at most once
// per value instead of once per token. The tokens alias s — fine for
// the index build, which retains every value in the value table
// anyway; the exported Tokenize clones them instead.
func appendTokens(dst []string, s string) []string {
	lower := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf || ('A' <= c && c <= 'Z') {
			lower = false
			break
		}
	}
	if !lower {
		// Per-rune lowering preserves letter/digit runs, so token
		// boundaries in the lowered copy match those in s.
		s = strings.Map(unicode.ToLower, s)
	}
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			dst = append(dst, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// firstToken returns the first token of s lower-cased, the remainder
// of s after it, and whether a token was found. For terms that are
// already lower-case it allocates nothing.
func firstToken(s string) (tok, rest string, ok bool) {
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			return lowerToken(s[start:i]), s[i:], true
		}
	}
	if start >= 0 {
		return lowerToken(s[start:]), "", true
	}
	return "", "", false
}

func lowerToken(t string) string {
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= utf8.RuneSelf || ('A' <= c && c <= 'Z') {
			return strings.Map(unicode.ToLower, t)
		}
	}
	return t
}

// dedupTokens removes duplicate tokens in place, keeping first
// occurrences in order. Values carry a handful of tokens almost
// always, so the small-slice sweep beats a per-association set
// allocation (which used to dominate index build on token-dense
// corpora); token-heavy values (long cdata passages) fall back to a
// set so one big string cannot make the build quadratic.
func dedupTokens(toks []string) []string {
	const smallDedup = 32
	if len(toks) > smallDedup {
		seen := make(map[string]struct{}, len(toks))
		w := 0
		for _, t := range toks {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				toks[w] = t
				w++
			}
		}
		return toks[:w]
	}
	w := 0
	for _, t := range toks {
		dup := false
		for j := 0; j < w; j++ {
			if toks[j] == t {
				dup = true
				break
			}
		}
		if !dup {
			toks[w] = t
			w++
		}
	}
	return toks[:w]
}

// New builds the inverted index for the store by scanning every string
// relation in the path summary's catalogue.
func New(store *monetx.Store) *Index {
	idx := &Index{store: store, post: make(map[string][]int32)}
	sum := store.Summary()
	intern := make(map[string]valueID)
	var valueToks [][]string // tokens per interned value, deduplicated
	for _, pid := range sum.AllPaths() {
		if sum.Kind(pid) != pathsum.Attr {
			continue
		}
		rel := store.Strings(pid)
		if rel == nil {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			owner, value := rel.Head(i), rel.Tail(i)
			vid, ok := intern[value]
			if !ok {
				vid = valueID(len(idx.values))
				intern[value] = vid
				idx.values = append(idx.values, value)
				valueToks = append(valueToks, dedupTokens(appendTokens(nil, value)))
			}
			row := int32(len(idx.owners))
			idx.owners = append(idx.owners, owner)
			idx.paths = append(idx.paths, pid)
			idx.vals = append(idx.vals, vid)
			for _, tok := range valueToks[vid] {
				idx.post[tok] = append(idx.post[tok], row)
			}
		}
	}
	idx.sortRows()
	return idx
}

// sortRows orders the association table by (owner, path) and rewrites
// every posting list into the new row order. The build scans relations
// in path order with ascending owners inside each relation, so a token
// occurring under a single path — the common case — needs no sort
// after remapping; the O(n) sortedness check skips it.
func (idx *Index) sortRows() {
	n := len(idx.owners)
	// The scan emits rows per relation in ascending path-id order, so
	// for one owner the original row order already is path order:
	// sorting packed (owner, row) keys sorts by (owner, path) — and an
	// (owner, path) pair identifies at most one association, so the
	// order is total — while keeping the permutation in the low bits.
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(idx.owners[i])<<32 | uint64(uint32(i))
	}
	slices.Sort(keys)
	owners := make([]bat.OID, n)
	paths := make([]pathsum.PathID, n)
	vals := make([]valueID, n)
	inv := make([]int32, n)
	for newPos, key := range keys {
		old := int32(uint32(key))
		owners[newPos] = idx.owners[old]
		paths[newPos] = idx.paths[old]
		vals[newPos] = idx.vals[old]
		inv[old] = int32(newPos)
	}
	idx.owners, idx.paths, idx.vals = owners, paths, vals
	for _, rows := range idx.post {
		for i, r := range rows {
			rows[i] = inv[r]
		}
		if !slices.IsSorted(rows) {
			slices.Sort(rows)
		}
	}
}

// Store returns the store the index was built over.
func (idx *Index) Store() *monetx.Store { return idx.store }

// Terms returns the number of distinct tokens in the index.
func (idx *Index) Terms() int { return len(idx.post) }

// hits materialises a posting list (sorted association row ids) as
// Hits. Postings are sorted at build time, so this is the single copy
// a search result costs.
func (idx *Index) hits(rows []int32) []Hit {
	if len(rows) == 0 {
		return nil
	}
	out := make([]Hit, len(rows))
	for i, r := range rows {
		out[i] = Hit{Owner: idx.owners[r], Path: idx.paths[r], Value: idx.values[idx.vals[r]]}
	}
	return out
}

// Search returns the associations containing term as a token,
// case-insensitively (the result is ordered by owner OID). A
// single-token search is one gather pass over one pre-sorted posting
// list; a multi-token term must occur as a phrase in one association,
// located by intersecting the candidate postings smallest-first and
// verifying the phrase on the survivors.
func (idx *Index) Search(term string) []Hit {
	tok, rest, ok := firstToken(term)
	if !ok {
		return nil
	}
	if _, _, more := firstToken(rest); !more {
		// Single-token fast path: no token slice, no sort, one copy.
		return idx.hits(idx.post[tok])
	}
	toks := Tokenize(term)
	// Candidates must contain the leading token as a complete token
	// (the pinned phrase semantics) and every interior token too: an
	// interior token is bounded by non-alphanumerics inside the
	// phrase, so any value containing the phrase contains it as a
	// complete token. The trailing token may extend to the right
	// ("Byte" matching "Bytes"), so its posting cannot narrow.
	cand, ok := idx.intersectPostings(toks[:len(toks)-1])
	if !ok {
		return nil
	}
	needle := strings.ToLower(term)
	var out []Hit
	for _, r := range cand {
		if v := idx.values[idx.vals[r]]; strings.Contains(strings.ToLower(v), needle) {
			out = append(out, Hit{Owner: idx.owners[r], Path: idx.paths[r], Value: v})
		}
	}
	return out
}

// intersectPostings merges the posting lists of the given tokens,
// starting from the smallest. The second return is false when some
// token has no posting at all.
func (idx *Index) intersectPostings(toks []string) ([]int32, bool) {
	smallest := 0
	for i, tok := range toks {
		p, ok := idx.post[tok]
		if !ok || len(p) == 0 {
			return nil, false
		}
		if len(p) < len(idx.post[toks[smallest]]) {
			smallest = i
		}
	}
	cand := idx.post[toks[smallest]]
	// Ping-pong two buffers through the narrowing merges: the write
	// target never aliases cand (a shared posting list, or the other
	// buffer), and a k-token query costs at most two intermediates.
	var bufs [2][]int32
	cur := 0
	for i, tok := range toks {
		if i == smallest {
			continue
		}
		bufs[cur] = bat.IntersectSorted(bufs[cur][:0], cand, idx.post[tok])
		cand = bufs[cur]
		cur ^= 1
		if len(cand) == 0 {
			return nil, false
		}
	}
	return cand, true
}

// SearchSubstring returns the associations whose value contains sub as
// a case-sensitive substring — the semantics of the paper's
// `contains` predicate ("o & contains 'Bit'"). Substrings spanning
// three or more tokens are narrowed through the posting lists first
// (the interior tokens must occur verbatim); otherwise the distinct
// value table is scanned, each stored string tested once however many
// associations carry it.
func (idx *Index) SearchSubstring(sub string) []Hit {
	if sub == "" {
		return nil
	}
	if toks := Tokenize(sub); len(toks) >= 3 {
		// A value containing sub contains each interior token bounded
		// by the same non-alphanumerics, i.e. as a complete token.
		cand, ok := idx.intersectPostings(toks[1 : len(toks)-1])
		if !ok {
			return nil
		}
		var out []Hit
		for _, r := range cand {
			if v := idx.values[idx.vals[r]]; strings.Contains(v, sub) {
				out = append(out, Hit{Owner: idx.owners[r], Path: idx.paths[r], Value: v})
			}
		}
		return out
	}
	return idx.scan(func(v string) bool { return strings.Contains(v, sub) })
}

// SearchFunc returns the associations whose value satisfies pred. The
// predicate is evaluated once per distinct stored value.
func (idx *Index) SearchFunc(pred func(string) bool) []Hit {
	return idx.scan(pred)
}

// scanBits pools the distinct-value bitsets of scan, so a warm
// predicate query allocates O(results) instead of one []bool over the
// value table per call — the same allocation story as the posting-list
// searches.
var scanBits = sync.Pool{New: func() any { return new(bitset) }}

// bitset is a plain word-packed bit vector sized per use.
type bitset struct {
	words []uint64
}

// reset prepares the bitset to hold n cleared bits.
func (b *bitset) reset(n int) {
	need := (n + 63) / 64
	if cap(b.words) < need {
		b.words = make([]uint64, need)
		return
	}
	b.words = b.words[:need]
	clear(b.words)
}

func (b *bitset) set(i int)      { b.words[i>>6] |= 1 << (i & 63) }
func (b *bitset) get(i int) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

func (idx *Index) scan(pred func(string) bool) []Hit {
	matched := scanBits.Get().(*bitset)
	defer scanBits.Put(matched)
	matched.reset(len(idx.values))
	any := false
	for vid, v := range idx.values {
		if pred(v) {
			matched.set(vid)
			any = true
		}
	}
	if !any {
		return nil
	}
	var out []Hit
	for i, vid := range idx.vals {
		if matched.get(int(vid)) {
			out = append(out, Hit{Owner: idx.owners[i], Path: idx.paths[i], Value: idx.values[vid]})
		}
	}
	return out
}

// Owners extracts the distinct owner OIDs of hits, in ascending order.
func Owners(hits []Hit) []bat.OID {
	out := make([]bat.OID, len(hits))
	for i, h := range hits {
		out[i] = h.Owner
	}
	return bat.SortDedup(out)
}

// Groups partitions the distinct owner OIDs of hits by the owners'
// element path: the R_1 … R_n input relations of the general meet
// (Figure 5). OIDs within a group are in ascending order.
func (idx *Index) Groups(hits []Hit) map[pathsum.PathID][]bat.OID {
	out := make(map[pathsum.PathID][]bat.OID)
	for _, h := range hits {
		p := idx.store.PathOf(h.Owner)
		out[p] = append(out[p], h.Owner)
	}
	for p, oids := range out {
		out[p] = bat.SortDedup(oids)
	}
	return out
}

func sortHits(hits []Hit) []Hit {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Owner != hits[j].Owner {
			return hits[i].Owner < hits[j].Owner
		}
		return hits[i].Path < hits[j].Path
	})
	return hits
}
