package fulltext

import "sort"

// Thesaurus holds synonym sets for query broadening. Section 4 of the
// paper: "thesauri are a promising tool to help a user find interesting
// results, especially to broaden a search that returned too few
// answers."
//
// Synonymy is symmetric and transitive here: adding a→b and b→c puts
// a, b and c into one synonym class (a union-find over lower-cased
// tokens). The zero value is not usable; construct with NewThesaurus.
type Thesaurus struct {
	parent map[string]string
}

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{parent: make(map[string]string)}
}

// find returns term's class representative. It deliberately does NOT
// path-compress: Expand runs concurrently at query time (the vague
// mode expands every request's terms, across parallel corpus members),
// and a compressing find would mutate the map under concurrent reads.
// Add keeps trees shallow by always linking root to root.
func (t *Thesaurus) find(term string) string {
	for {
		p, ok := t.parent[term]
		if !ok || p == term {
			return term
		}
		term = p
	}
}

// Add declares the given terms synonymous with term. Terms are
// tokenised, so "database system" contributes its tokens individually.
func (t *Thesaurus) Add(term string, synonyms ...string) {
	all := Tokenize(term)
	for _, s := range synonyms {
		all = append(all, Tokenize(s)...)
	}
	if len(all) == 0 {
		return
	}
	root := t.find(all[0])
	t.parent[root] = root
	for _, s := range all[1:] {
		t.parent[t.find(s)] = root
	}
}

// Expand returns term's full synonym class including term itself,
// sorted. Unknown terms expand to themselves.
func (t *Thesaurus) Expand(term string) []string {
	toks := Tokenize(term)
	if len(toks) != 1 {
		return []string{term}
	}
	tok := toks[0]
	root := t.find(tok)
	set := map[string]bool{tok: true}
	for s := range t.parent {
		if t.find(s) == root {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of terms known to the thesaurus.
func (t *Thesaurus) Len() int { return len(t.parent) }

// SearchExpanded searches for term and all of its synonyms, merging the
// hit lists (duplicates removed, ordered by owner).
func (idx *Index) SearchExpanded(t *Thesaurus, term string) []Hit {
	if t == nil {
		return idx.Search(term)
	}
	seen := map[Hit]bool{}
	var out []Hit
	for _, syn := range t.Expand(term) {
		for _, h := range idx.Search(syn) {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return sortHits(out)
}
