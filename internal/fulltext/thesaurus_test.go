package fulltext

import (
	"reflect"
	"testing"
)

func TestThesaurusExpand(t *testing.T) {
	th := NewThesaurus()
	th.Add("car", "automobile", "vehicle")
	got := th.Expand("car")
	want := []string{"automobile", "car", "vehicle"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Expand(car) = %v, want %v", got, want)
	}
	// Symmetric: expanding a synonym yields the same class.
	if got := th.Expand("vehicle"); !reflect.DeepEqual(got, want) {
		t.Errorf("Expand(vehicle) = %v, want %v", got, want)
	}
	// Unknown terms expand to themselves.
	if got := th.Expand("boat"); !reflect.DeepEqual(got, []string{"boat"}) {
		t.Errorf("Expand(boat) = %v", got)
	}
}

func TestThesaurusTransitive(t *testing.T) {
	th := NewThesaurus()
	th.Add("a", "b")
	th.Add("b", "c")
	th.Add("x", "y")
	got := th.Expand("a")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Expand(a) = %v, want merged class", got)
	}
	if got := th.Expand("x"); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("Expand(x) = %v, classes leaked", got)
	}
}

func TestThesaurusCaseFolding(t *testing.T) {
	th := NewThesaurus()
	th.Add("Car", "AUTOMOBILE")
	if got := th.Expand("car"); len(got) != 2 {
		t.Errorf("Expand(car) = %v, want 2 case-folded entries", got)
	}
}

func TestThesaurusEmptyAdd(t *testing.T) {
	th := NewThesaurus()
	th.Add("", "")
	th.Add("!!!")
	if th.Len() != 0 {
		t.Errorf("Len = %d after empty adds", th.Len())
	}
}

func TestThesaurusMultiWordExpandsToItself(t *testing.T) {
	th := NewThesaurus()
	th.Add("a", "b")
	if got := th.Expand("a b"); !reflect.DeepEqual(got, []string{"a b"}) {
		t.Errorf("Expand(phrase) = %v, want the phrase itself", got)
	}
}

func TestSearchExpanded(t *testing.T) {
	idx := fig1Index(t)
	th := NewThesaurus()
	// 'Robert' is not in the document; broaden it to Bob and Ben.
	th.Add("robert", "bob", "ben")
	hits := idx.SearchExpanded(th, "Robert")
	if len(hits) != 2 {
		t.Fatalf("SearchExpanded = %v, want hits for Bob (o15) and Ben (o6)", hits)
	}
	if hits[0].Owner != 6 || hits[1].Owner != 15 {
		t.Errorf("owners = %d,%d, want 6,15", hits[0].Owner, hits[1].Owner)
	}
	// Nil thesaurus behaves like plain search.
	if got := idx.SearchExpanded(nil, "Ben"); len(got) != 1 {
		t.Errorf("nil thesaurus search = %v", got)
	}
	// No duplicates when synonyms hit the same association.
	th2 := NewThesaurus()
	th2.Add("bob", "byte")
	if got := idx.SearchExpanded(th2, "bob"); len(got) != 1 {
		t.Errorf("duplicate hits not merged: %v", got)
	}
}
