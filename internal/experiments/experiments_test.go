package experiments

import (
	"testing"

	"ncq/internal/datagen"
)

func smallSetups(t *testing.T) (mm, bib *Setup) {
	t.Helper()
	var err error
	mm, err = LoadMultimedia(datagen.MultimediaConfig{Seed: 2, Items: 100, MaxProbeDistance: 12})
	if err != nil {
		t.Fatal(err)
	}
	bib, err = LoadDBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1984, YearTo: 1999, PubsPerVenueYear: 4})
	if err != nil {
		t.Fatal(err)
	}
	return mm, bib
}

func TestFig6Shape(t *testing.T) {
	mm, _ := smallSetups(t)
	rows, err := Fig6(mm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13 (distances 0..12)", len(rows))
	}
	for i, r := range rows {
		if r.Distance != i {
			t.Errorf("row %d distance = %d", i, r.Distance)
		}
		if r.CombinedMS < r.FulltextMS {
			t.Errorf("distance %d: combined %.4f < fulltext %.4f", r.Distance, r.CombinedMS, r.FulltextMS)
		}
		if r.MeetPerOpNS < 0 {
			t.Errorf("distance %d: negative meet time", r.Distance)
		}
	}
	// The headline claim: the meet is negligible next to the full-text
	// search. Allow generous slack — this is a shape, not a number.
	last := rows[len(rows)-1]
	if last.MeetUS*1000 > 50*last.FulltextMS*1e6 {
		t.Errorf("meet (%f us) not small next to fulltext (%f ms)", last.MeetUS, last.FulltextMS)
	}
}

func TestFig7Shape(t *testing.T) {
	_, bib := smallSetups(t)
	rows, err := Fig7(bib, 1999, 1984)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	// Output cardinality grows monotonically as the interval widens;
	// the 1985 step contributes zero ICDE publications.
	for i := 1; i < len(rows); i++ {
		if rows[i].Output < rows[i-1].Output {
			t.Errorf("output shrank when widening: %d -> %d at yearLow %d",
				rows[i-1].Output, rows[i].Output, rows[i].YearLow)
		}
	}
	// At yearLow = 1999: exactly the 4 ICDE-1999 records, no FPs.
	if rows[0].Output != 4 || rows[0].FalsePositives != 0 {
		t.Errorf("1999 row = %+v, want 4 true results", rows[0])
	}
	// The full interval: 15 ICDE years × 4 records + 2 false positives.
	lastRow := rows[len(rows)-1]
	wantTrue := 15 * 4
	if lastRow.Output != wantTrue+lastRow.FalsePositives {
		t.Errorf("full-interval output = %d with %d FPs, want %d true results",
			lastRow.Output, lastRow.FalsePositives, wantTrue)
	}
	// The planted false positives appear once their year enters the
	// interval and disappear again once the hosting record's own year
	// enters (the record then is a true hit):
	//   1996-FP hosted on ICDE-1987, 1993-FP hosted on ICDE-1989.
	wantFPs := map[int]int{
		1997: 0, // neither planted year in range
		1996: 1, // 1996 in range, host 1987 not
		1993: 2, // both planted years in range, neither host
		1990: 2,
		1989: 1, // 1989 host now in range: its record is a true hit
		1987: 0, // both hosts in range
		1984: 0,
	}
	for _, r := range rows {
		if want, ok := wantFPs[r.YearLow]; ok && r.FalsePositives != want {
			t.Errorf("yearLow %d: FPs = %d, want %d", r.YearLow, r.FalsePositives, want)
		}
	}
}

func TestFig7The1985Step(t *testing.T) {
	_, bib := smallSetups(t)
	rows, err := Fig7(bib, 1999, 1984)
	if err != nil {
		t.Fatal(err)
	}
	byLow := map[int]Fig7Row{}
	for _, r := range rows {
		byLow[r.YearLow] = r
	}
	// Widening 1986->1985 adds no ICDE publications ("note that there
	// was no ICDE in 1985, hence the small step").
	d1985 := byLow[1985].Output - byLow[1986].Output
	d1986 := byLow[1986].Output - byLow[1987].Output
	if d1985 != 0 {
		t.Errorf("1985 step adds %d results, want 0", d1985)
	}
	if d1986 <= 0 {
		t.Errorf("1986 step adds %d results, want > 0", d1986)
	}
}

func TestInputScalingShape(t *testing.T) {
	_, bib := smallSetups(t)
	rows, err := InputScaling(bib, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Inputs < rows[i-1].Inputs {
			t.Errorf("inputs not growing: %+v", rows)
		}
	}
	if rows[len(rows)-1].Output == 0 {
		t.Error("full input produced no meets")
	}
}

func TestAblationParent(t *testing.T) {
	_, bib := smallSetups(t)
	rows, err := AblationParent(bib, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if !r.CheckedOK {
			t.Errorf("%s: strategies disagree", r.Name)
		}
		if r.PerOpNS <= 0 {
			t.Errorf("%s: no time measured", r.Name)
		}
	}
}

func TestExplosion(t *testing.T) {
	_, bib := smallSetups(t)
	row, err := Explosion(bib, 1995)
	if err != nil {
		t.Fatal(err)
	}
	if row.BaselinePairs != row.Inputs1*row.Inputs2 {
		t.Errorf("pairs = %d, want %d", row.BaselinePairs, row.Inputs1*row.Inputs2)
	}
	if row.BaselineResults < row.MinimalResults {
		t.Errorf("baseline results %d < minimal %d", row.BaselineResults, row.MinimalResults)
	}
	if row.MinimalResults == 0 {
		t.Error("minimal meet found nothing")
	}
}

func TestFig6RejectsBrokenProbes(t *testing.T) {
	// A document without probes must fail loudly, not return garbage.
	bibOnly, err := LoadDBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1999, YearTo: 1999, PubsPerVenueYear: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig6(bibOnly, 1)
	if err != nil {
		t.Fatalf("Fig6 on probe-less doc: %v", err)
	}
	// No probes at all -> only distance 0 is absent too; expect zero rows.
	if len(rows) != 0 {
		t.Errorf("rows = %+v, want none", rows)
	}
}
