// Package experiments implements the paper's evaluation section: the
// workload generators, parameter sweeps and measurements that
// regenerate Figure 6 and Figure 7, plus the input-cardinality scaling
// claim and two ablations of design choices. cmd/ncqbench prints the
// series; the root-level benchmarks wrap the same code in testing.B.
//
// Absolute numbers differ from the paper's SGI 1400 (the substrate here
// is an in-process Go store, not the Monet server), but the shapes are
// the evaluation's claims and those are preserved:
//
//   - Figure 6: full-text dominates; the meet costs microseconds and
//     grows linearly with the distance between the objects.
//   - Figure 7: meet-after-full-text time grows linearly with the
//     output cardinality; results are almost exclusively the ICDE
//     publications of the queried years with two known false positives.
package experiments

import (
	"fmt"
	"time"

	"ncq/internal/bat"
	"ncq/internal/core"
	"ncq/internal/datagen"
	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

// Setup bundles a loaded document with its index.
type Setup struct {
	Doc   *xmltree.Document
	Store *monetx.Store
	Index *fulltext.Index
}

// LoadMultimedia generates and loads the multimedia workload.
func LoadMultimedia(cfg datagen.MultimediaConfig) (*Setup, error) {
	doc := datagen.Multimedia(cfg)
	store, err := monetx.Load(doc)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Setup{Doc: doc, Store: store, Index: fulltext.New(store)}, nil
}

// LoadDBLP generates and loads the bibliography workload.
func LoadDBLP(cfg datagen.DBLPConfig) (*Setup, error) {
	doc := datagen.DBLP(cfg)
	store, err := monetx.Load(doc)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Setup{Doc: doc, Store: store, Index: fulltext.New(store)}, nil
}

// Fig6Row is one point of Figure 6: elapsed time vs distance.
type Fig6Row struct {
	Distance    int
	FulltextMS  float64 // full-text search only (the flat series)
	MeetUS      float64 // the meet itself, microseconds per operation
	CombinedMS  float64 // "fulltext and meet" series
	MeetPerOpNS float64 // raw per-operation cost
}

// Fig6 reproduces "Combining meet and fulltext search": for every
// distance d in 0..MaxProbeDistance, a full-text search for the two
// probe terms followed by meet_2 of the unique hits. iters controls the
// averaging (the paper normalises the full-text duration for the same
// reason).
func Fig6(setup *Setup, iters int) ([]Fig6Row, error) {
	if iters < 1 {
		iters = 1
	}
	// Discover how many probe pairs the document carries; a document
	// without probes yields an empty series.
	maxD := -1
	for {
		a, _ := datagen.ProbeTerms(maxD + 1)
		if len(setup.Index.Search(a)) == 0 {
			break
		}
		maxD++
	}
	// The full-text baseline: one representative search over the bulk
	// content, averaged.
	ftDur := measure(iters, func() {
		setup.Index.Search("landscape")
	})
	ftMS := float64(ftDur.Nanoseconds()) / 1e6

	var rows []Fig6Row
	for d := 0; d <= maxD; d++ {
		termA, termB := datagen.ProbeTerms(d)
		hitsA := setup.Index.Search(termA)
		hitsB := setup.Index.Search(termB)
		if len(hitsA) != 1 || len(hitsB) != 1 {
			return nil, fmt.Errorf("experiments: Fig6: probe %d has %d/%d hits", d, len(hitsA), len(hitsB))
		}
		o1, o2 := hitsA[0].Owner, hitsB[0].Owner
		meetDur := measure(iters, func() {
			if _, _, err := core.Meet2(setup.Store, o1, o2); err != nil {
				panic(err)
			}
		})
		meetNS := float64(meetDur.Nanoseconds())
		rows = append(rows, Fig6Row{
			Distance:    d,
			FulltextMS:  ftMS,
			MeetUS:      meetNS / 1e3,
			CombinedMS:  ftMS + meetNS/1e6,
			MeetPerOpNS: meetNS,
		})
	}
	return rows, nil
}

// Fig7Row is one point of Figure 7: the meet of the "ICDE" hits with
// the year hits of the interval [YearLow, yearHigh], root excluded.
type Fig7Row struct {
	YearLow        int
	InputSize      int // cardinality of the combined full-text result
	Output         int // cardinality of the meet result (the x-axis)
	FalsePositives int // results that are not ICDE records of the interval
	MeetMS         float64
	FulltextMS     float64 // not part of the paper's plot; reported for context
}

// Fig7 reproduces the DBLP case study: "we do a full-text search for
// the strings 'ICDE' and the year and calculate the meets of the
// results according to algorithm meet_P with the document root excluded
// … we iteratively extend the search interval from 1999 back to 1984".
func Fig7(setup *Setup, yearHigh, yearLowest int) ([]Fig7Row, error) {
	var rows []Fig7Row
	for low := yearHigh; low >= yearLowest; low-- {
		ftStart := time.Now()
		hits := setup.Index.SearchSubstring("ICDE")
		for y := low; y <= yearHigh; y++ {
			hits = append(hits, setup.Index.SearchSubstring(fmt.Sprintf("%d", y))...)
		}
		groups := setup.Index.Groups(hits)
		ftMS := float64(time.Since(ftStart).Nanoseconds()) / 1e6

		inputs := 0
		for _, g := range groups {
			inputs += len(g)
		}
		start := time.Now()
		results, _, err := core.Meet(setup.Store, groups, core.ExcludeRoot(setup.Store))
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig7: %w", err)
		}
		meetMS := float64(time.Since(start).Nanoseconds()) / 1e6

		fps := 0
		for _, r := range results {
			if !isICDEInRange(setup.Store, r.Meet, low, yearHigh) {
				fps++
			}
		}
		rows = append(rows, Fig7Row{
			YearLow:        low,
			InputSize:      inputs,
			Output:         len(results),
			FalsePositives: fps,
			MeetMS:         meetMS,
			FulltextMS:     ftMS,
		})
	}
	return rows, nil
}

// isICDEInRange checks whether the meet node is an ICDE record whose
// publication year lies in [low, high] — the ground truth for the
// false-positive count.
func isICDEInRange(store *monetx.Store, rec bat.OID, low, high int) bool {
	if store.Label(rec) != "inproceedings" {
		return false
	}
	var venue string
	var year int
	for _, c := range store.Children(rec) {
		label := store.Label(c)
		if label != "booktitle" && label != "year" {
			continue
		}
		for _, cc := range store.Children(c) {
			t, ok := store.Text(cc)
			if !ok {
				continue
			}
			if label == "booktitle" {
				venue = t
			} else {
				fmt.Sscanf(t, "%d", &year)
			}
		}
	}
	return venue == "ICDE" && low <= year && year <= high
}

// ScalingRow is one point of the input-cardinality scaling experiment
// (the Section 5 claim that the set-oriented meet "scales well, i.e.,
// linear, with respect to the cardinality of the input sets").
type ScalingRow struct {
	Inputs int
	Output int
	MeetMS float64
}

// InputScaling feeds growing prefixes of all year hits (plus all ICDE
// hits) to the general meet.
func InputScaling(setup *Setup, steps int) ([]ScalingRow, error) {
	if steps < 1 {
		steps = 1
	}
	var yearHits []fulltext.Hit
	for y := 1984; y <= 1999; y++ {
		yearHits = append(yearHits, setup.Index.SearchSubstring(fmt.Sprintf("%d", y))...)
	}
	icde := setup.Index.SearchSubstring("ICDE")
	var rows []ScalingRow
	for s := 1; s <= steps; s++ {
		n := len(yearHits) * s / steps
		hits := append(append([]fulltext.Hit(nil), icde...), yearHits[:n]...)
		groups := setup.Index.Groups(hits)
		inputs := 0
		for _, g := range groups {
			inputs += len(g)
		}
		start := time.Now()
		results, _, err := core.Meet(setup.Store, groups, core.ExcludeRoot(setup.Store))
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling: %w", err)
		}
		rows = append(rows, ScalingRow{
			Inputs: inputs,
			Output: len(results),
			MeetMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		})
	}
	return rows, nil
}

// AblationRow compares two execution strategies on the same workload.
type AblationRow struct {
	Name      string
	PerOpNS   float64
	CheckedOK bool // both strategies agreed on the result
}

// AblationParent compares the array-based MeetSets against the pure
// BAT-join MeetSetsBAT on a Figure 7-style workload (ICDE booktitle
// hits vs one year's hits).
func AblationParent(setup *Setup, iters int) ([]AblationRow, error) {
	if iters < 1 {
		iters = 1
	}
	icde := homogeneous(setup, setup.Index.SearchSubstring("ICDE"))
	year := homogeneous(setup, setup.Index.SearchSubstring("1999"))
	want, err := core.MeetSets(setup.Store, icde, year, nil)
	if err != nil {
		return nil, err
	}
	got, err := core.MeetSetsBAT(setup.Store, icde, year, nil)
	if err != nil {
		return nil, err
	}
	agree := len(want) == len(got)
	if agree {
		for i := range want {
			if want[i].Meet != got[i].Meet {
				agree = false
				break
			}
		}
	}
	arr := measure(iters, func() {
		if _, err := core.MeetSets(setup.Store, icde, year, nil); err != nil {
			panic(err)
		}
	})
	bats := measure(iters, func() {
		if _, err := core.MeetSetsBAT(setup.Store, icde, year, nil); err != nil {
			panic(err)
		}
	})
	return []AblationRow{
		{Name: "parent-array", PerOpNS: float64(arr.Nanoseconds()), CheckedOK: agree},
		{Name: "parent-bat-join", PerOpNS: float64(bats.Nanoseconds()), CheckedOK: agree},
	}, nil
}

// ExplosionRow compares the minimal set-oriented meet against the
// naive all-pairs baseline on the same inputs — the "combinatorial
// explosion of the result size" the paper's introduction warns about.
type ExplosionRow struct {
	Inputs1, Inputs2 int
	MinimalResults   int
	MinimalMS        float64
	BaselineResults  int
	BaselinePairs    int
	BaselineMS       float64
}

// Explosion runs both strategies on the ICDE hits versus the year hits
// of [lowYear, 1999].
func Explosion(setup *Setup, lowYear int) (ExplosionRow, error) {
	icde := homogeneous(setup, setup.Index.SearchSubstring("ICDE"))
	var yearHits []fulltext.Hit
	for y := lowYear; y <= 1999; y++ {
		yearHits = append(yearHits, setup.Index.SearchSubstring(fmt.Sprintf("%d", y))...)
	}
	years := homogeneous(setup, yearHits)
	row := ExplosionRow{Inputs1: len(icde), Inputs2: len(years)}

	start := time.Now()
	minimal, err := core.MeetSets(setup.Store, icde, years, nil)
	if err != nil {
		return row, err
	}
	row.MinimalMS = float64(time.Since(start).Nanoseconds()) / 1e6
	row.MinimalResults = len(minimal)

	start = time.Now()
	baseline, pairs, err := core.MeetPairsBaseline(setup.Store, icde, years)
	if err != nil {
		return row, err
	}
	row.BaselineMS = float64(time.Since(start).Nanoseconds()) / 1e6
	row.BaselineResults = len(baseline)
	row.BaselinePairs = pairs
	return row, nil
}

// homogeneous keeps the largest single-path group of the hits, so the
// result is a valid MeetSets input.
func homogeneous(setup *Setup, hits []fulltext.Hit) []bat.OID {
	groups := setup.Index.Groups(hits)
	var best []bat.OID
	for _, g := range groups {
		if len(g) > len(best) {
			best = g
		}
	}
	return best
}

// measure runs fn iters times and returns the average duration.
func measure(iters int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}
