package vague

import (
	"strings"
	"testing"

	"ncq/internal/pathexpr"
	"ncq/internal/pathsum"
)

// FuzzRelax drives the relaxation DP with arbitrary patterns, path
// shapes and budgets and checks its three load-bearing invariants:
// it never panics, slack 0 coincides exactly with the exact NFA
// (the zero-slack == exact contract), and admission is monotone in
// the budget with stable minimal slacks.
func FuzzRelax(f *testing.F) {
	f.Add("/dblp/article/author", "dblp/article/author", 2)
	f.Add("//auther", "dblp/proceedings/inproceedings/author", 3)
	f.Add("/a/*/c@id", "a/b/c", 1)
	f.Add("/%/x", "root/x", 0)
	f.Fuzz(func(t *testing.T, pattern, path string, budget int) {
		pat, err := pathexpr.Compile(pattern)
		if err != nil {
			t.Skip()
		}
		labels := strings.Split(path, "/")
		if len(labels) == 0 || len(labels) > 12 {
			t.Skip()
		}
		sum := pathsum.New()
		parent := pathsum.Invalid
		for _, l := range labels {
			if l == "" || len(l) > 32 {
				t.Skip()
			}
			id, err := sum.Intern(parent, l, pathsum.Elem)
			if err != nil {
				t.Skip()
			}
			parent = id
		}
		// An attribute leaf named after the last label, so attribute
		// patterns exercise the name-relaxation arm too.
		sum.MustIntern(parent, labels[len(labels)-1], pathsum.Attr)
		if budget < 0 {
			budget = -budget
		}
		budget %= SlackLimit + 4 // exercise the above-limit clamp too
		for _, id := range sum.AllPaths() {
			slack, ok := Slack(pat, sum, id, budget)
			if ok && (slack < 0 || slack > budget) {
				t.Fatalf("Slack(%q, %q, %d) = %d outside [0, budget]",
					pattern, sum.String(id), budget, slack)
			}
			exact := pat.Matches(sum, id)
			if exact && (!ok || slack != 0) {
				t.Fatalf("exact match %q of %q reported slack (%d, %t)",
					sum.String(id), pattern, slack, ok)
			}
			if !exact && ok && slack == 0 {
				t.Fatalf("non-match %q of %q admitted at slack 0", sum.String(id), pattern)
			}
			// Monotonicity: a higher budget keeps the admission and the
			// minimal slack.
			if ok {
				s2, ok2 := Slack(pat, sum, id, budget+1)
				if !ok2 || s2 != slack {
					t.Fatalf("budget %d admits %q at %d but budget %d gives (%d, %t)",
						budget, sum.String(id), slack, budget+1, s2, ok2)
				}
			}
		}
	})
}
