// Package vague is the relaxation engine behind the "vague
// constraints" query mode: it matches pathexpr patterns approximately
// against a pathsum.Summary, assigning every admitted path a
// structural-slack cost, and defines the scorer that blends that slack
// with meet distance into one total order.
//
// The related work (EquiX; Popovici et al.'s vague interpretation of
// structural constraints) is unanimous that exact structure is too
// rigid for users who know a document's content but not its mark-up —
// the very users the source paper's nearest concept queries target. A
// pattern here is not a boolean filter but the root of a relaxation
// lattice: each rewrite away from the original pattern carries a cost,
// and a path's slack is the cheapest rewrite chain that makes the
// pattern match it exactly.
//
// # The cost model
//
// Three primitive rewrites span the lattice, each applied per step:
//
//   - label edit: a literal step matches a differently spelled label at
//     the Levenshtein distance between them ("auther" matches "author"
//     at slack 1) — misspelled and near-miss vocabularies;
//   - ancestor relaxation (insertion): the path may contain labels the
//     pattern never mentioned, one slack each — "/dblp/article" reaches
//     "/dblp/proceedings/article" at slack 1, the restructured-schema
//     case;
//   - step deletion: a pattern step may be dropped for one slack — an
//     over-specified pattern degrades gracefully instead of matching
//     nothing.
//
// Wildcard steps keep their exact-mode semantics at no cost: * consumes
// exactly one arbitrary label, % any sequence. Element and attribute
// paths never relax into each other; a literal attribute name relaxes
// by edit distance like a label step. Every rewrite costs at least 1,
// so slack 0 is exactly the set of paths Pattern.Matches accepts — the
// property that makes a zero-budget vague request byte-identical to
// the exact path.
//
// The minimal slack is computed by a Levenshtein-style dynamic program
// over (pattern step, path label) prefixes — the relaxation lattice is
// never materialised. Cost is O(len(steps)·len(labels)) per path, run
// over the path summary (small by construction, the paper's Section 3
// argument), never over the document instance.
package vague

import (
	"ncq/internal/pathexpr"
	"ncq/internal/pathsum"
)

// SlackLimit bounds the slack budget accepted by Slack and Select —
// and, through ncq.MaxVagueSlack, the max_slack a request may carry.
// Beyond it a pattern admits nearly every path and the ranking decays
// to noise.
const SlackLimit = 16

// SlackWeight is how many units of meet distance one unit of
// structural slack costs in the blended score: an answer found by
// bending a constraint must beat an exact-constraint answer by more
// than SlackWeight parent joins to outrank it.
const SlackWeight = 2

// Blend folds structural slack into a meet distance, producing the one
// ranking key vague results are ordered by. It is strictly monotone in
// both arguments and deterministic, so blended streams merge under the
// existing (distance, source, shard, node) total order unchanged.
func Blend(distance, slack int) int { return distance + SlackWeight*slack }

// EditDistance returns the Levenshtein distance between two strings,
// computed over runes — the cost a literal step pays to match a
// differently spelled label.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i, ca := range ra {
		cur[0] = i + 1
		for j, cb := range rb {
			cost := prev[j] // substitute (free on equal runes)
			if ca != cb {
				cost++
			}
			if d := prev[j+1] + 1; d < cost { // delete from a
				cost = d
			}
			if d := cur[j] + 1; d < cost { // insert into a
				cost = d
			}
			cur[j+1] = cost
		}
		prev, cur = cur, prev
	}
	if d := prev[len(rb)]; d > 0 {
		return d
	}
	// Distinct byte strings can decode to identical rune sequences
	// (invalid UTF-8 collapses to U+FFFD); they are still different
	// labels, and a distance of 0 would break slack 0 == exact match.
	return 1
}

// Slack returns the minimal structural slack at which pat matches the
// path id of sum, and whether that minimum is within budget. Slack 0
// means an exact match (ok is then true for every budget >= 0); ok is
// false for kind mismatches (element pattern vs attribute path and
// vice versa — kinds never relax), invalid ids, negative budgets, or
// a minimum above budget. Budgets above SlackLimit are clamped to it.
func Slack(pat *pathexpr.Pattern, sum *pathsum.Summary, id pathsum.PathID, budget int) (slack int, ok bool) {
	if budget < 0 || id == pathsum.Invalid || int(id) >= sum.Len() {
		return 0, false
	}
	if budget > SlackLimit {
		budget = SlackLimit
	}
	isAttr := sum.Kind(id) == pathsum.Attr
	if isAttr != pat.IsAttr() {
		return 0, false
	}
	labels := sum.Labels(id)
	if pat.IsAttr() {
		// The attribute name is the path's last label; a literal name
		// relaxes by edit distance exactly like a label step.
		name := labels[len(labels)-1]
		labels = labels[:len(labels)-1]
		if attr, any := pat.Attr(); !any && name != attr {
			slack = EditDistance(name, attr)
			if slack > budget {
				return 0, false
			}
		}
	}
	s := matchSlack(labels, pat.Steps(), budget-slack)
	if s < 0 {
		return 0, false
	}
	return slack + s, true
}

// Select maps every path of sum that pat matches within budget to its
// minimal slack — the relaxed analogue of Pattern.SelectPaths. At
// budget 0 the key set equals SelectPaths' result with every value 0.
func Select(pat *pathexpr.Pattern, sum *pathsum.Summary, budget int) map[pathsum.PathID]int {
	out := make(map[pathsum.PathID]int)
	for _, id := range sum.AllPaths() {
		if s, ok := Slack(pat, sum, id, budget); ok {
			out[id] = s
		}
	}
	return out
}

// delCost is the slack of dropping a pattern step without consuming a
// label: free for % (which matches the empty sequence anyway), one
// rewrite otherwise.
func delCost(st pathexpr.Step) int {
	if st.Any {
		return 0
	}
	return 1
}

// matchSlack is the relaxation DP: the minimal total rewrite cost of
// matching the label sequence against the steps, or -1 when no chain
// within budget exists. State d[j] is the cheapest way steps[:j] match
// the labels consumed so far — the NFA of pathexpr.matchSteps with
// costs on its edges plus two relaxation edges (insert a path label,
// delete a pattern step). Costs are capped at budget+1, which both
// bounds the work and makes "no match within budget" explicit.
func matchSlack(labels []string, steps []pathexpr.Step, budget int) int {
	if budget < 0 {
		return -1
	}
	inf := budget + 1
	n := len(steps)
	d := make([]int, n+1)
	next := make([]int, n+1)
	for j := 1; j <= n; j++ {
		d[j] = inf
	}
	// closure applies the epsilon edges: advancing past a step without
	// consuming a label (free for %, one slack to delete any other
	// step). Epsilon edges only go forward, so one ascending pass
	// suffices.
	closure := func(v []int) {
		for j := 0; j < n; j++ {
			if c := v[j] + delCost(steps[j]); c < v[j+1] {
				v[j+1] = c
			}
		}
	}
	closure(d)
	for _, l := range labels {
		for j := range next {
			next[j] = inf
		}
		for j := 0; j <= n; j++ {
			if d[j] >= inf {
				continue
			}
			// Ancestor relaxation: consume l without advancing — the
			// path holds a label the pattern never mentioned.
			if c := d[j] + 1; c < next[j] {
				next[j] = c
			}
			if j == n {
				continue
			}
			switch st := steps[j]; {
			case st.Any:
				// % consumes any label free, staying inside the step.
				if d[j] < next[j] {
					next[j] = d[j]
				}
			case st.One:
				if d[j] < next[j+1] {
					next[j+1] = d[j]
				}
			default:
				c := d[j]
				if st.Label != l {
					c += EditDistance(st.Label, l)
				}
				if c < next[j+1] {
					next[j+1] = c
				}
			}
		}
		closure(next)
		d, next = next, d
	}
	if d[n] > budget {
		return -1
	}
	return d[n]
}
