package vague

import (
	"math/rand"
	"testing"

	"ncq/internal/pathexpr"
	"ncq/internal/pathsum"
)

// dblpSummary builds a small DBLP-shaped summary with both the
// "expected" layout and a restructured sibling branch, plus attributes.
func dblpSummary(t *testing.T) *pathsum.Summary {
	t.Helper()
	s := pathsum.New()
	dblp := s.MustIntern(pathsum.Invalid, "dblp", pathsum.Elem)
	article := s.MustIntern(dblp, "article", pathsum.Elem)
	s.MustIntern(article, "author", pathsum.Elem)
	s.MustIntern(article, "title", pathsum.Elem)
	s.MustIntern(article, "key", pathsum.Attr)
	proc := s.MustIntern(dblp, "proceedings", pathsum.Elem)
	inproc := s.MustIntern(proc, "inproceedings", pathsum.Elem)
	s.MustIntern(inproc, "author", pathsum.Elem)
	s.MustIntern(inproc, "booktitle", pathsum.Elem)
	return s
}

func lookup(t *testing.T, s *pathsum.Summary, labels ...string) pathsum.PathID {
	t.Helper()
	id, ok := s.Lookup(labels)
	if !ok {
		t.Fatalf("summary has no path %v", labels)
	}
	return id
}

func slackOf(t *testing.T, s *pathsum.Summary, pattern string, id pathsum.PathID, budget int) (int, bool) {
	t.Helper()
	pat, err := pathexpr.Compile(pattern)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	return Slack(pat, s, id, budget)
}

func TestSlackExactMatchesAreFree(t *testing.T) {
	s := dblpSummary(t)
	id := lookup(t, s, "dblp", "article", "author")
	for _, pattern := range []string{"/dblp/article/author", "//author", "/dblp/*/author", "/%/author"} {
		got, ok := slackOf(t, s, pattern, id, 0)
		if !ok || got != 0 {
			t.Errorf("Slack(%q) = %d, %t; want 0, true", pattern, got, ok)
		}
	}
}

func TestSlackLabelEdit(t *testing.T) {
	s := dblpSummary(t)
	id := lookup(t, s, "dblp", "article", "author")
	// One-letter misspelling costs its edit distance.
	if got, ok := slackOf(t, s, "/dblp/article/auther", id, 4); !ok || got != 1 {
		t.Errorf("misspelled leaf: slack = %d, %t; want 1, true", got, ok)
	}
	// Below the needed budget the path is not admitted at all.
	if _, ok := slackOf(t, s, "/dblp/article/auther", id, 0); ok {
		t.Error("misspelled leaf admitted at budget 0")
	}
}

func TestSlackAncestorRelaxation(t *testing.T) {
	s := dblpSummary(t)
	id := lookup(t, s, "dblp", "proceedings", "inproceedings", "author")
	// The pattern never mentions the two intermediate levels: two label
	// insertions... but "article"→"inproceedings" also needs handling.
	// /dblp//author reaches it free via %, /dblp/author needs 2 inserts.
	if got, ok := slackOf(t, s, "/dblp//author", id, 0); !ok || got != 0 {
		t.Errorf("descendant wildcard: slack = %d, %t; want 0, true", got, ok)
	}
	if got, ok := slackOf(t, s, "/dblp/author", id, 4); !ok || got != 2 {
		t.Errorf("two skipped ancestors: slack = %d, %t; want 2, true", got, ok)
	}
	if _, ok := slackOf(t, s, "/dblp/author", id, 1); ok {
		t.Error("two skipped ancestors admitted at budget 1")
	}
}

func TestSlackStepDeletion(t *testing.T) {
	s := dblpSummary(t)
	id := lookup(t, s, "dblp", "article")
	// The over-specified trailing step is dropped for one slack.
	if got, ok := slackOf(t, s, "/dblp/article/volume", id, 4); !ok || got != 1 {
		t.Errorf("dropped step: slack = %d, %t; want 1, true", got, ok)
	}
	// An unrelated label substitutes at min(edit, delete+insert).
	id = lookup(t, s, "dblp", "proceedings", "inproceedings")
	if got, ok := slackOf(t, s, "/dblp/*/inproceedings", id, 4); !ok || got != 0 {
		t.Errorf("star step: slack = %d, %t; want 0, true", got, ok)
	}
}

func TestSlackKindsNeverRelax(t *testing.T) {
	s := dblpSummary(t)
	elem := lookup(t, s, "dblp", "article", "author")
	attr, ok := s.LookupAttr([]string{"dblp", "article"}, "key")
	if !ok {
		t.Fatal("summary has no @key attribute")
	}
	if _, ok := slackOf(t, s, "/dblp/article@key", elem, SlackLimit); ok {
		t.Error("attribute pattern admitted an element path")
	}
	if _, ok := slackOf(t, s, "/dblp/article/author", attr, SlackLimit); ok {
		t.Error("element pattern admitted an attribute path")
	}
	// Attribute names relax by edit distance like labels.
	if got, ok := slackOf(t, s, "/dblp/article@kex", attr, 4); !ok || got != 1 {
		t.Errorf("misspelled attribute: slack = %d, %t; want 1, true", got, ok)
	}
	if got, ok := slackOf(t, s, "/dblp/article@*", attr, 0); !ok || got != 0 {
		t.Errorf("@*: slack = %d, %t; want 0, true", got, ok)
	}
}

// TestZeroBudgetEqualsExact is the keystone property: at budget 0 the
// relaxation DP must accept exactly the paths the exact NFA accepts —
// this is what makes a max_slack:0 vague request byte-identical to the
// exact query path.
func TestZeroBudgetEqualsExact(t *testing.T) {
	s := dblpSummary(t)
	patterns := []string{
		"/dblp", "/dblp/article", "//author", "/dblp/*/author",
		"/dblp/%", "/%", "/*/*/author", "/dblp/article@key",
		"/dblp/article@*", "//inproceedings", "/dblp/article/auther",
	}
	for _, src := range patterns {
		pat := pathexpr.MustCompile(src)
		for _, id := range s.AllPaths() {
			slack, ok := Slack(pat, s, id, 0)
			exact := pat.Matches(s, id)
			if ok != exact || (ok && slack != 0) {
				t.Errorf("pattern %q path %q: Slack0 = (%d, %t), Matches = %t",
					src, s.String(id), slack, ok, exact)
			}
		}
	}
}

// TestBudgetMonotone: raising the budget only adds admissions and
// never changes an already admitted path's minimal slack.
func TestBudgetMonotone(t *testing.T) {
	s := dblpSummary(t)
	rng := rand.New(rand.NewSource(7))
	labels := []string{"dblp", "article", "author", "auther", "proceedings", "x"}
	for i := 0; i < 200; i++ {
		// Random small pattern over the vocabulary plus wildcards.
		src := ""
		for n := 1 + rng.Intn(3); n > 0; n-- {
			switch rng.Intn(4) {
			case 0:
				src += "/*"
			case 1:
				src += "/%"
			default:
				src += "/" + labels[rng.Intn(len(labels))]
			}
		}
		pat, err := pathexpr.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		lo, hi := rng.Intn(4), 4+rng.Intn(8)
		lows, highs := Select(pat, s, lo), Select(pat, s, hi)
		for id, sl := range lows {
			if sl > lo {
				t.Fatalf("pattern %q: Select(%d) admitted %q at slack %d", src, lo, s.String(id), sl)
			}
			if hsl, ok := highs[id]; !ok || hsl != sl {
				t.Fatalf("pattern %q path %q: slack %d at budget %d but (%d, %t) at budget %d",
					src, s.String(id), sl, lo, hsl, ok, hi)
			}
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"author", "author", 0},
		{"author", "auther", 1},
		{"author", "authro", 2},
		{"title", "titel", 2},
		{"année", "annee", 1},
		{"cat", "dog", 3},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := EditDistance(c.b, c.a); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestBlendOrdering(t *testing.T) {
	// Blend is strictly monotone in both arguments, and one slack must
	// cost more than one parent join — otherwise relaxation would be
	// free relative to structure.
	if SlackWeight < 2 {
		t.Fatalf("SlackWeight = %d; must be >= 2 so slack outweighs a single join", SlackWeight)
	}
	if Blend(3, 0) != 3 {
		t.Errorf("Blend(3, 0) = %d, want 3", Blend(3, 0))
	}
	if !(Blend(2, 1) > Blend(2, 0)) || !(Blend(3, 1) > Blend(2, 1)) {
		t.Error("Blend is not strictly monotone")
	}
}
