package datagen

// Vocabularies for the deterministic generators. The lists are fixed so
// that the same seed always produces byte-identical documents.

var firstNames = []string{
	"Albrecht", "Martin", "Menzo", "Florian", "Peter", "Maria", "Sophie",
	"Jan", "Wilhelm", "Anna", "Clara", "David", "Erik", "Frank", "Greta",
	"Hanna", "Ivo", "Jurgen", "Karin", "Lars", "Mikkel", "Nina", "Otto",
	"Paula", "Quentin", "Rosa", "Stefan", "Tilda", "Ulrich", "Vera",
	"Walter", "Xenia", "Yara", "Zeno", "Ben", "Bob",
}

var lastNames = []string{
	"Schmidt", "Kersten", "Windhouwer", "Waas", "Boncz", "Struzik",
	"Meyer", "Fischer", "Weber", "Wagner", "Becker", "Schulz", "Hoffmann",
	"Koch", "Bauer", "Richter", "Klein", "Wolf", "Schroeder", "Neumann",
	"Schwarz", "Zimmermann", "Braun", "Krueger", "Hofmann", "Hartmann",
	"Lange", "Schmitt", "Werner", "Krause", "Lehmann", "Maier", "Bit",
	"Byte",
}

var titleWords = []string{
	"Efficient", "Scalable", "Adaptive", "Incremental", "Distributed",
	"Parallel", "Declarative", "Semistructured", "Relational", "Temporal",
	"Spatial", "Approximate", "Optimal", "Robust", "Dynamic",
	"Query", "Storage", "Indexing", "Retrieval", "Processing", "Mining",
	"Integration", "Optimization", "Evaluation", "Compression", "Caching",
	"Replication", "Recovery", "Clustering", "Partitioning",
	"Databases", "Documents", "Streams", "Trees", "Graphs", "Views",
	"Schemas", "Transactions", "Workloads", "Architectures", "Engines",
	"Warehouses", "Repositories", "Hierarchies", "Collections",
}

var noiseVenues = []string{"VLDB", "SIGMOD", "EDBT", "PODS"}

var featureNames = []string{
	"colorhistogram", "texture", "shape", "luminance", "contrast",
	"saturation", "edgemap", "motion", "audiopitch", "tempo",
}

var keywordPool = []string{
	"landscape", "portrait", "indoor", "outdoor", "daylight", "night",
	"urban", "nature", "water", "sky", "crowd", "vehicle", "animal",
	"building", "texture", "closeup", "panorama", "silhouette",
}
