// Package datagen generates the two synthetic datasets the evaluation
// needs, substituting for data the paper used but that is not
// available offline:
//
//   - DBLP produces a bibliography shaped like the DBLP XML snapshot
//     the paper bulk-loaded for its Figure 7 case study (flat records
//     with author/title/pages/year/booktitle children). ICDE is absent
//     in 1985 — "note that there was no ICDE in 1985, hence the small
//     step" — and exactly two records carry page ranges that
//     substring-match a year, the counterpart of the paper's "just two
//     false positives".
//   - Multimedia produces a document of multimedia item descriptions in
//     the spirit of the paper's 200 MB feature-detector output [20],
//     with probe node pairs planted at every edge distance 0..20 so
//     that Figure 6's distance sweep has exact targets.
//
// Both generators are deterministic functions of their configuration,
// including the seed.
package datagen

import (
	"fmt"
	"math/rand"

	"ncq/internal/xmltree"
)

// DBLPConfig parameterises the synthetic bibliography.
type DBLPConfig struct {
	Seed             int64
	YearFrom, YearTo int // inclusive range, e.g. 1984..1999
	PubsPerVenueYear int // records per venue and year
}

// DefaultDBLPConfig mirrors the paper's case-study scale: sweeping the
// year interval 1999 back to 1984 accumulates on the order of 1100
// ICDE publications (the x-axis of Figure 7 runs to about 1200).
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{Seed: 1, YearFrom: 1984, YearTo: 1999, PubsPerVenueYear: 75}
}

// ICDEYearMissing is the year in which no ICDE took place (see the
// paper's Figure 7 discussion).
const ICDEYearMissing = 1985

// falsePositivePages are page ranges planted on two ICDE records whose
// string representation contains a year they were not published in;
// substring search for that year then hits the pages relation and the
// meet reports the enclosing record — the two false positives of the
// paper's case study. The keys are the years whose queries they
// pollute.
var falsePositivePages = map[int]string{
	1993: "1993-2004", // planted on an ICDE 1989 record
	1996: "996-1996",  // planted on an ICDE 1987 record
}

// DBLP generates the synthetic bibliography.
func DBLP(cfg DBLPConfig) *xmltree.Document {
	if cfg.YearTo < cfg.YearFrom {
		cfg.YearFrom, cfg.YearTo = cfg.YearTo, cfg.YearFrom
	}
	if cfg.PubsPerVenueYear <= 0 {
		cfg.PubsPerVenueYear = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	b := xmltree.NewBuilder("dblp")
	root := b.Root()
	venues := append([]string{"ICDE"}, noiseVenues...)
	plantedFP := map[int]bool{}
	for year := cfg.YearFrom; year <= cfg.YearTo; year++ {
		for _, venue := range venues {
			if venue == "ICDE" && year == ICDEYearMissing {
				continue
			}
			for i := 0; i < cfg.PubsPerVenueYear; i++ {
				pages := randomPages(r)
				// Plant the two false-positive page ranges on early
				// ICDE records of other years.
				if venue == "ICDE" {
					for fpYear, fpPages := range falsePositivePages {
						if !plantedFP[fpYear] && year != fpYear && i == 0 &&
							year == fpHostYear(fpYear) {
							pages = fpPages
							plantedFP[fpYear] = true
						}
					}
				}
				emitRecord(b, r, root, venue, year, i, pages)
			}
		}
	}
	doc, err := b.Done()
	if err != nil {
		panic(fmt.Sprintf("datagen: DBLP: %v", err)) // generator bug
	}
	return doc
}

// fpHostYear returns the publication year of the record hosting the
// false-positive pages for fpYear. It must differ from fpYear and lie
// early in the range so small sweeps already include it.
func fpHostYear(fpYear int) int {
	switch fpYear {
	case 1993:
		return 1989
	case 1996:
		return 1987
	}
	return fpYear - 1
}

func emitRecord(b *xmltree.Builder, r *rand.Rand, root *xmltree.Node, venue string, year, i int, pages string) {
	key := fmt.Sprintf("conf/%s/%s%d-%d", lower(venue), lastNames[r.Intn(len(lastNames))], year%100, i)
	rec := b.Element(root, "inproceedings", xmltree.Attr{Name: "key", Value: key})
	for a, an := 0, 1+r.Intn(3); a < an; a++ {
		author := b.Element(rec, "author")
		b.Text(author, firstNames[r.Intn(len(firstNames))]+" "+lastNames[r.Intn(len(lastNames))])
	}
	title := b.Element(rec, "title")
	b.Text(title, randomTitle(r))
	pg := b.Element(rec, "pages")
	b.Text(pg, pages)
	yr := b.Element(rec, "year")
	b.Text(yr, fmt.Sprintf("%d", year))
	bt := b.Element(rec, "booktitle")
	b.Text(bt, venue)
	// The electronic-edition URL deliberately contains neither the year
	// nor the venue in its searchable capitalisation: otherwise every
	// record of a queried year would produce a spurious ee+year meet.
	ee := b.Element(rec, "ee")
	b.Text(ee, fmt.Sprintf("db/conf/%s/p%d-%d.html", lower(venue), year%100, i))
}

// randomPages draws a page range that never contains a four-digit
// number starting with 19 (so only the planted ranges can collide with
// year searches).
func randomPages(r *rand.Rand) string {
	start := 1 + r.Intn(800) // max end stays below 850, no "19xx" possible
	length := 9 + r.Intn(20)
	return fmt.Sprintf("%d-%d", start, start+length)
}

func randomTitle(r *rand.Rand) string {
	n := 3 + r.Intn(4)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += titleWords[r.Intn(len(titleWords))]
	}
	return out
}

func lower(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c >= 'A' && c <= 'Z' {
			out[i] = c + 'a' - 'A'
		}
	}
	return string(out)
}
