package datagen

import (
	"fmt"
	"strings"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/core"
	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

func smallDBLP() DBLPConfig {
	return DBLPConfig{Seed: 1, YearFrom: 1984, YearTo: 1999, PubsPerVenueYear: 3}
}

func TestDefaultConfigs(t *testing.T) {
	d := DefaultDBLPConfig()
	if d.YearFrom != 1984 || d.YearTo != 1999 || d.PubsPerVenueYear != 75 {
		t.Errorf("DefaultDBLPConfig = %+v", d)
	}
	m := DefaultMultimediaConfig()
	if m.Items < 1000 || m.MaxProbeDistance != 20 {
		t.Errorf("DefaultMultimediaConfig = %+v", m)
	}
}

func TestDBLPSwappedYearRange(t *testing.T) {
	// YearTo < YearFrom is normalised, not an error.
	doc := DBLP(DBLPConfig{Seed: 1, YearFrom: 1999, YearTo: 1998, PubsPerVenueYear: 1})
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(doc.Root.Children) != 10 { // 5 venues × 2 years × 1 pub
		t.Errorf("records = %d, want 10", len(doc.Root.Children))
	}
	// Zero pubs is clamped to 1.
	doc = DBLP(DBLPConfig{Seed: 1, YearFrom: 1999, YearTo: 1999, PubsPerVenueYear: 0})
	if len(doc.Root.Children) != 5 {
		t.Errorf("records = %d, want 5", len(doc.Root.Children))
	}
}

func TestFPHostYears(t *testing.T) {
	for fpYear := range falsePositivePages {
		host := fpHostYear(fpYear)
		if host == fpYear {
			t.Errorf("host year for %d equals the planted year", fpYear)
		}
		if host < 1984 || host > 1999 {
			t.Errorf("host year %d outside the generated range", host)
		}
	}
	// The fallback path for unknown years.
	if got := fpHostYear(1990); got != 1989 {
		t.Errorf("fallback host = %d, want 1989", got)
	}
}

func TestDBLPDeterministic(t *testing.T) {
	a := DBLP(smallDBLP())
	b := DBLP(smallDBLP())
	if !xmltree.Equal(a, b) {
		t.Error("same config produced different documents")
	}
	c := DBLP(DBLPConfig{Seed: 2, YearFrom: 1984, YearTo: 1999, PubsPerVenueYear: 3})
	if xmltree.Equal(a, c) {
		t.Error("different seeds produced identical documents")
	}
}

func TestDBLPValid(t *testing.T) {
	doc := DBLP(smallDBLP())
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "dblp" {
		t.Errorf("root = %q", doc.Root.Label)
	}
}

func TestDBLPNoICDEIn1985(t *testing.T) {
	doc := DBLP(smallDBLP())
	count := map[string]int{} // "venue/year" -> records
	for _, rec := range doc.Root.Children {
		var venue, year string
		for _, f := range rec.Children {
			if len(f.Children) == 0 {
				continue
			}
			switch f.Label {
			case "booktitle":
				venue = f.Children[0].Text
			case "year":
				year = f.Children[0].Text
			}
		}
		count[venue+"/"+year]++
	}
	if n := count["ICDE/1985"]; n != 0 {
		t.Errorf("ICDE 1985 has %d records, want 0 (the paper's gap)", n)
	}
	for y := 1984; y <= 1999; y++ {
		if y == ICDEYearMissing {
			continue
		}
		if n := count[fmt.Sprintf("ICDE/%d", y)]; n != 3 {
			t.Errorf("ICDE %d has %d records, want 3", y, n)
		}
	}
	if n := count["VLDB/1985"]; n != 3 {
		t.Errorf("VLDB 1985 has %d records, want 3 (only ICDE pauses)", n)
	}
}

func TestDBLPRecordShape(t *testing.T) {
	doc := DBLP(smallDBLP())
	rec := doc.Root.Children[0]
	if rec.Label != "inproceedings" {
		t.Fatalf("first record = %q", rec.Label)
	}
	if _, ok := rec.Attr("key"); !ok {
		t.Error("record has no key attribute")
	}
	var fields []string
	for _, f := range rec.Children {
		fields = append(fields, f.Label)
	}
	joined := strings.Join(fields, ",")
	for _, want := range []string{"author", "title", "pages", "year", "booktitle", "ee"} {
		if !strings.Contains(joined, want) {
			t.Errorf("record fields %v missing %q", fields, want)
		}
	}
}

func TestDBLPFalsePositivePagesPlanted(t *testing.T) {
	doc := DBLP(smallDBLP())
	store, err := monetx.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	idx := fulltext.New(store)
	for fpYear, fpPages := range falsePositivePages {
		hits := idx.SearchSubstring(fpPages)
		if len(hits) != 1 {
			t.Errorf("planted pages %q found %d times, want 1", fpPages, len(hits))
			continue
		}
		// The planted range must substring-match its target year.
		if !strings.Contains(fpPages, fmt.Sprintf("%d", fpYear)) {
			t.Errorf("planted pages %q does not contain year %d", fpPages, fpYear)
		}
	}
	// Un-planted page ranges never collide with a year: searching any
	// year must only hit year cdata nodes plus the planted pages.
	for y := 1984; y <= 1999; y++ {
		for _, h := range idx.SearchSubstring(fmt.Sprintf("%d", y)) {
			p := store.Summary().String(h.Path)
			okPath := strings.HasSuffix(p, "/year/cdata@string")
			if !okPath {
				if !strings.HasSuffix(p, "/pages/cdata@string") || !isPlanted(h.Value) {
					t.Errorf("year %d hit unexpected relation %s value %q", y, p, h.Value)
				}
			}
		}
	}
}

func isPlanted(v string) bool {
	for _, fp := range falsePositivePages {
		if v == fp {
			return true
		}
	}
	return false
}

// TestDBLPCaseStudyQuery runs the Figure 7 query end-to-end at small
// scale: full-text "ICDE" + year, meet with the root excluded, and
// checks that the answers are exactly the ICDE records of that year
// (plus the documented false positive when its year is queried).
func TestDBLPCaseStudyQuery(t *testing.T) {
	doc := DBLP(smallDBLP())
	store, err := monetx.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	idx := fulltext.New(store)
	for _, year := range []string{"1999", "1987", "1993"} {
		groups := idx.Groups(append(idx.SearchSubstring("ICDE"), idx.SearchSubstring(year)...))
		results, _, err := core.Meet(store, groups, core.ExcludeRoot(store))
		if err != nil {
			t.Fatal(err)
		}
		wantFP := 0
		if year == "1993" || year == "1996" {
			wantFP = 1
		}
		var trueHits, otherHits int
		for _, r := range results {
			if store.Label(r.Meet) != "inproceedings" {
				t.Errorf("year %s: meet at %s, want records only", year, store.PathString(r.Meet))
				continue
			}
			venue, yr := recordVenueYear(store, r.Meet)
			if venue == "ICDE" && yr == year {
				trueHits++
			} else {
				otherHits++
			}
		}
		if trueHits != 3 {
			t.Errorf("year %s: %d true ICDE hits, want 3", year, trueHits)
		}
		if otherHits != wantFP {
			t.Errorf("year %s: %d false positives, want %d", year, otherHits, wantFP)
		}
	}
}

// recordVenueYear extracts booktitle and year of a record through the
// store's relational interface.
func recordVenueYear(store *monetx.Store, rec bat.OID) (venue, year string) {
	for _, c := range store.Children(rec) {
		label := store.Label(c)
		if label != "booktitle" && label != "year" {
			continue
		}
		for _, cc := range store.Children(c) {
			if t, ok := store.Text(cc); ok {
				if label == "booktitle" {
					venue = t
				} else {
					year = t
				}
			}
		}
	}
	return venue, year
}
