package datagen

import (
	"testing"

	"ncq/internal/core"
	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

func smallMM() MultimediaConfig {
	return MultimediaConfig{Seed: 2, Items: 50, MaxProbeDistance: 20}
}

func TestMultimediaDeterministic(t *testing.T) {
	a := Multimedia(smallMM())
	b := Multimedia(smallMM())
	if !xmltree.Equal(a, b) {
		t.Error("same config produced different documents")
	}
}

func TestMultimediaValid(t *testing.T) {
	doc := Multimedia(smallMM())
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "collection" {
		t.Errorf("root = %q", doc.Root.Label)
	}
	if len(doc.Root.Children) != 51 { // probes + 50 items
		t.Errorf("root has %d children, want 51", len(doc.Root.Children))
	}
}

// TestMultimediaProbeDistances is the load-bearing property for the
// Figure 6 experiment: for every distance d the two probe terms have
// unique full-text hits exactly d edges apart, and their meet's join
// count equals d.
func TestMultimediaProbeDistances(t *testing.T) {
	doc := Multimedia(smallMM())
	store, err := monetx.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	idx := fulltext.New(store)
	for d := 0; d <= 20; d++ {
		termA, termB := ProbeTerms(d)
		hitsA := idx.Search(termA)
		hitsB := idx.Search(termB)
		if len(hitsA) != 1 || len(hitsB) != 1 {
			t.Fatalf("distance %d: probe hits = %d/%d, want 1/1", d, len(hitsA), len(hitsB))
		}
		_, joins, err := core.Meet2(store, hitsA[0].Owner, hitsB[0].Owner)
		if err != nil {
			t.Fatal(err)
		}
		if joins != d {
			t.Errorf("distance %d: Meet2 joins = %d", d, joins)
		}
	}
}

func TestMultimediaZeroItems(t *testing.T) {
	doc := Multimedia(MultimediaConfig{Seed: 1, Items: 0, MaxProbeDistance: 3})
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(doc.Root.Children) != 1 {
		t.Errorf("root children = %d, want just the probes subtree", len(doc.Root.Children))
	}
}

func TestMultimediaNegativeConfigClamped(t *testing.T) {
	doc := Multimedia(MultimediaConfig{Seed: 1, Items: -5, MaxProbeDistance: -1})
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultimediaSerializationRoundTrip(t *testing.T) {
	doc := Multimedia(MultimediaConfig{Seed: 2, Items: 10, MaxProbeDistance: 8})
	back, err := xmltree.ParseString(doc.XMLString())
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, back) {
		t.Error("multimedia document does not round-trip through XML")
	}
}

func TestDBLPSerializationRoundTrip(t *testing.T) {
	doc := DBLP(DBLPConfig{Seed: 1, YearFrom: 1998, YearTo: 1999, PubsPerVenueYear: 2})
	back, err := xmltree.ParseString(doc.XMLString())
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, back) {
		t.Error("DBLP document does not round-trip through XML")
	}
}
