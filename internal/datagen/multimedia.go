package datagen

import (
	"fmt"
	"math/rand"

	"ncq/internal/xmltree"
)

// MultimediaConfig parameterises the synthetic multimedia description
// document (the stand-in for the paper's 200 MB feature-detector
// output).
type MultimediaConfig struct {
	Seed  int64
	Items int // number of multimedia items (each ~30 nodes of bulk)

	// MaxProbeDistance is the largest edge distance for which a probe
	// pair is planted; Figure 6 sweeps distances 0..20.
	MaxProbeDistance int
}

// DefaultMultimediaConfig yields roughly 10^5 nodes, large enough for a
// realistic full-text/meet cost ratio while loading in well under a
// second.
func DefaultMultimediaConfig() MultimediaConfig {
	return MultimediaConfig{Seed: 2, Items: 3000, MaxProbeDistance: 20}
}

// ProbeTerms returns the two search terms whose (unique) full-text hits
// lie exactly dist edges apart in the generated document. For dist 0
// both terms hit the same cdata node.
func ProbeTerms(dist int) (a, b string) {
	return fmt.Sprintf("probeA%d", dist), fmt.Sprintf("probeB%d", dist)
}

// Multimedia generates the synthetic description document. Each item
// holds media metadata and feature-detector output (histograms,
// keywords); one dedicated probes subtree plants, for every distance
// d in 0..MaxProbeDistance, a pair of unique marker strings exactly d
// edges apart.
func Multimedia(cfg MultimediaConfig) *xmltree.Document {
	if cfg.Items < 0 {
		cfg.Items = 0
	}
	if cfg.MaxProbeDistance < 0 {
		cfg.MaxProbeDistance = 0
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	b := xmltree.NewBuilder("collection")
	root := b.Root()

	probes := b.Element(root, "probes")
	for d := 0; d <= cfg.MaxProbeDistance; d++ {
		plantProbe(b, probes, d)
	}

	for i := 0; i < cfg.Items; i++ {
		emitItem(b, r, root, i)
	}
	doc, err := b.Done()
	if err != nil {
		panic(fmt.Sprintf("datagen: Multimedia: %v", err)) // generator bug
	}
	return doc
}

// plantProbe creates two full-text targets exactly dist edges apart
// carrying the unique ProbeTerms(dist) markers.
//
//	dist 0:  one cdata node holding both terms (both hits own the same
//	         node),
//	dist d:  a fork element whose attribute holds term A (attribute
//	         hits bind their owning element) and a descending chain of
//	         d-1 elements ending in a cdata leaf holding term B — the
//	         leaf is exactly d edges below the fork.
func plantProbe(b *xmltree.Builder, probes *xmltree.Node, dist int) {
	termA, termB := ProbeTerms(dist)
	probe := b.Element(probes, "probe", xmltree.Attr{Name: "d", Value: fmt.Sprintf("%d", dist)})
	if dist == 0 {
		leaf := b.Element(probe, "mark")
		b.Text(leaf, termA+" "+termB)
		return
	}
	cur := b.Element(probe, "fork", xmltree.Attr{Name: "m", Value: termA})
	for i := 0; i < dist-1; i++ {
		cur = b.Element(cur, "n")
	}
	b.Text(cur, termB)
}

func emitItem(b *xmltree.Builder, r *rand.Rand, root *xmltree.Node, i int) {
	item := b.Element(root, "item", xmltree.Attr{Name: "id", Value: fmt.Sprintf("m%06d", i)})
	src := b.Element(item, "source")
	u := b.Element(src, "url")
	b.Text(u, fmt.Sprintf("media/archive/%04d/object%06d.mpg", r.Intn(10000), i))
	fmtEl := b.Element(src, "format")
	b.Text(fmtEl, []string{"jpeg", "mpeg", "wav", "png"}[r.Intn(4)])

	features := b.Element(item, "features")
	for f, fn := 0, 2+r.Intn(3); f < fn; f++ {
		name := featureNames[r.Intn(len(featureNames))]
		feat := b.Element(features, "feature", xmltree.Attr{Name: "detector", Value: name})
		for v, vn := 0, 1+r.Intn(3); v < vn; v++ {
			val := b.Element(feat, "value")
			b.Text(val, fmt.Sprintf("%d.%03d", r.Intn(10), r.Intn(1000)))
		}
	}

	annot := b.Element(item, "annotation")
	kw := b.Element(annot, "keywords")
	for k, kn := 0, 1+r.Intn(4); k < kn; k++ {
		w := b.Element(kw, "keyword")
		b.Text(w, keywordPool[r.Intn(len(keywordPool))])
	}
}
