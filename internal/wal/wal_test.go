package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func openOrDie(t *testing.T, path string, p Policy) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, p)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tempLog(t)
	l, recs := openOrDie(t, path, PolicyAlways)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		{Op: OpPut, Gen: 1, Name: "dblp", Shards: 4},
		{Op: OpPut, Gen: 2, Name: "bib", Shards: 1},
		{Op: OpDelete, Gen: 3, Name: "dblp"},
		{Op: OpGen, Gen: 9},
		{Op: OpPut, Gen: 10, Name: "名前 with spaces", Shards: 64},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != uint64(len(want)) || st.Fsyncs < uint64(len(want)) || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openOrDie(t, path, PolicyAlways)
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay = %+v, want %+v", got, want)
	}
	if l2.Stats().Replayed != len(want) || l2.Stats().Truncated {
		t.Errorf("stats after reopen = %+v", l2.Stats())
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := tempLog(t)
	l, _ := openOrDie(t, path, PolicyAlways)
	good := Record{Op: OpPut, Gen: 1, Name: "keep", Shards: 1}
	if err := l.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := encodeRecord(Record{Op: OpPut, Gen: 2, Name: "torn-away", Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix of an appended record is a legitimate crash
	// state; recovery must keep the good record and drop the tail.
	for cut := 1; cut < len(torn); cut++ {
		if err := os.WriteFile(path, append(append([]byte(nil), whole...), torn[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs, err := Open(path, PolicyAlways)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0] != good {
			t.Fatalf("cut %d: replay = %+v", cut, recs)
		}
		if !l2.Stats().Truncated {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
		// The torn bytes are gone: a third open sees a clean log.
		if err := l2.Append(Record{Op: OpPut, Gen: 2, Name: "after", Shards: 1}); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		_, recs3, err := Open(path, PolicyAlways)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if len(recs3) != 2 || recs3[1].Name != "after" {
			t.Fatalf("cut %d reopen: replay = %+v", cut, recs3)
		}
	}
}

func TestInteriorCorruptionIsHardError(t *testing.T) {
	path := tempLog(t)
	l, _ := openOrDie(t, path, PolicyAlways)
	for gen := uint64(1); gen <= 3; gen++ {
		if err := l.Append(Record{Op: OpPut, Gen: gen, Name: "doc", Shards: 1}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record.
	mut := append([]byte(nil), raw...)
	mut[len(magic)+headerLen+5+headerLen+2] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(path, PolicyAlways)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	if ce.Offset == 0 || ce.Path != path {
		t.Errorf("corrupt error lacks diagnosis: %+v", ce)
	}
}

func TestBadMagicAndBadOp(t *testing.T) {
	path := tempLog(t)
	if err := os.WriteFile(path, []byte("DEFINITELYNOTAWAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, PolicyAlways); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := decodeRecord([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := decodeRecord([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 200, 0, 0, 0}); err == nil {
		t.Error("ragged name length accepted")
	}
}

func TestBatchPolicyCoalescesFsyncs(t *testing.T) {
	path := tempLog(t)
	l, _ := openOrDie(t, path, PolicyBatch)
	defer l.Close()
	for i := 0; i < 100; i++ {
		if err := l.Append(Record{Op: OpPut, Gen: uint64(i + 1), Name: "d", Shards: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// 100 appends land within one BatchInterval on any plausible
	// machine; allow a couple of boundary crossings but not 1:1.
	if st := l.Stats(); st.Fsyncs > 10 {
		t.Errorf("batch policy fsynced %d times for 100 appends", st.Fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestOffPolicyStillRecovers(t *testing.T) {
	path := tempLog(t)
	l, _ := openOrDie(t, path, PolicyOff)
	if err := l.Append(Record{Op: OpPut, Gen: 1, Name: "d", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 0 {
		t.Errorf("off policy fsynced %d times", st.Fsyncs)
	}
	l.Close()
	_, recs := openOrDie(t, path, PolicyOff)
	if len(recs) != 1 {
		t.Fatalf("replay = %+v", recs)
	}
}

func TestRewrite(t *testing.T) {
	path := tempLog(t)
	l, _ := openOrDie(t, path, PolicyAlways)
	for gen := uint64(1); gen <= 5; gen++ {
		if err := l.Append(Record{Op: OpPut, Gen: gen, Name: "churn", Shards: 1}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	live := []Record{
		{Op: OpPut, Gen: 5, Name: "churn", Shards: 1},
		{Op: OpGen, Gen: 7},
	}
	if err := Rewrite(path, live); err != nil {
		t.Fatal(err)
	}
	_, recs := openOrDie(t, path, PolicyAlways)
	if !reflect.DeepEqual(recs, live) {
		t.Errorf("after rewrite replay = %+v, want %+v", recs, live)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": PolicyAlways, "batch": PolicyBatch, "off": PolicyOff} {
		p, err := ParsePolicy(s)
		if err != nil || p != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
		if p.String() != s {
			t.Errorf("String() = %q, want %q", p.String(), s)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestAppendRejectsOversizedName(t *testing.T) {
	path := tempLog(t)
	l, _ := openOrDie(t, path, PolicyAlways)
	defer l.Close()
	if err := l.Append(Record{Op: OpPut, Gen: 1, Name: string(bytes.Repeat([]byte("x"), maxRecord))}); err == nil {
		t.Error("oversized name accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: OpPut, Gen: 1, Name: "x"}); err == nil {
		t.Error("append to closed log accepted")
	}
}

// BenchmarkWALAppend measures the mutation-log hot path: one framed,
// checksummed append per op. The batch policy is the serving-relevant
// configuration — PolicyAlways would benchmark the disk, not the
// code.
func BenchmarkWALAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "wal.log")
	l, _, err := Open(path, PolicyBatch)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := Record{Op: OpPut, Gen: 1, Name: "benchmark-document", Shards: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Gen = uint64(i + 1)
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
