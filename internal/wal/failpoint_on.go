//go:build ncqfail

package wal

import (
	"io"
	"os"
)

// CrashExitCode is how a process killed at an armed crash point
// exits; the crash-matrix tests assert it so an ordinary test failure
// in the child is never mistaken for the injected crash.
const CrashExitCode = 41

// armed reports whether the named crash point is selected via the
// NCQ_CRASHPOINT environment variable.
func armed(point string) bool { return os.Getenv("NCQ_CRASHPOINT") == point }

// Crashpoint kills the process when the named point is armed. It
// deliberately uses os.Exit — no deferred cleanup, no flushes — to
// model a real crash as closely as a unix process can.
func Crashpoint(point string) {
	if armed(point) {
		os.Exit(CrashExitCode)
	}
}

// crashyWrite models a torn append: when point is armed it writes
// only the first half of b and exits, leaving a half record on disk
// exactly as a crash mid-write would.
func crashyWrite(w io.Writer, b []byte, point string) error {
	if armed(point) && len(b) > 1 {
		_, _ = w.Write(b[:len(b)/2])
		if f, ok := w.(*os.File); ok {
			_ = f.Sync() // make sure the torn half is what recovery sees
		}
		os.Exit(CrashExitCode)
	}
	_, err := w.Write(b)
	return err
}

// tornWriter tears a stream: when its point is armed, the first Write
// persists only half its bytes and exits, leaving a truncated file
// behind exactly as a crash mid-stream would.
type tornWriter struct {
	w     io.Writer
	point string
}

func (c *tornWriter) Write(p []byte) (int, error) {
	return len(p), crashyWrite(c.w, p, c.point)
}

// CrashWriter wraps w so an armed point tears the stream at its first
// write.
func CrashWriter(w io.Writer, point string) io.Writer {
	return &tornWriter{w: w, point: point}
}
