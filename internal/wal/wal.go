// Package wal is the durability spine of a managed corpus: an
// append-only, checksummed, length-prefixed mutation log. Every
// membership mutation (document PUT or DELETE) is recorded together
// with the corpus generation it produced, so a restarted — or crashed
// — node can replay the log over its snapshot artifacts and come back
// at its exact pre-crash generation, preserving the generation-stamped
// cursor and cluster generation-vector invariants.
//
// On-disk format (all integers little-endian):
//
//	file:   magic "NCQWAL01" | record*
//	record: u32 payloadLen | u32 crc32(payload) | payload
//	payload: u8 op | u64 gen | u16 nameLen | name | u16 shards
//
// Recovery discipline (Open): a half-written final record — the
// signature of a crash mid-append — is dropped by truncating the file
// back to the last whole record. Anything earlier that fails its
// checksum is not a torn write (appends never leave valid data after
// a torn region) but corruption, and is a hard error carrying the
// byte offset so an operator can decide what to salvage.
//
// Appends follow a configurable fsync policy: PolicyAlways syncs
// before an append returns (no acknowledged mutation is ever lost),
// PolicyBatch coalesces syncs to at most one per BatchInterval
// (bounded loss window, much higher mutation throughput), PolicyOff
// leaves syncing to the OS (crash durability limited to what the page
// cache happened to flush).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Op discriminates log records.
type Op uint8

const (
	// OpPut records a document registration (add or replace); the
	// record's Gen names the snapshot directory holding its shards.
	OpPut Op = 1
	// OpDelete records a document eviction.
	OpDelete Op = 2
	// OpGen raises the generation floor without changing membership.
	// Compaction writes one as the final record so a compacted log
	// replays to the same generation as the history it replaced.
	OpGen Op = 3
)

// Record is one logged mutation.
type Record struct {
	Op     Op
	Gen    uint64 // corpus generation after the mutation
	Name   string // logical document name; empty for OpGen
	Shards int    // shard count of a put; 0 otherwise
}

const (
	magic = "NCQWAL01"
	// maxRecord bounds one record's payload; records hold metadata
	// (name + fixed fields), never document content, so anything
	// larger is corruption, not data.
	maxRecord = 1 << 16
	headerLen = 8 // u32 len + u32 crc
)

// Policy selects when appends reach stable storage.
type Policy int

const (
	// PolicyAlways fsyncs before every append returns.
	PolicyAlways Policy = iota
	// PolicyBatch coalesces fsyncs to at most one per BatchInterval;
	// an acknowledged mutation may be lost to a crash inside the
	// window.
	PolicyBatch
	// PolicyOff never fsyncs; the OS decides.
	PolicyOff
)

// BatchInterval is the widest window PolicyBatch leaves between an
// acknowledged append and the fsync that makes it durable.
const BatchInterval = 100 * time.Millisecond

// ParsePolicy maps the -fsync flag values onto policies.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "batch":
		return PolicyBatch, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want \"always\", \"batch\" or \"off\")", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyBatch:
		return "batch"
	case PolicyOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// CorruptError reports a checksum or framing failure before the final
// record — damage no crash can explain, which recovery must not paper
// over. The operator playbook lives in docs/OPERATIONS.md.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record at byte %d: %s; the log cannot be replayed past this point — restore the data directory from a copy, or truncate the log at this offset to accept losing every later mutation", e.Path, e.Offset, e.Reason)
}

// Stats counts a log's activity since Open.
type Stats struct {
	Appends   uint64 // records appended
	Fsyncs    uint64 // fsyncs issued by appends, Sync and Close
	Bytes     uint64 // bytes appended, framing included
	Replayed  int    // records recovered by Open
	Truncated bool   // Open dropped a torn final record
}

// Log is an open, append-only mutation log. Safe for concurrent use.
type Log struct {
	path   string
	policy Policy

	mu       sync.Mutex
	f        *os.File
	lastSync time.Time
	dirty    bool

	appends  atomic.Uint64
	fsyncs   atomic.Uint64
	bytes    atomic.Uint64
	replayed int
	torn     bool
}

// Open recovers the log at path (creating it if absent) and returns
// the append handle plus every recovered record in append order. A
// torn final record is truncated away silently; earlier corruption
// fails with a *CorruptError.
func Open(path string, policy Policy) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	recs, keep, torn, err := readRecords(f, path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if torn {
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{path: path, policy: policy, f: f, lastSync: time.Now(), replayed: len(recs), torn: torn}
	return l, recs, nil
}

// readRecords reads every whole record, distinguishing a torn tail
// (keep = offset of the last whole record, torn = true) from interior
// corruption (a *CorruptError).
func readRecords(f *os.File, path string) (recs []Record, keep int64, torn bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, fmt.Errorf("wal: seek: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: size: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, fmt.Errorf("wal: seek: %w", err)
	}
	if size == 0 {
		// Fresh log: stamp the magic immediately so a crash before the
		// first append still leaves a recognisable file.
		if _, err := f.Write([]byte(magic)); err != nil {
			return nil, 0, false, fmt.Errorf("wal: write magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, 0, false, fmt.Errorf("wal: sync magic: %w", err)
		}
		return nil, int64(len(magic)), false, nil
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != magic {
		if err == nil {
			err = errors.New("bad magic")
		}
		return nil, 0, false, &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("not a wal file: %v", err)}
	}
	off := int64(len(magic))
	buf := make([]byte, 0, 4096)
	for off < size {
		remaining := size - off
		if remaining < headerLen {
			return recs, off, true, nil // torn header
		}
		var frame [headerLen]byte
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			return nil, 0, false, fmt.Errorf("wal: read at %d: %w", off, err)
		}
		plen := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if plen > maxRecord {
			return nil, 0, false, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("record length %d exceeds the %d byte bound", plen, maxRecord)}
		}
		if remaining < headerLen+int64(plen) {
			return recs, off, true, nil // torn payload
		}
		if cap(buf) < int(plen) {
			buf = make([]byte, plen)
		}
		buf = buf[:plen]
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, 0, false, fmt.Errorf("wal: read at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return nil, 0, false, &CorruptError{Path: path, Offset: off, Reason: "checksum mismatch"}
		}
		rec, err := decodeRecord(buf)
		if err != nil {
			return nil, 0, false, &CorruptError{Path: path, Offset: off, Reason: err.Error()}
		}
		recs = append(recs, rec)
		off += headerLen + int64(plen)
	}
	return recs, off, false, nil
}

// encodeRecord renders the framed record: header + payload.
func encodeRecord(r Record) ([]byte, error) {
	if len(r.Name) > maxRecord/2 {
		return nil, fmt.Errorf("wal: name of %d bytes exceeds the record bound", len(r.Name))
	}
	payload := make([]byte, 0, 13+len(r.Name))
	payload = append(payload, byte(r.Op))
	payload = binary.LittleEndian.AppendUint64(payload, r.Gen)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(r.Name)))
	payload = append(payload, r.Name...)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(r.Shards))
	out := make([]byte, 0, headerLen+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...), nil
}

func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 13 {
		return Record{}, fmt.Errorf("payload of %d bytes is shorter than the fixed fields", len(payload))
	}
	var r Record
	r.Op = Op(payload[0])
	switch r.Op {
	case OpPut, OpDelete, OpGen:
	default:
		return Record{}, fmt.Errorf("unknown op %d", payload[0])
	}
	r.Gen = binary.LittleEndian.Uint64(payload[1:9])
	nameLen := int(binary.LittleEndian.Uint16(payload[9:11]))
	if len(payload) != 13+nameLen {
		return Record{}, fmt.Errorf("payload of %d bytes does not match name length %d", len(payload), nameLen)
	}
	r.Name = string(payload[11 : 11+nameLen])
	r.Shards = int(binary.LittleEndian.Uint16(payload[11+nameLen:]))
	return r, nil
}

// Append logs one record, making it durable per the fsync policy
// before returning. Under PolicyAlways a nil return means the record
// survives any crash from here on.
func (l *Log) Append(r Record) error {
	b, err := encodeRecord(r)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: append to closed log")
	}
	if err := crashyWrite(l.f, b, "wal-append-mid"); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.appends.Add(1)
	l.bytes.Add(uint64(len(b)))
	l.dirty = true
	switch l.policy {
	case PolicyAlways:
		return l.syncLocked()
	case PolicyBatch:
		if time.Since(l.lastSync) >= BatchInterval {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync forces pending appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: sync of closed log")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs.Add(1)
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Close syncs pending appends and releases the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Stats returns activity counters since Open.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.appends.Load(),
		Fsyncs:    l.fsyncs.Load(),
		Bytes:     l.bytes.Load(),
		Replayed:  l.replayed,
		Truncated: l.torn,
	}
}

// Rewrite atomically replaces the log at path with one holding exactly
// recs: temp file, fsync, rename, fsync of the directory — a crash at
// any point leaves either the old log or the new one, never a mix.
// This is the compaction primitive: the caller passes the live
// history (winning puts plus a final OpGen floor).
func Rewrite(path string, recs []Record) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wal-rewrite-*")
	if err != nil {
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write([]byte(magic)); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	for _, r := range recs {
		b, err := encodeRecord(r)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(b); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: rewrite: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: rewrite close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: rewrite rename: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-renamed entry survives a
// crash. Rename makes the swap atomic; the directory sync makes it
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
