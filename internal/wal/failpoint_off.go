//go:build !ncqfail

package wal

import "io"

// Crashpoint is a failpoint hook for crash-safety tests. In normal
// builds it is a no-op the compiler erases; under the ncqfail build
// tag (failpoint_on.go) it kills the process when the named point is
// armed via NCQ_CRASHPOINT, so recovery tests can observe every
// half-finished persistence state a real crash could leave.
func Crashpoint(string) {}

// crashyWrite writes b to w. Under the ncqfail tag it can tear the
// write in half at an armed crash point — the mid-append torn-record
// state recovery must truncate away.
func crashyWrite(w io.Writer, b []byte, _ string) error {
	_, err := w.Write(b)
	return err
}

// CrashWriter wraps w; in normal builds it is transparent. Under the
// ncqfail tag it exits at the armed point after the first write,
// leaving a partially written file behind.
func CrashWriter(w io.Writer, point string) io.Writer { return w }
