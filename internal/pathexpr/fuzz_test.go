package pathexpr

import (
	"testing"

	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

// FuzzCompile feeds arbitrary pattern strings to the compiler; accepted
// patterns must evaluate against a summary without panicking.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"/a/b/c",
		"//cdata",
		"/bibliography/%/year",
		"/*/*",
		"//article@key",
		"//cdata@*",
		"%", "@", "///", "/a@", "/a/%/%/b",
		"/ü/日本",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	store, err := monetx.Load(xmltree.Fig1())
	if err != nil {
		f.Fatal(err)
	}
	sum := store.Summary()
	f.Fuzz(func(t *testing.T, in string) {
		p, err := Compile(in)
		if err != nil {
			return
		}
		matched := p.SelectPaths(sum)
		for _, id := range matched {
			if !p.Matches(sum, id) {
				t.Fatalf("SelectPaths returned non-matching path for %q", in)
			}
		}
	})
}
