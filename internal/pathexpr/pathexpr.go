// Package pathexpr implements the regular path expressions that the
// paper's introduction uses as the state-of-the-art baseline: "UNIX
// command line-like regular expressions that are evaluated against the
// actual database" (Section 1, citing Lorel, XML-QL, XQL and Quilt).
//
// A pattern is an absolute path whose steps may be
//
//	label   a literal element label,
//	*       exactly one arbitrary label (schema wildcard for one step),
//	%       any sequence of labels, including the empty one
//	        (the paper's footnote-1 wildcard),
//	//      shorthand separator equivalent to /%/,
//
// optionally followed by @name or @* to address attribute paths.
// Patterns are compiled once and then evaluated against a path summary,
// yielding the set of matching PathIDs — which is cheap, because the
// summary is small compared to the database instance.
package pathexpr

import (
	"fmt"
	"strings"

	"ncq/internal/pathsum"
)

type stepKind uint8

const (
	stepLabel stepKind = iota // match one specific label
	stepOne                   // match exactly one arbitrary label (*)
	stepAny                   // match any (possibly empty) label sequence (%)
)

type step struct {
	kind  stepKind
	label string
}

// Pattern is a compiled path expression.
type Pattern struct {
	src      string
	steps    []step
	attr     string // attribute name to match; "" = element pattern
	attrAny  bool   // @* — any attribute of the matched element path
	wantAttr bool   // pattern addresses attribute paths
}

// Compile parses a path expression. Patterns must be absolute (start
// with "/" or "//").
func Compile(src string) (*Pattern, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("pathexpr: empty pattern")
	}
	p := &Pattern{src: src}
	// Split off the attribute suffix first.
	if i := strings.LastIndexByte(s, '@'); i >= 0 {
		attr := s[i+1:]
		s = s[:i]
		if attr == "" {
			return nil, fmt.Errorf("pathexpr: %q: empty attribute name after '@'", src)
		}
		p.wantAttr = true
		if attr == "*" {
			p.attrAny = true
		} else if strings.ContainsAny(attr, "/*%@") {
			return nil, fmt.Errorf("pathexpr: %q: invalid attribute name %q", src, attr)
		} else {
			p.attr = attr
		}
		if s == "" {
			return nil, fmt.Errorf("pathexpr: %q: attribute without element path", src)
		}
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("pathexpr: %q: pattern must be absolute (start with / or //)", src)
	}
	// "//" means "descendant": insert a % step.
	s = strings.ReplaceAll(s, "//", "/%/")
	s = strings.TrimPrefix(s, "/")
	s = strings.TrimSuffix(s, "/") // tolerate trailing slash from "//" at the end
	if s == "" {
		return nil, fmt.Errorf("pathexpr: %q: no steps", src)
	}
	for _, part := range strings.Split(s, "/") {
		switch part {
		case "":
			return nil, fmt.Errorf("pathexpr: %q: empty step", src)
		case "*":
			p.steps = append(p.steps, step{kind: stepOne})
		case "%":
			// Collapse adjacent % steps.
			if n := len(p.steps); n > 0 && p.steps[n-1].kind == stepAny {
				continue
			}
			p.steps = append(p.steps, step{kind: stepAny})
		default:
			if strings.ContainsAny(part, "*%@") {
				return nil, fmt.Errorf("pathexpr: %q: wildcard must be a whole step in %q", src, part)
			}
			p.steps = append(p.steps, step{kind: stepLabel, label: part})
		}
	}
	return p, nil
}

// MustCompile is Compile that panics on error, for fixed patterns.
func MustCompile(src string) *Pattern {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the source text of the pattern.
func (p *Pattern) String() string { return p.src }

// IsAttr reports whether the pattern addresses attribute paths.
func (p *Pattern) IsAttr() bool { return p.wantAttr }

// Step is the read-only view of one compiled element step, for
// matchers that work on the compiled form instead of re-parsing the
// source — internal/vague's relaxation engine walks these. Exactly one
// of the three shapes holds: a literal Label, One (*) or Any (%).
type Step struct {
	Label string // literal element label; "" for wildcard steps
	One   bool   // * — exactly one arbitrary label
	Any   bool   // % — any (possibly empty) label sequence
}

// Steps returns the compiled element steps of the pattern in order.
// The attribute suffix, if any, is reported by Attr, not here.
func (p *Pattern) Steps() []Step {
	out := make([]Step, len(p.steps))
	for i, st := range p.steps {
		switch st.kind {
		case stepLabel:
			out[i] = Step{Label: st.label}
		case stepOne:
			out[i] = Step{One: true}
		case stepAny:
			out[i] = Step{Any: true}
		}
	}
	return out
}

// Attr returns the pattern's attribute constraint: the literal name
// ("" when none), and whether @* was used. Meaningful only when IsAttr
// reports true.
func (p *Pattern) Attr() (name string, any bool) { return p.attr, p.attrAny }

// Matches reports whether the pattern matches the given path of the
// summary. Element patterns match only element paths; attribute
// patterns match only attribute paths (with the element part matched
// against the owner).
func (p *Pattern) Matches(sum *pathsum.Summary, id pathsum.PathID) bool {
	if id == pathsum.Invalid || int(id) >= sum.Len() {
		return false
	}
	isAttr := sum.Kind(id) == pathsum.Attr
	if isAttr != p.wantAttr {
		return false
	}
	labels := sum.Labels(id)
	if p.wantAttr {
		name := labels[len(labels)-1]
		labels = labels[:len(labels)-1]
		if !p.attrAny && name != p.attr {
			return false
		}
	}
	return matchSteps(labels, p.steps)
}

// matchSteps matches a label sequence against the steps by simulating
// the obvious NFA: state j means "steps[:j] have matched a prefix".
// A % step contributes an epsilon move j→j+1 (empty match) and a
// self-loop that consumes any label (the role of ".*").
func matchSteps(labels []string, steps []step) bool {
	ok := make([]bool, len(steps)+1)
	next := make([]bool, len(steps)+1)
	ok[0] = true
	closure := func(set []bool) {
		// Epsilon moves only go forward, so one pass suffices.
		for j := range steps {
			if set[j] && steps[j].kind == stepAny {
				set[j+1] = true
			}
		}
	}
	closure(ok)
	for _, l := range labels {
		for j := range next {
			next[j] = false
		}
		for j := range steps {
			if !ok[j] {
				continue
			}
			switch steps[j].kind {
			case stepLabel:
				if steps[j].label == l {
					next[j+1] = true
				}
			case stepOne:
				next[j+1] = true
			case stepAny:
				next[j] = true // consume l, stay inside %
			}
		}
		closure(next)
		ok, next = next, ok
	}
	return ok[len(steps)]
}

// SelectPaths returns all PathIDs of the summary matched by the
// pattern, in ascending ID order.
func (p *Pattern) SelectPaths(sum *pathsum.Summary) []pathsum.PathID {
	var out []pathsum.PathID
	for _, id := range sum.AllPaths() {
		if p.Matches(sum, id) {
			out = append(out, id)
		}
	}
	return out
}
