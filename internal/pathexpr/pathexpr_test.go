package pathexpr

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ncq/internal/monetx"
	"ncq/internal/pathsum"
	"ncq/internal/xmltree"
)

func fig1Summary(t *testing.T) *pathsum.Summary {
	t.Helper()
	s, err := monetx.Load(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	return s.Summary()
}

// matchedStrings renders the matched paths for easy comparison.
func matchedStrings(sum *pathsum.Summary, p *Pattern) []string {
	var out []string
	for _, id := range p.SelectPaths(sum) {
		out = append(out, sum.String(id))
	}
	return out
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"relative/path",
		"/a//",   // fine? trailing // is trimmed — see below
		"/a/b@",  // empty attribute
		"@key",   // attribute without element path
		"/a/b*c", // wildcard inside a step
		"/a/%x",  // wildcard inside a step
		"/a@k@j", // invalid attribute name
		"/a/@*x", // hmm
	}
	// "/a//" compiles (trailing // ≡ /%), so drop it from the error list.
	for _, src := range cases {
		if src == "/a//" {
			continue
		}
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileTrailingDescendant(t *testing.T) {
	p, err := Compile("/bibliography//")
	if err != nil {
		t.Fatalf("trailing // should compile: %v", err)
	}
	sum := fig1Summary(t)
	// /bibliography// ≡ /bibliography/% — matches bibliography and all
	// its element descendants.
	got := p.SelectPaths(sum)
	if len(got) != len(sum.ElemPaths()) {
		t.Errorf("matched %d paths, want all %d element paths", len(got), len(sum.ElemPaths()))
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile on bad pattern did not panic")
		}
	}()
	MustCompile("not absolute")
}

func TestExactPath(t *testing.T) {
	sum := fig1Summary(t)
	got := matchedStrings(sum, MustCompile("/bibliography/institute/article"))
	want := []string{"/bibliography/institute/article"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if got := matchedStrings(sum, MustCompile("/bibliography/nosuch")); got != nil {
		t.Errorf("nonexistent path matched %v", got)
	}
}

func TestStarStep(t *testing.T) {
	sum := fig1Summary(t)
	// /bibliography/*/article: * matches exactly one step (institute).
	got := matchedStrings(sum, MustCompile("/bibliography/*/article"))
	if !reflect.DeepEqual(got, []string{"/bibliography/institute/article"}) {
		t.Errorf("got %v", got)
	}
	// /*/institute matches with any root.
	got = matchedStrings(sum, MustCompile("/*/institute"))
	if !reflect.DeepEqual(got, []string{"/bibliography/institute"}) {
		t.Errorf("got %v", got)
	}
	// * does not match two steps.
	if got := matchedStrings(sum, MustCompile("/bibliography/*/author")); got != nil {
		t.Errorf("single * matched two steps: %v", got)
	}
}

func TestPercentWildcard(t *testing.T) {
	sum := fig1Summary(t)
	// The footnote-1 wildcard: any sequence of tags, including empty.
	got := matchedStrings(sum, MustCompile("/bibliography/%/year"))
	if !reflect.DeepEqual(got, []string{"/bibliography/institute/article/year"}) {
		t.Errorf("got %v", got)
	}
	// Empty expansion: /bibliography/% includes /bibliography itself.
	got = matchedStrings(sum, MustCompile("/bibliography/%"))
	if len(got) != len(sum.ElemPaths()) {
		t.Errorf("/bibliography/%% matched %d paths, want all %d", len(got), len(sum.ElemPaths()))
	}
}

func TestDescendantShorthand(t *testing.T) {
	sum := fig1Summary(t)
	got := matchedStrings(sum, MustCompile("//cdata"))
	want := []string{
		"/bibliography/institute/article/author/cdata",
		"/bibliography/institute/article/author/firstname/cdata",
		"/bibliography/institute/article/author/lastname/cdata",
		"/bibliography/institute/article/title/cdata",
		"/bibliography/institute/article/year/cdata",
	}
	if len(got) != len(want) {
		t.Fatalf("//cdata matched %v, want %v", got, want)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("//cdata missed %s", w)
		}
	}
	// //author//cdata: descendant within descendant.
	got = matchedStrings(sum, MustCompile("//author//cdata"))
	if len(got) != 3 {
		t.Errorf("//author//cdata matched %v, want 3 paths", got)
	}
}

func TestRootOnlyDescendant(t *testing.T) {
	sum := fig1Summary(t)
	// //* matches every element path (any non-empty label sequence).
	got := MustCompile("//*").SelectPaths(sum)
	if len(got) != len(sum.ElemPaths()) {
		t.Errorf("//* matched %d, want %d", len(got), len(sum.ElemPaths()))
	}
}

func TestAttributePatterns(t *testing.T) {
	sum := fig1Summary(t)
	got := matchedStrings(sum, MustCompile("//article@key"))
	if !reflect.DeepEqual(got, []string{"/bibliography/institute/article@key"}) {
		t.Errorf("//article@key = %v", got)
	}
	// @* matches any attribute, including the reserved cdata string.
	got = matchedStrings(sum, MustCompile("//cdata@*"))
	if len(got) != 5 {
		t.Errorf("//cdata@* matched %v, want the 5 cdata@string paths", got)
	}
	// Element pattern never matches attribute paths and vice versa.
	p := MustCompile("//article")
	for _, id := range p.SelectPaths(sum) {
		if sum.Kind(id) != pathsum.Elem {
			t.Error("element pattern matched an attribute path")
		}
	}
	if MustCompile("//article@key").Matches(sum, sum.Root()) {
		t.Error("attribute pattern matched the root element path")
	}
}

func TestIsAttrAndString(t *testing.T) {
	if !MustCompile("//a@k").IsAttr() || MustCompile("//a").IsAttr() {
		t.Error("IsAttr wrong")
	}
	if MustCompile("//a@k").String() != "//a@k" {
		t.Error("String should return source")
	}
}

func TestMatchesInvalidPath(t *testing.T) {
	sum := fig1Summary(t)
	p := MustCompile("//*")
	if p.Matches(sum, pathsum.Invalid) {
		t.Error("matched Invalid")
	}
	if p.Matches(sum, pathsum.PathID(9999)) {
		t.Error("matched out-of-range path")
	}
}

// TestMatchAgainstRegexOracle cross-checks the step NFA against a
// brute-force expansion on random label sequences.
func TestMatchAgainstRegexOracle(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	alphabet := []string{"a", "b", "c"}
	randomPattern := func() string {
		n := 1 + r.Intn(4)
		var parts []string
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				parts = append(parts, "*")
			case 1:
				parts = append(parts, "%")
			default:
				parts = append(parts, alphabet[r.Intn(len(alphabet))])
			}
		}
		return "/" + strings.Join(parts, "/")
	}
	// Oracle: recursive matcher.
	var oracle func(labels []string, steps []step) bool
	oracle = func(labels []string, steps []step) bool {
		if len(steps) == 0 {
			return len(labels) == 0
		}
		switch steps[0].kind {
		case stepLabel:
			return len(labels) > 0 && labels[0] == steps[0].label && oracle(labels[1:], steps[1:])
		case stepOne:
			return len(labels) > 0 && oracle(labels[1:], steps[1:])
		default: // stepAny
			if oracle(labels, steps[1:]) {
				return true
			}
			return len(labels) > 0 && oracle(labels[1:], steps)
		}
	}
	for trial := 0; trial < 3000; trial++ {
		src := randomPattern()
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		n := r.Intn(6)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = alphabet[r.Intn(len(alphabet))]
		}
		got := matchSteps(labels, p.steps)
		want := oracle(labels, p.steps)
		if got != want {
			t.Fatalf("pattern %q vs labels %v: NFA %v, oracle %v", src, labels, got, want)
		}
	}
}
