package query

import (
	"reflect"
	"strings"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

func fig1Engine(t *testing.T) *Engine {
	t.Helper()
	s, err := monetx.Load(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(s, fulltext.New(s))
}

// TestPaperExamplesIntroBaseline reproduces the introduction's regular
// path expression query: nodes whose offspring contains 'Bit' and
// '1999'. The answer includes the ancestors implied by the deepest
// match — the drawback the meet operator removes.
func TestPaperExamplesIntroBaseline(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`
		SELECT tag(e)
		FROM //* AS e
		WHERE e CONTAINS 'Bit' AND e CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	// article (o3) plus its implied ancestors institute (o2) and
	// bibliography (o1). (The paper's listing shows the bibliography
	// twice because its query binds the tag variable through two
	// separate path variables; with a single binding each node appears
	// once — the answer set is the same.)
	got := ans.Tags()
	want := []string{"bibliography", "institute", "article"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("baseline tags = %v, want %v", got, want)
	}
}

// TestPaperExamplesMeetQuery reproduces the reformulated query of
// Section 3.2, whose answer is "a true subset of what the solution in
// the introduction with regular path expressions returned":
// exactly the article.
func TestPaperExamplesMeetQuery(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`
		SELECT meet(e1, e2)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.IsMeet {
		t.Error("IsMeet not set")
	}
	if got := ans.Tags(); !reflect.DeepEqual(got, []string{"article"}) {
		t.Fatalf("meet tags = %v, want [article]", got)
	}
	r := ans.Rows[0]
	if r.OID != 3 {
		t.Errorf("meet OID = %d, want 3", r.OID)
	}
	if !reflect.DeepEqual(r.Witnesses, []bat.OID{8, 12}) {
		t.Errorf("witnesses = %v, want [8 12]", r.Witnesses)
	}
	if r.Distance != 5 {
		t.Errorf("distance = %d, want 5", r.Distance)
	}
	// The paper prints: <answer> <result> article </result> </answer>.
	xml := ans.XML()
	if !strings.Contains(xml, "<result> article </result>") {
		t.Errorf("XML = %s", xml)
	}
	if !reflect.DeepEqual(ans.Unmatched, []bat.OID{19}) {
		t.Errorf("unmatched = %v, want [19]", ans.Unmatched)
	}
}

func TestMeetQueryWithExclude(t *testing.T) {
	e := fig1Engine(t)
	// Exclude article results; with NEAREST the match climbs to the
	// institute instead of being swallowed.
	ans, err := e.Query(`
		SELECT meet(e1, e2; EXCLUDE //article, NEAREST)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Tags(); !reflect.DeepEqual(got, []string{"institute"}) {
		t.Fatalf("tags = %v, want [institute]", got)
	}
	// Without NEAREST the excluded meet is consumed silently.
	ans, err = e.Query(`
		SELECT meet(e1, e2; EXCLUDE //article)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 0 {
		t.Errorf("rows = %v, want none", ans.Tags())
	}
}

func TestMeetQueryWithin(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`
		SELECT meet(e1, e2; WITHIN 4)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 0 {
		t.Errorf("WITHIN 4 rows = %v, want none (distance is 5)", ans.Tags())
	}
	ans, err = e.Query(`
		SELECT meet(e1, e2; WITHIN 5)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Errorf("WITHIN 5 rows = %v, want the article", ans.Tags())
	}
}

func TestMeetQueryMaxLift(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`
		SELECT meet(e1, e2; MAXLIFT 2)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 0 {
		t.Errorf("MAXLIFT 2 rows = %v", ans.Tags())
	}
}

func TestProjectionQueries(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`SELECT path(e) FROM //year AS e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 || ans.Rows[0].Path != "/bibliography/institute/article/year" {
		t.Errorf("path rows = %+v", ans.Rows)
	}
	ans, err = e.Query(`SELECT value(t) FROM //title AS t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 || ans.Rows[0].Value != "How to Hack" || ans.Rows[1].Value != "Hacking & RSI" {
		t.Errorf("value rows = %+v", ans.Rows)
	}
	// Multi-column projection of the same variable.
	ans, err = e.Query(`SELECT tag(t), path(t), value(t) FROM //title AS t`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Columns, []string{"tag", "path", "value"}) {
		t.Errorf("columns = %v", ans.Columns)
	}
	xml := ans.XML()
	if !strings.Contains(xml, "<value>Hacking &amp; RSI</value>") {
		t.Errorf("XML escaping: %s", xml)
	}
}

func TestBooleanWhere(t *testing.T) {
	e := fig1Engine(t)
	cases := []struct {
		name, q string
		want    []bat.OID
	}{
		{
			"or",
			`SELECT e FROM //title AS e WHERE e CONTAINS 'Hack' OR e CONTAINS 'RSI'`,
			[]bat.OID{9, 16},
		},
		{
			"not",
			`SELECT e FROM //title AS e WHERE NOT e CONTAINS 'RSI'`,
			[]bat.OID{9},
		},
		{
			"or of equals",
			`SELECT e FROM //title AS e WHERE e = 'How to Hack' OR e = 'Hacking & RSI'`,
			[]bat.OID{9, 16},
		},
		{
			"parenthesised and inside or",
			`SELECT e FROM //article AS e WHERE (e CONTAINS 'Ben' AND e CONTAINS 'Bit') OR e CONTAINS 'Byte'`,
			[]bat.OID{3, 13},
		},
		{
			"not of parenthesised or",
			`SELECT e FROM //article AS e WHERE NOT (e CONTAINS 'Ben' OR e CONTAINS 'Byte')`,
			nil,
		},
		{
			"double negation",
			`SELECT e FROM //article AS e WHERE NOT NOT e CONTAINS 'Ben'`,
			[]bat.OID{3},
		},
		{
			"top-level and still splits variables",
			`SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2
			 WHERE (e1 CONTAINS 'Bit' OR e1 CONTAINS 'Ben') AND e2 CONTAINS '1999'`,
			// e1 = {o6, o8}: Ben and Bit collide at the author (o4)
			// before any year can join them; the two 1999s then meet at
			// the institute (o2). Document order: o2, o4.
			[]bat.OID{2, 4},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ans, err := e.Query(c.q)
			if err != nil {
				t.Fatal(err)
			}
			var got []bat.OID
			for _, r := range ans.Rows {
				got = append(got, r.OID)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("rows = %v, want %v", got, c.want)
			}
		})
	}
}

func TestBooleanWhereErrors(t *testing.T) {
	e := fig1Engine(t)
	cases := []string{
		// OR across variables is not a per-variable filter.
		`SELECT e1 FROM //a AS e1, //b AS e2 WHERE e1 CONTAINS 'x' OR e2 CONTAINS 'y'`,
		// NOT spanning two variables via parens.
		`SELECT e1 FROM //a AS e1, //b AS e2 WHERE NOT (e1 CONTAINS 'x' AND e2 CONTAINS 'y')`,
		// Unbalanced parenthesis.
		`SELECT e FROM //a AS e WHERE (e CONTAINS 'x'`,
		// Dangling OR.
		`SELECT e FROM //a AS e WHERE e CONTAINS 'x' OR`,
	}
	for _, q := range cases {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
}

func TestXMLProjection(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`SELECT xml(e) FROM //year AS e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 || ans.Rows[0].XML != "<year>1999</year>" {
		t.Errorf("rows = %+v", ans.Rows)
	}
	// cdata nodes render as bare text.
	ans, err = e.Query(`SELECT xml(e) FROM //year/cdata AS e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 || ans.Rows[0].XML != "1999" {
		t.Errorf("cdata rows = %+v", ans.Rows)
	}
	// The answer XML escapes the nested markup.
	ans, err = e.Query(`SELECT xml(e) FROM //author AS e WHERE e CONTAINS 'Ben'`)
	if err != nil {
		t.Fatal(err)
	}
	if xml := ans.XML(); !strings.Contains(xml, "&lt;firstname&gt;") {
		t.Errorf("answer XML = %s", xml)
	}
}

func TestEqualsCondition(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`SELECT e FROM //title AS e WHERE e = 'How to Hack'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 || ans.Rows[0].OID != 9 {
		t.Errorf("rows = %+v, want title o9", ans.Rows)
	}
	// Equality on the cdata node itself.
	ans, err = e.Query(`SELECT e FROM //title/cdata AS e WHERE e = 'How to Hack'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 || ans.Rows[0].OID != 10 {
		t.Errorf("rows = %+v, want cdata o10", ans.Rows)
	}
}

func TestAttributeBinding(t *testing.T) {
	e := fig1Engine(t)
	// Attribute patterns bind the owning elements.
	ans, err := e.Query(`SELECT tag(a) FROM //article@key AS a`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Tags(); !reflect.DeepEqual(got, []string{"article", "article"}) {
		t.Errorf("tags = %v", got)
	}
}

func TestContainsMatchesAttributeStrings(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`SELECT tag(e) FROM //article AS e WHERE e CONTAINS 'BK99'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 || ans.Rows[0].OID != 13 {
		t.Errorf("rows = %+v, want the second article", ans.Rows)
	}
}

func TestContainsNoMatch(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`SELECT e FROM //* AS e WHERE e CONTAINS 'absent'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 0 {
		t.Errorf("rows = %+v", ans.Rows)
	}
	if xml := ans.XML(); !strings.Contains(xml, "<answer>") {
		t.Errorf("empty answer XML = %s", xml)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"no select", "FROM //a AS e"},
		{"no from", "SELECT e"},
		{"unbound select var", "SELECT x FROM //a AS e"},
		{"unbound cond var", "SELECT e FROM //a AS e WHERE x CONTAINS 'y'"},
		{"unbound meet var", "SELECT meet(e, x) FROM //a AS e"},
		{"double binding", "SELECT e FROM //a AS e, //b AS e"},
		{"bad pattern", "SELECT e FROM //a* AS e"},
		{"meet plus item", "SELECT meet(e1, e2), e1 FROM //a AS e1, //b AS e2"},
		{"mixed projection vars", "SELECT e1, e2 FROM //a AS e1, //b AS e2"},
		{"unterminated string", "SELECT e FROM //a AS e WHERE e CONTAINS 'x"},
		{"trailing garbage", "SELECT e FROM //a AS e WHERE e CONTAINS 'x' nonsense"},
		{"bad meet option", "SELECT meet(e1, e2; FOO) FROM //a AS e1, //b AS e2"},
		{"within not number", "SELECT meet(e1, e2; WITHIN x) FROM //a AS e1, //b AS e2"},
		{"bad char", "SELECT e FROM //a AS e WHERE e ? 'x'"},
		{"missing as", "SELECT e FROM //a e"},
	}
	e := fig1Engine(t)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := e.Query(c.src); err == nil {
				t.Errorf("Query(%q) succeeded, want error", c.src)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("SELECT e FROM //a AS e WHERE e NOPE 'x'")
	if err == nil {
		t.Fatal("want error")
	}
	var qe *Error
	ok := false
	if e2, isQE := err.(*Error); isQE {
		qe, ok = e2, true
	}
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if qe.Pos <= 0 {
		t.Errorf("error position = %d, want > 0", qe.Pos)
	}
	if !strings.Contains(qe.Error(), "offset") {
		t.Errorf("error text = %q", qe.Error())
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	e := fig1Engine(t)
	// '' escapes a quote inside the literal; no node contains it.
	ans, err := e.Query(`SELECT e FROM //* AS e WHERE e CONTAINS 'O''Brien'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 0 {
		t.Errorf("rows = %+v", ans.Rows)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`select TAG(e) from //year as e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Errorf("rows = %+v", ans.Rows)
	}
}

func TestMeetQueryRanked(t *testing.T) {
	e := fig1Engine(t)
	// e1 binds the "Ben" cdata node (o6); e2 binds the three cdata
	// nodes containing a capital B (o6, o8, o15). o6 self-meets at
	// distance 0; the Bit and Bob hits climb to the institute (o2) at
	// distance 7. Document order is o2, o6; ranked order is o6, o2.
	const base = `FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Ben' AND e2 CONTAINS 'B'`
	plain, err := e.Query(`SELECT meet(e1, e2) ` + base)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := e.Query(`SELECT meet(e1, e2; RANKED) ` + base)
	if err != nil {
		t.Fatal(err)
	}
	wantPlain := []bat.OID{2, 6}
	wantRanked := []bat.OID{6, 2}
	if len(plain.Rows) != 2 || len(ranked.Rows) != 2 {
		t.Fatalf("rows = %d/%d, want 2/2\nplain: %+v\nranked: %+v",
			len(plain.Rows), len(ranked.Rows), plain.Rows, ranked.Rows)
	}
	for i := range wantPlain {
		if plain.Rows[i].OID != wantPlain[i] {
			t.Errorf("plain order = %+v, want %v", plain.Rows, wantPlain)
			break
		}
	}
	for i := range wantRanked {
		if ranked.Rows[i].OID != wantRanked[i] {
			t.Errorf("ranked order = %+v, want %v", ranked.Rows, wantRanked)
			break
		}
	}
}

// TestMeetQueryBobByte covers the paper's second Section 3.1 example
// through the query language: both variables bind the same cdata node,
// which is therefore its own nearest concept.
func TestMeetQueryBobByte(t *testing.T) {
	e := fig1Engine(t)
	ans, err := e.Query(`
		SELECT meet(e1, e2)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bob' AND e2 CONTAINS 'Byte'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Fatalf("rows = %+v", ans.Rows)
	}
	r := ans.Rows[0]
	if r.OID != 15 || r.Tag != "cdata" || r.Distance != 0 {
		t.Errorf("row = %+v, want the cdata node o15 at distance 0", r)
	}
}

func TestMeetQuerySingleVar(t *testing.T) {
	e := fig1Engine(t)
	// A single variable with two hits: the within-group collision at
	// the institute (Section 3.2's extended definition).
	ans, err := e.Query(`SELECT meet(e) FROM //year/cdata AS e WHERE e CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Tags(); !reflect.DeepEqual(got, []string{"institute"}) {
		t.Errorf("tags = %v, want [institute]", got)
	}
}
