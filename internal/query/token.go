// Package query implements the SQL-variant query language the paper
// uses throughout (footnote 1: "a variant of SQL enriched with paths
// and path variables"), extended with the meet operator as a
// declarative aggregation construct (Section 3.2's reformulated
// example query).
//
// Grammar (keywords are case-insensitive):
//
//	query    = SELECT items FROM bindings [WHERE conds]
//	items    = meetItem | projItem {"," projItem}
//	meetItem = MEET "(" var {"," var} [";" option {"," option}] ")"
//	option   = EXCLUDE pattern | WITHIN number | MAXLIFT number
//	         | NEAREST | RANKED
//	projItem = var | TAG "(" var ")" | PATH "(" var ")"
//	         | VALUE "(" var ")" | XML "(" var ")"
//	bindings = pattern AS var {"," pattern AS var}
//	conds    = expr {AND expr}          each conjunct: one variable
//	expr     = unary {OR unary}
//	unary    = NOT unary | "(" group ")" | pred
//	group    = expr {AND expr}
//	pred     = var CONTAINS string | var "=" string
//
// Patterns are the regular path expressions of package pathexpr
// (/a/b, *, %, //, @attr). Example — the paper's nearest concept
// query from Section 3.2:
//
//	SELECT meet(e1, e2)
//	FROM //cdata AS e1, //cdata AS e2
//	WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkString
	tkNumber
	tkPath
	tkComma
	tkLParen
	tkRParen
	tkSemi
	tkEq
)

func (k tokenKind) String() string {
	switch k {
	case tkEOF:
		return "end of query"
	case tkIdent:
		return "identifier"
	case tkString:
		return "string literal"
	case tkNumber:
		return "number"
	case tkPath:
		return "path pattern"
	case tkComma:
		return "','"
	case tkLParen:
		return "'('"
	case tkRParen:
		return "')'"
	case tkSemi:
		return "';'"
	case tkEq:
		return "'='"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the source, for error messages
}

// Error is a query compilation or evaluation error with its position.
type Error struct {
	Pos int // byte offset into the query source, -1 when unknown
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos >= 0 {
		return fmt.Sprintf("query: at offset %d: %s", e.Pos, e.Msg)
	}
	return "query: " + e.Msg
}

func errf(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex splits the source into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tkComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tkLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tkRParen, ")", i})
			i++
		case c == ';':
			toks = append(toks, token{tkSemi, ";", i})
			i++
		case c == '=':
			toks = append(toks, token{tkEq, "=", i})
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					// '' is an escaped quote inside the literal.
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errf(start, "unterminated string literal")
			}
			toks = append(toks, token{tkString, sb.String(), start})
		case c == '/':
			start := i
			for i < len(src) && isPathChar(src[i]) {
				i++
			}
			toks = append(toks, token{tkPath, src[start:i], start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			toks = append(toks, token{tkNumber, src[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentChar(rune(src[i])) {
				i++
			}
			toks = append(toks, token{tkIdent, src[start:i], start})
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tkEOF, "", len(src)})
	return toks, nil
}

func isPathChar(c byte) bool {
	return c == '/' || c == '*' || c == '%' || c == '@' || c == '-' ||
		c == '_' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' || r == '$' }
func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}

// keyword reports whether tok is the given keyword, case-insensitively.
func (t token) keyword(kw string) bool {
	return t.kind == tkIdent && strings.EqualFold(t.text, kw)
}
