package query

import "ncq/internal/pathexpr"

// projKind is the projection applied to a bound variable.
type projKind uint8

// Projections.
const (
	projVar   projKind = iota // the node itself (rendered as its tag, per the paper)
	projTag                   // TAG(v): the element label
	projPath                  // PATH(v): the full path string
	projValue                 // VALUE(v): the node's character data
	projXML                   // XML(v): the serialised subtree
)

func (k projKind) String() string {
	switch k {
	case projTag:
		return "tag"
	case projPath:
		return "path"
	case projValue:
		return "value"
	case projXML:
		return "xml"
	}
	return "node"
}

// projItem is one non-meet select item.
type projItem struct {
	kind projKind
	v    string // variable name
	pos  int
}

// meetItem is the meet aggregation select item.
type meetItem struct {
	vars    []string
	exclude []*pathexpr.Pattern
	within  int  // MaxDistance; 0 = unbounded
	maxLift int  // MaxLift; 0 = unbounded
	nearest bool // NEAREST: SkipExcluded semantics
	ranked  bool // RANKED: order results by distance, not document order
	pos     int
}

// binding associates a path pattern with a variable name.
type binding struct {
	pattern *pathexpr.Pattern
	v       string
	pos     int
}

// condKind is the predicate applied to a variable.
type condKind uint8

const (
	condContains condKind = iota // v CONTAINS 'str': substring in the subtree
	condEquals                   // v = 'str': the node's own value equals str
)

type cond struct {
	kind condKind
	v    string
	arg  string
	pos  int
}

// condOp is a boolean connective in a WHERE expression tree.
type condOp uint8

const (
	opLeaf condOp = iota
	opAnd
	opOr
	opNot
)

// condExpr is a boolean expression over predicates. The top-level AND
// chain may mix variables (each conjunct filters its own variable);
// every other subtree must constrain exactly one variable, which
// checkVars enforces.
type condExpr struct {
	op   condOp
	leaf cond       // opLeaf only
	kids []condExpr // operands for and/or; one operand for not
	pos  int
}

// vars reports the distinct variable names referenced beneath e.
func (e *condExpr) vars(out map[string]bool) {
	if e.op == opLeaf {
		out[e.leaf.v] = true
		return
	}
	for i := range e.kids {
		e.kids[i].vars(out)
	}
}

// Query is a parsed query.
type Query struct {
	meet  *meetItem  // nil when the select list is projections
	projs []projItem // empty when meet != nil
	binds []binding
	conds []condExpr // top-level conjuncts, one variable each
}
