package query

import (
	"strconv"

	"ncq/internal/pathexpr"
)

// Parse compiles a query string into a Query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, errf(t.pos, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	p.i++
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if !t.keyword(kw) {
		return errf(t.pos, "expected %s, found %q", kw, t.text)
	}
	p.i++
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseBindings(q); err != nil {
		return nil, err
	}
	if p.cur().keyword("where") {
		p.i++
		if err := p.parseConds(q); err != nil {
			return nil, err
		}
	}
	if t := p.cur(); t.kind != tkEOF {
		return nil, errf(t.pos, "unexpected trailing input %q", t.text)
	}
	if err := checkVars(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseSelectList(q *Query) error {
	if p.cur().keyword("meet") {
		m, err := p.parseMeetItem()
		if err != nil {
			return err
		}
		q.meet = m
		if p.cur().kind == tkComma {
			return errf(p.cur().pos, "meet(...) must be the only select item")
		}
		return nil
	}
	for {
		item, err := p.parseProjItem()
		if err != nil {
			return err
		}
		q.projs = append(q.projs, item)
		if p.cur().kind != tkComma {
			return nil
		}
		p.i++
	}
}

func (p *parser) parseProjItem() (projItem, error) {
	t := p.cur()
	var kind projKind
	switch {
	case t.keyword("tag"):
		kind = projTag
	case t.keyword("path"):
		kind = projPath
	case t.keyword("value"):
		kind = projValue
	case t.keyword("xml"):
		kind = projXML
	case t.kind == tkIdent:
		p.i++
		return projItem{kind: projVar, v: t.text, pos: t.pos}, nil
	default:
		return projItem{}, errf(t.pos, "expected select item, found %q", t.text)
	}
	p.i++
	if _, err := p.expect(tkLParen); err != nil {
		return projItem{}, err
	}
	v, err := p.expect(tkIdent)
	if err != nil {
		return projItem{}, err
	}
	if _, err := p.expect(tkRParen); err != nil {
		return projItem{}, err
	}
	return projItem{kind: kind, v: v.text, pos: t.pos}, nil
}

func (p *parser) parseMeetItem() (*meetItem, error) {
	m := &meetItem{pos: p.cur().pos}
	p.i++ // MEET
	if _, err := p.expect(tkLParen); err != nil {
		return nil, err
	}
	for {
		v, err := p.expect(tkIdent)
		if err != nil {
			return nil, err
		}
		m.vars = append(m.vars, v.text)
		if p.cur().kind == tkComma {
			p.i++
			continue
		}
		break
	}
	if p.cur().kind == tkSemi {
		p.i++
		if err := p.parseMeetOptions(m); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tkRParen); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) parseMeetOptions(m *meetItem) error {
	for {
		t := p.cur()
		switch {
		case t.keyword("exclude"):
			p.i++
			for {
				pt, err := p.expect(tkPath)
				if err != nil {
					return err
				}
				pat, err := pathexpr.Compile(pt.text)
				if err != nil {
					return errf(pt.pos, "%v", err)
				}
				m.exclude = append(m.exclude, pat)
				// Further paths belong to EXCLUDE only if the next-next
				// token is another path.
				if p.cur().kind == tkComma && p.toks[p.i+1].kind == tkPath {
					p.i++
					continue
				}
				break
			}
		case t.keyword("within"):
			p.i++
			n, err := p.expect(tkNumber)
			if err != nil {
				return err
			}
			v, err := strconv.Atoi(n.text)
			if err != nil || v <= 0 {
				return errf(n.pos, "WITHIN needs a positive integer, got %q", n.text)
			}
			m.within = v
		case t.keyword("maxlift"):
			p.i++
			n, err := p.expect(tkNumber)
			if err != nil {
				return err
			}
			v, err := strconv.Atoi(n.text)
			if err != nil || v <= 0 {
				return errf(n.pos, "MAXLIFT needs a positive integer, got %q", n.text)
			}
			m.maxLift = v
		case t.keyword("nearest"):
			p.i++
			m.nearest = true
		case t.keyword("ranked"):
			p.i++
			m.ranked = true
		default:
			return errf(t.pos, "expected meet option (EXCLUDE, WITHIN, MAXLIFT, NEAREST, RANKED), found %q", t.text)
		}
		if p.cur().kind == tkComma {
			p.i++
			continue
		}
		return nil
	}
}

func (p *parser) parseBindings(q *Query) error {
	for {
		pt, err := p.expect(tkPath)
		if err != nil {
			return err
		}
		pat, err := pathexpr.Compile(pt.text)
		if err != nil {
			return errf(pt.pos, "%v", err)
		}
		if err := p.expectKeyword("as"); err != nil {
			return err
		}
		v, err := p.expect(tkIdent)
		if err != nil {
			return err
		}
		for _, b := range q.binds {
			if b.v == v.text {
				return errf(v.pos, "variable %q bound twice", v.text)
			}
		}
		q.binds = append(q.binds, binding{pattern: pat, v: v.text, pos: pt.pos})
		if p.cur().kind != tkComma {
			return nil
		}
		p.i++
	}
}

// parseConds parses the WHERE clause. The top level is a conjunction
// whose conjuncts each constrain one variable; within a conjunct, OR,
// AND, NOT and parentheses combine predicates freely.
func (p *parser) parseConds(q *Query) error {
	for {
		e, err := p.parseOrExpr()
		if err != nil {
			return err
		}
		q.conds = append(q.conds, e)
		if !p.cur().keyword("and") {
			return nil
		}
		p.i++
	}
}

func (p *parser) parseOrExpr() (condExpr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return condExpr{}, err
	}
	for p.cur().keyword("or") {
		pos := p.cur().pos
		p.i++
		right, err := p.parseAndExpr()
		if err != nil {
			return condExpr{}, err
		}
		left = condExpr{op: opOr, kids: []condExpr{left, right}, pos: pos}
	}
	return left, nil
}

// parseAndExpr parses AND chains *inside parentheses or after NOT*;
// a bare top-level AND belongs to parseConds, so this level only binds
// tighter than OR when the next operand clearly continues the same
// group — which is exactly when we are nested, handled by recursion
// through parseUnary's parenthesis case. At the top level an AND ends
// the current OR-expression, letting parseConds take over; the
// grammar's factoring achieves both with one rule because parseConds
// re-enters here for each conjunct.
func (p *parser) parseAndExpr() (condExpr, error) {
	return p.parseUnary()
}

func (p *parser) parseUnary() (condExpr, error) {
	t := p.cur()
	if t.keyword("not") {
		p.i++
		kid, err := p.parseUnary()
		if err != nil {
			return condExpr{}, err
		}
		return condExpr{op: opNot, kids: []condExpr{kid}, pos: t.pos}, nil
	}
	if t.kind == tkLParen {
		p.i++
		inner, err := p.parseParenGroup()
		if err != nil {
			return condExpr{}, err
		}
		if _, err := p.expect(tkRParen); err != nil {
			return condExpr{}, err
		}
		return inner, nil
	}
	return p.parsePredicate()
}

// parseParenGroup parses a full boolean expression (with AND allowed)
// inside parentheses.
func (p *parser) parseParenGroup() (condExpr, error) {
	left, err := p.parseOrExpr()
	if err != nil {
		return condExpr{}, err
	}
	for p.cur().keyword("and") {
		pos := p.cur().pos
		p.i++
		right, err := p.parseOrExpr()
		if err != nil {
			return condExpr{}, err
		}
		left = condExpr{op: opAnd, kids: []condExpr{left, right}, pos: pos}
	}
	return left, nil
}

func (p *parser) parsePredicate() (condExpr, error) {
	v, err := p.expect(tkIdent)
	if err != nil {
		return condExpr{}, err
	}
	t := p.cur()
	var c cond
	switch {
	case t.keyword("contains"):
		p.i++
		s, err := p.expect(tkString)
		if err != nil {
			return condExpr{}, err
		}
		c = cond{kind: condContains, v: v.text, arg: s.text, pos: v.pos}
	case t.kind == tkEq:
		p.i++
		s, err := p.expect(tkString)
		if err != nil {
			return condExpr{}, err
		}
		c = cond{kind: condEquals, v: v.text, arg: s.text, pos: v.pos}
	default:
		return condExpr{}, errf(t.pos, "expected CONTAINS or '=', found %q", t.text)
	}
	return condExpr{op: opLeaf, leaf: c, pos: v.pos}, nil
}

// checkVars verifies that every referenced variable is bound and that
// the select list shape is supported.
func checkVars(q *Query) error {
	bound := map[string]bool{}
	for _, b := range q.binds {
		bound[b.v] = true
	}
	use := func(v string, pos int) error {
		if !bound[v] {
			return errf(pos, "variable %q is not bound in FROM", v)
		}
		return nil
	}
	if q.meet != nil {
		for _, v := range q.meet.vars {
			if err := use(v, q.meet.pos); err != nil {
				return err
			}
		}
	}
	var projVarName string
	for _, it := range q.projs {
		if err := use(it.v, it.pos); err != nil {
			return err
		}
		if projVarName == "" {
			projVarName = it.v
		} else if projVarName != it.v {
			return errf(it.pos,
				"all select items must project the same variable (found %q and %q); use meet(...) to combine variables",
				projVarName, it.v)
		}
	}
	for i := range q.conds {
		vs := map[string]bool{}
		q.conds[i].vars(vs)
		if len(vs) != 1 {
			return errf(q.conds[i].pos,
				"a WHERE conjunct must constrain exactly one variable (found %d); combine variables with AND at the top level or with meet(...)",
				len(vs))
		}
		for v := range vs {
			if err := use(v, q.conds[i].pos); err != nil {
				return err
			}
		}
	}
	return nil
}
