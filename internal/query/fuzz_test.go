package query

import (
	"testing"

	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/xmltree"
)

// FuzzQuery feeds arbitrary strings to the compiler and, when they
// compile, evaluates them against the Fig. 1 document: neither stage
// may panic.
func FuzzQuery(f *testing.F) {
	seeds := []string{
		"SELECT e FROM //a AS e",
		"SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2 WHERE e1 CONTAINS 'Bit'",
		"SELECT tag(e), path(e) FROM /bibliography/% AS e WHERE e = 'x'",
		"SELECT meet(a; EXCLUDE /b, WITHIN 3, MAXLIFT 2, NEAREST) FROM //c AS a",
		"select e from //'a' as e",
		"SELECT",
		"SELECT e FROM //a AS e WHERE e CONTAINS 'O''Brien'",
		"ß SELECT ü FROM //€ AS æ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	store, err := monetx.Load(xmltree.Fig1())
	if err != nil {
		f.Fatal(err)
	}
	engine := NewEngine(store, fulltext.New(store))
	f.Fuzz(func(t *testing.T, in string) {
		q, err := Parse(in)
		if err != nil {
			return
		}
		if _, err := engine.Eval(q); err != nil {
			// Evaluation errors are fine; panics are not (the harness
			// catches those itself).
			return
		}
	})
}
