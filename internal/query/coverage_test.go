package query

import (
	"strings"
	"testing"
)

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokenKind{tkEOF, tkIdent, tkString, tkNumber, tkPath,
		tkComma, tkLParen, tkRParen, tkSemi, tkEq}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown token" {
			t.Errorf("kind %d has no display name", k)
		}
		if seen[s] {
			t.Errorf("duplicate display name %q", s)
		}
		seen[s] = true
	}
	if tokenKind(99).String() != "unknown token" {
		t.Error("out-of-range kind")
	}
}

func TestErrorWithoutPosition(t *testing.T) {
	e := &Error{Pos: -1, Msg: "boom"}
	if got := e.Error(); got != "query: boom" {
		t.Errorf("Error() = %q", got)
	}
	e2 := &Error{Pos: 7, Msg: "boom"}
	if !strings.Contains(e2.Error(), "offset 7") {
		t.Errorf("Error() = %q", e2.Error())
	}
}

func TestParseMeetOptionErrors(t *testing.T) {
	cases := []string{
		`SELECT meet(a; WITHIN 0) FROM //x AS a`,         // zero bound
		`SELECT meet(a; MAXLIFT -1) FROM //x AS a`,       // lexer splits '-'
		`SELECT meet(a; MAXLIFT 0) FROM //x AS a`,        // zero lift
		`SELECT meet(a; EXCLUDE notapath) FROM //x AS a`, // pattern must be a path token
		`SELECT meet(a; EXCLUDE //x* ) FROM //x AS a`,    // bad pattern compiles not
		`SELECT meet(a; WITHIN) FROM //x AS a`,           // missing number
		`SELECT meet(a FROM //x AS a`,                    // missing close paren
		`SELECT meet() FROM //x AS a`,                    // empty var list
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseMultipleExcludePatterns(t *testing.T) {
	q, err := Parse(`SELECT meet(a; EXCLUDE /r, //x, WITHIN 3) FROM //x AS a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.meet.exclude) != 2 {
		t.Errorf("exclude patterns = %d, want 2", len(q.meet.exclude))
	}
	if q.meet.within != 3 {
		t.Errorf("within = %d", q.meet.within)
	}
}

func TestParseProjItemErrors(t *testing.T) {
	cases := []string{
		`SELECT tag e FROM //x AS e`,     // missing paren
		`SELECT tag(e FROM //x AS e`,     // missing close
		`SELECT tag() FROM //x AS e`,     // missing var
		`SELECT 42 FROM //x AS e`,        // number as item
		`SELECT value(e), FROM //x AS e`, // trailing comma
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestAnswerXMLEmptyColumns(t *testing.T) {
	a := &Answer{Rows: []Row{{Tag: "x"}}}
	if got := a.XML(); !strings.Contains(got, "<result> x </result>") {
		t.Errorf("XML with no columns = %q", got)
	}
}

func TestXMLOfMissingSubtree(t *testing.T) {
	e := fig1Engine(t)
	// xmlOf on an element works; the engine never passes invalid OIDs,
	// and a cdata OID renders as bare text.
	if got := e.xmlOf(11); got != "<year>1999</year>" {
		t.Errorf("xmlOf(11) = %q", got)
	}
	if got := e.xmlOf(12); got != "1999" {
		t.Errorf("xmlOf(12) = %q", got)
	}
}

func TestEngineEvalOnPreparsedQuery(t *testing.T) {
	e := fig1Engine(t)
	q, err := Parse(`SELECT e FROM //year AS e`)
	if err != nil {
		t.Fatal(err)
	}
	// Eval is reusable: run the same parsed query twice.
	for i := 0; i < 2; i++ {
		ans, err := e.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Rows) != 2 {
			t.Fatalf("run %d: rows = %d", i, len(ans.Rows))
		}
	}
}
