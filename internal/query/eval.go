package query

import (
	"sort"
	"strings"

	"ncq/internal/bat"
	"ncq/internal/core"
	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/pathsum"
)

// Engine evaluates queries against a loaded store and its full-text
// index.
type Engine struct {
	store *monetx.Store
	idx   *fulltext.Index
}

// NewEngine wires a store with its full-text index.
func NewEngine(store *monetx.Store, idx *fulltext.Index) *Engine {
	return &Engine{store: store, idx: idx}
}

// Row is one result row of a query.
type Row struct {
	OID       bat.OID
	Tag       string
	Path      string
	Value     string    // projected value (VALUE(v)) or empty
	XML       string    // projected subtree (XML(v)) or empty
	Witnesses []bat.OID // meet queries only
	Distance  int       // meet queries only
}

// Answer is a complete query result.
type Answer struct {
	Columns   []string // projected column names, in select-list order
	IsMeet    bool
	Rows      []Row
	Unmatched []bat.OID // meet queries: inputs that found no partner
}

// Query parses and evaluates src.
func (e *Engine) Query(src string) (*Answer, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Eval(q)
}

// Eval evaluates a parsed query.
func (e *Engine) Eval(q *Query) (*Answer, error) {
	bindings := make(map[string][]bat.OID, len(q.binds))
	for _, b := range q.binds {
		bindings[b.v] = e.bind(b.pattern)
	}
	for i := range q.conds {
		vs := map[string]bool{}
		q.conds[i].vars(vs)
		for v := range vs { // exactly one, enforced by checkVars
			filtered, err := e.applyExpr(bindings[v], &q.conds[i])
			if err != nil {
				return nil, err
			}
			bindings[v] = filtered
		}
	}
	if q.meet != nil {
		return e.evalMeet(q.meet, bindings)
	}
	return e.evalProjection(q.projs, bindings)
}

// bind returns the OIDs matching a pattern. Attribute patterns bind
// the owning element nodes.
func (e *Engine) bind(pat interface {
	SelectPaths(*pathsum.Summary) []pathsum.PathID
}) []bat.OID {
	sum := e.store.Summary()
	set := bat.NewSet()
	for _, pid := range pat.SelectPaths(sum) {
		owner := pid
		if sum.Kind(pid) == pathsum.Attr {
			owner = sum.Parent(pid)
		}
		for _, o := range e.store.OIDsAt(owner) {
			set.Add(o)
		}
	}
	return set.Slice()
}

// applyExpr filters a binding with one boolean predicate expression.
// Contains-hit owner lists are fetched once per distinct argument.
func (e *Engine) applyExpr(oids []bat.OID, expr *condExpr) ([]bat.OID, error) {
	hitCache := map[string][]bat.OID{}
	var out []bat.OID
	for _, o := range oids {
		ok, err := e.evalExpr(o, expr, hitCache)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, o)
		}
	}
	return out, nil
}

func (e *Engine) evalExpr(o bat.OID, expr *condExpr, hitCache map[string][]bat.OID) (bool, error) {
	switch expr.op {
	case opLeaf:
		return e.evalLeaf(o, expr.leaf, hitCache)
	case opNot:
		ok, err := e.evalExpr(o, &expr.kids[0], hitCache)
		return !ok, err
	case opAnd:
		for i := range expr.kids {
			ok, err := e.evalExpr(o, &expr.kids[i], hitCache)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case opOr:
		for i := range expr.kids {
			ok, err := e.evalExpr(o, &expr.kids[i], hitCache)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return false, errf(expr.pos, "unknown condition operator")
}

func (e *Engine) evalLeaf(o bat.OID, c cond, hitCache map[string][]bat.OID) (bool, error) {
	switch c.kind {
	case condContains:
		owners, ok := hitCache[c.arg]
		if !ok {
			owners = fulltext.Owners(e.idx.SearchSubstring(c.arg)) // ascending
			hitCache[c.arg] = owners
		}
		// A hit owner lies in o's subtree iff one falls into the
		// preorder interval [o, end(o)]; owners is sorted, so binary
		// search finds the first candidate — the paper's `contains`
		// predicate ("all nodes whose offspring contains as character
		// data the string").
		i := sort.Search(len(owners), func(i int) bool { return owners[i] >= o })
		return i < len(owners) && e.store.Contains(o, owners[i]), nil
	case condEquals:
		return e.valueOf(o) == c.arg, nil
	}
	return false, errf(c.pos, "unknown condition")
}

// valueOf renders a node's own character data: the text itself for a
// cdata node, the concatenated direct cdata children for an element.
func (e *Engine) valueOf(o bat.OID) string {
	if t, ok := e.store.Text(o); ok {
		return t
	}
	var parts []string
	for _, c := range e.store.Children(o) {
		if t, ok := e.store.Text(c); ok {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " ")
}

func (e *Engine) evalMeet(m *meetItem, bindings map[string][]bat.OID) (*Answer, error) {
	// Every variable contributes one input set; a node bound by two
	// different variables meets at itself (the "Bob"/"Byte" example of
	// Section 3.1), everything else goes through the general roll-up of
	// Figure 5, as the paper does for its reformulated example query.
	sets := make([][]bat.OID, 0, len(m.vars))
	for _, v := range m.vars {
		sets = append(sets, bindings[v])
	}
	opt := &core.Options{
		MaxDistance:  m.within,
		MaxLift:      m.maxLift,
		SkipExcluded: m.nearest,
	}
	if len(m.exclude) > 0 {
		opt.Exclude = map[pathsum.PathID]bool{}
		for _, pat := range m.exclude {
			for _, pid := range pat.SelectPaths(e.store.Summary()) {
				opt.Exclude[pid] = true
			}
		}
	}
	results, unmatched, err := core.MeetMulti(e.store, sets, opt)
	if err != nil {
		return nil, &Error{Pos: m.pos, Msg: err.Error()}
	}
	if m.ranked {
		// The Section 4 ranking heuristic: fewest joins first.
		core.Rank(results)
	}
	ans := &Answer{Columns: []string{"meet"}, IsMeet: true, Unmatched: unmatched}
	for _, r := range results {
		ans.Rows = append(ans.Rows, Row{
			OID:       r.Meet,
			Tag:       e.store.Label(r.Meet),
			Path:      e.store.PathString(r.Meet),
			Witnesses: r.Witnesses,
			Distance:  r.Distance,
		})
	}
	return ans, nil
}

func (e *Engine) evalProjection(projs []projItem, bindings map[string][]bat.OID) (*Answer, error) {
	ans := &Answer{}
	for _, it := range projs {
		ans.Columns = append(ans.Columns, it.kind.String())
	}
	if len(projs) == 0 {
		return ans, nil
	}
	// checkVars guarantees all items share one variable.
	for _, o := range bindings[projs[0].v] {
		row := Row{
			OID:  o,
			Tag:  e.store.Label(o),
			Path: e.store.PathString(o),
		}
		for _, it := range projs {
			switch it.kind {
			case projValue:
				row.Value = e.valueOf(o)
			case projXML:
				row.XML = e.xmlOf(o)
			}
		}
		ans.Rows = append(ans.Rows, row)
	}
	return ans, nil
}

// xmlOf serialises the subtree below o; cdata nodes render as their
// bare text.
func (e *Engine) xmlOf(o bat.OID) string {
	if t, ok := e.store.Text(o); ok {
		return t
	}
	sub, err := e.store.ReassembleSubtree(o)
	if err != nil {
		return ""
	}
	return sub.XMLString()
}

// XML renders the answer in the paper's answer-set form:
//
//	<answer>
//	  <result> article </result>
//	  ...
//	</answer>
//
// Single-column answers print the projected value inside <result>;
// multi-column answers nest one element per column.
func (a *Answer) XML() string {
	var sb strings.Builder
	sb.WriteString("<answer>\n")
	for _, r := range a.Rows {
		if len(a.Columns) <= 1 {
			sb.WriteString("  <result> ")
			sb.WriteString(escape(a.cell(r, firstColumn(a.Columns))))
			sb.WriteString(" </result>\n")
			continue
		}
		sb.WriteString("  <result>")
		for _, col := range a.Columns {
			sb.WriteString("<" + col + ">")
			sb.WriteString(escape(a.cell(r, col)))
			sb.WriteString("</" + col + ">")
		}
		sb.WriteString("</result>\n")
	}
	sb.WriteString("</answer>")
	return sb.String()
}

func firstColumn(cols []string) string {
	if len(cols) == 0 {
		return "node"
	}
	return cols[0]
}

func (a *Answer) cell(r Row, col string) string {
	switch col {
	case "path":
		return r.Path
	case "value":
		return r.Value
	case "xml":
		return r.XML
	default: // node, tag, meet
		return r.Tag
	}
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// Tags returns the tag column of all rows, convenient in tests and
// examples that compare against the paper's printed answers.
func (a *Answer) Tags() []string {
	out := make([]string, len(a.Rows))
	for i, r := range a.Rows {
		out[i] = r.Tag
	}
	return out
}
