package monetx

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ncq/internal/xmltree"
)

func TestPathOf(t *testing.T) {
	s := fig1Store(t)
	if s.Summary().String(s.PathOf(3)) != "/bibliography/institute/article" {
		t.Errorf("PathOf(3) = %s", s.Summary().String(s.PathOf(3)))
	}
	if s.PathOf(1) != s.Summary().Root() {
		t.Error("PathOf(root) should be the root path")
	}
}

func TestReassembleSubtreeErrors(t *testing.T) {
	s := fig1Store(t)
	if _, err := s.ReassembleSubtree(8); err == nil {
		t.Error("cdata subtree accepted")
	}
	if _, err := s.ReassembleSubtree(0); err == nil {
		t.Error("invalid OID accepted")
	}
	sub, err := s.ReassembleSubtree(4) // the first author
	if err != nil {
		t.Fatal(err)
	}
	want := "<author><firstname>Ben</firstname><lastname>Bit</lastname></author>"
	if sub.XMLString() != want {
		t.Errorf("subtree = %q, want %q", sub.XMLString(), want)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestDumpTransformWriterError(t *testing.T) {
	s := fig1Store(t)
	var full bytes.Buffer
	if err := s.DumpTransform(&full, 0); err != nil {
		t.Fatal(err)
	}
	for budget := 0; budget < full.Len(); budget += 64 {
		if err := s.DumpTransform(&failWriter{n: budget}, 0); err == nil {
			t.Fatalf("budget %d: failing writer not reported", budget)
		}
	}
}

func TestWriteSnapshotWriterError(t *testing.T) {
	s := fig1Store(t)
	if err := s.WriteSnapshot(&failWriter{n: 10}); err == nil {
		t.Error("failing writer not reported")
	}
}

func TestReadSnapshotRejectsTamperedVersions(t *testing.T) {
	s := fig1Store(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupting the gob stream must error out, never panic.
	raw := buf.Bytes()
	for _, cut := range []int{1, len(raw) / 4, len(raw) - 3} {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsDocumentWithReservedLabel(t *testing.T) {
	// Builder refuses reserved labels, so corrupt a node after Done.
	doc := xmltree.Fig1()
	doc.Node(5).Label = xmltree.CDataLabel + "/evil"
	// Loading still works (label is just a string), but the path
	// summary keeps it distinct; this documents that Load trusts
	// Validate-level invariants only.
	if _, err := Load(doc); err != nil {
		t.Fatalf("Load rejected odd label: %v", err)
	}
}

func TestTextOnCDataWithoutStringRelation(t *testing.T) {
	// A synthetic store where a cdata node exists but its text was
	// never recorded cannot happen through Load; Text's miss path is
	// still reachable via an element labelled differently.
	s := fig1Store(t)
	if _, ok := s.Text(1); ok {
		t.Error("root has text?")
	}
	if _, ok := s.Text(11); ok {
		t.Error("year element has direct text?")
	}
}

func TestChildrenOfNodeWithSingleChildPath(t *testing.T) {
	s := fig1Store(t)
	// institute (o2) has only article children — single-path fast path.
	got := s.Children(2)
	if len(got) != 2 || got[0] != 3 || got[1] != 13 {
		t.Errorf("Children(2) = %v", got)
	}
}

func TestDocOrderAndSiblings(t *testing.T) {
	s := fig1Store(t)
	if !s.DocBefore(3, 13) || s.DocBefore(13, 3) || s.DocBefore(5, 5) {
		t.Error("DocBefore wrong")
	}
	// article o3's next sibling is article o13; o13 has none.
	if got := s.NextSibling(3); got != 13 {
		t.Errorf("NextSibling(3) = %d, want 13", got)
	}
	if got := s.NextSibling(13); got != 0 {
		t.Errorf("NextSibling(13) = %d, want Nil", got)
	}
	if got := s.PrevSibling(13); got != 3 {
		t.Errorf("PrevSibling(13) = %d, want 3", got)
	}
	if got := s.PrevSibling(3); got != 0 {
		t.Errorf("PrevSibling(3) = %d, want Nil", got)
	}
	// Root has no siblings.
	if s.NextSibling(1) != 0 || s.PrevSibling(1) != 0 {
		t.Error("root should have no siblings")
	}
	// Mixed-path siblings: author(4) -> title(9) -> year(11).
	if s.NextSibling(4) != 9 || s.NextSibling(9) != 11 || s.PrevSibling(11) != 9 {
		t.Error("mixed-path sibling navigation wrong")
	}
}

func TestDumpGoldenSmall(t *testing.T) {
	doc := xmltree.MustDocument("r", func(b *xmltree.Builder) {
		x := b.Element(b.Root(), "x", xmltree.Attr{Name: "k", Value: "v"})
		b.Text(x, "hi")
	})
	s, err := Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.DumpTransform(&sb, 0); err != nil {
		t.Fatal(err)
	}
	want := `/r = {⟨root,o1⟩}
/r/x = {⟨o1,o2⟩}
/r/x@k = {⟨o2,"v"⟩}
/r/x/cdata = {⟨o2,o3⟩}
/r/x/cdata@string = {⟨o3,"hi"⟩}
`
	if sb.String() != want {
		t.Errorf("dump:\n%s\nwant:\n%s", sb.String(), want)
	}
}
