package monetx

import (
	"fmt"
	"sort"

	"ncq/internal/bat"
	"ncq/internal/xmltree"
)

// Object is the object-oriented view of a node re-assembled from its
// associations, as sketched in Section 2 of the paper ("an object can
// be regarded as a set of associations"). It is a flat record: nested
// structure is reached by re-assembling the child OIDs.
type Object struct {
	OID      bat.OID
	Label    string
	Path     string
	Attrs    []xmltree.Attr // attribute associations, sorted by name
	Text     string         // character data when the node is a cdata node
	IsCData  bool
	Children []bat.OID // child OIDs in document order
}

// Reassemble gathers all associations whose first component is o and
// converts them into an Object.
func (s *Store) Reassemble(o bat.OID) (*Object, error) {
	if !s.ValidOID(o) {
		return nil, fmt.Errorf("monetx: reassemble: invalid OID %d", o)
	}
	pid := s.pathOf[o]
	obj := &Object{
		OID:      o,
		Label:    s.summary.Label(pid),
		Path:     s.summary.String(pid),
		Children: s.Children(o),
	}
	if obj.Label == xmltree.CDataLabel {
		obj.IsCData = true
		obj.Text, _ = s.Text(o)
		return obj, nil
	}
	for _, apid := range s.summary.AttrPaths(pid) {
		if v, ok := s.strs[apid].Find(o); ok {
			obj.Attrs = append(obj.Attrs, xmltree.Attr{Name: s.summary.Label(apid), Value: v})
		}
	}
	sort.Slice(obj.Attrs, func(i, j int) bool { return obj.Attrs[i].Name < obj.Attrs[j].Name })
	return obj, nil
}

// ReassembleDocument rebuilds the complete syntax tree from the
// relations alone. It exists to prove the Monet transform is lossless:
// the result compares equal (xmltree.Equal) to the document that was
// loaded. Attribute order within an element is not part of the model
// and is restored sorted by name.
func (s *Store) ReassembleDocument() (*xmltree.Document, error) {
	return s.ReassembleSubtree(s.root)
}

// ReassembleSubtree rebuilds the subtree rooted at o as a standalone
// document — the paper's "starting point for displaying and browsing"
// once a meet has located an interesting node (Section 4). o must be an
// element node; reassembling a bare cdata node has no XML form.
func (s *Store) ReassembleSubtree(o bat.OID) (*xmltree.Document, error) {
	rootObj, err := s.Reassemble(o)
	if err != nil {
		return nil, err
	}
	if rootObj.IsCData {
		return nil, fmt.Errorf("monetx: reassemble subtree: OID %d is character data, not an element", o)
	}
	b := xmltree.NewBuilder(rootObj.Label)
	b.Root().Attrs = rootObj.Attrs
	var rec func(parent *xmltree.Node, children []bat.OID) error
	rec = func(parent *xmltree.Node, children []bat.OID) error {
		for _, c := range children {
			obj, err := s.Reassemble(c)
			if err != nil {
				return err
			}
			if obj.IsCData {
				b.Text(parent, obj.Text)
				continue
			}
			n := b.Element(parent, obj.Label, obj.Attrs...)
			if err := rec(n, obj.Children); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(b.Root(), rootObj.Children); err != nil {
		return nil, err
	}
	return b.Done()
}
