// Package monetx implements the physical data model of the paper: the
// Monet transform (Definition 4), which shreds an XML syntax tree into
// binary association tables partitioned by path.
//
// For a document d, the store holds
//
//   - one edge relation per element path p: pairs (parentOID, childOID)
//     for every node whose path is p,
//   - one string relation per attribute path: pairs (ownerOID, value);
//     character data is the attribute "string" of cdata nodes, so the
//     relation /…/cdata@string holds the text (paper Figure 2),
//   - one rank relation per element path: pairs (oid, siblingRank),
//     preserving the topology (Definition 1's rank),
//   - the path summary as the catalogue of all relations.
//
// In addition the store materialises the per-OID arrays parent, path,
// depth and subtree-end. The paper assumes path(o) is derivable from an
// OID "for free" (citing functional-join techniques [8]); the arrays
// are this reproduction's equivalent. The join-based navigation the
// paper actually executes inside Monet is also available (LiftBAT,
// ParentBAT) and is exercised by the ablation benchmarks.
package monetx

import (
	"fmt"
	"sync"

	"ncq/internal/bat"
	"ncq/internal/pathsum"
	"ncq/internal/xmltree"
)

// StringAttr is the reserved attribute name under which the text of a
// cdata node is stored, as in the paper's …/cdata@string relations.
const StringAttr = "string"

// Store is a loaded document in Monet transform representation.
type Store struct {
	summary *pathsum.Summary

	// Per-OID arrays, indexed by OID (entry 0 unused).
	parent []bat.OID
	pathOf []pathsum.PathID
	depth  []int32
	rank   []int32
	end    []bat.OID // largest OID in the node's subtree (preorder interval)

	// Path-partitioned relations.
	edges  map[pathsum.PathID]*bat.BAT[bat.OID] // child path -> (parent, child)
	strs   map[pathsum.PathID]*bat.BAT[string]  // attr path  -> (owner, value)
	ranks  map[pathsum.PathID]*bat.BAT[int]     // elem path  -> (oid, rank)
	oidsAt map[pathsum.PathID][]bat.OID         // elem path  -> member OIDs in doc order

	// revEdge caches reversed edge relations (the parent function as a
	// BAT), built lazily under revMu so that a loaded store is safe for
	// concurrent readers.
	revMu   sync.Mutex
	revEdge map[pathsum.PathID]*bat.BAT[bat.OID]

	root bat.OID
}

// Load shreds doc into a Store. The document must satisfy
// xmltree.Document.Validate; Load re-checks the cheap invariants it
// depends on and reports the first violation.
func Load(doc *xmltree.Document) (*Store, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("monetx: load: nil document")
	}
	n := doc.Len()
	s := &Store{
		summary: pathsum.New(),
		parent:  make([]bat.OID, n+1),
		pathOf:  make([]pathsum.PathID, n+1),
		depth:   make([]int32, n+1),
		rank:    make([]int32, n+1),
		end:     make([]bat.OID, n+1),
		edges:   make(map[pathsum.PathID]*bat.BAT[bat.OID]),
		strs:    make(map[pathsum.PathID]*bat.BAT[string]),
		ranks:   make(map[pathsum.PathID]*bat.BAT[int]),
		revEdge: make(map[pathsum.PathID]*bat.BAT[bat.OID]),
		oidsAt:  make(map[pathsum.PathID][]bat.OID),
		root:    doc.Root.OID,
	}
	var loadErr error
	var rec func(node *xmltree.Node, parentPath pathsum.PathID) bool
	rec = func(node *xmltree.Node, parentPath pathsum.PathID) bool {
		if int(node.OID) <= 0 || int(node.OID) > n {
			loadErr = fmt.Errorf("monetx: load: node OID %d out of range 1..%d", node.OID, n)
			return false
		}
		pid, err := s.summary.Intern(parentPath, node.Label, pathsum.Elem)
		if err != nil {
			loadErr = fmt.Errorf("monetx: load: %w", err)
			return false
		}
		s.pathOf[node.OID] = pid
		s.depth[node.OID] = int32(node.Depth)
		s.rank[node.OID] = int32(node.Rank)
		s.end[node.OID] = node.End
		s.oidsAt[pid] = append(s.oidsAt[pid], node.OID)

		if node.Parent != nil {
			s.parent[node.OID] = node.Parent.OID
			edge := s.edges[pid]
			if edge == nil {
				edge = bat.New[bat.OID](s.summary.String(pid))
				s.edges[pid] = edge
			}
			edge.Append(node.Parent.OID, node.OID)
		}
		rk := s.ranks[pid]
		if rk == nil {
			rk = bat.New[int](s.summary.String(pid) + "#rank")
			s.ranks[pid] = rk
		}
		rk.Append(node.OID, node.Rank)

		switch node.Kind {
		case xmltree.CData:
			apid, err := s.summary.Intern(pid, StringAttr, pathsum.Attr)
			if err != nil {
				loadErr = fmt.Errorf("monetx: load: %w", err)
				return false
			}
			s.appendString(apid, node.OID, node.Text)
		case xmltree.Element:
			for _, a := range node.Attrs {
				apid, err := s.summary.Intern(pid, a.Name, pathsum.Attr)
				if err != nil {
					loadErr = fmt.Errorf("monetx: load: %w", err)
					return false
				}
				s.appendString(apid, node.OID, a.Value)
			}
		}
		for _, c := range node.Children {
			if !rec(c, pid) {
				return false
			}
		}
		return true
	}
	if !rec(doc.Root, pathsum.Invalid) {
		return nil, loadErr
	}
	return s, nil
}

func (s *Store) appendString(apid pathsum.PathID, owner bat.OID, value string) {
	b := s.strs[apid]
	if b == nil {
		b = bat.New[string](s.summary.String(apid))
		s.strs[apid] = b
	}
	b.Append(owner, value)
}

// Summary returns the path summary (the relation catalogue).
func (s *Store) Summary() *pathsum.Summary { return s.summary }

// Root returns the OID of the document root.
func (s *Store) Root() bat.OID { return s.root }

// Len returns the number of nodes in the store.
func (s *Store) Len() int { return len(s.parent) - 1 }

// ValidOID reports whether o names a node of this store.
func (s *Store) ValidOID(o bat.OID) bool {
	return o != bat.Nil && int(o) < len(s.parent)
}

// Parent returns the parent OID of o (bat.Nil for the root). This is
// the paper's parent(o) hash look-up, served from the parent array.
func (s *Store) Parent(o bat.OID) bat.OID { return s.parent[o] }

// PathOf returns the path of node o (the paper's path(o), which "comes
// for free by looking at the name of the relation").
func (s *Store) PathOf(o bat.OID) pathsum.PathID { return s.pathOf[o] }

// Depth returns the number of edges between o and the root.
func (s *Store) Depth(o bat.OID) int { return int(s.depth[o]) }

// Rank returns o's 1-based position among its siblings.
func (s *Store) Rank(o bat.OID) int { return int(s.rank[o]) }

// Label returns the element label of o (CDataLabel for cdata nodes).
func (s *Store) Label(o bat.OID) string { return s.summary.Label(s.pathOf[o]) }

// PathString renders o's path, e.g. "/bibliography/institute/article".
func (s *Store) PathString(o bat.OID) string { return s.summary.String(s.pathOf[o]) }

// Contains reports whether descendant lies in ancestor's subtree
// (ancestor included), in O(1) via the preorder interval.
func (s *Store) Contains(ancestor, descendant bat.OID) bool {
	return ancestor <= descendant && descendant <= s.end[ancestor]
}

// ContainsViaJoins is the paper-faithful ancestorship test: it walks
// parent look-ups from descendant until it reaches ancestor or passes
// its depth. The tests cross-check it against Contains.
func (s *Store) ContainsViaJoins(ancestor, descendant bat.OID) bool {
	ad := s.depth[ancestor]
	for cur := descendant; cur != bat.Nil && s.depth[cur] >= ad; cur = s.parent[cur] {
		if cur == ancestor {
			return true
		}
	}
	return false
}

// Edges returns the edge relation of the given element path: pairs
// (parentOID, childOID) for every node at that path. It is nil for the
// root path (the root has no incoming edge) and for unknown paths.
func (s *Store) Edges(p pathsum.PathID) *bat.BAT[bat.OID] { return s.edges[p] }

// Strings returns the string relation of the given attribute path:
// pairs (ownerOID, value). Nil for unknown paths.
func (s *Store) Strings(p pathsum.PathID) *bat.BAT[string] { return s.strs[p] }

// Ranks returns the rank relation of the given element path.
func (s *Store) Ranks(p pathsum.PathID) *bat.BAT[int] { return s.ranks[p] }

// OIDsAt returns the OIDs of all nodes at path p in document order.
// The returned slice must not be modified.
func (s *Store) OIDsAt(p pathsum.PathID) []bat.OID { return s.oidsAt[p] }

// ParentBAT returns the child→parent relation for nodes at path p,
// materialised lazily by reversing the edge relation. It is the
// relational form of the parent function used in the paper's Figures
// 4 and 5. Safe for concurrent callers.
func (s *Store) ParentBAT(p pathsum.PathID) *bat.BAT[bat.OID] {
	s.revMu.Lock()
	defer s.revMu.Unlock()
	if r, ok := s.revEdge[p]; ok {
		return r
	}
	e := s.edges[p]
	if e == nil {
		return nil
	}
	r := bat.Reverse(e)
	s.revEdge[p] = r
	return r
}

// LiftBAT lifts an association BAT a = (provenance, current) whose
// current column holds nodes at path p one level towards the root:
// the result pairs each provenance with the parent of its current node.
// This is the join(a, parent) step of Figure 4, executed with BAT
// primitives only.
func (s *Store) LiftBAT(a *bat.BAT[bat.OID], p pathsum.PathID) *bat.BAT[bat.OID] {
	pb := s.ParentBAT(p)
	if pb == nil {
		return bat.New[bat.OID](a.Name() + "^")
	}
	return bat.Join(a, pb)
}

// Text returns the character data of a cdata node, served from the
// …/cdata@string relation. The boolean is false when o is not a cdata
// node or has no stored text.
func (s *Store) Text(o bat.OID) (string, bool) {
	pid := s.pathOf[o]
	if s.summary.Label(pid) != xmltree.CDataLabel {
		return "", false
	}
	for _, apid := range s.summary.AttrPaths(pid) {
		if s.summary.Label(apid) == StringAttr {
			return s.strs[apid].Find(o)
		}
	}
	return "", false
}

// AttrValue returns the value of the named attribute of element o,
// served from the path-partitioned string relations.
func (s *Store) AttrValue(o bat.OID, name string) (string, bool) {
	pid := s.pathOf[o]
	for _, apid := range s.summary.AttrPaths(pid) {
		if s.summary.Label(apid) == name {
			return s.strs[apid].Find(o)
		}
	}
	return "", false
}

// DocBefore reports whether a starts before b in document order. OIDs
// are assigned in preorder, so the comparison is direct — this is the
// functionality of XQL's before/after predicates the paper's related
// work points to.
func (s *Store) DocBefore(a, b bat.OID) bool { return a < b }

// NextSibling returns the sibling immediately following o in document
// order, or bat.Nil when o is the last child (or the root).
func (s *Store) NextSibling(o bat.OID) bat.OID {
	return s.siblingAt(o, int(s.rank[o])+1)
}

// PrevSibling returns the sibling immediately preceding o, or bat.Nil
// when o is the first child (or the root).
func (s *Store) PrevSibling(o bat.OID) bat.OID {
	return s.siblingAt(o, int(s.rank[o])-1)
}

func (s *Store) siblingAt(o bat.OID, rank int) bat.OID {
	p := s.parent[o]
	if p == bat.Nil || rank < 1 {
		return bat.Nil
	}
	kids := s.Children(p)
	if rank > len(kids) {
		return bat.Nil
	}
	return kids[rank-1]
}

// Children returns the child OIDs of o in document order, recovered
// from the edge relations of o's child paths.
func (s *Store) Children(o bat.OID) []bat.OID {
	pid := s.pathOf[o]
	var out []bat.OID
	for _, cpid := range s.summary.Children(pid) {
		if e := s.edges[cpid]; e != nil {
			out = append(out, e.FindAll(o)...)
		}
	}
	// Children from different paths interleave in document order;
	// restore it by rank.
	if len(out) > 1 {
		byRank := make([]bat.OID, len(out)+1)
		max := 0
		for _, c := range out {
			r := int(s.rank[c])
			for r >= len(byRank) {
				byRank = append(byRank, bat.Nil)
			}
			byRank[r] = c
			if r > max {
				max = r
			}
		}
		out = out[:0]
		for r := 1; r <= max; r++ {
			if byRank[r] != bat.Nil {
				out = append(out, byRank[r])
			}
		}
	}
	return out
}

// Stats summarises the store: node, relation and association counts
// plus an estimate of column memory. The paper reports its servers'
// memory needs; Stats lets the benchmarks do the same.
type Stats struct {
	Nodes         int
	Paths         int
	EdgeRelations int
	StrRelations  int
	Associations  int
	MemBytes      int
}

// Stats computes storage statistics.
func (s *Store) Stats() Stats {
	st := Stats{
		Nodes: s.Len(),
		Paths: s.summary.Len(),
	}
	for _, e := range s.edges {
		st.EdgeRelations++
		st.Associations += e.Len()
		st.MemBytes += e.MemBytes()
	}
	for _, b := range s.strs {
		st.StrRelations++
		st.Associations += b.Len()
		st.MemBytes += b.MemBytes()
		for i := 0; i < b.Len(); i++ {
			st.MemBytes += len(b.Tail(i))
		}
	}
	for _, r := range s.ranks {
		st.Associations += r.Len()
		st.MemBytes += r.MemBytes()
	}
	st.MemBytes += 4 * len(s.parent) * 4 // parent, pathOf, depth, end arrays
	return st
}
