package monetx

import (
	"bufio"
	"fmt"
	"io"

	"ncq/internal/pathsum"
)

// DumpTransform writes the Monet transform in the style of the paper's
// Figure 2: one line per relation, listing its associations as
// ⟨head,tail⟩ pairs. limit > 0 truncates each relation to that many
// pairs (with an ellipsis); limit <= 0 prints everything. Relations
// appear in path-summary interning order, which is document order of
// first appearance.
func (s *Store) DumpTransform(w io.Writer, limit int) error {
	bw := bufio.NewWriter(w)
	sum := s.summary
	for _, pid := range sum.AllPaths() {
		if sum.Kind(pid) == pathsum.Attr {
			rel := s.strs[pid]
			if rel == nil {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%s = {", sum.String(pid)); err != nil {
				return err
			}
			for i := 0; i < rel.Len(); i++ {
				if limit > 0 && i == limit {
					fmt.Fprintf(bw, ", … (%d more)", rel.Len()-limit)
					break
				}
				if i > 0 {
					fmt.Fprint(bw, ", ")
				}
				fmt.Fprintf(bw, "⟨o%d,%q⟩", rel.Head(i), rel.Tail(i))
			}
			if _, err := fmt.Fprintln(bw, "}"); err != nil {
				return err
			}
			continue
		}
		rel := s.edges[pid]
		if rel == nil { // the root path has no incoming edges
			if _, err := fmt.Fprintf(bw, "%s = {⟨root,o%d⟩}\n", sum.String(pid), s.root); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s = {", sum.String(pid)); err != nil {
			return err
		}
		for i := 0; i < rel.Len(); i++ {
			if limit > 0 && i == limit {
				fmt.Fprintf(bw, ", … (%d more)", rel.Len()-limit)
				break
			}
			if i > 0 {
				fmt.Fprint(bw, ", ")
			}
			fmt.Fprintf(bw, "⟨o%d,o%d⟩", rel.Head(i), rel.Tail(i))
		}
		if _, err := fmt.Fprintln(bw, "}"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PathInfo describes one relation of the store's catalogue.
type PathInfo struct {
	Path  string // display form, e.g. "/dblp/inproceedings@key"
	Attr  bool   // true for string (attribute) relations
	Count int    // number of associations (nodes or strings)
}

// PathInfos lists the catalogue in interning order: every element path
// with its node count and every attribute path with its string count.
func (s *Store) PathInfos() []PathInfo {
	sum := s.summary
	out := make([]PathInfo, 0, sum.Len())
	for _, pid := range sum.AllPaths() {
		pi := PathInfo{Path: sum.String(pid)}
		if sum.Kind(pid) == pathsum.Attr {
			pi.Attr = true
			if rel := s.strs[pid]; rel != nil {
				pi.Count = rel.Len()
			}
		} else {
			pi.Count = len(s.oidsAt[pid])
		}
		out = append(out, pi)
	}
	return out
}
