package monetx

import (
	"strings"
	"testing"
)

func TestDumpTransformFig1(t *testing.T) {
	s := fig1Store(t)
	var sb strings.Builder
	if err := s.DumpTransform(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Spot-check against the paper's Figure 2.
	wants := []string{
		"/bibliography/institute = {⟨o1,o2⟩}",
		"/bibliography/institute/article = {⟨o2,o3⟩, ⟨o2,o13⟩}",
		`/bibliography/institute/article@key = {⟨o3,"BB99"⟩, ⟨o13,"BK99"⟩}`,
		`/bibliography/institute/article/year/cdata@string = {⟨o12,"1999"⟩, ⟨o19,"1999"⟩}`,
		`/bibliography/institute/article/author/lastname/cdata@string = {⟨o8,"Bit"⟩}`,
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("dump missing %q\n%s", w, out)
		}
	}
	// Root line present.
	if !strings.Contains(out, "/bibliography = {⟨root,o1⟩}") {
		t.Errorf("dump missing root line:\n%s", out)
	}
}

func TestDumpTransformLimit(t *testing.T) {
	s := fig1Store(t)
	var sb strings.Builder
	if err := s.DumpTransform(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "… (1 more)") {
		t.Errorf("limit not applied:\n%s", sb.String())
	}
}

func TestPathInfos(t *testing.T) {
	s := fig1Store(t)
	infos := s.PathInfos()
	if len(infos) != s.Summary().Len() {
		t.Fatalf("infos = %d, want %d", len(infos), s.Summary().Len())
	}
	byPath := map[string]PathInfo{}
	total := 0
	for _, pi := range infos {
		byPath[pi.Path] = pi
		if !pi.Attr {
			total += pi.Count
		}
	}
	if total != s.Len() {
		t.Errorf("element counts sum to %d, want %d", total, s.Len())
	}
	art := byPath["/bibliography/institute/article"]
	if art.Count != 2 || art.Attr {
		t.Errorf("article info = %+v", art)
	}
	key := byPath["/bibliography/institute/article@key"]
	if key.Count != 2 || !key.Attr {
		t.Errorf("key info = %+v", key)
	}
}
