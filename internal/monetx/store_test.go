package monetx

import (
	"math/rand"
	"testing"

	"ncq/internal/bat"
	"ncq/internal/pathsum"
	"ncq/internal/xmltree"
)

func fig1Store(t *testing.T) *Store {
	t.Helper()
	s, err := Load(xmltree.Fig1())
	if err != nil {
		t.Fatalf("Load(Fig1) failed: %v", err)
	}
	return s
}

func mustPath(t *testing.T, s *Store, labels ...string) pathsum.PathID {
	t.Helper()
	id, ok := s.Summary().Lookup(labels)
	if !ok {
		t.Fatalf("path %v not in summary", labels)
	}
	return id
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(nil); err == nil {
		t.Error("Load(nil) succeeded")
	}
	if _, err := Load(&xmltree.Document{}); err == nil {
		t.Error("Load(empty) succeeded")
	}
}

func TestLoadFig1Shape(t *testing.T) {
	s := fig1Store(t)
	if s.Len() != 19 {
		t.Errorf("Len = %d, want 19", s.Len())
	}
	if s.Root() != 1 {
		t.Errorf("Root = %d, want 1", s.Root())
	}
	// Figure 2 of the paper lists these relations (among others).
	artPath := mustPath(t, s, "bibliography", "institute", "article")
	edges := s.Edges(artPath)
	if edges == nil || edges.Len() != 2 {
		t.Fatalf("article edge relation = %v", edges)
	}
	// Paper: bibliography/institute/article = {⟨o2,o3⟩, ⟨o2,o13⟩}.
	if edges.Head(0) != 2 || edges.Tail(0) != 3 || edges.Head(1) != 2 || edges.Tail(1) != 13 {
		t.Errorf("article edges = %v, want ⟨2,3⟩⟨2,13⟩", edges)
	}
	// Root path has no edge relation.
	rootPath := mustPath(t, s, "bibliography")
	if s.Edges(rootPath) != nil {
		t.Error("root path should have no edge relation")
	}
	// article@key = {⟨o3,"BB99"⟩, ⟨o13,"BK99"⟩}.
	keyPath, ok := s.Summary().LookupAttr([]string{"bibliography", "institute", "article"}, "key")
	if !ok {
		t.Fatal("article@key path missing")
	}
	keys := s.Strings(keyPath)
	if keys.Len() != 2 || keys.Head(0) != 3 || keys.Tail(0) != "BB99" || keys.Head(1) != 13 || keys.Tail(1) != "BK99" {
		t.Errorf("article@key = %v", keys)
	}
	// year/cdata@string = {⟨o12,"1999"⟩, ⟨o19,"1999"⟩}.
	ycd, ok := s.Summary().LookupAttr([]string{"bibliography", "institute", "article", "year", "cdata"}, StringAttr)
	if !ok {
		t.Fatal("year/cdata@string path missing")
	}
	yb := s.Strings(ycd)
	if yb.Len() != 2 || yb.Head(0) != 12 || yb.Head(1) != 19 || yb.Tail(0) != "1999" {
		t.Errorf("year/cdata@string = %v", yb)
	}
}

func TestPerOIDArrays(t *testing.T) {
	s := fig1Store(t)
	cases := []struct {
		oid    bat.OID
		parent bat.OID
		depth  int
		rank   int
		label  string
	}{
		{1, bat.Nil, 0, 1, "bibliography"},
		{2, 1, 1, 1, "institute"},
		{3, 2, 2, 1, "article"},
		{13, 2, 2, 2, "article"},
		{8, 7, 5, 1, "cdata"},
		{19, 18, 4, 1, "cdata"},
	}
	for _, c := range cases {
		if got := s.Parent(c.oid); got != c.parent {
			t.Errorf("Parent(%d) = %d, want %d", c.oid, got, c.parent)
		}
		if got := s.Depth(c.oid); got != c.depth {
			t.Errorf("Depth(%d) = %d, want %d", c.oid, got, c.depth)
		}
		if got := s.Rank(c.oid); got != c.rank {
			t.Errorf("Rank(%d) = %d, want %d", c.oid, got, c.rank)
		}
		if got := s.Label(c.oid); got != c.label {
			t.Errorf("Label(%d) = %q, want %q", c.oid, got, c.label)
		}
	}
	if got := s.PathString(8); got != "/bibliography/institute/article/author/lastname/cdata" {
		t.Errorf("PathString(8) = %q", got)
	}
}

func TestOIDsAt(t *testing.T) {
	s := fig1Store(t)
	artPath := mustPath(t, s, "bibliography", "institute", "article")
	got := s.OIDsAt(artPath)
	if len(got) != 2 || got[0] != 3 || got[1] != 13 {
		t.Errorf("OIDsAt(article) = %v, want [3 13]", got)
	}
	rootPath := mustPath(t, s, "bibliography")
	if got := s.OIDsAt(rootPath); len(got) != 1 || got[0] != 1 {
		t.Errorf("OIDsAt(root) = %v, want [1]", got)
	}
}

func TestTextAndAttrValue(t *testing.T) {
	s := fig1Store(t)
	if txt, ok := s.Text(8); !ok || txt != "Bit" {
		t.Errorf("Text(8) = (%q,%v), want (Bit,true)", txt, ok)
	}
	if _, ok := s.Text(3); ok {
		t.Error("Text(article) should fail")
	}
	if v, ok := s.AttrValue(3, "key"); !ok || v != "BB99" {
		t.Errorf("AttrValue(3,key) = (%q,%v)", v, ok)
	}
	if _, ok := s.AttrValue(3, "nope"); ok {
		t.Error("AttrValue of absent attribute succeeded")
	}
	if _, ok := s.AttrValue(4, "key"); ok {
		t.Error("AttrValue on attribute-less path succeeded")
	}
}

func TestChildrenDocumentOrder(t *testing.T) {
	s := fig1Store(t)
	// article o3 has author(4), title(9), year(11) in that order —
	// three different child paths, so order must be restored by rank.
	got := s.Children(3)
	want := []bat.OID{4, 9, 11}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Children(3) = %v, want %v", got, want)
	}
	if got := s.Children(8); len(got) != 0 {
		t.Errorf("Children(leaf) = %v, want empty", got)
	}
}

func TestContainsBothWays(t *testing.T) {
	s := fig1Store(t)
	cases := []struct {
		anc, desc bat.OID
		want      bool
	}{
		{1, 19, true},
		{3, 8, true},
		{3, 3, true},
		{3, 13, false},
		{13, 3, false},
		{8, 3, false},
		{2, 12, true},
	}
	for _, c := range cases {
		if got := s.Contains(c.anc, c.desc); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.anc, c.desc, got, c.want)
		}
		if got := s.ContainsViaJoins(c.anc, c.desc); got != c.want {
			t.Errorf("ContainsViaJoins(%d,%d) = %v, want %v", c.anc, c.desc, got, c.want)
		}
	}
}

func TestContainsAgreesOnRandomDocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		doc := xmltree.Random(r, 60)
		s, err := Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		n := bat.OID(s.Len())
		for a := bat.OID(1); a <= n; a++ {
			for b := bat.OID(1); b <= n; b++ {
				if s.Contains(a, b) != s.ContainsViaJoins(a, b) {
					t.Fatalf("doc %d: Contains(%d,%d) disagrees with joins", i, a, b)
				}
			}
		}
	}
}

func TestParentBATAndLiftBAT(t *testing.T) {
	s := fig1Store(t)
	artPath := mustPath(t, s, "bibliography", "institute", "article")
	pb := s.ParentBAT(artPath)
	if pb.Len() != 2 || pb.Head(0) != 3 || pb.Tail(0) != 2 {
		t.Errorf("ParentBAT(article) = %v", pb)
	}
	// Lazy caching: same object on second call.
	if s.ParentBAT(artPath) != pb {
		t.Error("ParentBAT not cached")
	}
	// Lift the two articles (provenance = themselves) one level.
	a := bat.FromPairs("in", []bat.Pair[bat.OID]{{Head: 3, Tail: 3}, {Head: 13, Tail: 13}})
	lifted := s.LiftBAT(a, artPath)
	if lifted.Len() != 2 || lifted.Tail(0) != 2 || lifted.Tail(1) != 2 {
		t.Errorf("LiftBAT = %v, want both lifted to institute o2", lifted)
	}
	// Lifting at the root path yields an empty BAT.
	rootPath := mustPath(t, s, "bibliography")
	if got := s.LiftBAT(a, rootPath); got.Len() != 0 {
		t.Errorf("LiftBAT at root = %v, want empty", got)
	}
}

func TestRanksRelation(t *testing.T) {
	s := fig1Store(t)
	artPath := mustPath(t, s, "bibliography", "institute", "article")
	rk := s.Ranks(artPath)
	if rk.Len() != 2 {
		t.Fatalf("rank relation size = %d", rk.Len())
	}
	if r, _ := rk.Find(3); r != 1 {
		t.Errorf("rank(o3) = %d, want 1", r)
	}
	if r, _ := rk.Find(13); r != 2 {
		t.Errorf("rank(o13) = %d, want 2", r)
	}
}

func TestReassembleObject(t *testing.T) {
	s := fig1Store(t)
	obj, err := s.Reassemble(3)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Label != "article" || obj.IsCData {
		t.Errorf("Reassemble(3) = %+v", obj)
	}
	if len(obj.Attrs) != 1 || obj.Attrs[0] != (xmltree.Attr{Name: "key", Value: "BB99"}) {
		t.Errorf("attrs = %v", obj.Attrs)
	}
	if len(obj.Children) != 3 {
		t.Errorf("children = %v", obj.Children)
	}
	cd, err := s.Reassemble(15)
	if err != nil {
		t.Fatal(err)
	}
	if !cd.IsCData || cd.Text != "Bob Byte" {
		t.Errorf("Reassemble(15) = %+v", cd)
	}
	if _, err := s.Reassemble(0); err == nil {
		t.Error("Reassemble(0) succeeded")
	}
	if _, err := s.Reassemble(999); err == nil {
		t.Error("Reassemble(999) succeeded")
	}
}

func TestReassembleDocumentLossless(t *testing.T) {
	doc := xmltree.Fig1()
	s, err := Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.ReassembleDocument()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, back) {
		t.Errorf("Monet transform not lossless:\noriginal: %s\nrebuilt:  %s",
			doc.XMLString(), back.XMLString())
	}
}

func TestReassembleDocumentLosslessRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		doc := xmltree.Random(r, 80)
		s, err := Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.ReassembleDocument()
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(doc, back) {
			t.Fatalf("doc %d: reassembly differs\noriginal: %s\nrebuilt:  %s",
				i, doc.XMLString(), back.XMLString())
		}
	}
}

func TestStats(t *testing.T) {
	s := fig1Store(t)
	st := s.Stats()
	if st.Nodes != 19 {
		t.Errorf("Stats.Nodes = %d, want 19", st.Nodes)
	}
	if st.Paths != s.Summary().Len() {
		t.Errorf("Stats.Paths = %d, want %d", st.Paths, s.Summary().Len())
	}
	// 18 edges (every node but the root) + 19 ranks + strings:
	// 8 cdata strings... (6 cdata nodes? count: o6,o8,o10,o12,o15,o17,o19 = 7) + 2 keys.
	if st.EdgeRelations == 0 || st.StrRelations == 0 {
		t.Error("Stats missing relations")
	}
	wantAssoc := 18 + 19 + 7 + 2
	if st.Associations != wantAssoc {
		t.Errorf("Stats.Associations = %d, want %d", st.Associations, wantAssoc)
	}
	if st.MemBytes <= 0 {
		t.Error("Stats.MemBytes not positive")
	}
}

func TestValidOID(t *testing.T) {
	s := fig1Store(t)
	if s.ValidOID(bat.Nil) {
		t.Error("Nil should be invalid")
	}
	if !s.ValidOID(1) || !s.ValidOID(19) {
		t.Error("in-range OIDs reported invalid")
	}
	if s.ValidOID(20) {
		t.Error("out-of-range OID reported valid")
	}
}
