package monetx

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	batpkg "ncq/internal/bat"
	"ncq/internal/xmltree"
)

func roundTripSnapshot(t *testing.T, s *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSnapshotRoundTripFig1(t *testing.T) {
	s := fig1Store(t)
	back := roundTripSnapshot(t, s)
	// The reloaded store must reassemble to the identical document.
	a, err := s.ReassembleDocument()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ReassembleDocument()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(a, b) {
		t.Error("snapshot round trip changed the document")
	}
	// Spot-check navigation equivalence.
	if back.Len() != s.Len() || back.Root() != s.Root() {
		t.Error("shape differs")
	}
	for oid := 1; oid <= s.Len(); oid++ {
		o := batpkg.OID(oid)
		if back.Parent(o) != s.Parent(o) || back.Depth(o) != s.Depth(o) ||
			back.Rank(o) != s.Rank(o) || back.PathString(o) != s.PathString(o) {
			t.Fatalf("per-OID data differs at %d", oid)
		}
	}
	// String relations intact.
	if txt, ok := back.Text(8); !ok || txt != "Bit" {
		t.Errorf("Text(8) = (%q,%v)", txt, ok)
	}
	if v, ok := back.AttrValue(13, "key"); !ok || v != "BK99" {
		t.Errorf("AttrValue = (%q,%v)", v, ok)
	}
	// Stats agree (same relations, same associations).
	if s.Stats() != back.Stats() {
		t.Errorf("stats differ: %+v vs %+v", s.Stats(), back.Stats())
	}
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 30; i++ {
		doc := xmltree.Random(r, 80)
		s, err := Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		back := roundTripSnapshot(t, s)
		rebuilt, err := back.ReassembleDocument()
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(doc, rebuilt) {
			t.Fatalf("doc %d: snapshot round trip changed the document", i)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("garbage data, not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	s := fig1Store(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every proper prefix must fail cleanly — no panic, no store.
	for cut := 0; cut < len(raw); cut++ {
		if back, err := ReadSnapshot(bytes.NewReader(raw[:cut])); err == nil || back != nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(raw))
		}
	}
	// Flipping any single byte must fail the checksum (or an earlier
	// structural check) — never load silently wrong data.
	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit-flip at offset %d accepted", i)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), raw...), 'x'))); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestSnapshotHostileLengths(t *testing.T) {
	// A header that declares a huge count with no backing bytes must
	// fail on read without a giant up-front allocation. The inputs are
	// magic + framing + root + an absurd path count / label length.
	le := func(v uint32) []byte {
		return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	}
	base := append([]byte("NCQSNAP2"), le(0)...) // shard
	base = append(base, le(1)...)                // shards
	base = append(base, le(1)...)                // root
	hostile := [][]byte{
		append(append([]byte(nil), base...), le(0xffffffff)...),             // path count
		append(append(append([]byte(nil), base...), le(1)...), le(0xff)...), // path with torn parent
	}
	// One interned path declaring a ~4 GiB label.
	withLabel := append(append([]byte(nil), base...), le(1)...)
	withLabel = append(withLabel, le(0xffffffff)...) // parent = -1
	withLabel = append(withLabel, 0)                 // kind
	withLabel = append(withLabel, le(0xfffffff0)...) // label length
	hostile = append(hostile, withLabel)
	for i, in := range hostile {
		if _, err := ReadSnapshot(bytes.NewReader(in)); err == nil {
			t.Errorf("hostile input %d accepted", i)
		}
	}
}

func TestSnapshotShardFraming(t *testing.T) {
	s := fig1Store(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshotShard(&buf, 2, 5); err != nil {
		t.Fatal(err)
	}
	back, shard, shards, err := ReadSnapshotShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if shard != 2 || shards != 5 {
		t.Errorf("framing = %d/%d, want 2/5", shard, shards)
	}
	if back.Len() != s.Len() {
		t.Error("framed store differs")
	}
	if err := s.WriteSnapshotShard(&buf, 5, 5); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := s.WriteSnapshotShard(&buf, 0, 0); err == nil {
		t.Error("zero shard count accepted")
	}
}

// TestSnapshotDeterministic checks that save→load→save is
// byte-identical: the on-disk artifact is a stable function of the
// logical store, which is what lets recovery tests compare bytes and
// lets rebalancing ship shard files without re-encoding.
func TestSnapshotDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for i := 0; i < 10; i++ {
		doc := xmltree.Random(r, 60)
		s, err := Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := s.WriteSnapshot(&first); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSnapshot(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := back.WriteSnapshot(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("doc %d: save→load→save is not byte-identical", i)
		}
	}
}

// BenchmarkRestoreSnapshot measures the recovery hot path: decoding a
// snapshot and rebuilding the derived relations, which is what restart
// latency is made of once documents persist as .snap artifacts.
func BenchmarkRestoreSnapshot(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	doc := xmltree.Random(r, 5000)
	s, err := Load(doc)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
