package monetx

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	batpkg "ncq/internal/bat"
	"ncq/internal/xmltree"
)

func roundTripSnapshot(t *testing.T, s *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSnapshotRoundTripFig1(t *testing.T) {
	s := fig1Store(t)
	back := roundTripSnapshot(t, s)
	// The reloaded store must reassemble to the identical document.
	a, err := s.ReassembleDocument()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ReassembleDocument()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(a, b) {
		t.Error("snapshot round trip changed the document")
	}
	// Spot-check navigation equivalence.
	if back.Len() != s.Len() || back.Root() != s.Root() {
		t.Error("shape differs")
	}
	for oid := 1; oid <= s.Len(); oid++ {
		o := batpkg.OID(oid)
		if back.Parent(o) != s.Parent(o) || back.Depth(o) != s.Depth(o) ||
			back.Rank(o) != s.Rank(o) || back.PathString(o) != s.PathString(o) {
			t.Fatalf("per-OID data differs at %d", oid)
		}
	}
	// String relations intact.
	if txt, ok := back.Text(8); !ok || txt != "Bit" {
		t.Errorf("Text(8) = (%q,%v)", txt, ok)
	}
	if v, ok := back.AttrValue(13, "key"); !ok || v != "BK99" {
		t.Errorf("AttrValue = (%q,%v)", v, ok)
	}
	// Stats agree (same relations, same associations).
	if s.Stats() != back.Stats() {
		t.Errorf("stats differ: %+v vs %+v", s.Stats(), back.Stats())
	}
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 30; i++ {
		doc := xmltree.Random(r, 80)
		s, err := Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		back := roundTripSnapshot(t, s)
		rebuilt, err := back.ReassembleDocument()
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(doc, rebuilt) {
			t.Fatalf("doc %d: snapshot round trip changed the document", i)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("garbage data, not gob")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	// A truncated snapshot must fail, not panic.
	s := fig1Store(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}
