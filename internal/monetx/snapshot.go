package monetx

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"ncq/internal/bat"
	"ncq/internal/pathsum"
)

// Snapshots persist a loaded store without the XML parse and shred: the
// path summary, the per-OID arrays and the string relations are written
// with encoding/gob; everything else (edge relations, rank relations,
// the per-path OID lists) is derivable from those and rebuilt on read.
// The snapshot of a store reloads into a store that answers every query
// identically.

// snapshotVersion guards against format drift.
const snapshotVersion = 1

type snapshotPath struct {
	Parent int32 // PathID of the parent path; -1 for the root
	Label  string
	Kind   uint8
}

type snapshotStrings struct {
	Path   int32
	Owners []uint32
	Values []string
}

type snapshot struct {
	Version int
	Root    uint32
	Paths   []snapshotPath
	Parent  []uint32
	PathOf  []int32
	Depth   []int32
	Rank    []int32
	End     []uint32
	Strings []snapshotStrings
}

// WriteSnapshot serialises the store to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Root:    uint32(s.root),
		Parent:  make([]uint32, len(s.parent)),
		PathOf:  make([]int32, len(s.pathOf)),
		Depth:   append([]int32(nil), s.depth...),
		Rank:    append([]int32(nil), s.rank...),
		End:     make([]uint32, len(s.end)),
	}
	for i := range s.parent {
		snap.Parent[i] = uint32(s.parent[i])
		snap.PathOf[i] = int32(s.pathOf[i])
		snap.End[i] = uint32(s.end[i])
	}
	for _, pid := range s.summary.AllPaths() {
		snap.Paths = append(snap.Paths, snapshotPath{
			Parent: int32(s.summary.Parent(pid)),
			Label:  s.summary.Label(pid),
			Kind:   uint8(s.summary.Kind(pid)),
		})
		if s.summary.Kind(pid) != pathsum.Attr {
			continue
		}
		rel := s.strs[pid]
		if rel == nil {
			continue
		}
		ss := snapshotStrings{Path: int32(pid)}
		for i := 0; i < rel.Len(); i++ {
			ss.Owners = append(ss.Owners, uint32(rel.Head(i)))
			ss.Values = append(ss.Values, rel.Tail(i))
		}
		snap.Strings = append(snap.Strings, ss)
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(&snap); err != nil {
		return fmt.Errorf("monetx: write snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("monetx: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot deserialises a store written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("monetx: read snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("monetx: read snapshot: version %d, want %d", snap.Version, snapshotVersion)
	}
	n := len(snap.Parent)
	if n < 2 || len(snap.PathOf) != n || len(snap.Depth) != n ||
		len(snap.Rank) != n || len(snap.End) != n {
		return nil, fmt.Errorf("monetx: read snapshot: inconsistent array lengths")
	}
	s := &Store{
		summary: pathsum.New(),
		parent:  make([]bat.OID, n),
		pathOf:  make([]pathsum.PathID, n),
		depth:   snap.Depth,
		rank:    snap.Rank,
		end:     make([]bat.OID, n),
		edges:   make(map[pathsum.PathID]*bat.BAT[bat.OID]),
		strs:    make(map[pathsum.PathID]*bat.BAT[string]),
		ranks:   make(map[pathsum.PathID]*bat.BAT[int]),
		revEdge: make(map[pathsum.PathID]*bat.BAT[bat.OID]),
		oidsAt:  make(map[pathsum.PathID][]bat.OID),
		root:    bat.OID(snap.Root),
	}
	// Replay the path summary; interning order guarantees parents come
	// before children, which Intern re-checks.
	for i, p := range snap.Paths {
		id, err := s.summary.Intern(pathsum.PathID(p.Parent), p.Label, pathsum.Kind(p.Kind))
		if err != nil {
			return nil, fmt.Errorf("monetx: read snapshot: path %d: %w", i, err)
		}
		if int(id) != i {
			return nil, fmt.Errorf("monetx: read snapshot: path %d re-interned as %d", i, id)
		}
	}
	nPaths := s.summary.Len()
	for i := 0; i < n; i++ {
		s.parent[i] = bat.OID(snap.Parent[i])
		if i > 0 && (snap.PathOf[i] < 0 || int(snap.PathOf[i]) >= nPaths) {
			return nil, fmt.Errorf("monetx: read snapshot: OID %d has unknown path %d", i, snap.PathOf[i])
		}
		s.pathOf[i] = pathsum.PathID(snap.PathOf[i])
		s.end[i] = bat.OID(snap.End[i])
	}
	// Rebuild the derived relations in OID (= document) order.
	for oid := bat.OID(1); int(oid) < n; oid++ {
		pid := s.pathOf[oid]
		s.oidsAt[pid] = append(s.oidsAt[pid], oid)
		if p := s.parent[oid]; p != bat.Nil {
			e := s.edges[pid]
			if e == nil {
				e = bat.New[bat.OID](s.summary.String(pid))
				s.edges[pid] = e
			}
			e.Append(p, oid)
		}
		rk := s.ranks[pid]
		if rk == nil {
			rk = bat.New[int](s.summary.String(pid) + "#rank")
			s.ranks[pid] = rk
		}
		rk.Append(oid, int(s.rank[oid]))
	}
	for _, ss := range snap.Strings {
		if len(ss.Owners) != len(ss.Values) {
			return nil, fmt.Errorf("monetx: read snapshot: ragged string relation %d", ss.Path)
		}
		pid := pathsum.PathID(ss.Path)
		if int(pid) < 0 || int(pid) >= nPaths || s.summary.Kind(pid) != pathsum.Attr {
			return nil, fmt.Errorf("monetx: read snapshot: string relation on non-attribute path %d", ss.Path)
		}
		for i := range ss.Owners {
			s.appendString(pid, bat.OID(ss.Owners[i]), ss.Values[i])
		}
	}
	if !s.ValidOID(s.root) || s.root != 1 {
		return nil, fmt.Errorf("monetx: read snapshot: bad root %d", s.root)
	}
	return s, nil
}
