package monetx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"ncq/internal/bat"
	"ncq/internal/pathsum"
)

// Snapshots persist a loaded store without the XML parse and shred: the
// path summary, the per-OID arrays and the string relations are written
// in a little-endian binary format; everything else (edge relations,
// rank relations, the per-path OID lists) is derivable from those and
// rebuilt on read. The snapshot of a store reloads into a store that
// answers every query identically.
//
// Layout (all integers little-endian):
//
//	magic "NCQSNAP2"
//	u32 shard | u32 shards        — per-shard framing
//	u32 root
//	u32 nPaths { i32 parent | u8 kind | u32 labelLen | label }
//	u32 nOIDs  { u32 parent }* { i32 pathOf }* { i32 depth }*
//	           { i32 rank }* { u32 end }*
//	u32 nRels  { i32 path | u32 n { u32 owner | u32 valLen | val }* }
//	u32 crc32  — IEEE checksum of everything after the magic
//
// The decoder never trusts a declared length: every count and string
// length is consumed through bounded chunks, so a hostile header can
// only make it allocate what the input actually contains.

// snapshotMagic identifies the format and its version. The gob-based
// version 1 format ("NCQSNAP1"-less, self-describing) is gone; bumping
// the magic is the version guard.
const snapshotMagic = "NCQSNAP2"

// snapChunk bounds any single allocation the decoder makes before it
// has seen the corresponding input bytes.
const snapChunk = 64 << 10

// maxSnapshotLabel bounds a single path label or attribute value. It is
// a sanity limit, not a capacity plan: labels are element/attribute
// names and values are attribute/cdata strings.
const maxSnapshotLabel = 1 << 24

type snapWriter struct {
	w   *bufio.Writer
	h   hash.Hash32
	b   [8]byte
	err error
}

func (sw *snapWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	if _, err := sw.w.Write(p); err != nil {
		sw.err = err
		return
	}
	sw.h.Write(p)
}

func (sw *snapWriter) u8(v uint8)   { sw.b[0] = v; sw.write(sw.b[:1]) }
func (sw *snapWriter) u32(v uint32) { binary.LittleEndian.PutUint32(sw.b[:4], v); sw.write(sw.b[:4]) }
func (sw *snapWriter) i32(v int32)  { sw.u32(uint32(v)) }
func (sw *snapWriter) str(s string) { sw.u32(uint32(len(s))); sw.write([]byte(s)) }

// WriteSnapshot serialises the store to w as a standalone (single
// shard) snapshot.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return s.WriteSnapshotShard(w, 0, 1)
}

// WriteSnapshotShard serialises the store to w framed as shard
// `shard` of a `shards`-way sharded document. The framing is carried
// verbatim and returned by ReadSnapshotShard; it does not change how
// the store itself is encoded.
func (s *Store) WriteSnapshotShard(w io.Writer, shard, shards int) error {
	if shards < 1 || shard < 0 || shard >= shards {
		return fmt.Errorf("monetx: write snapshot: bad framing %d/%d", shard, shards)
	}
	sw := &snapWriter{w: bufio.NewWriter(w), h: crc32.NewIEEE()}
	if _, err := sw.w.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("monetx: write snapshot: %w", err)
	}
	sw.u32(uint32(shard))
	sw.u32(uint32(shards))
	sw.u32(uint32(s.root))

	paths := s.summary.AllPaths()
	sw.u32(uint32(len(paths)))
	for _, pid := range paths {
		sw.i32(int32(s.summary.Parent(pid)))
		sw.u8(uint8(s.summary.Kind(pid)))
		sw.str(s.summary.Label(pid))
	}

	n := len(s.parent)
	sw.u32(uint32(n))
	for i := 0; i < n; i++ {
		sw.u32(uint32(s.parent[i]))
	}
	for i := 0; i < n; i++ {
		sw.i32(int32(s.pathOf[i]))
	}
	for i := 0; i < n; i++ {
		sw.i32(s.depth[i])
	}
	for i := 0; i < n; i++ {
		sw.i32(s.rank[i])
	}
	for i := 0; i < n; i++ {
		sw.u32(uint32(s.end[i]))
	}

	var rels []pathsum.PathID
	for _, pid := range paths {
		if s.summary.Kind(pid) == pathsum.Attr && s.strs[pid] != nil {
			rels = append(rels, pid)
		}
	}
	sw.u32(uint32(len(rels)))
	for _, pid := range rels {
		rel := s.strs[pid]
		sw.i32(int32(pid))
		sw.u32(uint32(rel.Len()))
		for i := 0; i < rel.Len(); i++ {
			sw.u32(uint32(rel.Head(i)))
			sw.str(rel.Tail(i))
		}
	}

	if sw.err != nil {
		return fmt.Errorf("monetx: write snapshot: %w", sw.err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sw.h.Sum32())
	if _, err := sw.w.Write(crc[:]); err != nil {
		return fmt.Errorf("monetx: write snapshot: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("monetx: write snapshot: %w", err)
	}
	return nil
}

type snapReader struct {
	r *bufio.Reader
	h hash.Hash32
	b [8]byte
}

func (sr *snapReader) read(p []byte) error {
	if _, err := io.ReadFull(sr.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("truncated input")
		}
		return err
	}
	sr.h.Write(p)
	return nil
}

func (sr *snapReader) u8() (uint8, error) {
	if err := sr.read(sr.b[:1]); err != nil {
		return 0, err
	}
	return sr.b[0], nil
}

func (sr *snapReader) u32() (uint32, error) {
	if err := sr.read(sr.b[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(sr.b[:4]), nil
}

func (sr *snapReader) i32() (int32, error) {
	v, err := sr.u32()
	return int32(v), err
}

// str reads a length-prefixed string. The declared length is checked
// against a sanity cap and the bytes are consumed in bounded chunks,
// so a hostile length cannot trigger a large allocation the input does
// not back.
func (sr *snapReader) str(what string) (string, error) {
	n, err := sr.u32()
	if err != nil {
		return "", err
	}
	if n > maxSnapshotLabel {
		return "", fmt.Errorf("%s length %d exceeds limit", what, n)
	}
	var buf []byte
	for remaining := int(n); remaining > 0; {
		c := remaining
		if c > snapChunk {
			c = snapChunk
		}
		chunk := make([]byte, c)
		if err := sr.read(chunk); err != nil {
			return "", err
		}
		if buf == nil && c == int(n) {
			buf = chunk
		} else {
			buf = append(buf, chunk...)
		}
		remaining -= c
	}
	return string(buf), nil
}

// u32s reads a declared-count array of u32 in bounded chunks: the
// decoder allocates at most snapChunk bytes ahead of the bytes it has
// actually consumed, so a hostile count fails on read, not on make.
func (sr *snapReader) u32s(count int) ([]uint32, error) {
	const per = 4
	out := make([]uint32, 0, min(count, snapChunk/per))
	var raw [snapChunk]byte
	for remaining := count; remaining > 0; {
		c := remaining
		if c > snapChunk/per {
			c = snapChunk / per
		}
		if err := sr.read(raw[:c*per]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, binary.LittleEndian.Uint32(raw[i*per:]))
		}
		remaining -= c
	}
	return out, nil
}

func (sr *snapReader) i32s(count int) ([]int32, error) {
	us, err := sr.u32s(count)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(us))
	for i, u := range us {
		out[i] = int32(u)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ReadSnapshot deserialises a store written by WriteSnapshot,
// discarding the shard framing.
func ReadSnapshot(r io.Reader) (*Store, error) {
	s, _, _, err := ReadSnapshotShard(r)
	return s, err
}

// ReadSnapshotShard deserialises a store written by WriteSnapshotShard
// and returns the shard framing alongside it.
func ReadSnapshotShard(r io.Reader) (store *Store, shard, shards int, err error) {
	s, shard, shards, err := readSnapshot(r)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("monetx: read snapshot: %w", err)
	}
	return s, shard, shards, nil
}

func readSnapshot(r io.Reader) (*Store, int, int, error) {
	sr := &snapReader{r: bufio.NewReader(r), h: crc32.NewIEEE()}
	var m [len(snapshotMagic)]byte
	if _, err := io.ReadFull(sr.r, m[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("missing magic: truncated input")
	}
	if string(m[:]) != snapshotMagic {
		return nil, 0, 0, fmt.Errorf("bad magic %q (not a snapshot, or an old format)", m[:])
	}
	shardU, err := sr.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	shardsU, err := sr.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	if shardsU == 0 || shardU >= shardsU || shardsU > 1<<16 {
		return nil, 0, 0, fmt.Errorf("bad shard framing %d/%d", shardU, shardsU)
	}
	rootU, err := sr.u32()
	if err != nil {
		return nil, 0, 0, err
	}

	nPathsU, err := sr.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	summary := pathsum.New()
	for i := 0; i < int(nPathsU); i++ {
		parent, err := sr.i32()
		if err != nil {
			return nil, 0, 0, err
		}
		kind, err := sr.u8()
		if err != nil {
			return nil, 0, 0, err
		}
		if kind > uint8(pathsum.Attr) {
			return nil, 0, 0, fmt.Errorf("path %d: unknown kind %d", i, kind)
		}
		label, err := sr.str("path label")
		if err != nil {
			return nil, 0, 0, fmt.Errorf("path %d: %w", i, err)
		}
		if parent != -1 && (parent < 0 || int(parent) >= i) {
			return nil, 0, 0, fmt.Errorf("path %d: parent %d out of range", i, parent)
		}
		id, err := summary.Intern(pathsum.PathID(parent), label, pathsum.Kind(kind))
		if err != nil {
			return nil, 0, 0, fmt.Errorf("path %d: %w", i, err)
		}
		if int(id) != i {
			return nil, 0, 0, fmt.Errorf("path %d re-interned as %d (duplicate entry)", i, id)
		}
	}
	nPaths := summary.Len()

	nU, err := sr.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	n := int(nU)
	if n < 2 {
		return nil, 0, 0, fmt.Errorf("store has %d OIDs, need at least 2", n)
	}
	parent, err := sr.u32s(n)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("parent array: %w", err)
	}
	pathOf, err := sr.i32s(n)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("pathOf array: %w", err)
	}
	depth, err := sr.i32s(n)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("depth array: %w", err)
	}
	rank, err := sr.i32s(n)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("rank array: %w", err)
	}
	end, err := sr.u32s(n)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("end array: %w", err)
	}

	s := &Store{
		summary: summary,
		parent:  make([]bat.OID, n),
		pathOf:  make([]pathsum.PathID, n),
		depth:   depth,
		rank:    rank,
		end:     make([]bat.OID, n),
		edges:   make(map[pathsum.PathID]*bat.BAT[bat.OID]),
		strs:    make(map[pathsum.PathID]*bat.BAT[string]),
		ranks:   make(map[pathsum.PathID]*bat.BAT[int]),
		revEdge: make(map[pathsum.PathID]*bat.BAT[bat.OID]),
		oidsAt:  make(map[pathsum.PathID][]bat.OID),
		root:    bat.OID(rootU),
	}
	for i := 0; i < n; i++ {
		if int(parent[i]) >= n {
			return nil, 0, 0, fmt.Errorf("OID %d has out-of-range parent %d", i, parent[i])
		}
		s.parent[i] = bat.OID(parent[i])
		if i > 0 && (pathOf[i] < 0 || int(pathOf[i]) >= nPaths) {
			return nil, 0, 0, fmt.Errorf("OID %d has unknown path %d", i, pathOf[i])
		}
		s.pathOf[i] = pathsum.PathID(pathOf[i])
		s.end[i] = bat.OID(end[i])
	}
	// Rebuild the derived relations in OID (= document) order.
	for oid := bat.OID(1); int(oid) < n; oid++ {
		pid := s.pathOf[oid]
		s.oidsAt[pid] = append(s.oidsAt[pid], oid)
		if p := s.parent[oid]; p != bat.Nil {
			e := s.edges[pid]
			if e == nil {
				e = bat.New[bat.OID](s.summary.String(pid))
				s.edges[pid] = e
			}
			e.Append(p, oid)
		}
		rk := s.ranks[pid]
		if rk == nil {
			rk = bat.New[int](s.summary.String(pid) + "#rank")
			s.ranks[pid] = rk
		}
		rk.Append(oid, int(s.rank[oid]))
	}

	nRelsU, err := sr.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	for i := 0; i < int(nRelsU); i++ {
		pidI, err := sr.i32()
		if err != nil {
			return nil, 0, 0, err
		}
		pid := pathsum.PathID(pidI)
		if pidI < 0 || int(pidI) >= nPaths || summary.Kind(pid) != pathsum.Attr {
			return nil, 0, 0, fmt.Errorf("string relation %d on non-attribute path %d", i, pidI)
		}
		cntU, err := sr.u32()
		if err != nil {
			return nil, 0, 0, err
		}
		for j := 0; j < int(cntU); j++ {
			owner, err := sr.u32()
			if err != nil {
				return nil, 0, 0, err
			}
			if int(owner) >= n {
				return nil, 0, 0, fmt.Errorf("string relation %d: owner %d out of range", i, owner)
			}
			val, err := sr.str("attribute value")
			if err != nil {
				return nil, 0, 0, fmt.Errorf("string relation %d: %w", i, err)
			}
			s.appendString(pid, bat.OID(owner), val)
		}
	}

	sum := sr.h.Sum32()
	var crc [4]byte
	if _, err := io.ReadFull(sr.r, crc[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("missing checksum: truncated input")
	}
	if got := binary.LittleEndian.Uint32(crc[:]); got != sum {
		return nil, 0, 0, fmt.Errorf("checksum mismatch (stored %08x, computed %08x): snapshot is corrupt", got, sum)
	}
	if _, err := sr.r.ReadByte(); err != io.EOF {
		return nil, 0, 0, fmt.Errorf("trailing data after checksum")
	}

	if !s.ValidOID(s.root) || s.root != 1 {
		return nil, 0, 0, fmt.Errorf("bad root %d", s.root)
	}
	return s, int(shardU), int(shardsU), nil
}
