// Package admission implements load shedding for the ncqd query path:
// a concurrency limiter with a bounded wait queue that rejects excess
// work immediately instead of letting it pile up in front of the
// worker pool.
//
// The failure mode it prevents is latency collapse: without a limit, a
// burst beyond the corpus fan-out's capacity queues inside the HTTP
// server, every queued request holds its connection and its decoded
// body, service time grows without bound, and by the time a request
// reaches execution its client has usually given up — the server does
// all the work and delivers none of it. The limiter caps what executes
// concurrently, lets a small configurable backlog absorb jitter, and
// answers everything beyond that with an immediate "try later" — which
// the HTTP layer maps to 429 with a Retry-After hint. Rejecting in
// microseconds is what keeps the accepted requests fast.
package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned by Acquire when the limiter's concurrency
// slots and wait queue are both full, or the queue wait expired. The
// HTTP layer maps it to 429 Too Many Requests with a Retry-After hint.
var ErrSaturated = errors.New("admission: server saturated")

// Limiter bounds concurrent executions. A nil *Limiter is valid and
// admits everything — the "admission control off" configuration.
type Limiter struct {
	slots    chan struct{} // filled = executing
	maxQueue int64
	wait     time.Duration

	queued   atomic.Int64
	admitted atomic.Uint64
	rejected atomic.Uint64
}

// New returns a limiter admitting up to maxConcurrent simultaneous
// executions, with up to maxQueue further acquisitions allowed to wait
// up to wait for a slot before being rejected. maxConcurrent <= 0
// returns nil: admission control disabled.
func New(maxConcurrent, maxQueue int, wait time.Duration) *Limiter {
	if maxConcurrent <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if wait < 0 {
		wait = 0
	}
	return &Limiter{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
		wait:     wait,
	}
}

// Acquire claims an execution slot, waiting in the bounded queue when
// none is free. It returns a release closure (idempotent, safe to call
// once more from a defer) on success; ErrSaturated when the queue is
// full or the wait expired; or ctx.Err() when the caller gave up
// first. On a nil limiter it always succeeds.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	select {
	case l.slots <- struct{}{}:
		return l.grant(), nil
	default:
	}
	// No free slot: join the queue if it has room.
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.rejected.Add(1)
		return nil, ErrSaturated
	}
	defer l.queued.Add(-1)
	if l.wait <= 0 {
		l.rejected.Add(1)
		return nil, ErrSaturated
	}
	timer := time.NewTimer(l.wait)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		return l.grant(), nil
	case <-timer.C:
		l.rejected.Add(1)
		return nil, ErrSaturated
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *Limiter) grant() func() {
	l.admitted.Add(1)
	var once sync.Once
	return func() { once.Do(func() { <-l.slots }) }
}

// RetryAfterSeconds is the Retry-After hint for a rejected request:
// the queue wait rounded up to whole seconds, at least 1 — by then at
// least one full wait window has drained.
func (l *Limiter) RetryAfterSeconds() int {
	if l == nil {
		return 1
	}
	secs := int((l.wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Stats is a point-in-time snapshot of the limiter.
type Stats struct {
	InFlight      int    `json:"in_flight"`      // executions holding a slot
	Queued        int    `json:"queued"`         // acquisitions waiting for a slot
	MaxConcurrent int    `json:"max_concurrent"` // slot capacity
	MaxQueue      int    `json:"max_queue"`      // queue capacity
	Admitted      uint64 `json:"admitted"`       // total acquisitions granted
	Rejected      uint64 `json:"rejected"`       // total ErrSaturated rejections
}

// Stats returns a snapshot; the zero Stats on a nil limiter.
func (l *Limiter) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		InFlight:      len(l.slots),
		Queued:        int(l.queued.Load()),
		MaxConcurrent: cap(l.slots),
		MaxQueue:      int(l.maxQueue),
		Admitted:      l.admitted.Load(),
		Rejected:      l.rejected.Load(),
	}
}
