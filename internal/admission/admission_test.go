package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		release, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("nil limiter rejected: %v", err)
		}
		release()
	}
	if s := l.Stats(); s != (Stats{}) {
		t.Errorf("nil limiter stats = %+v, want zero", s)
	}
	if l.RetryAfterSeconds() < 1 {
		t.Error("nil limiter Retry-After < 1")
	}
}

func TestDisabledByConfig(t *testing.T) {
	if New(0, 10, time.Second) != nil {
		t.Error("maxConcurrent=0 should disable admission control")
	}
	if New(-1, 10, time.Second) != nil {
		t.Error("negative maxConcurrent should disable admission control")
	}
}

func TestRejectsWhenSaturated(t *testing.T) {
	l := New(1, 0, 0) // one slot, no queue
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second acquire = %v, want ErrSaturated", err)
	}
	release()
	release() // idempotent
	release2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release2()

	s := l.Stats()
	if s.Admitted != 2 || s.Rejected != 1 || s.InFlight != 0 {
		t.Errorf("stats = %+v, want admitted=2 rejected=1 in_flight=0", s)
	}
}

func TestQueueAbsorbsThenRejects(t *testing.T) {
	l := New(1, 1, time.Minute)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second request joins the queue and blocks.
	queuedErr := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err == nil {
			r()
		}
		queuedErr <- err
	}()
	// Wait for it to occupy the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request overflows the queue: immediate rejection.
	start := time.Now()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow acquire = %v, want ErrSaturated", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("overflow rejection took %v, want immediate", d)
	}

	// Releasing the slot lets the queued request through.
	release()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued acquire = %v, want success after release", err)
	}
}

func TestQueueWaitExpires(t *testing.T) {
	l := New(1, 1, 10*time.Millisecond)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("expired wait = %v, want ErrSaturated", err)
	}
	if got := l.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

func TestAcquireHonorsContext(t *testing.T) {
	l := New(1, 1, time.Minute)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	} {
		if got := New(1, 0, tc.wait).RetryAfterSeconds(); got != tc.want {
			t.Errorf("RetryAfterSeconds(wait=%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}

// Under heavy contention the limiter must never exceed its concurrency
// cap and must account every outcome exactly once.
func TestConcurrencyCapHolds(t *testing.T) {
	const cap, clients = 4, 64
	l := New(cap, clients, time.Second)
	var inFlight, peak, success atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				return
			}
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			success.Add(1)
			release()
		}()
	}
	wg.Wait()
	if peak.Load() > cap {
		t.Errorf("observed %d concurrent executions, cap %d", peak.Load(), cap)
	}
	s := l.Stats()
	if int64(s.Admitted) != success.Load() {
		t.Errorf("admitted = %d, completed = %d", s.Admitted, success.Load())
	}
	if s.Admitted+s.Rejected != clients {
		t.Errorf("admitted+rejected = %d, want %d", s.Admitted+s.Rejected, clients)
	}
	if s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("limiter not drained: %+v", s)
	}
}
