package metrics

// The Prometheus text exposition (version 0.0.4) renderer — what
// GET /v1/metrics serves. Families render in registration order,
// series in creation order, so consecutive scrapes of a quiet server
// are byte-identical and diffs stay readable.

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ)
	w.WriteByte('\n')

	if f.fn != nil {
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(formatFloat(f.fn()))
		w.WriteByte('\n')
		return
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	for _, key := range f.order {
		labels := f.labset[key]
		switch s := f.series[key].(type) {
		case *Counter:
			writeSample(w, f.name, f.labels, labels, "", "", float64(s.Value()))
		case *Gauge:
			writeSample(w, f.name, f.labels, labels, "", "", float64(s.Value()))
		case *Histogram:
			cum := int64(0)
			for i, bound := range s.buckets {
				cum += s.counts[i].Value()
				writeSample(w, f.name+"_bucket", f.labels, labels, "le", formatFloat(bound), float64(cum))
			}
			cum += s.counts[len(s.buckets)].Value()
			writeSample(w, f.name+"_bucket", f.labels, labels, "le", "+Inf", float64(cum))
			writeSample(w, f.name+"_sum", f.labels, labels, "", "", s.Sum())
			writeSample(w, f.name+"_count", f.labels, labels, "", "", float64(s.Count()))
		}
	}
}

// writeSample renders one sample line, appending the extra label
// (histograms' "le") after the family labels when set.
func writeSample(w *bufio.Writer, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	w.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(ln)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(labelValues[i]))
			w.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
