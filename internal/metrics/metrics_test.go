package metrics

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("ncq_test_total", "A test counter.", "route", "status")
	c.With("/v1/query", "200").Add(3)
	c.With("/v1/query", "404").Inc()
	g := reg.Gauge("ncq_test_depth", "A test gauge.")
	g.Set(7)
	g.Dec()
	reg.GaugeFunc("ncq_test_sampled", "A sampled gauge.", func() float64 { return 2.5 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP ncq_test_total A test counter.",
		"# TYPE ncq_test_total counter",
		`ncq_test_total{route="/v1/query",status="200"} 3`,
		`ncq_test_total{route="/v1/query",status="404"} 1`,
		"# TYPE ncq_test_depth gauge",
		"ncq_test_depth 6",
		"ncq_test_sampled 2.5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterNeverDecreases(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ncq_mono_total", "x")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter accepted a negative delta: %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("ncq_test_seconds", "A test histogram.",
		[]float64{0.1, 1}, "route")
	s := h.With("/v2/query")
	s.Observe(0.05) // bucket le=0.1
	s.Observe(0.5)  // bucket le=1
	s.Observe(0.1)  // boundary lands in le=0.1
	s.Observe(3)    // +Inf only

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE ncq_test_seconds histogram",
		`ncq_test_seconds_bucket{route="/v2/query",le="0.1"} 2`,
		`ncq_test_seconds_bucket{route="/v2/query",le="1"} 3`,
		`ncq_test_seconds_bucket{route="/v2/query",le="+Inf"} 4`,
		`ncq_test_seconds_sum{route="/v2/query"} 3.65`,
		`ncq_test_seconds_count{route="/v2/query"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("ncq_esc_total", "x", "v").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `ncq_esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Errorf("escaping: got\n%s\nwant a line %q", sb.String(), want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ncq_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.Gauge("ncq_dup_total", "y")
}

func TestLabelArityPanics(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("ncq_arity_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("label arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestExpvarSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ncq_ev_total", "x").Add(2)
	reg.HistogramVec("ncq_ev_seconds", "x", []float64{1}, "r").With("q").Observe(0.5)
	snap := reg.Expvar()().(map[string]any)
	if snap["ncq_ev_total"] != int64(2) {
		t.Errorf("expvar counter = %v", snap["ncq_ev_total"])
	}
	if snap["ncq_ev_seconds{q}_count"] != int64(1) {
		t.Errorf("expvar histogram count = %v (snapshot %v)", snap["ncq_ev_seconds{q}_count"], snap)
	}
}

// TestInstrument pins the middleware contract: per-route series, a log
// line carrying status, fingerprint and cache disposition, and Flush
// forwarding through the recorder.
func TestInstrument(t *testing.T) {
	reg := NewRegistry()
	httpm := NewHTTP(reg)

	var logs strings.Builder
	logger := slog.New(slog.NewTextHandler(&logs, nil))

	flushed := false
	h := httpm.Instrument("/v1/test", logger, false,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			SetFingerprint(r.Context(), "doc=\"x\" terms=[a]")
			w.Header().Set("X-NCQ-Cache", "hit")
			w.WriteHeader(http.StatusTeapot)
			w.Write([]byte("body"))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
				flushed = true
			}
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/test", nil))

	if !flushed {
		t.Error("recorder does not expose http.Flusher")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `ncq_http_requests_total{route="/v1/test",status="418"} 1`) {
		t.Errorf("request counter missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `ncq_http_request_duration_seconds_count{route="/v1/test"} 1`) {
		t.Errorf("duration histogram missing:\n%s", sb.String())
	}
	line := logs.String()
	for _, want := range []string{"msg=request", "route=/v1/test", "status=418", "cache=hit", "query_fp=", "level=WARN"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}

// Quiet routes log at Debug: invisible at the default Info level.
func TestInstrumentQuiet(t *testing.T) {
	reg := NewRegistry()
	httpm := NewHTTP(reg)
	var logs strings.Builder
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	h := httpm.Instrument("/v1/healthz", logger, true,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if logs.Len() != 0 {
		t.Errorf("quiet route logged at Info: %s", logs.String())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `ncq_http_requests_total{route="/v1/healthz",status="200"} 1`) {
		t.Error("quiet route still counts")
	}
}

// SetFingerprint outside an instrumented request is a safe no-op.
func TestSetFingerprintNoContext(t *testing.T) {
	SetFingerprint(context.Background(), "anything")
}
