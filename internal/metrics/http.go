package metrics

// The HTTP serving middleware shared by the single-node server and the
// cluster coordinator: one wrapper per route that measures latency into
// a per-route histogram, counts requests by (route, status), and emits
// one slog request log line per request — method, route, status,
// duration, response bytes, the query fingerprint when a handler
// recorded one, and the cache disposition from the X-NCQ-Cache header
// the handlers already set.

import (
	"context"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HTTP bundles the per-route serving metric families.
type HTTP struct {
	// Requests counts completed requests: ncq_http_requests_total{route,status}.
	Requests *CounterVec
	// Duration observes wall time: ncq_http_request_duration_seconds{route}.
	Duration *HistogramVec
}

// NewHTTP registers the serving families on reg.
func NewHTTP(reg *Registry) *HTTP {
	return &HTTP{
		Requests: reg.CounterVec("ncq_http_requests_total",
			"Completed HTTP requests by route and status code.", "route", "status"),
		Duration: reg.HistogramVec("ncq_http_request_duration_seconds",
			"HTTP request wall time in seconds by route.", nil, "route"),
	}
}

// requestInfo is the per-request scratch the middleware places in the
// context so handlers deep in the execution path can annotate the
// request log line. Handler and middleware run on one goroutine; no
// locking needed.
type requestInfo struct {
	fingerprint uint64
	hasFP       bool
}

type requestInfoKey struct{}

// SetFingerprint records the canonical-request fingerprint on the
// request's log line: an FNV-64a hash of ncq.Request.Canonical(), so
// operators can group log lines by logical query — "which query is
// slow / hammering the cache" — without the log carrying the terms
// themselves. A no-op outside an instrumented request.
func SetFingerprint(ctx context.Context, canonical string) {
	ri, ok := ctx.Value(requestInfoKey{}).(*requestInfo)
	if !ok {
		return
	}
	h := fnv.New64a()
	h.Write([]byte(canonical))
	ri.fingerprint, ri.hasFP = h.Sum64(), true
}

// statusRecorder captures the response status and size. It forwards
// Flush so NDJSON streaming keeps its per-line flush behaviour through
// the middleware, and Unwrap for http.ResponseController.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.status, r.wrote = http.StatusOK, true
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Instrument wraps a route's handler with metrics and request
// logging. route labels the metric series and the log line — the
// pattern ("/v2/query"), never the raw URL, bounding series
// cardinality. quiet routes (health probes, scrape targets) log at
// Debug so a 5-second poller does not own the log volume; everything
// else logs Info for 2xx/3xx, Warn for 4xx and Error for 5xx.
func (m *HTTP) Instrument(route string, logger *slog.Logger, quiet bool, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		ri := &requestInfo{}
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, ri)))
		elapsed := time.Since(start)

		m.Duration.With(route).Observe(elapsed.Seconds())
		m.Requests.With(route, strconv.Itoa(rec.status)).Inc()

		level := slog.LevelInfo
		switch {
		case quiet:
			level = slog.LevelDebug
		case rec.status >= 500:
			level = slog.LevelError
		case rec.status >= 400:
			level = slog.LevelWarn
		}
		if !logger.Enabled(r.Context(), level) {
			return
		}
		attrs := make([]slog.Attr, 0, 8)
		attrs = append(attrs,
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("status", rec.status),
			slog.Duration("duration", elapsed),
			slog.Int64("bytes", rec.bytes))
		if ri.hasFP {
			attrs = append(attrs, slog.String("query_fp", strconv.FormatUint(ri.fingerprint, 16)))
		}
		if c := rec.Header().Get("X-NCQ-Cache"); c != "" {
			attrs = append(attrs, slog.String("cache", c))
		}
		logger.LogAttrs(r.Context(), level, "request", attrs...)
	})
}
