// Package metrics is the observability core of the ncqd daemons: a
// small in-process metric registry built on expvar's lock-free
// primitives (expvar.Int, expvar.Float), rendered in the Prometheus
// text exposition format at GET /v1/metrics.
//
// The package deliberately implements the minimal surface the serving
// layer needs — counters, gauges, latency histograms, each optionally
// labelled, plus sampled *Func variants for values that already live
// elsewhere (cache statistics, pool widths, admission counters) — with
// no dependency outside the standard library. Each Server and each
// cluster Coordinator owns its own Registry, so httptest instances in
// the same process never collide; a daemon that wants the classic
// /debug/vars integration publishes the registry once via Expvar.
//
// Metric names follow the Prometheus conventions: an "ncq_" namespace
// prefix, "_total" on counters, base units in the name
// ("..._seconds", "..._bytes"). Every exported series is documented in
// docs/OPERATIONS.md; scripts/docscheck fails CI when one is not.
package metrics

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds a set of metric families in registration order.
// Registration (the Counter/Gauge/Histogram constructors) panics on a
// duplicate or invalid name — metric wiring is programmer-controlled
// start-up code, not input handling. All methods are safe for
// concurrent use.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family: a help string, a type, a label
// schema, and its series (one per distinct label-value tuple).
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	labels  []string
	buckets []float64 // histograms only

	fn func() float64 // sampled families (CounterFunc/GaugeFunc)

	mu     sync.Mutex
	order  []string // series creation order, keys into series
	series map[string]any
	labset map[string][]string // series key -> label values
}

// register adds a family, panicking on duplicates or empty names.
func (r *Registry) register(f *family) *family {
	if f.name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic("metrics: duplicate metric " + f.name)
	}
	f.series = make(map[string]any)
	f.labset = make(map[string][]string)
	r.byName[f.name] = f
	r.fams = append(r.fams, f)
	return f
}

// seriesKey joins label values into a map key. \xff cannot appear in
// valid UTF-8 label values, so the join is collision-free.
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// with returns the family's series for the label values, creating it
// on first use via mk. Panics on label arity mismatches.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s: got %d label values, want %d (%v)",
			f.name, len(values), len(f.labels), f.labels))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.labset[key] = append([]string(nil), values...)
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ v expvar.Int }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (a counter never decreases).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Value() }

// Gauge is a value that can go up and down.
type Gauge struct{ v expvar.Int }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Set(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Value() }

// Histogram accumulates observations into cumulative buckets — the
// Prometheus histogram shape, quantile-queryable server-side with
// histogram_quantile(). Buckets hold upper bounds in ascending order;
// the +Inf bucket is implicit.
type Histogram struct {
	buckets []float64
	counts  []expvar.Int // one per bucket, +Inf last
	sum     expvar.Float
	count   expvar.Int
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]expvar.Int, len(buckets)+1)}
}

// Observe records one observation (for latency histograms: seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Value() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets are the default latency buckets, in seconds: 100µs to
// 10s, roughly logarithmic — wide enough for a cached in-process hit
// and a cross-cluster scatter alike.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label
// name, in registration order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.with(labelValues, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.with(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f *family
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.with(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Counter registers an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(&family{name: name, help: help, typ: "counter", labels: labels})
	return &CounterVec{f: f}
}

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(&family{name: name, help: help, typ: "gauge", labels: labels})
	return &GaugeVec{f: f}
}

// Histogram registers an unlabelled histogram with the given upper
// bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers a histogram family with the given upper
// bounds (nil = DefBuckets) and label names. Bounds must be sorted
// ascending.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("metrics: " + name + ": histogram buckets must be sorted")
	}
	f := r.register(&family{name: name, help: help, typ: "histogram", labels: labels, buckets: buckets})
	return &HistogramVec{f: f}
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time — for monotone counts that already live elsewhere
// (cache hit totals, admission rejections) and would be double
// bookkeeping as a live Counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a gauge sampled from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", fn: fn})
}

// Expvar renders the registry as one expvar.Func, for daemons that
// want the registry visible on /debug/vars next to the runtime's
// built-ins: expvar.Publish("ncq", reg.Expvar()). Histograms export
// their count and sum; bucket detail stays on the Prometheus surface.
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		out := make(map[string]any)
		r.mu.Lock()
		fams := append([]*family(nil), r.fams...)
		r.mu.Unlock()
		for _, f := range fams {
			if f.fn != nil {
				out[f.name] = f.fn()
				continue
			}
			f.mu.Lock()
			for _, key := range f.order {
				name := f.name
				if len(f.labels) > 0 {
					name += "{" + strings.Join(f.labset[key], ",") + "}"
				}
				switch s := f.series[key].(type) {
				case *Counter:
					out[name] = s.Value()
				case *Gauge:
					out[name] = s.Value()
				case *Histogram:
					out[name+"_count"] = s.Count()
					out[name+"_sum"] = s.Sum()
				}
			}
			f.mu.Unlock()
		}
		return out
	}
}
