package server

import (
	"errors"
	"net/http"
	"strings"

	"ncq"
)

// docInfo is the document metadata returned by the docs endpoints.
type docInfo struct {
	Name  string    `json:"name"`
	Stats ncq.Stats `json:"stats"`
}

// validDocName rejects names that would be ambiguous in URLs or
// unreasonable as identifiers. The ServeMux wildcard already excludes
// empty segments and slashes; this guards length and control bytes.
func validDocName(name string) bool {
	if name == "" || len(name) > maxDocNameLen {
		return false
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return !strings.ContainsAny(name, "/\\")
}

// handlePutDoc loads the XML request body as a document and registers
// it under the path name, replacing any previous document of that name.
func (s *Server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validDocName(name) {
		writeError(w, http.StatusBadRequest, "invalid document name %q", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	db, err := ncq.Open(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"document exceeds the %d byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "parse document: %v", err)
		return
	}
	replaced, err := s.corpus.Put(name, db)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "register document: %v", err)
		return
	}
	s.invalidate()
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, docInfo{Name: name, Stats: db.Stats()})
}

func (s *Server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	db, ok := s.corpus.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	writeJSON(w, http.StatusOK, docInfo{Name: name, Stats: db.Stats()})
}

func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.corpus.Remove(name) {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	s.invalidate()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	docs := []docInfo{}
	for _, name := range s.corpus.Names() {
		if db, ok := s.corpus.Get(name); ok {
			docs = append(docs, docInfo{Name: name, Stats: db.Stats()})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"docs":       docs,
		"generation": s.corpus.Generation(),
	})
}
