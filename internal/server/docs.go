package server

import (
	"errors"
	"net/http"
	"strconv"
	"strings"

	"ncq"
	"ncq/internal/shard"
	"ncq/internal/xmltree"
)

// SnapshotContentType marks a PUT /v1/docs/{name} body as a binary
// snapshot (SaveSnapshot output) instead of XML: the document loads
// without a parse or shred. The cluster coordinator forwards the
// header verbatim, so snapshot uploads work through it unchanged.
const SnapshotContentType = "application/x-ncq-snapshot"

// streamShardBudget is the per-shard input budget for chunked uploads
// whose total size is unknown (no Content-Length).
const streamShardBudget = 8 << 20

// smallShardedBody is the Content-Length up to which a sharded upload
// is buffered and split by node count (perfectly balanced shards);
// anything larger — or of unknown length — streams, deciding shard
// boundaries by byte budget as the parse goes so the raw body is never
// buffered whole.
const smallShardedBody = 4 << 20

// docInfo is the document metadata returned by the docs endpoints.
// Stats aggregate over all shards of a sharded document.
type docInfo struct {
	Name   string    `json:"name"`
	Shards int       `json:"shards"`
	Stats  ncq.Stats `json:"stats"`
}

// validDocName rejects names that would be ambiguous in URLs or
// unreasonable as identifiers. The ServeMux wildcard already excludes
// empty segments and slashes; this guards length and control bytes.
func validDocName(name string) bool {
	if name == "" || len(name) > maxDocNameLen {
		return false
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return !strings.ContainsAny(name, "/\\")
}

// shardsParam parses the optional ?shards=K query parameter: 0 or 1
// (and absence) mean an unsharded upload.
func shardsParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("shards")
	if raw == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 0 {
		return 0, errors.New("\"shards\" must be a non-negative integer")
	}
	if k > maxShardsParam {
		return 0, errors.New("\"shards\" must be at most " + strconv.Itoa(maxShardsParam))
	}
	return k, nil
}

// handlePutDoc loads the XML request body as a document and registers
// it under the path name, replacing any previous document of that
// name. With ?shards=K the document is split into up to K subtree
// shards that later queries fan out over in parallel; clients keep
// addressing the document by this one name.
func (s *Server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validDocName(name) {
		writeError(w, http.StatusBadRequest, "invalid document name %q", name)
		return
	}
	k, err := shardsParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)

	var replaced bool
	info := docInfo{Name: name}
	switch {
	case strings.HasPrefix(r.Header.Get("Content-Type"), SnapshotContentType):
		// Content negotiation: the body is a binary snapshot, loaded
		// without the XML parse and shred. Snapshots carry their own
		// sharding decision, so ?shards is not meaningful here.
		if k > 1 {
			writeError(w, http.StatusBadRequest, "\"shards\" does not apply to a snapshot body")
			return
		}
		db, err := ncq.OpenSnapshot(body)
		if err != nil {
			writeParseError(w, err)
			return
		}
		if replaced, err = s.putPlain(name, db); err != nil {
			writeError(w, http.StatusInternalServerError, "register document: %v", err)
			return
		}
		info.Shards, info.Stats = 1, db.Stats()
	case k > 1 && r.ContentLength >= 0 && r.ContentLength <= smallShardedBody && s.store == nil:
		// Small body, no durability: buffer and split by node count for
		// perfectly balanced shards, exactly as before.
		doc, err := ncq.ParseDocument(body)
		if err != nil {
			writeParseError(w, err)
			return
		}
		// The returned shard databases describe exactly this upload, so
		// the response stays truthful even when a concurrent PUT or
		// DELETE of the same name wins the follow-up race.
		dbs, repl, err := s.corpus.AddSharded(name, doc, k)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "register document: %v", err)
			return
		}
		replaced = repl
		info.Shards, info.Stats = len(dbs), ncq.AggregateStats(dbs)
	case k > 1:
		// Shard boundaries are decided as the parse streams, so a
		// chunked or multi-GB upload is never buffered whole. The byte
		// budget comes from Content-Length when the client sent one.
		// Small durable uploads take this path too: what it costs in
		// balance it repays by producing the shard databases the
		// durability layer persists one file each.
		budget := int64(streamShardBudget)
		if r.ContentLength > 0 {
			budget = r.ContentLength / int64(k)
			if budget < 1 {
				budget = 1
			}
		}
		var dbs []*ncq.Database
		if _, err := shard.SplitStream(body, budget, k, func(d *xmltree.Document) error {
			db, err := ncq.FromDocument(d)
			if err != nil {
				return err
			}
			dbs = append(dbs, db)
			return nil
		}); err != nil {
			writeParseError(w, err)
			return
		}
		var err error
		if s.store != nil {
			replaced, err = s.store.PutShards(name, dbs)
		} else {
			replaced, err = s.corpus.AddShardDBs(name, dbs)
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, "register document: %v", err)
			return
		}
		info.Shards, info.Stats = len(dbs), ncq.AggregateStats(dbs)
	default:
		db, err := ncq.Open(body)
		if err != nil {
			writeParseError(w, err)
			return
		}
		if replaced, err = s.putPlain(name, db); err != nil {
			writeError(w, http.StatusInternalServerError, "register document: %v", err)
			return
		}
		info.Shards, info.Stats = 1, db.Stats()
	}
	s.invalidate()
	s.stampGeneration(w)
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// writeParseError distinguishes an oversized upload from a malformed
// one.
func writeParseError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"document exceeds the %d byte limit", tooLarge.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "parse document: %v", err)
}

func (s *Server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, shards, ok := s.corpus.MemberStats(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	writeJSON(w, http.StatusOK, docInfo{Name: name, Shards: shards, Stats: st})
}

// putPlain registers an unsharded document, through the durability
// layer when one is attached.
func (s *Server) putPlain(name string, db *ncq.Database) (bool, error) {
	if s.store != nil {
		return s.store.PutPlain(name, db)
	}
	return s.corpus.Put(name, db)
}

func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.store != nil {
		ok, err := s.store.Delete(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "evict document: %v", err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, "no document %q", name)
			return
		}
	} else if !s.corpus.Remove(name) {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	s.invalidate()
	s.stampGeneration(w)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	docs := []docInfo{}
	for _, name := range s.corpus.Names() {
		if st, shards, ok := s.corpus.MemberStats(name); ok {
			docs = append(docs, docInfo{Name: name, Shards: shards, Stats: st})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"docs":       docs,
		"generation": s.corpus.Generation(),
	})
}
