package server

import (
	"errors"
	"net/http"
	"strconv"
	"strings"

	"ncq"
)

// docInfo is the document metadata returned by the docs endpoints.
// Stats aggregate over all shards of a sharded document.
type docInfo struct {
	Name   string    `json:"name"`
	Shards int       `json:"shards"`
	Stats  ncq.Stats `json:"stats"`
}

// validDocName rejects names that would be ambiguous in URLs or
// unreasonable as identifiers. The ServeMux wildcard already excludes
// empty segments and slashes; this guards length and control bytes.
func validDocName(name string) bool {
	if name == "" || len(name) > maxDocNameLen {
		return false
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return !strings.ContainsAny(name, "/\\")
}

// shardsParam parses the optional ?shards=K query parameter: 0 or 1
// (and absence) mean an unsharded upload.
func shardsParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("shards")
	if raw == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 0 {
		return 0, errors.New("\"shards\" must be a non-negative integer")
	}
	if k > maxShardsParam {
		return 0, errors.New("\"shards\" must be at most " + strconv.Itoa(maxShardsParam))
	}
	return k, nil
}

// handlePutDoc loads the XML request body as a document and registers
// it under the path name, replacing any previous document of that
// name. With ?shards=K the document is split into up to K subtree
// shards that later queries fan out over in parallel; clients keep
// addressing the document by this one name.
func (s *Server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validDocName(name) {
		writeError(w, http.StatusBadRequest, "invalid document name %q", name)
		return
	}
	k, err := shardsParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)

	var replaced bool
	info := docInfo{Name: name}
	if k > 1 {
		doc, err := ncq.ParseDocument(body)
		if err != nil {
			writeParseError(w, err)
			return
		}
		// The returned shard databases describe exactly this upload, so
		// the response stays truthful even when a concurrent PUT or
		// DELETE of the same name wins the follow-up race.
		dbs, repl, err := s.corpus.AddSharded(name, doc, k)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "register document: %v", err)
			return
		}
		replaced = repl
		info.Shards, info.Stats = len(dbs), ncq.AggregateStats(dbs)
	} else {
		db, err := ncq.Open(body)
		if err != nil {
			writeParseError(w, err)
			return
		}
		if replaced, err = s.corpus.Put(name, db); err != nil {
			writeError(w, http.StatusInternalServerError, "register document: %v", err)
			return
		}
		info.Shards, info.Stats = 1, db.Stats()
	}
	s.invalidate()
	s.stampGeneration(w)
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// writeParseError distinguishes an oversized upload from a malformed
// one.
func writeParseError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"document exceeds the %d byte limit", tooLarge.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "parse document: %v", err)
}

func (s *Server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, shards, ok := s.corpus.MemberStats(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	writeJSON(w, http.StatusOK, docInfo{Name: name, Shards: shards, Stats: st})
}

func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.corpus.Remove(name) {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	s.invalidate()
	s.stampGeneration(w)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	docs := []docInfo{}
	for _, name := range s.corpus.Names() {
		if st, shards, ok := s.corpus.MemberStats(name); ok {
			docs = append(docs, docInfo{Name: name, Shards: shards, Stats: st})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"docs":       docs,
		"generation": s.corpus.Generation(),
	})
}
