package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// The wire mirror of the v2 envelopes, raw result decoded into typed
// form as a client would read it.
type wireV2Response struct {
	Cached     bool         `json:"cached"`
	Generation uint64       `json:"generation"`
	TookMS     float64      `json:"took_ms"`
	Truncated  bool         `json:"truncated"`
	NextCursor string       `json:"next_cursor"`
	Result     *queryResult `json:"result"`
}

type wireV2BatchItem struct {
	Status     int          `json:"status"`
	Cached     bool         `json:"cached"`
	Error      string       `json:"error"`
	Truncated  bool         `json:"truncated"`
	NextCursor string       `json:"next_cursor"`
	Result     *queryResult `json:"result"`
}

type wireV2BatchResponse struct {
	Generation uint64            `json:"generation"`
	TookMS     float64           `json:"took_ms"`
	Results    []wireV2BatchItem `json:"results"`
}

func TestQueryV2SingleDoc(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v2/query",
		`{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireV2Response](t, rec)
	if resp.Cached || resp.Result.Mode != "terms" {
		t.Errorf("resp = %+v", resp)
	}
	if len(resp.Result.Meets) != 1 || resp.Result.Meets[0].Tag != "article" ||
		resp.Result.Meets[0].Source != "cwi" {
		t.Errorf("meets = %+v", resp.Result.Meets)
	}
	if resp.TookMS < 0 {
		t.Errorf("took_ms = %v", resp.TookMS)
	}
}

func TestQueryV2CorpusWideAndQueryLanguage(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v2/query", `{"terms":["Bit","1999"],"exclude_root":true}`)
	resp := decode[wireV2Response](t, rec)
	tags := map[string]string{}
	for _, m := range resp.Result.Meets {
		tags[m.Source] = m.Tag
	}
	if tags["cwi"] != "article" || tags["personal"] != "entry" || tags["library"] != "record" {
		t.Errorf("tags = %v", tags)
	}
	rec = do(t, s, "POST", "/v2/query",
		`{"doc":"cwi","query":"SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2 WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'"}`)
	qresp := decode[wireV2Response](t, rec)
	if qresp.Result.Mode != "query" || len(qresp.Result.Answers) != 1 ||
		qresp.Result.Answers[0].Rows[0].Tag != "article" {
		t.Errorf("query result = %+v", qresp.Result)
	}
}

// TestQueryV2CacheSharedWithV1: the two endpoints key the cache by the
// same canonical request encoding, so they serve each other's entries.
func TestQueryV2CacheSharedWithV1(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"terms":["Bit","1999"],"exclude_root":true}`
	if rec := do(t, s, "POST", "/v1/query", body); rec.Header().Get("X-NCQ-Cache") != "miss" {
		t.Fatal("v1 warm-up was not a miss")
	}
	rec := do(t, s, "POST", "/v2/query", body)
	if rec.Header().Get("X-NCQ-Cache") != "hit" {
		t.Error("v2 did not hit the entry cached by v1")
	}
	if !decode[wireV2Response](t, rec).Cached {
		t.Error("v2 response not marked cached")
	}
	// And the other direction, on a fresh request.
	body2 := `{"terms":["Code"]}`
	do(t, s, "POST", "/v2/query", body2)
	if rec := do(t, s, "POST", "/v1/query", body2); rec.Header().Get("X-NCQ-Cache") != "hit" {
		t.Error("v1 did not hit the entry cached by v2")
	}
}

// TestQueryV2CursorPagination pages through a result set with limit 1
// and pins that the pages concatenate to the unpaginated answer.
func TestQueryV2CursorPagination(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	full := decode[wireV2Response](t, do(t, s, "POST", "/v2/query", `{"terms":["19"]}`))
	if len(full.Result.Meets) < 2 {
		t.Fatalf("workload too small: %d meets", len(full.Result.Meets))
	}
	var collected []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > len(full.Result.Meets) {
			t.Fatal("pagination does not terminate")
		}
		body := `{"terms":["19"],"limit":1`
		if cursor != "" {
			body += `,"cursor":` + fmt.Sprintf("%q", cursor)
		}
		body += `}`
		rec := do(t, s, "POST", "/v2/query", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: %d %s", pages, rec.Code, rec.Body)
		}
		page := decode[wireV2Response](t, rec)
		for _, m := range page.Result.Meets {
			collected = append(collected, fmt.Sprintf("%s/%d/%d", m.Source, m.Shard, m.Node))
		}
		if page.NextCursor == "" {
			if page.Truncated {
				t.Error("truncated final page without cursor")
			}
			break
		}
		if !page.Truncated {
			t.Error("cursor on an untruncated page")
		}
		cursor = page.NextCursor
	}
	var want []string
	for _, m := range full.Result.Meets {
		want = append(want, fmt.Sprintf("%s/%d/%d", m.Source, m.Shard, m.Node))
	}
	if strings.Join(collected, " ") != strings.Join(want, " ") {
		t.Errorf("paginated walk diverged:\n got %v\nwant %v", collected, want)
	}

	// A cursor from a different request is rejected with 400.
	first := decode[wireV2Response](t, do(t, s, "POST", "/v2/query", `{"terms":["19"],"limit":1}`))
	body := fmt.Sprintf(`{"terms":["Bit"],"limit":1,"cursor":%q}`, first.NextCursor)
	if rec := do(t, s, "POST", "/v2/query", body); rec.Code != http.StatusBadRequest {
		t.Errorf("foreign cursor: %d %s", rec.Code, rec.Body)
	}
}

func TestQueryV2Batch(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"batch":[
		{"terms":["Bit","1999"],"exclude_root":true,"limit":2},
		{"doc":"ghost","terms":["x"]},
		{"terms":[""]},
		{"terms":["Bit","1999"],"exclude_root":true,"limit":2}
	]}`
	rec := do(t, s, "POST", "/v2/query", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireV2BatchResponse](t, rec)
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if r := resp.Results[0]; r.Status != http.StatusOK || r.Error != "" || len(r.Result.Meets) == 0 {
		t.Errorf("result 0 = %+v", r)
	}
	if r := resp.Results[1]; r.Status != http.StatusNotFound || !strings.Contains(r.Error, "unknown document") {
		t.Errorf("result 1 = %+v", r)
	}
	if r := resp.Results[2]; r.Status != http.StatusBadRequest || !strings.Contains(r.Error, "invalid request") {
		t.Errorf("result 2 = %+v", r)
	}
	if r := resp.Results[3]; r.Status != http.StatusOK || len(r.Result.Meets) != len(resp.Results[0].Result.Meets) {
		t.Errorf("duplicate diverged: %+v", r)
	}
	// A repeated batch is pure cache traffic.
	resp = decode[wireV2BatchResponse](t, do(t, s, "POST", "/v2/query", body))
	if !resp.Results[0].Cached || !resp.Results[3].Cached {
		t.Error("repeat batch not cached")
	}
}

// TestUnknownDocStatus is the satellite regression: ErrUnknownDoc maps
// to 404 — never 500 — on every query surface.
func TestUnknownDocStatus(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	// v1 single query.
	if rec := do(t, s, "POST", "/v1/query", `{"doc":"ghost","terms":["x"]}`); rec.Code != http.StatusNotFound {
		t.Errorf("/v1/query: %d", rec.Code)
	}
	// v1 query-language mode resolves the document too.
	if rec := do(t, s, "POST", "/v1/query", `{"doc":"ghost","query":"SELECT tag(e) FROM //x AS e"}`); rec.Code != http.StatusNotFound {
		t.Errorf("/v1/query (query mode): %d", rec.Code)
	}
	// v1 batch: per-item error, whole response 200.
	rec := do(t, s, "POST", "/v1/query/batch", `{"queries":[{"doc":"ghost","terms":["x"]}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/query/batch: %d", rec.Code)
	}
	if resp := decode[wireBatchResponse](t, rec); !strings.Contains(resp.Results[0].Error, "no document") {
		t.Errorf("batch item error = %q", resp.Results[0].Error)
	}
	// v2 single: 404 with the unified error.
	rec = do(t, s, "POST", "/v2/query", `{"doc":"ghost","terms":["x"]}`)
	if rec.Code != http.StatusNotFound {
		t.Errorf("/v2/query: %d %s", rec.Code, rec.Body)
	}
	if e := decode[errorResponse](t, rec); !strings.Contains(e.Error, "unknown document") {
		t.Errorf("/v2/query error = %q", e.Error)
	}
	// v2 batch: per-item 404 status.
	rec = do(t, s, "POST", "/v2/query", `{"batch":[{"doc":"ghost","query":"SELECT tag(e) FROM //x AS e"}]}`)
	resp := decode[wireV2BatchResponse](t, rec)
	if resp.Results[0].Status != http.StatusNotFound {
		t.Errorf("v2 batch item status = %d", resp.Results[0].Status)
	}
}

func TestQueryV2Validation(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed", `{`, http.StatusBadRequest},
		{"unknown field", `{"trems":["x"]}`, http.StatusBadRequest},
		{"empty", `{}`, http.StatusBadRequest},
		{"inline and batch", `{"terms":["x"],"batch":[{"terms":["y"]}]}`, http.StatusBadRequest},
		{"inline limit with batch", `{"limit":1,"batch":[{"terms":["y"]}]}`, http.StatusBadRequest},
		{"inline options with batch", `{"exclude_root":true,"batch":[{"terms":["y"]}]}`, http.StatusBadRequest},
		{"negative timeout", `{"terms":["x"],"timeout_ms":-1}`, http.StatusBadRequest},
		{"bad cursor", `{"terms":["x"],"cursor":"@@@"}`, http.StatusBadRequest},
		{"empty batch item", `{"batch":[]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, "POST", "/v2/query", tc.body)
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d (%s)", rec.Code, tc.want, rec.Body)
			}
		})
	}
	var b strings.Builder
	b.WriteString(`{"batch":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"terms":["t%d"]}`, i)
	}
	b.WriteString(`]}`)
	if rec := do(t, s, "POST", "/v2/query", b.String()); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: %d", rec.Code)
	}
}

// TestQueryV2Deadline: a 1ms per-request deadline on a query that
// takes tens of milliseconds maps to 504. The deadline timer needs the
// scheduler to fire it, so on a loaded single-core box one attempt can
// race the query's completion — each attempt therefore uses a fresh
// (uncached) request, and any attempt timing out passes.
func TestQueryV2Deadline(t *testing.T) {
	s := newTestServer(t)
	// A heavyweight corpus: broad terms over several sharded documents.
	// Sized so the query body outlasts 1ms even on the columnar hot
	// path (the postings rebuild made 2500-record members finish
	// before the deadline timer could ever fire).
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("big%d", i)
		if rec := do(t, s, "PUT", "/v1/docs/"+name+"?shards=4", shardedBib(20000)); rec.Code != http.StatusCreated {
			t.Fatalf("put %s: %d", name, rec.Code)
		}
	}
	for attempt := 0; attempt < 5; attempt++ {
		body := fmt.Sprintf(`{"terms":["Author","199%d"],"exclude_root":true,"timeout_ms":1}`, attempt)
		rec := do(t, s, "POST", "/v2/query", body)
		if rec.Code == http.StatusGatewayTimeout {
			if e := decode[errorResponse](t, rec); !strings.Contains(e.Error, "deadline") {
				t.Errorf("deadline error = %q", e.Error)
			}
			return
		}
	}
	t.Error("no query under a 1ms deadline returned 504 in 5 attempts")
}

// TestQueryV2EmptyCorpus: corpus-wide runs on an empty corpus answer
// 200 with an empty result, exactly as v1 does.
func TestQueryV2EmptyCorpus(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "POST", "/v2/query", `{"terms":["x"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireV2Response](t, rec)
	if resp.Result.Mode != "terms" || len(resp.Result.Meets) != 0 || resp.Truncated {
		t.Errorf("result = %+v", resp.Result)
	}
}
