package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// shardedBib is a root with many records, worth splitting.
func shardedBib(records int) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < records; i++ {
		fmt.Fprintf(&b, "<article><author>Author%d</author><year>%d</year></article>", i, 1990+i%10)
	}
	b.WriteString("</bib>")
	return b.String()
}

func TestPutDocSharded(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "PUT", "/v1/docs/bib?shards=4", shardedBib(16))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	info := decode[docInfo](t, rec)
	if info.Name != "bib" || info.Shards != 4 || info.Stats.Nodes == 0 {
		t.Errorf("info = %+v", info)
	}

	// GET reports the aggregated view under the logical name.
	rec = do(t, s, "GET", "/v1/docs/bib", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d", rec.Code)
	}
	if got := decode[docInfo](t, rec); got.Shards != 4 || got.Stats.Nodes != info.Stats.Nodes {
		t.Errorf("get info = %+v", got)
	}

	// The list shows one logical document.
	rec = do(t, s, "GET", "/v1/docs", "")
	list := decode[struct {
		Docs []docInfo `json:"docs"`
	}](t, rec)
	if len(list.Docs) != 1 || list.Docs[0].Shards != 4 {
		t.Errorf("list = %+v", list.Docs)
	}

	// Queries address the logical name and answers carry it as source.
	rec = do(t, s, "POST", "/v1/query", `{"doc":"bib","terms":["Author3","1993"],"exclude_root":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	qr := decode[wireQueryResponse](t, rec)
	if len(qr.Result.Meets) == 0 {
		t.Fatal("no meets on sharded doc")
	}
	for _, m := range qr.Result.Meets {
		if m.Source != "bib" || m.Shard < 1 {
			t.Errorf("meet = source %q shard %d", m.Source, m.Shard)
		}
	}

	// Replacing with an unsharded body collapses back to one shard.
	if rec := do(t, s, "PUT", "/v1/docs/bib", shardedBib(4)); rec.Code != http.StatusOK {
		t.Fatalf("replace: %d", rec.Code)
	}
	if got := decode[docInfo](t, do(t, s, "GET", "/v1/docs/bib", "")); got.Shards != 1 {
		t.Errorf("shards after unsharded replace = %d", got.Shards)
	}

	// DELETE evicts the whole logical document.
	if rec := do(t, s, "DELETE", "/v1/docs/bib", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	if s.corpus.Len() != 0 {
		t.Error("sharded member survived delete")
	}
}

func TestPutDocShardedBadParam(t *testing.T) {
	s := newTestServer(t)
	for _, q := range []string{"shards=x", "shards=-1", "shards=9999"} {
		rec := do(t, s, "PUT", "/v1/docs/bib?"+q, shardedBib(4))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d", q, rec.Code)
		}
	}
	// shards=0 and shards=1 are plain uploads.
	for _, q := range []string{"shards=0", "shards=1"} {
		rec := do(t, s, "PUT", "/v1/docs/bib?"+q, shardedBib(4))
		if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", q, rec.Code)
		}
		if info := decode[docInfo](t, rec); info.Shards != 1 {
			t.Errorf("%s: shards = %d", q, info.Shards)
		}
	}
}

func TestBatchQuery(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)

	body := `{"queries":[
		{"terms":["Bit","1999"],"exclude_root":true},
		{"doc":"cwi","query":"SELECT tag(e) FROM //year AS e"},
		{"terms":[""]},
		{"doc":"ghost","terms":["x"]},
		{"terms":["Bit","1999"],"exclude_root":true}
	]}`
	rec := do(t, s, "POST", "/v1/query/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireBatchResponse](t, rec)
	if len(resp.Results) != 5 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if r := resp.Results[0]; r.Error != "" || r.Result == nil || len(r.Result.Meets) == 0 {
		t.Errorf("result 0 = %+v", r)
	}
	if r := resp.Results[1]; r.Error != "" || r.Result == nil || r.Result.Mode != "query" {
		t.Errorf("result 1 = %+v", r)
	}
	if r := resp.Results[2]; !strings.Contains(r.Error, "invalid request") {
		t.Errorf("result 2 error = %q", r.Error)
	}
	if r := resp.Results[3]; !strings.Contains(r.Error, "no document") {
		t.Errorf("result 3 error = %q", r.Error)
	}
	// The duplicate of query 0 shares its result (computed once).
	if resp.Results[4].Result != resp.Results[0].Result &&
		len(resp.Results[4].Result.Meets) != len(resp.Results[0].Result.Meets) {
		t.Errorf("duplicate query diverged")
	}

	// A repeated batch is answered from the cache, per item.
	rec = do(t, s, "POST", "/v1/query/batch", body)
	resp = decode[wireBatchResponse](t, rec)
	if !resp.Results[0].Cached || !resp.Results[1].Cached {
		t.Errorf("repeat batch not cached: %+v %+v", resp.Results[0].Cached, resp.Results[1].Cached)
	}

	// The single-query endpoint sees the same cache entries.
	rec = do(t, s, "POST", "/v1/query", `{"terms":["Bit","1999"],"exclude_root":true}`)
	if rec.Header().Get("X-NCQ-Cache") != "hit" {
		t.Error("batch results invisible to the single-query endpoint")
	}
}

func TestBatchQueryValidation(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	if rec := do(t, s, "POST", "/v1/query/batch", `{"queries":[]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/query/batch", `{`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed batch: %d", rec.Code)
	}
	var b strings.Builder
	b.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"terms":["t%d"]}`, i)
	}
	b.WriteString(`]}`)
	if rec := do(t, s, "POST", "/v1/query/batch", b.String()); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: %d", rec.Code)
	}
}

// TestBatchGenerationConsistency: all batch items are computed against
// one generation, and a mutation invalidates them all.
func TestBatchGenerationConsistency(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"queries":[{"terms":["Bit"]},{"terms":["1999"]}]}`
	first := decode[wireBatchResponse](t, do(t, s, "POST", "/v1/query/batch", body))
	if rec := do(t, s, "DELETE", "/v1/docs/library", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	second := decode[wireBatchResponse](t, do(t, s, "POST", "/v1/query/batch", body))
	if second.Generation == first.Generation {
		t.Error("generation did not advance")
	}
	for i, r := range second.Results {
		if r.Cached {
			t.Errorf("post-mutation item %d served from stale cache", i)
		}
	}
}

// TestBatchSharded: batch queries resolve sharded documents logically.
func TestBatchSharded(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, "PUT", "/v1/docs/bib?shards=3", shardedBib(12)); rec.Code != http.StatusCreated {
		t.Fatalf("put: %d %s", rec.Code, rec.Body)
	}
	var b strings.Builder
	b.WriteString(`{"queries":[`)
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"doc":"bib","terms":["Author%d","%d"],"exclude_root":true}`, i, 1990+i)
	}
	b.WriteString(`]}`)
	resp := decode[wireBatchResponse](t, do(t, s, "POST", "/v1/query/batch", b.String()))
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("item %d: %s", i, r.Error)
		}
		if len(r.Result.Meets) == 0 {
			t.Errorf("item %d: no meets", i)
		}
		for _, m := range r.Result.Meets {
			if m.Source != "bib" {
				t.Errorf("item %d: source %q", i, m.Source)
			}
		}
	}
}
