// Package server exposes nearest concept queries over HTTP/JSON — the
// ncqd daemon's engine room. It wraps a shared ncq.Corpus with a
// result cache and a small REST surface:
//
//	POST   /v1/query       query one document or the whole corpus
//	PUT    /v1/docs/{name} load (or replace) a document from an XML body
//	GET    /v1/docs/{name} inspect a loaded document
//	DELETE /v1/docs/{name} evict a document
//	GET    /v1/docs        list loaded documents
//	GET    /v1/healthz     liveness probe
//	GET    /v1/stats       corpus, cache and traffic counters
//
// Query results are cached in an LRU keyed by (corpus generation,
// normalized request); any document mutation bumps the generation and
// purges the cache, so clients never observe stale answers.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"ncq"
	"ncq/internal/cache"
)

const (
	defaultCacheCapacity = 256
	defaultMaxBody       = 32 << 20 // XML document uploads
	maxQueryBody         = 1 << 20  // JSON query requests
	maxDocNameLen        = 128
)

// Server routes HTTP traffic onto a shared corpus. Create one with New
// and mount Handler on an http.Server. All methods are safe for
// concurrent use.
type Server struct {
	corpus  *ncq.Corpus
	cache   *cache.LRU
	maxBody int64
	mux     *http.ServeMux
	started time.Time

	queries   atomic.Uint64 // POST /v1/query requests that reached execution
	mutations atomic.Uint64 // document PUT/DELETE that changed the corpus
}

// Option customises a Server.
type Option func(*Server)

// WithCacheCapacity sets how many query results are retained; 0
// disables caching.
func WithCacheCapacity(n int) Option {
	return func(s *Server) { s.cache = cache.New(n) }
}

// WithMaxBody bounds the size of uploaded XML documents in bytes.
func WithMaxBody(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// New builds a Server around corpus (a fresh empty corpus when nil).
func New(corpus *ncq.Corpus, opts ...Option) *Server {
	if corpus == nil {
		corpus = ncq.NewCorpus()
	}
	s := &Server{
		corpus:  corpus,
		cache:   cache.New(defaultCacheCapacity),
		maxBody: defaultMaxBody,
		started: time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("PUT /v1/docs/{name}", s.handlePutDoc)
	mux.HandleFunc("GET /v1/docs/{name}", s.handleGetDoc)
	mux.HandleFunc("DELETE /v1/docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("GET /v1/docs", s.handleListDocs)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux = mux
	return s
}

// Corpus returns the server's underlying corpus, e.g. for preloading
// documents before serving.
func (s *Server) Corpus() *ncq.Corpus { return s.corpus }

// Handler returns the root handler for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// invalidate records a corpus mutation: stale results keyed by older
// generations can never be served again (the generation is part of the
// cache key), so the purge is purely about returning memory early.
func (s *Server) invalidate() {
	s.mutations.Add(1)
	s.cache.Purge()
}

// writeJSON renders v with status code; encoding errors at this point
// can only be connection failures, which the caller cannot act on.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"docs":   s.corpus.Len(),
	})
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Generation    uint64      `json:"generation"`
	Docs          int         `json:"docs"`
	TotalNodes    int         `json:"total_nodes"`
	TotalTerms    int         `json:"total_terms"`
	TotalMemBytes int         `json:"total_mem_bytes"`
	Queries       uint64      `json:"queries"`
	Mutations     uint64      `json:"mutations"`
	Cache         cache.Stats `json:"cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Generation:    s.corpus.Generation(),
		Queries:       s.queries.Load(),
		Mutations:     s.mutations.Load(),
		Cache:         s.cache.Stats(),
	}
	for _, name := range s.corpus.Names() {
		db, ok := s.corpus.Get(name)
		if !ok {
			continue // removed between Names and Get; skip
		}
		st := db.Stats()
		resp.Docs++
		resp.TotalNodes += st.Nodes
		resp.TotalTerms += st.Terms
		resp.TotalMemBytes += st.MemBytes
	}
	writeJSON(w, http.StatusOK, resp)
}
