// Package server exposes nearest concept queries over HTTP/JSON — the
// ncqd daemon's engine room. It wraps a shared ncq.Corpus with a
// result cache and a small REST surface:
//
//	POST   /v2/query       the unified endpoint: single doc, whole corpus
//	                       or batch in one schema, with cursor pagination
//	                       and a per-request deadline (see v2.go);
//	                       ?stream=1 switches term requests to NDJSON —
//	                       one meet per line, flushed as produced, plus
//	                       a trailer record (see stream.go)
//	POST   /v1/query       query one document or the whole corpus
//	POST   /v1/query/batch many queries in one round trip
//	PUT    /v1/docs/{name} load (or replace) a document from an XML body;
//	                       ?shards=K splits it into K parallel shards
//	GET    /v1/docs/{name} inspect a loaded document
//	DELETE /v1/docs/{name} evict a document
//	GET    /v1/docs        list loaded documents
//	GET    /v1/healthz     liveness probe
//	GET    /v1/stats       corpus, cache and traffic counters
//	GET    /v1/metrics     Prometheus text exposition (see observe.go)
//
// Every query endpoint executes through the unified ncq.Request path
// (run.go); the v1 handlers are byte-compatible adapters over it.
// Query results are cached in a byte-bounded LRU — optionally with a
// TTL — keyed by (corpus generation, canonical request); any document
// mutation bumps the generation and purges the cache, so clients never
// observe stale answers. Documents uploaded with ?shards=K are split
// into subtree shards that queries fan out over in parallel while
// clients keep addressing one logical name.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ncq"
	"ncq/internal/admission"
	"ncq/internal/cache"
	"ncq/internal/durable"
	"ncq/internal/metrics"
	"ncq/internal/shard"
)

const (
	defaultCacheBytes = 64 << 20 // query result cache budget
	defaultMaxBody    = 32 << 20 // XML document uploads
	maxQueryBody      = 1 << 20  // JSON query requests
	maxBatchBody      = 8 << 20  // JSON batch requests
	maxBatchQueries   = 256      // queries per batch request
	maxDocNameLen     = 128
	maxShardsParam    = shard.MaxShards // cap on ?shards=K
)

// Server routes HTTP traffic onto a shared corpus. Create one with New
// and mount Handler on an http.Server. All methods are safe for
// concurrent use.
type Server struct {
	corpus     *ncq.Corpus
	cache      *cache.LRU
	cacheBytes int64
	cacheTTL   time.Duration
	maxBody    int64
	nodeName   string
	role       string
	logger     *slog.Logger
	limiter    *admission.Limiter
	store      *durable.Store
	mux        *http.ServeMux
	started    time.Time

	queries   atomic.Uint64 // queries that reached execution (batch items included)
	batches   atomic.Uint64 // POST /v1/query/batch requests accepted
	mutations atomic.Uint64 // document PUT/DELETE that changed the corpus

	// Observability (observe.go). reg is per-instance so multiple
	// servers in one process — httptest fixtures, a worker and a
	// coordinator side by side — never collide on metric names.
	reg             *metrics.Registry
	httpm           *metrics.HTTP
	queriesInflight *metrics.Gauge
	streamsInflight *metrics.Gauge
	streamLines     *metrics.Counter
	streamBytes     *metrics.Counter
	vagueRequests   *metrics.Counter
	vagueRelax      *metrics.Histogram
}

// Option customises a Server.
type Option func(*Server)

// WithCacheBytes bounds the query result cache by the approximate
// encoded size of the retained results; 0 disables caching.
func WithCacheBytes(n int64) Option {
	return func(s *Server) { s.cacheBytes = n }
}

// WithCacheTTL bounds how long a cached result may be served; 0 (the
// default) means entries never expire by age — the generation key
// already guarantees they can never be stale.
func WithCacheTTL(d time.Duration) Option {
	return func(s *Server) { s.cacheTTL = d }
}

// WithMaxBody bounds the size of uploaded XML documents in bytes.
func WithMaxBody(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithNodeName names this node in /v1/healthz, /v1/stats and NDJSON
// stream headers — the identity a cluster coordinator polls and
// reports per worker. Default "ncqd".
func WithNodeName(name string) Option {
	return func(s *Server) {
		if name != "" {
			s.nodeName = name
		}
	}
}

// WithRole labels the node's place in a cluster topology ("single",
// "worker", "coordinator") on /v1/healthz and /v1/stats. Purely
// descriptive: a worker serves exactly the same surface as a
// single-node daemon — that symmetry is what makes a remote worker the
// same abstraction as a local corpus member. Default "single".
func WithRole(role string) Option {
	return func(s *Server) {
		if role != "" {
			s.role = role
		}
	}
}

// WithLogger sets the structured logger for request logs. Every
// completed request emits one line (method, route, status, duration,
// bytes, query fingerprint, cache disposition); health and scrape
// probes log at Debug so pollers do not own the log volume. nil (the
// default) disables request logging.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithAdmission bounds concurrent query execution: at most
// maxConcurrent query requests execute at once, up to maxQueue more
// wait up to wait for a slot, and everything beyond that is answered
// 429 with a Retry-After hint instead of queuing in front of the
// worker pool. maxConcurrent <= 0 (the default) disables admission
// control. Only the query routes are gated; document mutations and
// introspection stay reachable on a saturated node.
func WithAdmission(maxConcurrent, maxQueue int, wait time.Duration) Option {
	return func(s *Server) { s.limiter = admission.New(maxConcurrent, maxQueue, wait) }
}

// WithDurability routes every document mutation through store, which
// must manage the same corpus the server serves: a PUT is acknowledged
// only after its snapshots and WAL record are persisted, and a DELETE
// only after its eviction is logged. Queries are unaffected — they
// read the in-memory corpus as before.
func WithDurability(store *durable.Store) Option {
	return func(s *Server) { s.store = store }
}

// New builds a Server around corpus (a fresh empty corpus when nil).
func New(corpus *ncq.Corpus, opts ...Option) *Server {
	if corpus == nil {
		corpus = ncq.NewCorpus()
	}
	s := &Server{
		corpus:     corpus,
		cacheBytes: defaultCacheBytes,
		maxBody:    defaultMaxBody,
		nodeName:   "ncqd",
		role:       "single",
		started:    time.Now(),
		reg:        metrics.NewRegistry(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.cache = cache.New(s.cacheBytes, cache.WithTTL(s.cacheTTL))
	s.initObservability()
	mux := http.NewServeMux()
	// handle wraps every route with the metrics + request-log
	// middleware; route is the pattern's path, which labels the metric
	// series and log lines (never the raw URL — bounded cardinality).
	handle := func(pattern, route string, quiet bool, h http.Handler) {
		mux.Handle(pattern, s.httpm.Instrument(route, s.logger, quiet, h))
	}
	handle("POST /v2/query", "/v2/query", false, s.admit(http.HandlerFunc(s.handleQueryV2)))
	handle("POST /v1/query", "/v1/query", false, s.admit(http.HandlerFunc(s.handleQuery)))
	handle("POST /v1/query/batch", "/v1/query/batch", false, s.admit(http.HandlerFunc(s.handleBatch)))
	handle("PUT /v1/docs/{name}", "/v1/docs/{name}", false, http.HandlerFunc(s.handlePutDoc))
	handle("GET /v1/docs/{name}", "/v1/docs/{name}", false, http.HandlerFunc(s.handleGetDoc))
	handle("DELETE /v1/docs/{name}", "/v1/docs/{name}", false, http.HandlerFunc(s.handleDeleteDoc))
	handle("GET /v1/docs", "/v1/docs", false, http.HandlerFunc(s.handleListDocs))
	handle("GET /v1/healthz", "/v1/healthz", true, http.HandlerFunc(s.handleHealthz))
	handle("GET /v1/stats", "/v1/stats", true, http.HandlerFunc(s.handleStats))
	handle("GET /v1/metrics", "/v1/metrics", true, s.reg.Handler())
	s.mux = mux
	return s
}

// Corpus returns the server's underlying corpus, e.g. for preloading
// documents before serving.
func (s *Server) Corpus() *ncq.Corpus { return s.corpus }

// Handler returns the root handler for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metric registry — what GET /v1/metrics
// serves — e.g. for publishing on /debug/vars via Registry.Expvar.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// invalidate records a corpus mutation: stale results keyed by older
// generations can never be served again (the generation is part of the
// cache key), so the purge is purely about returning memory early.
func (s *Server) invalidate() {
	s.mutations.Add(1)
	s.cache.Purge()
}

// stampGeneration reports the node's current corpus generation in the
// X-NCQ-Generation response header. Mutation responses carry it so a
// routing coordinator can update its generation vector from the
// response it already has instead of a follow-up poll.
func (s *Server) stampGeneration(w http.ResponseWriter) {
	w.Header().Set("X-NCQ-Generation", strconv.FormatUint(s.corpus.Generation(), 10))
}

// writeJSON renders v with status code; encoding errors at this point
// can only be connection failures, which the caller cannot act on.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleHealthz reports liveness plus the node identity a cluster
// coordinator health-checks: who the node is, its role, and the corpus
// generation its answers are currently computed against.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"node":       s.nodeName,
		"role":       s.role,
		"generation": s.corpus.Generation(),
		"docs":       s.corpus.Len(),
	})
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	Node          string          `json:"node"`
	Role          string          `json:"role"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Generation    uint64          `json:"generation"`
	Workers       int             `json:"workers"` // query fan-out pool depth
	Docs          int             `json:"docs"`
	TotalShards   int             `json:"total_shards"`
	TotalNodes    int             `json:"total_nodes"`
	TotalTerms    int             `json:"total_terms"`
	TotalMemBytes int             `json:"total_mem_bytes"`
	Queries       uint64          `json:"queries"`
	Batches       uint64          `json:"batches"`
	Mutations     uint64          `json:"mutations"`
	Cache         cache.Stats     `json:"cache"`
	Admission     admission.Stats `json:"admission"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Node:          s.nodeName,
		Role:          s.role,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Generation:    s.corpus.Generation(),
		Workers:       s.corpus.Parallelism(),
		Queries:       s.queries.Load(),
		Batches:       s.batches.Load(),
		Mutations:     s.mutations.Load(),
		Cache:         s.cache.Stats(),
		Admission:     s.limiter.Stats(),
	}
	for _, name := range s.corpus.Names() {
		st, shards, ok := s.corpus.MemberStats(name)
		if !ok {
			continue // removed between Names and MemberStats; skip
		}
		resp.Docs++
		resp.TotalShards += shards
		resp.TotalNodes += st.Nodes
		resp.TotalTerms += st.Terms
		resp.TotalMemBytes += st.MemBytes
	}
	writeJSON(w, http.StatusOK, resp)
}
