package server

// Observability and admission wiring. Each Server owns a private
// metrics.Registry exposed at GET /v1/metrics in the Prometheus text
// format; counters the server already keeps (traffic totals, cache
// statistics, admission outcomes) are sampled at exposition time
// instead of being double-booked, while per-request series (route
// latency, stream accounting) are live metric objects updated on the
// request path. The admission gate sits in front of the query routes
// only: document mutations and introspection endpoints must stay
// reachable on a saturated node, or operators lose the tools to
// diagnose the saturation.

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"ncq/internal/admission"
	"ncq/internal/durable"
	"ncq/internal/metrics"
)

// initObservability registers every metric family on the server's
// registry. Called once from New, after options have applied.
func (s *Server) initObservability() {
	reg := s.reg
	s.httpm = metrics.NewHTTP(reg)

	s.queriesInflight = reg.Gauge("ncq_queries_inflight",
		"Query requests currently admitted and executing (including streams).")
	s.streamsInflight = reg.Gauge("ncq_streams_inflight",
		"NDJSON query streams currently open.")
	s.streamLines = reg.Counter("ncq_stream_lines_total",
		"NDJSON lines written across all query streams (header, meet, error and trailer records).")
	s.streamBytes = reg.Counter("ncq_stream_bytes_total",
		"Bytes written across all NDJSON query streams, newlines included.")
	s.vagueRequests = reg.Counter("ncq_vague_requests_total",
		"Term queries executed in the vague-constraints mode (cache hits included).")
	s.vagueRelax = reg.Histogram("ncq_vague_relaxations_total",
		"Relaxed answers produced by vague queries, by structural slack used (cache misses only).",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16})

	reg.CounterFunc("ncq_queries_total",
		"Queries that reached execution, batch items included.",
		func() float64 { return float64(s.queries.Load()) })
	reg.CounterFunc("ncq_batches_total",
		"Batch requests accepted (v1 and v2).",
		func() float64 { return float64(s.batches.Load()) })
	reg.CounterFunc("ncq_mutations_total",
		"Document PUT/DELETE operations that changed the corpus.",
		func() float64 { return float64(s.mutations.Load()) })
	reg.GaugeFunc("ncq_pool_depth",
		"Width of the query fan-out worker pool.",
		func() float64 { return float64(s.corpus.Parallelism()) })
	reg.GaugeFunc("ncq_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })

	reg.CounterFunc("ncq_cache_hits_total",
		"Result cache lookups answered from the cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("ncq_cache_misses_total",
		"Result cache lookups that fell through to execution.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.GaugeFunc("ncq_cache_hit_ratio",
		"Lifetime cache hit ratio: hits / (hits + misses); 0 before any lookup.",
		func() float64 {
			st := s.cache.Stats()
			total := st.Hits + st.Misses
			if total == 0 {
				return 0
			}
			return float64(st.Hits) / float64(total)
		})
	reg.GaugeFunc("ncq_cache_entries",
		"Entries currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("ncq_cache_bytes",
		"Approximate bytes currently retained by the result cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.GaugeFunc("ncq_cache_cap_bytes",
		"Configured byte capacity of the result cache.",
		func() float64 { return float64(s.cache.Stats().CapBytes) })
	reg.CounterFunc("ncq_cache_evictions_total",
		"Entries evicted from the result cache to stay within capacity.",
		func() float64 { return float64(s.cache.Stats().Evictions) })

	// Durability series sample the attached store; without -data-dir
	// they expose zeros, keeping the scrape surface stable.
	durableStats := func() durable.Stats {
		if s.store == nil {
			return durable.Stats{}
		}
		return s.store.Stats()
	}
	reg.CounterFunc("ncq_wal_appends_total",
		"Mutation records appended to the write-ahead log.",
		func() float64 { return float64(durableStats().WAL.Appends) })
	reg.CounterFunc("ncq_wal_fsyncs_total",
		"fsyncs issued by the write-ahead log (appends, Sync, Close).",
		func() float64 { return float64(durableStats().WAL.Fsyncs) })
	reg.CounterFunc("ncq_wal_bytes_total",
		"Bytes appended to the write-ahead log, framing included.",
		func() float64 { return float64(durableStats().WAL.Bytes) })
	reg.CounterFunc("ncq_snapshot_bytes_total",
		"Snapshot bytes written by document commits since boot.",
		func() float64 { return float64(durableStats().SnapshotBytes) })
	reg.CounterFunc("ncq_durable_commits_total",
		"Document mutations acknowledged as durable since boot.",
		func() float64 { return float64(durableStats().Commits) })
	reg.GaugeFunc("ncq_replay_duration_seconds",
		"Time boot recovery spent replaying the log over the snapshots.",
		func() float64 { return durableStats().ReplayDuration.Seconds() })
	reg.GaugeFunc("ncq_replay_records",
		"WAL records replayed by boot recovery.",
		func() float64 { return float64(durableStats().ReplayRecords) })

	reg.GaugeFunc("ncq_admission_inflight",
		"Executions currently holding an admission slot; 0 when admission control is off.",
		func() float64 { return float64(s.limiter.Stats().InFlight) })
	reg.GaugeFunc("ncq_admission_queued",
		"Acquisitions currently waiting for an admission slot.",
		func() float64 { return float64(s.limiter.Stats().Queued) })
	reg.GaugeFunc("ncq_admission_capacity",
		"Configured admission concurrency limit; 0 when admission control is off.",
		func() float64 { return float64(s.limiter.Stats().MaxConcurrent) })
	reg.CounterFunc("ncq_admission_admitted_total",
		"Query requests granted an admission slot.",
		func() float64 { return float64(s.limiter.Stats().Admitted) })
	reg.CounterFunc("ncq_admission_rejected_total",
		"Query requests shed with 429 because slots and queue were full.",
		func() float64 { return float64(s.limiter.Stats().Rejected) })
}

// admit gates a query route behind the admission limiter. A saturated
// limiter answers 429 with a Retry-After hint before any body decoding
// or execution happens — shedding in microseconds is what keeps the
// admitted requests fast. The slot is held until the handler returns,
// which for NDJSON streams means the whole life of the stream: a slow
// streaming consumer occupies capacity, it does not hide from it.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := s.limiter.Acquire(r.Context())
		if err != nil {
			if errors.Is(err, admission.ErrSaturated) {
				w.Header().Set("Retry-After", strconv.Itoa(s.limiter.RetryAfterSeconds()))
				writeError(w, http.StatusTooManyRequests,
					"server saturated; retry after %d second(s)", s.limiter.RetryAfterSeconds())
				return
			}
			writeError(w, 499, "client closed request while queued for admission")
			return
		}
		defer release()
		s.queriesInflight.Inc()
		defer s.queriesInflight.Dec()
		next.ServeHTTP(w, r)
	})
}
