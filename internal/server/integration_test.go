package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestServerEndToEnd drives ncqd's handler over a real HTTP listener:
// it loads three documents, fires concurrent queries from many
// clients, observes a cache hit on a repeated query, and verifies that
// DELETE /v1/docs/{name} invalidates the cache and changes the answer.
func TestServerEndToEnd(t *testing.T) {
	srv := New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	post := func(t *testing.T, body string) (*wireQueryResponse, string) {
		t.Helper()
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/query: %d %s", resp.StatusCode, raw)
		}
		var qr wireQueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
		return &qr, resp.Header.Get("X-NCQ-Cache")
	}

	// Load three documents with three different markups.
	for name, xml := range map[string]string{
		"cwi": bibArticle, "personal": bibEntry, "library": bibRecord,
	} {
		req, err := http.NewRequest("PUT", ts.URL+"/v1/docs/"+name, bytes.NewReader([]byte(xml)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: %d", name, resp.StatusCode)
		}
	}

	// Concurrent clients mixing corpus-wide and per-document queries.
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (g + i) % 3 {
				case 0:
					qr, _ := post(t, `{"terms":["Bit","1999"],"exclude_root":true}`)
					if len(qr.Result.Meets) != 3 {
						errs <- fmt.Errorf("corpus meets = %d", len(qr.Result.Meets))
						return
					}
				case 1:
					qr, _ := post(t, `{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true}`)
					if len(qr.Result.Meets) != 1 || qr.Result.Meets[0].Tag != "article" {
						errs <- fmt.Errorf("cwi meets = %+v", qr.Result.Meets)
						return
					}
				case 2:
					qr, _ := post(t, `{"doc":"personal","query":"SELECT tag(e) FROM //when AS e"}`)
					if len(qr.Result.Answers) != 1 || len(qr.Result.Answers[0].Rows) != 2 {
						errs <- fmt.Errorf("personal answers = %+v", qr.Result.Answers)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A repeated query is served from the cache.
	probe := `{"terms":["Bit","1999"],"exclude_root":true,"within":32}`
	if qr, hdr := post(t, probe); qr.Cached || hdr != "miss" {
		t.Fatalf("fresh probe: cached=%t header=%q", qr.Cached, hdr)
	}
	qr, hdr := post(t, probe)
	if !qr.Cached || hdr != "hit" {
		t.Fatalf("repeat probe: cached=%t header=%q", qr.Cached, hdr)
	}
	if len(qr.Result.Meets) != 3 {
		t.Fatalf("cached meets = %d", len(qr.Result.Meets))
	}

	// DELETE invalidates: the same query misses the cache and no longer
	// reports the evicted document.
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/docs/personal", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	qr, hdr = post(t, probe)
	if hdr != "miss" || qr.Cached {
		t.Fatalf("post-delete probe: cached=%t header=%q", qr.Cached, hdr)
	}
	if len(qr.Result.Meets) != 2 {
		t.Fatalf("post-delete meets = %d (%+v)", len(qr.Result.Meets), qr.Result.Meets)
	}
	for _, m := range qr.Result.Meets {
		if m.Source == "personal" {
			t.Fatalf("evicted document still answering: %+v", m)
		}
	}
}
