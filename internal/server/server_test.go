package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ncq"
)

// Three bibliographies marking up the same item three different ways —
// the cross-bibliography scenario of the paper's Section 4.
const (
	bibArticle = `<bib><article><author><first>Ben</first><last>Bit</last></author>` +
		`<title>How to Hack</title><year>1999</year></article>` +
		`<article><author><last>Code</last></author><title>Sorting</title><year>1997</year></article></bib>`
	bibEntry = `<refs><entry><who>Ben Bit</who><what>How to Hack</what><when>1999</when></entry>` +
		`<entry><who>Carol Code</who><what>Sorting Things</what><when>1997</when></entry></refs>`
	bibRecord = `<library><record><person>Bit, Ben</person><published>1999</published></record>` +
		`<record><person>Doe, Jane</person><published>2001</published></record></library>`
)

func newTestServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	return New(nil, opts...)
}

// do runs one request through the server's handler.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// decode unmarshals a response body, failing the test on bad JSON.
func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

// The wire* types mirror the response envelopes with their raw result
// payloads decoded into typed form, as a client would read them.
type wireQueryResponse struct {
	Cached     bool         `json:"cached"`
	Generation uint64       `json:"generation"`
	Result     *queryResult `json:"result"`
}

type wireBatchItem struct {
	Cached bool         `json:"cached"`
	Error  string       `json:"error"`
	Result *queryResult `json:"result"`
}

type wireBatchResponse struct {
	Generation uint64          `json:"generation"`
	Results    []wireBatchItem `json:"results"`
}

func loadDocs(t *testing.T, s *Server) {
	t.Helper()
	for name, xml := range map[string]string{
		"cwi": bibArticle, "personal": bibEntry, "library": bibRecord,
	} {
		if rec := do(t, s, "PUT", "/v1/docs/"+name, xml); rec.Code != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", name, rec.Code, rec.Body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := decode[map[string]any](t, rec)
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestPutDoc(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "PUT", "/v1/docs/bib", bibArticle)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	info := decode[docInfo](t, rec)
	if info.Name != "bib" || info.Stats.Nodes == 0 {
		t.Errorf("info = %+v", info)
	}
	// Replacing returns 200, not 201.
	if rec := do(t, s, "PUT", "/v1/docs/bib", bibEntry); rec.Code != http.StatusOK {
		t.Errorf("replace: %d", rec.Code)
	}
	if s.corpus.Len() != 1 {
		t.Errorf("corpus len = %d", s.corpus.Len())
	}
}

func TestPutDocMalformedXML(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "PUT", "/v1/docs/bad", "<unclosed>")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	if e := decode[errorResponse](t, rec); !strings.Contains(e.Error, "parse document") {
		t.Errorf("error = %q", e.Error)
	}
}

func TestPutDocOversized(t *testing.T) {
	s := newTestServer(t, WithMaxBody(64))
	big := "<a>" + strings.Repeat("x", 128) + "</a>"
	rec := do(t, s, "PUT", "/v1/docs/big", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
}

func TestPutDocInvalidName(t *testing.T) {
	s := newTestServer(t)
	long := strings.Repeat("n", maxDocNameLen+1)
	rec := do(t, s, "PUT", "/v1/docs/"+long, bibArticle)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestGetDeleteDoc(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "GET", "/v1/docs/cwi", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d", rec.Code)
	}
	if info := decode[docInfo](t, rec); info.Name != "cwi" {
		t.Errorf("info = %+v", info)
	}
	if rec := do(t, s, "GET", "/v1/docs/nope", ""); rec.Code != http.StatusNotFound {
		t.Errorf("get missing: %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/docs/cwi", ""); rec.Code != http.StatusNoContent {
		t.Errorf("delete: %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/docs/cwi", ""); rec.Code != http.StatusNotFound {
		t.Errorf("delete again: %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/docs/cwi", ""); rec.Code != http.StatusNotFound {
		t.Errorf("get after delete: %d", rec.Code)
	}
}

func TestListDocs(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "GET", "/v1/docs", "")
	var body struct {
		Docs       []docInfo `json:"docs"`
		Generation uint64    `json:"generation"`
	}
	body = decode[struct {
		Docs       []docInfo `json:"docs"`
		Generation uint64    `json:"generation"`
	}](t, rec)
	if len(body.Docs) != 3 || body.Generation != 3 {
		t.Errorf("body = %+v", body)
	}
}

func TestQueryTermsSingleDoc(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v1/query",
		`{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireQueryResponse](t, rec)
	if resp.Cached || resp.Result.Mode != "terms" {
		t.Errorf("resp = %+v", resp)
	}
	if len(resp.Result.Meets) != 1 || resp.Result.Meets[0].Tag != "article" ||
		resp.Result.Meets[0].Source != "cwi" {
		t.Errorf("meets = %+v", resp.Result.Meets)
	}
}

func TestQueryTermsCorpus(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v1/query", `{"terms":["Bit","1999"],"exclude_root":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireQueryResponse](t, rec)
	// The same item is found under all three markups, each answer typed
	// by its own instance.
	tags := map[string]string{}
	for _, m := range resp.Result.Meets {
		tags[m.Source] = m.Tag
	}
	if tags["cwi"] != "article" || tags["personal"] != "entry" || tags["library"] != "record" {
		t.Errorf("tags = %v", tags)
	}
}

func TestQueryLanguageSingleDoc(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v1/query",
		`{"doc":"cwi","query":"SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2 WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireQueryResponse](t, rec)
	if resp.Result.Mode != "query" || len(resp.Result.Answers) != 1 {
		t.Fatalf("result = %+v", resp.Result)
	}
	ans := resp.Result.Answers[0]
	if !ans.IsMeet || len(ans.Rows) == 0 || ans.Rows[0].Tag != "article" {
		t.Errorf("answer = %+v", ans)
	}
}

func TestQueryLanguageCorpus(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v1/query",
		`{"query":"SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2 WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireQueryResponse](t, rec)
	sources := map[string]bool{}
	for _, a := range resp.Result.Answers {
		sources[a.Source] = len(a.Rows) > 0
	}
	if !sources["cwi"] || !sources["personal"] || !sources["library"] {
		t.Errorf("answers = %+v", resp.Result.Answers)
	}
}

func TestQueryValidation(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"terms": [`, http.StatusBadRequest},
		{"unknown field", `{"term":["Bit"]}`, http.StatusBadRequest},
		{"neither mode", `{}`, http.StatusBadRequest},
		{"both modes", `{"query":"SELECT e FROM //x AS e","terms":["a"]}`, http.StatusBadRequest},
		{"empty term", `{"terms":[""]}`, http.StatusBadRequest},
		{"negative limit", `{"terms":["a"],"limit":-1}`, http.StatusBadRequest},
		{"meet options on query mode", `{"query":"SELECT e FROM //x AS e","exclude_root":true}`, http.StatusBadRequest},
		{"unknown doc", `{"doc":"nope","terms":["a"]}`, http.StatusNotFound},
		{"bad pattern", `{"terms":["Bit"],"exclude":["[[["]}`, http.StatusBadRequest},
		{"bad query", `{"query":"SELECT FROM WHERE"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, "POST", "/v1/query", tc.body)
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d (%s)", rec.Code, tc.want, rec.Body)
			}
			if e := decode[errorResponse](t, rec); e.Error == "" {
				t.Errorf("no error message in %s", rec.Body)
			}
		})
	}
}

func TestQueryOversizedBody(t *testing.T) {
	s := newTestServer(t)
	body := fmt.Sprintf(`{"terms":[%q]}`, strings.Repeat("x", maxQueryBody))
	rec := do(t, s, "POST", "/v1/query", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestQueryLimitTruncates(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v1/query", `{"terms":["19"],"limit":1}`)
	resp := decode[wireQueryResponse](t, rec)
	if len(resp.Result.Meets) != 1 || !resp.Result.Truncated {
		t.Errorf("result = %+v", resp.Result)
	}
	// Query-language limit caps total rows across answers.
	rec = do(t, s, "POST", "/v1/query",
		`{"query":"SELECT tag(e) FROM //cdata AS e","limit":2}`)
	resp = decode[wireQueryResponse](t, rec)
	total := 0
	for _, a := range resp.Result.Answers {
		total += len(a.Rows)
	}
	if total != 2 || !resp.Result.Truncated {
		t.Errorf("total rows = %d, truncated = %t", total, resp.Result.Truncated)
	}
}

func TestQueryCacheHitAndHeader(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"terms":["Bit","1999"],"exclude_root":true}`
	rec := do(t, s, "POST", "/v1/query", body)
	if h := rec.Header().Get("X-NCQ-Cache"); h != "miss" {
		t.Errorf("first call cache header = %q", h)
	}
	if resp := decode[wireQueryResponse](t, rec); resp.Cached {
		t.Error("first call reported cached")
	}
	// Same request modulo whitespace in formatting: a hit.
	rec = do(t, s, "POST", "/v1/query", `{"terms":["Bit","1999"], "exclude_root": true}`)
	if h := rec.Header().Get("X-NCQ-Cache"); h != "hit" {
		t.Errorf("second call cache header = %q", h)
	}
	resp := decode[wireQueryResponse](t, rec)
	if !resp.Cached || len(resp.Result.Meets) != 3 {
		t.Errorf("cached resp = %+v", resp.Result)
	}
	// A different request misses.
	rec = do(t, s, "POST", "/v1/query", `{"terms":["Bit"]}`)
	if h := rec.Header().Get("X-NCQ-Cache"); h != "miss" {
		t.Errorf("third call cache header = %q", h)
	}
}

func TestQueryLanguageWhitespaceNormalization(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	q1 := `{"doc":"cwi","query":"SELECT tag(e) FROM //year AS e"}`
	q2 := `{"doc":"cwi","query":"SELECT   tag(e)\n FROM //year  AS e"}`
	do(t, s, "POST", "/v1/query", q1)
	rec := do(t, s, "POST", "/v1/query", q2)
	if h := rec.Header().Get("X-NCQ-Cache"); h != "hit" {
		t.Errorf("whitespace-variant query was not a cache hit (%q)", h)
	}
}

func TestMutationInvalidatesCache(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"terms":["Bit","1999"],"exclude_root":true}`
	do(t, s, "POST", "/v1/query", body)
	if rec := do(t, s, "POST", "/v1/query", body); rec.Header().Get("X-NCQ-Cache") != "hit" {
		t.Fatal("warm-up did not cache")
	}
	// Any corpus mutation invalidates: PUT here, DELETE in the
	// integration test.
	do(t, s, "PUT", "/v1/docs/fourth", bibRecord)
	rec := do(t, s, "POST", "/v1/query", body)
	if rec.Header().Get("X-NCQ-Cache") != "miss" {
		t.Error("cache served a stale result after PUT")
	}
	resp := decode[wireQueryResponse](t, rec)
	if resp.Generation != 4 {
		t.Errorf("generation = %d", resp.Generation)
	}
}

func TestStats(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"terms":["Bit"]}`
	do(t, s, "POST", "/v1/query", body)
	do(t, s, "POST", "/v1/query", body)
	rec := do(t, s, "GET", "/v1/stats", "")
	st := decode[statsResponse](t, rec)
	if st.Docs != 3 || st.TotalNodes == 0 || st.Queries != 2 || st.Mutations != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v", st.Cache)
	}
	if st.Generation != 3 {
		t.Errorf("generation = %d", st.Generation)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := newTestServer(t, WithCacheBytes(0))
	loadDocs(t, s)
	body := `{"terms":["Bit"]}`
	do(t, s, "POST", "/v1/query", body)
	rec := do(t, s, "POST", "/v1/query", body)
	if rec.Header().Get("X-NCQ-Cache") != "miss" {
		t.Error("disabled cache produced a hit")
	}
}

func TestPreloadedCorpus(t *testing.T) {
	c := ncq.NewCorpus()
	db, err := ncq.OpenString(bibArticle)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("seed", db); err != nil {
		t.Fatal(err)
	}
	s := New(c)
	rec := do(t, s, "GET", "/v1/docs/seed", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("preloaded doc not visible: %d", rec.Code)
	}
	if s.Corpus() != c {
		t.Error("Corpus() did not return the wired corpus")
	}
}
