//go:build ncqfail

package server

// The kill-at-failpoint matrix: a child process is killed at an armed
// crash point mid-persistence (mid-snapshot write, mid-WAL-append,
// either side of the commit rename), then the data directory is
// recovered and must answer /v2/query byte-identically — envelope
// Result and generation — to an uncrashed reference node that never
// saw the doomed mutation. This is the robustness analogue of the
// cluster's TestDistributedEqualsSingleNode: instead of "distributed
// equals single node", "crashed-and-recovered equals never-crashed".
//
// Run with: go test -race -tags ncqfail ./internal/server -run TestCrash

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"

	"ncq"
	"ncq/internal/durable"
	"ncq/internal/wal"
)

// crashPoints is the injection matrix. Every point sits between a
// client's PUT request and its acknowledgement, so in every case the
// mutation was never acked and recovery must not surface it.
var crashPoints = []string{
	"snapshot-mid",   // torn shard snapshot in staging
	"wal-append-mid", // torn record at the log tail
	"rename-pre",     // staged but never renamed
	"rename-post",    // renamed but never logged — an orphan directory
}

func seedXML(n int) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<article><author>Author%d</author><title>Title%d</title><year>%d</year></article>", i, i, 1990+i%10)
	}
	b.WriteString("</bib>")
	return b.String()
}

// seedStore populates a fresh durable server with the baseline corpus
// both the crashing node and the reference node start from.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	corpus := ncq.NewCorpus()
	store, err := durable.Open(dir, wal.PolicyAlways, corpus)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(corpus, WithDurability(store))
	if rec := do(t, srv, "PUT", "/v1/docs/alpha", seedXML(24)); rec.Code != http.StatusCreated {
		t.Fatalf("seed alpha: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, srv, "PUT", "/v1/docs/beta?shards=4", seedXML(40)); rec.Code != http.StatusCreated {
		t.Fatalf("seed beta: %d %s", rec.Code, rec.Body)
	}
}

// queryEnvelopes runs the comparison probes against a recovered or
// reference node and returns the deterministic parts of each /v2/query
// envelope (generation + raw Result bytes; took_ms naturally varies).
func queryEnvelopes(t *testing.T, srv *Server) []string {
	t.Helper()
	probes := []string{
		`{"terms":["Author3","1993"],"exclude_root":true}`,
		`{"doc":"alpha","terms":["Author1","Title1"],"exclude_root":true}`,
		`{"doc":"beta","terms":["Author7","1997"],"exclude_root":true}`,
		`{"doc":"beta","query":"SELECT value(e) FROM //author AS e"}`,
	}
	var out []string
	for _, probe := range probes {
		rec := do(t, srv, "POST", "/v2/query", probe)
		if rec.Code != http.StatusOK {
			t.Fatalf("probe %s: %d %s", probe, rec.Code, rec.Body)
		}
		env := decode[v2Response](t, rec)
		out = append(out, fmt.Sprintf("gen=%d result=%s", env.Generation, env.Result))
	}
	return out
}

func TestCrashMatrix(t *testing.T) {
	// Reference node: seeded, never crashed.
	refDir := t.TempDir()
	seedStore(t, refDir)
	refCorpus := ncq.NewCorpus()
	refStore, err := durable.Open(refDir, wal.PolicyAlways, refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	refSrv := New(refCorpus, WithDurability(refStore))
	want := queryEnvelopes(t, refSrv)
	wantGen := refCorpus.Generation()

	for _, point := range crashPoints {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			seedStore(t, dir)

			// The child replaces "alpha" and re-puts "beta" with DIFFERENT
			// content; the armed crash point kills it mid-persistence of
			// the first mutation. Nothing it did may survive.
			cmd := exec.Command(os.Args[0], "-test.run=TestCrashChildHelper$")
			cmd.Env = append(os.Environ(),
				"NCQ_CRASH_CHILD_DIR="+dir,
				"NCQ_CRASHPOINT="+point,
			)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != wal.CrashExitCode {
				t.Fatalf("child at %q: err=%v (want exit %d)\n%s", point, err, wal.CrashExitCode, out)
			}

			// Recover and compare against the uncrashed reference.
			corpus := ncq.NewCorpus()
			store, err := durable.Open(dir, wal.PolicyAlways, corpus)
			if err != nil {
				t.Fatalf("recovery after %q: %v", point, err)
			}
			defer store.Close()
			if got := corpus.Generation(); got != wantGen {
				t.Errorf("recovered generation = %d, want exact pre-crash %d", got, wantGen)
			}
			srv := New(corpus, WithDurability(store))
			got := queryEnvelopes(t, srv)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("probe %d after %q:\nrecovered: %s\nreference: %s", i, point, got[i], want[i])
				}
			}
			// The doomed mutation's debris is gone from disk too.
			for _, d := range store.DocDirs() {
				if strings.Contains(d, "doomed") {
					t.Errorf("debris survived recovery: %s", d)
				}
			}
		})
	}
}

// TestCrashChildHelper is the sacrificial process of the matrix: it
// opens the durable store the parent prepared and issues mutations
// until the armed crash point kills it. It is skipped in a normal test
// run.
func TestCrashChildHelper(t *testing.T) {
	dir := os.Getenv("NCQ_CRASH_CHILD_DIR")
	if dir == "" {
		t.Skip("crash-matrix child helper; runs only when re-executed by TestCrashMatrix")
	}
	corpus := ncq.NewCorpus()
	store, err := durable.Open(dir, wal.PolicyAlways, corpus)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(1)
	}
	srv := New(corpus, WithDurability(store))
	// Replace an existing doc, add a new one — whichever commit trips
	// the armed point first kills the process (expected mid-request).
	do(t, srv, "PUT", "/v1/docs/alpha", `<bib><article><author>Overwritten</author></article></bib>`)
	do(t, srv, "PUT", "/v1/docs/doomed?shards=2", seedXML(8))
	// Reaching this line means the crash point never fired.
	fmt.Fprintln(os.Stderr, "child survived: crash point did not fire")
	os.Exit(2)
}
