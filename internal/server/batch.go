package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"ncq/internal/cache"
)

// batchRequest is the POST /v1/query/batch body: up to maxBatchQueries
// independent query requests answered in one round trip, amortising
// the HTTP exchange, the JSON framing and the cache lookups.
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

// batchItem is the outcome of one query of a batch. Exactly one of
// Error or Result is set; a failing query never poisons its siblings.
// Result holds the pre-serialised queryResult shared with the cache.
type batchItem struct {
	Cached bool            `json:"cached"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// batchResponse is the full POST /v1/query/batch payload. Results are
// in request order, all computed against one corpus generation.
type batchResponse struct {
	Generation uint64      `json:"generation"`
	Results    []batchItem `json:"results"`
}

// batchUnit is one distinct piece of work of a batch: duplicate
// queries in a request collapse onto a single unit, so each distinct
// query is resolved through the cache — and executed — exactly once.
type batchUnit struct {
	req    *queryRequest
	key    cache.Key
	raw    json.RawMessage
	cached bool
	err    error
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	var req batchRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request exceeds the %d byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: \"queries\" must hold at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest,
			"batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries)
		return
	}
	s.batches.Add(1)

	// One generation for the whole batch, read before any resolution
	// (same race argument as handleQuery): every result is computed
	// against — and cached under — a single consistent corpus view.
	gen := s.corpus.Generation()
	items := make([]batchItem, len(req.Queries))
	assigned := make([]*batchUnit, len(req.Queries))
	byKey := make(map[string]*batchUnit)
	var units []*batchUnit
	for i := range req.Queries {
		q := &req.Queries[i]
		if err := q.validate(); err != nil {
			items[i] = batchItem{Error: "invalid request: " + err.Error()}
			continue
		}
		if q.Doc != "" && !s.corpus.Has(q.Doc) {
			items[i] = batchItem{Error: fmt.Sprintf("no document %q", q.Doc)}
			continue
		}
		s.queries.Add(1)
		norm := q.normalize()
		u, ok := byKey[norm]
		if !ok {
			u = &batchUnit{req: q, key: cache.Key{Gen: gen, Query: norm}}
			byKey[norm] = u
			units = append(units, u)
		}
		assigned[i] = u
	}

	// Execute the distinct units over a bounded worker pool sized like
	// the corpus fan-out. Each unit resolves through the cache
	// individually, so a batch repeating yesterday's queries is pure
	// cache traffic. A unit's own execution may fan out again (corpus-
	// wide or sharded queries), briefly oversubscribing the CPU up to
	// workers²; that is deliberate — the scheduler stays work-
	// conserving, and the outer pool is what parallelises the units
	// whose inner execution is serial (cache hits, plain single-doc
	// queries).
	workers := s.corpus.Parallelism()
	if workers > len(units) {
		workers = len(units)
	}
	runUnit := func(u *batchUnit) {
		if v, ok := s.cache.Get(u.key); ok {
			u.raw, u.cached = v.(json.RawMessage), true
			return
		}
		res, err := s.execute(u.req)
		if err != nil {
			u.err = err
			return
		}
		raw, err := encodeResult(res)
		if err != nil {
			u.err = err
			return
		}
		s.cache.Put(u.key, raw, len(raw))
		u.raw = raw
	}
	if workers <= 1 {
		for _, u := range units {
			runUnit(u)
		}
	} else {
		next := make(chan *batchUnit)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range next {
					runUnit(u)
				}
			}()
		}
		for _, u := range units {
			next <- u
		}
		close(next)
		wg.Wait()
	}

	for i, u := range assigned {
		if u == nil {
			continue // already carries its validation error
		}
		if u.err != nil {
			items[i] = batchItem{Error: u.err.Error()}
			continue
		}
		items[i] = batchItem{Cached: u.cached, Result: u.raw}
	}
	writeJSON(w, http.StatusOK, batchResponse{Generation: gen, Results: items})
}
