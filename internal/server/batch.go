package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ncq"
)

// batchRequest is the POST /v1/query/batch body: up to maxBatchQueries
// independent query requests answered in one round trip, amortising
// the HTTP exchange, the JSON framing and the cache lookups.
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

// batchItem is the outcome of one query of a batch. Exactly one of
// Error or Result is set; a failing query never poisons its siblings.
// Result holds the pre-serialised queryResult shared with the cache.
type batchItem struct {
	Cached bool            `json:"cached"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// batchResponse is the full POST /v1/query/batch payload. Results are
// in request order, all computed against one corpus generation.
type batchResponse struct {
	Generation uint64      `json:"generation"`
	Results    []batchItem `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	var req batchRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request exceeds the %d byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: \"queries\" must hold at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest,
			"batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries)
		return
	}
	s.batches.Add(1)

	// One generation for the whole batch, read before any resolution
	// (same race argument as handleQuery): every result is computed
	// against — and cached under — a single consistent corpus view.
	gen := s.corpus.Generation()
	items := make([]batchItem, len(req.Queries))
	reqs := make([]*ncq.Request, len(req.Queries))
	for i := range req.Queries {
		q := &req.Queries[i]
		if err := q.validate(); err != nil {
			items[i] = batchItem{Error: "invalid request: " + err.Error()}
			continue
		}
		if q.Doc != "" && !s.corpus.Has(q.Doc) {
			items[i] = batchItem{Error: fmt.Sprintf("no document %q", q.Doc)}
			continue
		}
		s.queries.Add(1)
		unitReq := q.toRequest()
		reqs[i] = &unitReq
	}

	assigned, units := collectUnits(reqs)
	s.runUnits(r.Context(), gen, units)

	for i, u := range assigned {
		if u == nil {
			continue // already carries its validation error
		}
		if u.err != nil {
			items[i] = batchItem{Error: u.err.Error()}
			continue
		}
		items[i] = batchItem{Cached: u.cached, Result: u.out.raw}
	}
	writeJSON(w, http.StatusOK, batchResponse{Generation: gen, Results: items})
}
