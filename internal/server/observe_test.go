package server

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"ncq/internal/metrics"
)

const queryBody = `{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true}`

// TestMetricsEndpoint pins the /v1/metrics contract: Prometheus text
// exposition covering route latency, request counts, cache hit ratio,
// pool depth and the traffic totals.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)

	// One miss, one hit: a known cache ratio.
	for i := 0; i < 2; i++ {
		if rec := do(t, s, "POST", "/v1/query", queryBody); rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body)
		}
	}

	rec := do(t, s, "GET", "/v1/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE ncq_http_request_duration_seconds histogram",
		`ncq_http_request_duration_seconds_count{route="/v1/query"} 2`,
		`ncq_http_requests_total{route="/v1/query",status="200"} 2`,
		`ncq_http_requests_total{route="/v1/docs/{name}",status="201"} 3`,
		"ncq_queries_total 2",
		"ncq_mutations_total 3",
		"ncq_cache_hits_total 1",
		"ncq_cache_misses_total 1",
		"ncq_cache_hit_ratio 0.5",
		"# TYPE ncq_pool_depth gauge",
		"ncq_admission_capacity 0", // admission off by default
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(out, "ncq_pool_depth ") {
		t.Error("exposition missing ncq_pool_depth sample")
	}

	// The scrape itself is counted on the next scrape.
	rec = do(t, s, "GET", "/v1/metrics", "")
	if !strings.Contains(rec.Body.String(), `ncq_http_requests_total{route="/v1/metrics",status="200"} 1`) {
		t.Error("scrape route not instrumented")
	}
}

// TestAdmission429 pins the admission boundary: a saturated server
// answers 429 with a Retry-After hint and a JSON error body, before
// any execution happens, and recovers as soon as capacity frees up.
func TestAdmission429(t *testing.T) {
	s := newTestServer(t, WithAdmission(1, 0, 0))
	loadDocs(t, s)

	// Occupy the single slot directly at the limiter, as a long-running
	// query would.
	release, err := s.limiter.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	rec := do(t, s, "POST", "/v1/query", queryBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated query: %d %s, want 429", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if body := decode[errorResponse](t, rec); !strings.Contains(body.Error, "saturated") {
		t.Errorf("error body = %q", body.Error)
	}

	// Mutations and introspection stay reachable while saturated.
	if rec := do(t, s, "GET", "/v1/stats", ""); rec.Code != http.StatusOK {
		t.Errorf("stats while saturated: %d", rec.Code)
	}
	if rec := do(t, s, "PUT", "/v1/docs/extra", bibEntry); rec.Code != http.StatusCreated {
		t.Errorf("PUT while saturated: %d %s", rec.Code, rec.Body)
	}

	release()
	if rec := do(t, s, "POST", "/v1/query", queryBody); rec.Code != http.StatusOK {
		t.Errorf("query after release: %d %s", rec.Code, rec.Body)
	}

	rec = do(t, s, "GET", "/v1/metrics", "")
	for _, want := range []string{
		"ncq_admission_capacity 1",
		"ncq_admission_rejected_total 1",
	} {
		if !strings.Contains(rec.Body.String(), want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRequestLog pins the request-log line: one slog record per
// request with route, status and the query fingerprint.
func TestRequestLog(t *testing.T) {
	var logs bytes.Buffer
	s := newTestServer(t, WithLogger(slog.New(slog.NewTextHandler(&logs, nil))))
	loadDocs(t, s)
	logs.Reset() // drop the PUT lines; the query line is under test
	if rec := do(t, s, "POST", "/v1/query", queryBody); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	line := logs.String()
	for _, want := range []string{"msg=request", "method=POST", "route=/v1/query", "status=200", "query_fp=", "cache=miss"} {
		if !strings.Contains(line, want) {
			t.Errorf("request log missing %q: %s", want, line)
		}
	}
}
