package server

// POST /v2/query?stream=1 — the incremental form of the unified
// endpoint. Instead of one JSON envelope computed in full before the
// first byte leaves the handler, the response is NDJSON
// (application/x-ndjson): one meet per line in the global (distance,
// source, shard, node) rank, each line flushed as it is produced, then
// one trailer line with the stream counters:
//
//	{"meet":{"source":"bib","node":4,"tag":"book","distance":2,...}}
//	{"meet":{...}}
//	{"trailer":true,"unmatched":1,"truncated":true,"next_cursor":"...","took_ms":1.7}
//
// The first line is observable as soon as every fan-out member has
// produced its first answer — bounded by the slowest member's first
// result, not by its full answer set — which is the whole point of the
// endpoint: on a wide corpus the client renders nearest concepts while
// the long tail is still being merged.
//
// Only term requests stream (a query-language answer's unit is a
// per-source row set, not a meet) and "batch" cannot stream; both are
// rejected with 400. Errors before the first meet use the ordinary
// JSON error envelope and statusOf mapping (404 unknown doc, 410 stale
// cursor, ...); an error after bytes have left — a mid-stream
// cancellation or deadline — is reported as a final {"error": ...}
// line, since the status line is long gone. Streaming responses bypass
// the result cache: the value of the endpoint is the incremental
// production, which splicing cached bytes would fake but not deliver.

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"ncq"
	"ncq/internal/metrics"
)

// meetLine is one streamed result record.
type meetLine struct {
	Meet *ncq.CorpusMeet `json:"meet"`
}

// headerLine opens a stream when the client asks for it (?header=1):
// the stream-level counters known before the first meet, the node's
// identity, and the generation of the membership snapshot the answers
// are computed against. A cluster coordinator consumes it to size and
// staleness-check the global merge before any meet flows; plain
// clients that do not ask never see it, keeping the original NDJSON
// contract byte-compatible.
type headerLine struct {
	Header     bool   `json:"header"`
	Node       string `json:"node"`
	Generation uint64 `json:"generation"`
	Total      int    `json:"total"`
	Unmatched  int    `json:"unmatched"`
}

// errorLine reports a failure after the stream has started.
type errorLine struct {
	Error string `json:"error"`
}

// trailerLine closes a stream: the counters Run would have carried in
// its envelope. Unlike the batch wire result, unmatched is reported
// for corpus-wide streams too (as a count over all members).
type trailerLine struct {
	Trailer    bool    `json:"trailer"`
	Unmatched  int     `json:"unmatched"`
	Truncated  bool    `json:"truncated,omitempty"`
	NextCursor string  `json:"next_cursor,omitempty"`
	TookMS     float64 `json:"took_ms"`
}

// wantsStream reports whether the request selects the NDJSON form.
func wantsStream(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}

// wantsHeader reports whether the stream should open with a headerLine
// (?header=1) — the coordinator-facing form.
func wantsHeader(r *http.Request) bool {
	v := r.URL.Query().Get("header")
	return v == "1" || v == "true"
}

// handleStreamV2 answers the ?stream=1 form of /v2/query. req has been
// decoded but not yet validated; ctx already carries the per-request
// deadline. withHeader selects the coordinator-facing form that opens
// with a headerLine.
func (s *Server) handleStreamV2(ctx context.Context, w http.ResponseWriter, start time.Time, req *v2Request, withHeader bool) {
	if len(req.Batch) > 0 {
		writeError(w, http.StatusBadRequest,
			"\"batch\" cannot stream; issue one streaming query at a time")
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) != "" {
		writeError(w, http.StatusBadRequest,
			"only \"terms\" requests stream; run query-language requests without stream=1")
		return
	}
	s.queries.Add(1)
	s.streamsInflight.Inc()
	defer s.streamsInflight.Dec()
	ncqReq := req.toV2Request()
	metrics.SetFingerprint(ctx, ncqReq.Canonical())
	seq, stats := s.corpus.ResultsWithStats(ctx, ncqReq)
	if ncqReq.Vague != nil {
		s.vagueRequests.Inc()
		// Streams bypass the cache, so every drain is real execution;
		// stats (and the relaxation counts) are complete before the
		// first yield.
		defer func() { s.observeRelaxations(stats.RelaxationsBySlack) }()
	}
	flusher, _ := w.(http.Flusher)
	started := false
	writeLine := func(v any) bool {
		line, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false
		}
		s.streamLines.Inc()
		s.streamBytes.Add(int64(len(line)) + 1)
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	ensureStarted := func() {
		if started {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-NCQ-Cache", "bypass")
		w.WriteHeader(http.StatusOK)
		started = true
		if withHeader {
			// stats are complete before the first yield (and before the
			// trailer of an empty stream), so the header always carries
			// the final counters and the snapshot's generation.
			writeLine(headerLine{
				Header:     true,
				Node:       s.nodeName,
				Generation: stats.Generation,
				Total:      stats.Total,
				Unmatched:  stats.Unmatched,
			})
		}
	}
	for m, err := range seq {
		if err != nil {
			if !started {
				writeError(w, statusOf(err), "%v", err)
			} else {
				writeLine(errorLine{Error: err.Error()})
			}
			return
		}
		ensureStarted()
		if !writeLine(meetLine{Meet: &m}) {
			return // client went away; execution stops with the range
		}
	}
	ensureStarted()
	writeLine(trailerLine{
		Trailer:    true,
		Unmatched:  stats.Unmatched,
		Truncated:  stats.Truncated,
		NextCursor: stats.NextCursor,
		TookMS:     msSince(start),
	})
}
