package server

// Durability-path handler tests: snapshot-body PUTs (content
// negotiation), mutations routed through a durable.Store, and the
// restart contract — a reopened data directory serves the same answers
// at the same generation. The fault-injected variants live in
// crash_test.go behind the ncqfail build tag.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ncq"
	"ncq/internal/durable"
	"ncq/internal/wal"
)

// doHdr is do with request headers, for content-negotiated uploads.
func doHdr(t *testing.T, s *Server, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func snapshotOf(t *testing.T, xml string) string {
	t.Helper()
	db, err := ncq.Open(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func openDurableServer(t *testing.T, dir string) (*Server, *durable.Store) {
	t.Helper()
	corpus := ncq.NewCorpus()
	store, err := durable.Open(dir, wal.PolicyAlways, corpus)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return New(corpus, WithDurability(store)), store
}

func TestPutDocSnapshotBody(t *testing.T) {
	s := newTestServer(t)
	snap := snapshotOf(t, bibArticle)
	hdr := map[string]string{"Content-Type": SnapshotContentType}

	rec := doHdr(t, s, "PUT", "/v1/docs/cwi", snap, hdr)
	if rec.Code != http.StatusCreated {
		t.Fatalf("snapshot PUT: %d %s", rec.Code, rec.Body)
	}
	info := decode[docInfo](t, rec)
	if info.Shards != 1 || info.Stats.Nodes == 0 {
		t.Errorf("snapshot PUT info = %+v", info)
	}

	// The loaded document answers exactly like its XML-parsed twin.
	xmlSrv := newTestServer(t)
	do(t, xmlSrv, "PUT", "/v1/docs/cwi", bibArticle)
	q := `{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true}`
	got := do(t, s, "POST", "/v1/query", q)
	want := do(t, xmlSrv, "POST", "/v1/query", q)
	if got.Code != http.StatusOK || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("snapshot-loaded answers differ:\n%s\nvs\n%s", got.Body, want.Body)
	}

	// ?shards is meaningless for a snapshot body.
	if rec := doHdr(t, s, "PUT", "/v1/docs/cwi?shards=2", snap, hdr); rec.Code != http.StatusBadRequest {
		t.Errorf("sharded snapshot PUT: %d", rec.Code)
	}
	// A corrupt snapshot is a client error, not a server one.
	if rec := doHdr(t, s, "PUT", "/v1/docs/bad", snap[:len(snap)/2], hdr); rec.Code != http.StatusBadRequest {
		t.Errorf("truncated snapshot PUT: %d %s", rec.Code, rec.Body)
	}
}

func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	s, store := openDurableServer(t, dir)

	if rec := do(t, s, "PUT", "/v1/docs/cwi", bibArticle); rec.Code != http.StatusCreated {
		t.Fatalf("PUT cwi: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "PUT", "/v1/docs/personal?shards=2", bibEntry); rec.Code != http.StatusCreated {
		t.Fatalf("PUT personal: %d %s", rec.Code, rec.Body)
	}
	info := decode[docInfo](t, do(t, s, "GET", "/v1/docs/personal", ""))
	if info.Shards < 1 {
		t.Fatalf("personal shards = %d", info.Shards)
	}
	if rec := do(t, s, "PUT", "/v1/docs/library", bibRecord); rec.Code != http.StatusCreated {
		t.Fatalf("PUT library: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "DELETE", "/v1/docs/library", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE library: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "DELETE", "/v1/docs/library", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("second DELETE: %d", rec.Code)
	}
	gen := s.Corpus().Generation()
	q := `{"terms":["Ben","1999"],"exclude_root":true}`
	want := do(t, s, "POST", "/v1/query", q)
	if want.Code != http.StatusOK {
		t.Fatalf("query before restart: %d %s", want.Code, want.Body)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same directory, fresh corpus and server.
	s2, _ := openDurableServer(t, dir)
	if got := s2.Corpus().Generation(); got != gen {
		t.Errorf("generation after restart = %d, want %d", got, gen)
	}
	got := do(t, s2, "POST", "/v1/query", q)
	if got.Code != http.StatusOK || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("answers differ after restart:\n%s\nvs\n%s", got.Body, want.Body)
	}
	if rec := do(t, s2, "GET", "/v1/docs/library", ""); rec.Code != http.StatusNotFound {
		t.Errorf("deleted doc resurrected: %d %s", rec.Code, rec.Body)
	}
	info = decode[docInfo](t, do(t, s2, "GET", "/v1/docs/personal", ""))
	if info.Shards < 1 {
		t.Errorf("personal shards after restart = %d", info.Shards)
	}
}

func TestDurableShardedUploadStreams(t *testing.T) {
	// With a store attached, ?shards=K takes the streaming path even for
	// small bodies; the shard count still lands in [1, K] and queries
	// fan out across the shards.
	dir := t.TempDir()
	s, _ := openDurableServer(t, dir)
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 64; i++ {
		sb.WriteString("<article><author>Streaming Author</author><title>Chunked Parsing</title></article>")
	}
	sb.WriteString("</bib>")
	rec := do(t, s, "PUT", "/v1/docs/big?shards=4", sb.String())
	if rec.Code != http.StatusCreated {
		t.Fatalf("streaming PUT: %d %s", rec.Code, rec.Body)
	}
	info := decode[docInfo](t, rec)
	if info.Shards < 2 || info.Shards > 4 {
		t.Errorf("streamed shards = %d, want 2..4", info.Shards)
	}
	q := `{"doc":"big","terms":["Streaming","Chunked"],"exclude_root":true}`
	resp := decode[wireQueryResponse](t, do(t, s, "POST", "/v1/query", q))
	if resp.Result == nil || len(resp.Result.Meets) == 0 {
		t.Fatalf("no meets over streamed shards: %s", rec.Body)
	}
}

func TestDurableMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	s, _ := openDurableServer(t, dir)
	do(t, s, "PUT", "/v1/docs/cwi", bibArticle)
	body := do(t, s, "GET", "/v1/metrics", "").Body.String()
	for _, series := range []string{
		"ncq_wal_appends_total 1",
		"ncq_durable_commits_total 1",
		"ncq_replay_records 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
	if !strings.Contains(body, "ncq_snapshot_bytes_total") || strings.Contains(body, "ncq_snapshot_bytes_total 0") {
		t.Error("snapshot bytes not accounted")
	}
}
