package server

// The unified execution path: every query endpoint — v1 single, v1
// batch, and the whole v2 surface — lowers its wire request into an
// ncq.Request and resolves it here, through one cache keyed by the
// request's canonical encoding. The v1 handlers are thin adapters that
// keep their historical response bytes; v2 exposes the full Request
// surface (cursors, deadlines) directly.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"ncq"
	"ncq/internal/cache"
)

// cachedResult is the unit the LRU stores: the pre-encoded wire result
// shared verbatim by the v1 and v2 response envelopes, plus the page
// metadata v2 needs without re-decoding the payload.
type cachedResult struct {
	raw        json.RawMessage
	truncated  bool
	nextCursor string
}

// runCached resolves one request through the cache: a hit splices the
// stored bytes into the response; a miss executes through the unified
// ncq.Querier surface and caches the encoded result under the
// request's canonical encoding and the generation it was computed
// against (so a racing mutation can never publish a stale entry under
// the new generation).
func (s *Server) runCached(ctx context.Context, gen uint64, req ncq.Request) (cachedResult, bool, error) {
	if req.Vague != nil {
		s.vagueRequests.Inc()
	}
	key := cache.Key{Gen: gen, Query: req.Canonical()}
	if v, ok := s.cache.Get(key); ok {
		return v.(cachedResult), true, nil
	}
	res, err := s.corpus.Run(ctx, req)
	if err != nil {
		return cachedResult{}, false, err
	}
	s.observeRelaxations(res.RelaxationsBySlack)
	raw, err := json.Marshal(toWireResult(&req, res))
	if err != nil {
		return cachedResult{}, false, fmt.Errorf("%w: %v", errEncodeResult, err)
	}
	cr := cachedResult{raw: raw, truncated: res.Truncated, nextCursor: res.NextCursor}
	s.cache.Put(key, cr, len(raw)+len(cr.nextCursor))
	return cr, false, nil
}

// observeRelaxations feeds a vague execution's per-slack relaxation
// counts into the ncq_vague_relaxations_total histogram: one
// observation of value s per answer that used slack s. Cache hits
// observe nothing — the work was not redone.
func (s *Server) observeRelaxations(bySlack []int) {
	for slack, n := range bySlack {
		for i := 0; i < n; i++ {
			s.vagueRelax.Observe(float64(slack))
		}
	}
}

// toWireResult lowers an ncq.Result into the wire shape shared by v1
// and v2, keeping the v1 contract byte for byte: the unmatched count
// is reported for single-document requests only (corpus-wide node
// counts aggregate over members and were never part of the v1
// surface).
func toWireResult(req *ncq.Request, res *ncq.Result) *queryResult {
	if len(req.Terms) > 0 {
		out := &queryResult{Mode: "terms", Meets: res.Meets, Truncated: res.Truncated}
		if req.Doc != "" {
			out.Unmatched = res.Unmatched
		}
		return out
	}
	out := &queryResult{Mode: "query", Truncated: res.Truncated}
	for _, a := range res.Answers {
		out.Answers = append(out.Answers, toAnswerJSON(a.Source, a.Answer))
	}
	return out
}

// errEncodeResult marks the one server-side failure of the execution
// path — a result that would not serialise — so statusOf can report it
// as a 500 instead of blaming the client's input.
var errEncodeResult = errors.New("encode result")

// statusOf maps an execution failure to its HTTP status: a document
// that is not registered is 404, a cursor from another request is 400,
// a cursor minted before a corpus mutation is 410 Gone (the page it
// pointed into no longer exists), an expired per-request deadline is
// 504, a client that went away is 499 (the de-facto "client closed
// request" code), a result that failed to serialise is 500; everything
// else is input-driven (unparsable queries, bad path patterns) and
// therefore 400.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ncq.ErrUnknownDoc):
		return http.StatusNotFound
	case errors.Is(err, ncq.ErrBadCursor):
		return http.StatusBadRequest
	case errors.Is(err, ncq.ErrStaleCursor):
		return http.StatusGone
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, errEncodeResult):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// batchUnit is one distinct piece of work of a batch: duplicate
// queries in a request collapse onto a single unit, so each distinct
// request is resolved through the cache — and executed — exactly once.
type batchUnit struct {
	req    ncq.Request
	out    cachedResult
	cached bool
	err    error
}

// collectUnits dedupes the valid requests of a batch onto distinct
// execution units, keyed by the canonical request encoding shared with
// the cache. reqs[i] == nil marks an item that already failed
// validation; its assigned slot stays nil. Both the v1 and the v2
// batch handler run through this, so the dedup and keying semantics
// cannot drift apart.
func collectUnits(reqs []*ncq.Request) (assigned, units []*batchUnit) {
	assigned = make([]*batchUnit, len(reqs))
	byKey := make(map[string]*batchUnit)
	for i, r := range reqs {
		if r == nil {
			continue
		}
		key := r.Canonical()
		u, ok := byKey[key]
		if !ok {
			u = &batchUnit{req: *r}
			byKey[key] = u
			units = append(units, u)
		}
		assigned[i] = u
	}
	return assigned, units
}

// runUnits executes the distinct units of a batch over a bounded
// worker pool sized like the corpus fan-out. Each unit resolves
// through the cache individually, so a batch repeating yesterday's
// queries is pure cache traffic. A unit's own execution may fan out
// again (corpus-wide or sharded queries), briefly oversubscribing the
// CPU up to workers²; that is deliberate — the scheduler stays work-
// conserving, and the outer pool is what parallelises the units whose
// inner execution is serial (cache hits, plain single-doc queries).
func (s *Server) runUnits(ctx context.Context, gen uint64, units []*batchUnit) {
	workers := s.corpus.Parallelism()
	if workers > len(units) {
		workers = len(units)
	}
	runUnit := func(u *batchUnit) {
		u.out, u.cached, u.err = s.runCached(ctx, gen, u.req)
	}
	if workers <= 1 {
		for _, u := range units {
			runUnit(u)
		}
		return
	}
	next := make(chan *batchUnit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				runUnit(u)
			}
		}()
	}
	for _, u := range units {
		next <- u
	}
	close(next)
	wg.Wait()
}
