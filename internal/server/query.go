package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"ncq"
	"ncq/internal/metrics"
)

// queryRequest is the POST /v1/query body (and one element of a batch
// request). Exactly one of Query (the paper's SQL variant) or Terms (a
// raw term meet) must be set. An empty Doc targets the whole corpus; a
// named Doc is resolved logically, so a sharded document is queried
// across all of its shards and answers are merged.
type queryRequest struct {
	Doc   string   `json:"doc,omitempty"`
	Query string   `json:"query,omitempty"`
	Terms []string `json:"terms,omitempty"`

	// Meet options, mirroring ncq.Options (term queries only).
	ExcludeRoot bool     `json:"exclude_root,omitempty"`
	Exclude     []string `json:"exclude,omitempty"`
	Restrict    []string `json:"restrict,omitempty"`
	Nearest     bool     `json:"nearest,omitempty"`
	Within      int      `json:"within,omitempty"`
	MaxLift     int      `json:"max_lift,omitempty"`

	// Limit caps the number of returned meets or rows; 0 = unlimited.
	Limit int `json:"limit,omitempty"`

	// Vague switches a terms request into the vague-constraints mode:
	// restrict patterns match approximately within max_slack rewrites
	// and structural slack blends into the ranking distance; expand
	// broadens terms through the server's thesaurus. The ncq.Vague
	// wire shape ({"max_slack": N, "expand": true}) is used verbatim.
	Vague *ncq.Vague `json:"vague,omitempty"`
}

func (q *queryRequest) validate() error {
	hasQuery := strings.TrimSpace(q.Query) != ""
	if hasQuery == (len(q.Terms) > 0) {
		return errors.New("exactly one of \"query\" or \"terms\" must be set")
	}
	for _, t := range q.Terms {
		if t == "" {
			return errors.New("empty term")
		}
	}
	if q.Within < 0 || q.MaxLift < 0 || q.Limit < 0 {
		return errors.New("\"within\", \"max_lift\" and \"limit\" must be non-negative")
	}
	if hasQuery && (q.ExcludeRoot || q.Nearest || q.Within != 0 || q.MaxLift != 0 ||
		len(q.Exclude) > 0 || len(q.Restrict) > 0) {
		return errors.New("meet options apply to \"terms\" queries only; use the query language's meet(...) options instead")
	}
	if q.Vague != nil {
		if hasQuery {
			return errors.New("\"vague\" applies to \"terms\" queries only")
		}
		if q.Vague.MaxSlack < 0 || q.Vague.MaxSlack > ncq.MaxVagueSlack {
			return fmt.Errorf("\"vague.max_slack\" must be between 0 and %d", ncq.MaxVagueSlack)
		}
	}
	return nil
}

// options lowers the request's meet knobs into an ncq.Options.
func (q *queryRequest) options() *ncq.Options {
	opt := &ncq.Options{}
	if q.ExcludeRoot {
		opt.ExcludeRoot()
	}
	for _, p := range q.Exclude {
		opt.ExcludePattern(p)
	}
	for _, p := range q.Restrict {
		opt.Restrict(p)
	}
	if q.Nearest {
		opt.Nearest()
	}
	if q.Within > 0 {
		opt.Within(q.Within)
	}
	if q.MaxLift > 0 {
		opt.MaxLift(q.MaxLift)
	}
	return opt
}

// toRequest lowers the validated wire request into the unified
// ncq.Request every endpoint executes through; the cache is keyed by
// its canonical encoding, so equivalent v1 and v2 requests share
// entries.
func (q *queryRequest) toRequest() ncq.Request {
	req := ncq.Request{Doc: q.Doc, Limit: q.Limit}
	if len(q.Terms) > 0 {
		req.Terms = q.Terms
		req.Options = q.options()
		req.Vague = q.Vague
	} else {
		req.Query = strings.TrimSpace(q.Query)
	}
	return req
}

// rowJSON is the wire form of one query-language result row.
type rowJSON struct {
	Node      ncq.NodeID   `json:"node"`
	Tag       string       `json:"tag"`
	Path      string       `json:"path"`
	Value     string       `json:"value,omitempty"`
	XML       string       `json:"xml,omitempty"`
	Witnesses []ncq.NodeID `json:"witnesses,omitempty"`
	Distance  int          `json:"distance"`
}

// answerJSON is one document's answer to a query-language request.
type answerJSON struct {
	Source  string    `json:"source"`
	Columns []string  `json:"columns"`
	IsMeet  bool      `json:"is_meet"`
	Rows    []rowJSON `json:"rows"`
}

func toAnswerJSON(source string, ans *ncq.Answer) answerJSON {
	out := answerJSON{
		Source:  source,
		Columns: ans.Columns,
		IsMeet:  ans.IsMeet,
		Rows:    make([]rowJSON, len(ans.Rows)),
	}
	for i, r := range ans.Rows {
		out.Rows[i] = rowJSON{
			Node:      r.OID,
			Tag:       r.Tag,
			Path:      r.Path,
			Value:     r.Value,
			XML:       r.XML,
			Witnesses: r.Witnesses,
			Distance:  r.Distance,
		}
	}
	return out
}

// queryResult is the cacheable portion of a query response: everything
// derived from the corpus state, nothing request- or connection-bound.
// It is encoded exactly once (on the cache miss) and the bytes are
// spliced verbatim into every v1 and v2 response envelope.
type queryResult struct {
	Mode      string           `json:"mode"`                // "terms" or "query"
	Meets     []ncq.CorpusMeet `json:"meets,omitempty"`     // terms mode
	Unmatched int              `json:"unmatched,omitempty"` // terms mode, single doc only
	Answers   []answerJSON     `json:"answers,omitempty"`   // query mode
	Truncated bool             `json:"truncated,omitempty"` // a Limit cut results
}

// queryResponse is the full POST /v1/query payload. Result holds the
// pre-serialised queryResult.
type queryResponse struct {
	Cached     bool            `json:"cached"`
	Generation uint64          `json:"generation"`
	Result     json.RawMessage `json:"result"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody))
	dec.DisallowUnknownFields()
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request exceeds the %d byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}

	// Read the generation BEFORE resolving the document: if a mutation
	// races this request, the result computed against the old database
	// is then cached under the old (dead) generation and can never be
	// served to post-mutation clients. Resolving first would let a
	// stale result slip in under the new generation.
	gen := s.corpus.Generation()
	if req.Doc != "" && !s.corpus.Has(req.Doc) {
		writeError(w, http.StatusNotFound, "no document %q", req.Doc)
		return
	}

	s.queries.Add(1)
	ncqReq := req.toRequest()
	metrics.SetFingerprint(r.Context(), ncqReq.Canonical())
	cr, cached, err := s.runCached(r.Context(), gen, ncqReq)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if cached {
		w.Header().Set("X-NCQ-Cache", "hit")
	} else {
		w.Header().Set("X-NCQ-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, queryResponse{Cached: cached, Generation: gen, Result: cr.raw})
}

// writeQueryError maps an execution failure to its status (statusOf).
func writeQueryError(w http.ResponseWriter, err error) {
	writeError(w, statusOf(err), "%v", err)
}
