package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"encoding/json"

	"ncq"
	"ncq/internal/cache"
)

// queryRequest is the POST /v1/query body (and one element of a batch
// request). Exactly one of Query (the paper's SQL variant) or Terms (a
// raw term meet) must be set. An empty Doc targets the whole corpus; a
// named Doc is resolved logically, so a sharded document is queried
// across all of its shards and answers are merged.
type queryRequest struct {
	Doc   string   `json:"doc,omitempty"`
	Query string   `json:"query,omitempty"`
	Terms []string `json:"terms,omitempty"`

	// Meet options, mirroring ncq.Options (term queries only).
	ExcludeRoot bool     `json:"exclude_root,omitempty"`
	Exclude     []string `json:"exclude,omitempty"`
	Restrict    []string `json:"restrict,omitempty"`
	Nearest     bool     `json:"nearest,omitempty"`
	Within      int      `json:"within,omitempty"`
	MaxLift     int      `json:"max_lift,omitempty"`

	// Limit caps the number of returned meets or rows; 0 = unlimited.
	Limit int `json:"limit,omitempty"`
}

func (q *queryRequest) validate() error {
	hasQuery := strings.TrimSpace(q.Query) != ""
	if hasQuery == (len(q.Terms) > 0) {
		return errors.New("exactly one of \"query\" or \"terms\" must be set")
	}
	for _, t := range q.Terms {
		if t == "" {
			return errors.New("empty term")
		}
	}
	if q.Within < 0 || q.MaxLift < 0 || q.Limit < 0 {
		return errors.New("\"within\", \"max_lift\" and \"limit\" must be non-negative")
	}
	if hasQuery && (q.ExcludeRoot || q.Nearest || q.Within != 0 || q.MaxLift != 0 ||
		len(q.Exclude) > 0 || len(q.Restrict) > 0) {
		return errors.New("meet options apply to \"terms\" queries only; use the query language's meet(...) options instead")
	}
	return nil
}

// options lowers the request's meet knobs into an ncq.Options.
func (q *queryRequest) options() *ncq.Options {
	opt := &ncq.Options{}
	if q.ExcludeRoot {
		opt.ExcludeRoot()
	}
	for _, p := range q.Exclude {
		opt.ExcludePattern(p)
	}
	for _, p := range q.Restrict {
		opt.Restrict(p)
	}
	if q.Nearest {
		opt.Nearest()
	}
	if q.Within > 0 {
		opt.Within(q.Within)
	}
	if q.MaxLift > 0 {
		opt.MaxLift(q.MaxLift)
	}
	return opt
}

// normalize renders the request as a canonical cache-key string:
// equivalent requests (modulo query whitespace) map to the same key,
// and %q quoting keeps user strings from colliding with the field
// separators.
func (q *queryRequest) normalize() string {
	return fmt.Sprintf("doc=%q query=%q terms=%q xroot=%t x=%q r=%q near=%t w=%d lift=%d lim=%d",
		q.Doc, strings.Join(strings.Fields(q.Query), " "), q.Terms,
		q.ExcludeRoot, q.Exclude, q.Restrict, q.Nearest, q.Within, q.MaxLift, q.Limit)
}

// rowJSON is the wire form of one query-language result row.
type rowJSON struct {
	Node      ncq.NodeID   `json:"node"`
	Tag       string       `json:"tag"`
	Path      string       `json:"path"`
	Value     string       `json:"value,omitempty"`
	XML       string       `json:"xml,omitempty"`
	Witnesses []ncq.NodeID `json:"witnesses,omitempty"`
	Distance  int          `json:"distance"`
}

// answerJSON is one document's answer to a query-language request.
type answerJSON struct {
	Source  string    `json:"source"`
	Columns []string  `json:"columns"`
	IsMeet  bool      `json:"is_meet"`
	Rows    []rowJSON `json:"rows"`
}

func toAnswerJSON(source string, ans *ncq.Answer) answerJSON {
	out := answerJSON{
		Source:  source,
		Columns: ans.Columns,
		IsMeet:  ans.IsMeet,
		Rows:    make([]rowJSON, len(ans.Rows)),
	}
	for i, r := range ans.Rows {
		out.Rows[i] = rowJSON{
			Node:      r.OID,
			Tag:       r.Tag,
			Path:      r.Path,
			Value:     r.Value,
			XML:       r.XML,
			Witnesses: r.Witnesses,
			Distance:  r.Distance,
		}
	}
	return out
}

// queryResult is the cacheable portion of a query response: everything
// derived from the corpus state, nothing request- or connection-bound.
type queryResult struct {
	Mode      string           `json:"mode"`                // "terms" or "query"
	Meets     []ncq.CorpusMeet `json:"meets,omitempty"`     // terms mode
	Unmatched int              `json:"unmatched,omitempty"` // terms mode, single doc only
	Answers   []answerJSON     `json:"answers,omitempty"`   // query mode
	Truncated bool             `json:"truncated,omitempty"` // a Limit cut results
}

// encodeResult serialises a result once, up front: the bytes are
// cached (their length is the entry's charged size) and spliced
// verbatim into every response envelope, so the miss path encodes the
// result exactly once and the hit path not at all.
func encodeResult(res *queryResult) (json.RawMessage, error) {
	return json.Marshal(res)
}

// queryResponse is the full POST /v1/query payload. Result holds the
// pre-serialised queryResult.
type queryResponse struct {
	Cached     bool            `json:"cached"`
	Generation uint64          `json:"generation"`
	Result     json.RawMessage `json:"result"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody))
	dec.DisallowUnknownFields()
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request exceeds the %d byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}

	// Read the generation BEFORE resolving the document: if a mutation
	// races this request, the result computed against the old database
	// is then cached under the old (dead) generation and can never be
	// served to post-mutation clients. Resolving first would let a
	// stale result slip in under the new generation.
	gen := s.corpus.Generation()
	if req.Doc != "" && !s.corpus.Has(req.Doc) {
		writeError(w, http.StatusNotFound, "no document %q", req.Doc)
		return
	}

	s.queries.Add(1)
	key := cache.Key{Gen: gen, Query: req.normalize()}
	if v, ok := s.cache.Get(key); ok {
		w.Header().Set("X-NCQ-Cache", "hit")
		writeJSON(w, http.StatusOK, queryResponse{Cached: true, Generation: gen, Result: v.(json.RawMessage)})
		return
	}

	res, err := s.execute(&req)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	raw, err := encodeResult(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode result: %v", err)
		return
	}
	s.cache.Put(key, raw, len(raw))
	w.Header().Set("X-NCQ-Cache", "miss")
	writeJSON(w, http.StatusOK, queryResponse{Cached: false, Generation: gen, Result: raw})
}

// writeQueryError maps an execution failure to a status: a document
// that vanished between the existence check and execution is 404;
// everything else is input-driven (unparsable queries, bad path
// patterns) and therefore 400.
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, ncq.ErrUnknownDoc) {
		status = http.StatusNotFound
	}
	writeError(w, status, "%v", err)
}

// execute runs the validated request against its document — resolved
// through the corpus so sharded members fan out and merge — or the
// whole corpus when no document is named. The returned result is
// immutable: it is shared between the cache and in-flight responses.
func (s *Server) execute(req *queryRequest) (*queryResult, error) {
	if len(req.Terms) > 0 {
		return s.executeTerms(req)
	}
	return s.executeQuery(req)
}

func (s *Server) executeTerms(req *queryRequest) (*queryResult, error) {
	res := &queryResult{Mode: "terms", Meets: []ncq.CorpusMeet{}}
	if req.Doc != "" {
		meets, unmatched, err := s.corpus.MeetOfTermsIn(req.Doc, req.options(), req.Terms...)
		if err != nil {
			return nil, err
		}
		res.Meets = append(res.Meets, meets...)
		res.Unmatched = unmatched
	} else {
		meets, err := s.corpus.MeetOfTerms(req.options(), req.Terms...)
		if err != nil {
			return nil, err
		}
		res.Meets = append(res.Meets, meets...)
	}
	if req.Limit > 0 && len(res.Meets) > req.Limit {
		res.Meets = res.Meets[:req.Limit]
		res.Truncated = true
	}
	return res, nil
}

func (s *Server) executeQuery(req *queryRequest) (*queryResult, error) {
	res := &queryResult{Mode: "query", Answers: []answerJSON{}}
	if req.Doc != "" {
		ans, err := s.corpus.QueryIn(req.Doc, req.Query)
		if err != nil {
			return nil, err
		}
		res.Answers = append(res.Answers, toAnswerJSON(req.Doc, ans))
	} else {
		answers, err := s.corpus.Query(req.Query)
		if err != nil {
			return nil, err
		}
		for _, a := range answers {
			res.Answers = append(res.Answers, toAnswerJSON(a.Source, a.Answer))
		}
	}
	if req.Limit > 0 {
		remaining := req.Limit
		for i := range res.Answers {
			rows := res.Answers[i].Rows
			if len(rows) > remaining {
				res.Answers[i].Rows = rows[:remaining]
				res.Truncated = true
			}
			remaining -= len(res.Answers[i].Rows)
			if remaining <= 0 {
				for j := i + 1; j < len(res.Answers); j++ {
					if len(res.Answers[j].Rows) > 0 {
						res.Truncated = true
					}
				}
				res.Answers = res.Answers[:i+1]
				break
			}
		}
	}
	return res, nil
}
