package server

// HTTP-surface tests for the vague-constraints mode: the zero spec
// sharing the exact mode's cache entries (the canonical-encoding
// invariant observed through X-NCQ-Cache), relaxed answers over the
// batch and streaming forms, the request-shape rejections, and the
// ncq_vague_requests_total / ncq_vague_relaxations_total series.

import (
	"net/http"
	"strings"
	"testing"

	"ncq"
)

// TestQueryV2VagueZeroSpecSharesCache pins the zero-spec equivalence
// at the wire: {"vague":{"max_slack":0}} canonicalises like the plain
// request, so the second of the pair is a cache hit on the first —
// whichever order they arrive in — and the result payloads are
// byte-identical.
func TestQueryV2VagueZeroSpecSharesCache(t *testing.T) {
	exact := `{"terms":["Bit","1999"],"exclude_root":true}`
	zero := `{"terms":["Bit","1999"],"exclude_root":true,"vague":{"max_slack":0,"expand":false}}`
	for _, order := range [][2]string{{exact, zero}, {zero, exact}} {
		s := newTestServer(t)
		loadDocs(t, s)
		first := do(t, s, "POST", "/v2/query", order[0])
		second := do(t, s, "POST", "/v2/query", order[1])
		if first.Code != http.StatusOK || second.Code != http.StatusOK {
			t.Fatalf("status = %d / %d", first.Code, second.Code)
		}
		if hdr := second.Header().Get("X-NCQ-Cache"); hdr != "hit" {
			t.Fatalf("second request of %q pair: X-NCQ-Cache = %q, want hit", order[0], hdr)
		}
		a := decode[wireV2Response](t, first)
		b := decode[wireV2Response](t, second)
		if len(a.Result.Meets) == 0 {
			t.Fatal("workload degenerate: no meets")
		}
		if len(a.Result.Meets) != len(b.Result.Meets) {
			t.Fatalf("meets differ: %+v vs %+v", a.Result, b.Result)
		}
	}
}

// TestQueryV2Vague pins the serving path end to end: a restrict
// pattern with a misspelled label is empty in exact mode, answers
// under a slack budget with the blended distance, and the two vague
// metric series record the traffic.
func TestQueryV2Vague(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)

	exact := do(t, s, "POST", "/v2/query",
		`{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true,"restrict":["/bib/articel"]}`)
	if exact.Code != http.StatusOK {
		t.Fatalf("exact: %d %s", exact.Code, exact.Body)
	}
	if resp := decode[wireV2Response](t, exact); len(resp.Result.Meets) != 0 {
		t.Fatalf("exact misspelled restrict matched %+v", resp.Result.Meets)
	}

	vague := do(t, s, "POST", "/v2/query",
		`{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true,"restrict":["/bib/articel"],`+
			`"vague":{"max_slack":2}}`)
	if vague.Code != http.StatusOK {
		t.Fatalf("vague: %d %s", vague.Code, vague.Body)
	}
	resp := decode[wireV2Response](t, vague)
	if len(resp.Result.Meets) != 1 || resp.Result.Meets[0].Tag != "article" {
		t.Fatalf("vague meets = %+v", resp.Result.Meets)
	}
	// "articel" is two edits from "article": slack 2 blended at weight 2.
	exactControl := do(t, s, "POST", "/v2/query",
		`{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true,"restrict":["/bib/article"]}`)
	control := decode[wireV2Response](t, exactControl)
	if len(control.Result.Meets) != 1 ||
		resp.Result.Meets[0].Distance != control.Result.Meets[0].Distance+4 {
		t.Fatalf("blended distance %d, control %+v", resp.Result.Meets[0].Distance, control.Result.Meets)
	}

	// A cache hit on the vague request still counts as vague traffic
	// but re-observes no relaxations.
	if rec := do(t, s, "POST", "/v2/query",
		`{"doc":"cwi","terms":["Bit","1999"],"exclude_root":true,"restrict":["/bib/articel"],`+
			`"vague":{"max_slack":2}}`); rec.Header().Get("X-NCQ-Cache") != "hit" {
		t.Fatalf("repeat vague request missed the cache: %s", rec.Header().Get("X-NCQ-Cache"))
	}

	rec := do(t, s, "GET", "/v1/metrics", "")
	body := rec.Body.String()
	if !strings.Contains(body, "ncq_vague_requests_total 2") {
		t.Errorf("metrics missing vague request count:\n%s", grepMetric(body, "ncq_vague_requests_total"))
	}
	if !strings.Contains(body, "ncq_vague_relaxations_total_count 1") ||
		!strings.Contains(body, "ncq_vague_relaxations_total_sum 2") {
		t.Errorf("metrics missing relaxation histogram:\n%s", grepMetric(body, "ncq_vague_relaxations_total"))
	}
}

// grepMetric extracts one metric family from an exposition body for
// failure messages.
func grepMetric(body, name string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestQueryV2VagueStream pins the NDJSON form: streamed vague meets
// equal the batch endpoint's answer in the same blended order, and
// the stream counts toward the vague request and relaxation series.
func TestQueryV2VagueStream(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"terms":["Bit","1999"],"exclude_root":true,"restrict":["/bib/articel"],` +
		`"vague":{"max_slack":2}}`

	rec := doStream(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body)
	}
	meets, trailer := streamLines(t, rec.Body.String())
	if len(meets) == 0 || trailer.Truncated {
		t.Fatalf("streamed %d meets, trailer %+v", len(meets), trailer)
	}

	batch := do(t, s, "POST", "/v2/query", body)
	resp := decode[wireV2Response](t, batch)
	if len(resp.Result.Meets) != len(meets) {
		t.Fatalf("stream %d meets, batch %d", len(meets), len(resp.Result.Meets))
	}
	for i := range meets {
		if meets[i].Source != resp.Result.Meets[i].Source ||
			meets[i].Node != resp.Result.Meets[i].Node ||
			meets[i].Distance != resp.Result.Meets[i].Distance {
			t.Errorf("meet %d: stream %+v vs batch %+v", i, meets[i], resp.Result.Meets[i])
		}
	}

	metricsBody := do(t, s, "GET", "/v1/metrics", "").Body.String()
	if !strings.Contains(metricsBody, "ncq_vague_requests_total 2") {
		t.Errorf("stream not counted:\n%s", grepMetric(metricsBody, "ncq_vague_requests_total"))
	}
}

// TestQueryV2VagueExpand pins term expansion over HTTP: a thesaurus
// installed on the serving corpus broadens a synonym onto the stored
// vocabulary when — and only when — the request asks for it.
func TestQueryV2VagueExpand(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	s.Corpus().SetThesaurus(ncq.NewThesaurus().Add("binary", "Bit"))

	off := do(t, s, "POST", "/v2/query", `{"doc":"cwi","terms":["binary","1999"],"exclude_root":true}`)
	if resp := decode[wireV2Response](t, off); len(resp.Result.Meets) != 0 {
		t.Fatalf("exact mode expanded: %+v", resp.Result.Meets)
	}
	on := do(t, s, "POST", "/v2/query",
		`{"doc":"cwi","terms":["binary","1999"],"exclude_root":true,"vague":{"max_slack":0,"expand":true}}`)
	if on.Code != http.StatusOK {
		t.Fatalf("expand: %d %s", on.Code, on.Body)
	}
	if resp := decode[wireV2Response](t, on); len(resp.Result.Meets) != 1 ||
		resp.Result.Meets[0].Tag != "article" {
		t.Fatalf("expanded meets = %+v", decode[wireV2Response](t, on).Result.Meets)
	}
}

// TestQueryVagueRejects pins the 400 contract for malformed vague
// requests on both the v1 and v2 surfaces.
func TestQueryVagueRejects(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	bad := []string{
		`{"query":"SELECT meet(e1, e2) FROM //year AS e1, //who AS e2","vague":{"max_slack":1}}`,
		`{"terms":["Bit"],"vague":{"max_slack":-1}}`,
		`{"terms":["Bit"],"vague":{"max_slack":99}}`,
	}
	for _, body := range bad {
		for _, path := range []string{"/v1/query", "/v2/query"} {
			if rec := do(t, s, "POST", path, body); rec.Code != http.StatusBadRequest {
				t.Errorf("POST %s %s: %d %s", path, body, rec.Code, rec.Body)
			}
		}
	}
}
