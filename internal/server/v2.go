package server

// POST /v2/query — the unified query endpoint. One request schema
// covers everything the v1 surface split across two endpoints: a
// single-document query, a corpus-wide query, and a batch of either,
// with cursor pagination and a per-request deadline. The body is one
// JSON object; with "batch" set it carries many queries, otherwise the
// inline fields describe one:
//
//	{"doc":"bib","terms":["Bit","1999"],"exclude_root":true,
//	 "limit":10,"cursor":"...","timeout_ms":250}
//	{"batch":[{...},{...}],"timeout_ms":500}
//
// Responses carry the same pre-encoded result payload as v1 (both
// endpoints share one cache, keyed by the request's canonical
// encoding) plus the page metadata: a truncated flag and the cursor of
// the next page. Errors map to statuses uniformly: 404 for an unknown
// document, 400 for invalid input or a foreign cursor, 410 for a
// cursor minted before a corpus mutation, 504 for an expired
// per-request deadline. With ?stream=1 a term request streams its
// meets incrementally as NDJSON instead (stream.go).

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"time"

	"ncq"
	"ncq/internal/metrics"
)

// v2Query is one query of the v2 surface: the v1 request fields plus
// cursor pagination.
type v2Query struct {
	queryRequest
	Cursor string `json:"cursor,omitempty"`
}

// toV2Request lowers the wire query into the unified ncq.Request.
func (q *v2Query) toV2Request() ncq.Request {
	r := q.queryRequest.toRequest()
	r.Cursor = q.Cursor
	return r
}

// v2Request is the POST /v2/query body: one query inline, or many
// under "batch", plus an optional per-request deadline.
type v2Request struct {
	v2Query
	Batch     []v2Query `json:"batch,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// v2Response is the single-query response envelope.
type v2Response struct {
	Cached     bool            `json:"cached"`
	Generation uint64          `json:"generation"`
	TookMS     float64         `json:"took_ms"`
	Truncated  bool            `json:"truncated,omitempty"`
	NextCursor string          `json:"next_cursor,omitempty"`
	Result     json.RawMessage `json:"result"`
}

// v2BatchItem is the outcome of one query of a v2 batch. Status is the
// HTTP status the query would have received on its own, so a missing
// document is distinguishable (404) from an invalid query (400).
type v2BatchItem struct {
	Status     int             `json:"status"`
	Cached     bool            `json:"cached,omitempty"`
	Error      string          `json:"error,omitempty"`
	Truncated  bool            `json:"truncated,omitempty"`
	NextCursor string          `json:"next_cursor,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// v2BatchResponse is the batch response envelope; results are in
// request order, all computed against one corpus generation.
type v2BatchResponse struct {
	Generation uint64        `json:"generation"`
	TookMS     float64       `json:"took_ms"`
	Results    []v2BatchItem `json:"results"`
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	var req v2Request
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request exceeds the %d byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "\"timeout_ms\" must be non-negative")
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if wantsStream(r) {
		s.handleStreamV2(ctx, w, start, &req, wantsHeader(r))
		return
	}
	if len(req.Batch) > 0 {
		// Any inline query field alongside "batch" is a malformed
		// request; the zero-value comparison keeps this exhaustive as
		// fields are added.
		if !reflect.DeepEqual(req.v2Query, v2Query{}) {
			writeError(w, http.StatusBadRequest,
				"set either the inline query fields or \"batch\", not both")
			return
		}
		s.handleBatchV2(ctx, w, start, req.Batch)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	gen := s.corpus.Generation()
	s.queries.Add(1)
	ncqReq := req.toV2Request()
	metrics.SetFingerprint(ctx, ncqReq.Canonical())
	cr, cached, err := s.runCached(ctx, gen, ncqReq)
	if err != nil {
		writeError(w, statusOf(err), "%v", err)
		return
	}
	if cached {
		w.Header().Set("X-NCQ-Cache", "hit")
	} else {
		w.Header().Set("X-NCQ-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, v2Response{
		Cached:     cached,
		Generation: gen,
		TookMS:     msSince(start),
		Truncated:  cr.truncated,
		NextCursor: cr.nextCursor,
		Result:     cr.raw,
	})
}

// handleBatchV2 answers the batch form: per-item validation errors and
// statuses, distinct queries deduplicated onto single executions, all
// against one generation.
func (s *Server) handleBatchV2(ctx context.Context, w http.ResponseWriter, start time.Time, batch []v2Query) {
	if len(batch) > maxBatchQueries {
		writeError(w, http.StatusBadRequest,
			"batch of %d queries exceeds the limit of %d", len(batch), maxBatchQueries)
		return
	}
	s.batches.Add(1)
	gen := s.corpus.Generation()
	items := make([]v2BatchItem, len(batch))
	reqs := make([]*ncq.Request, len(batch))
	for i := range batch {
		q := &batch[i]
		if err := q.validate(); err != nil {
			items[i] = v2BatchItem{Status: http.StatusBadRequest, Error: "invalid request: " + err.Error()}
			continue
		}
		s.queries.Add(1)
		unitReq := q.toV2Request()
		reqs[i] = &unitReq
	}
	assigned, units := collectUnits(reqs)
	s.runUnits(ctx, gen, units)
	for i, u := range assigned {
		if u == nil {
			continue // already carries its validation error
		}
		if u.err != nil {
			items[i] = v2BatchItem{Status: statusOf(u.err), Error: u.err.Error()}
			continue
		}
		items[i] = v2BatchItem{
			Status:     http.StatusOK,
			Cached:     u.cached,
			Truncated:  u.out.truncated,
			NextCursor: u.out.nextCursor,
			Result:     u.out.raw,
		}
	}
	writeJSON(w, http.StatusOK, v2BatchResponse{Generation: gen, TookMS: msSince(start), Results: items})
}
