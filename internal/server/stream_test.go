package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ncq"
)

// flushRecorder wraps httptest.ResponseRecorder and snapshots the body
// length at every Flush — the "flush-recording client" of the
// streaming contract: each snapshot is a moment at which bytes were
// pushed to the client while the handler was still running.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushLens []int
}

func (f *flushRecorder) Flush() {
	f.flushLens = append(f.flushLens, f.Body.Len())
}

func doStream(t *testing.T, s *Server, body string) *flushRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v2/query?stream=1", strings.NewReader(body))
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// streamLines decodes an NDJSON body into meet lines and the trailer.
func streamLines(t *testing.T, body string) (meets []ncq.CorpusMeet, trailer trailerLine) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	sawTrailer := false
	for sc.Scan() {
		if sawTrailer {
			t.Fatalf("line after trailer: %s", sc.Text())
		}
		var line struct {
			Meet    *ncq.CorpusMeet `json:"meet"`
			Trailer bool            `json:"trailer"`
			Error   string          `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("error line: %s", line.Error)
		case line.Trailer:
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
			sawTrailer = true
		case line.Meet != nil:
			meets = append(meets, *line.Meet)
		default:
			t.Fatalf("unrecognised line: %s", sc.Text())
		}
	}
	if !sawTrailer {
		t.Fatalf("stream ended without a trailer:\n%s", body)
	}
	return meets, trailer
}

// TestQueryV2Stream pins the NDJSON contract: the streamed meets equal
// the batch endpoint's answer in the same order, the trailer carries
// the counters, and — the incremental-delivery assertion — the first
// line was flushed to the client on its own, before the handler wrote
// the rest of the response.
func TestQueryV2Stream(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	body := `{"terms":["Bit","1999"],"exclude_root":true}`
	rec := doStream(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	meets, trailer := streamLines(t, rec.Body.String())
	if len(meets) == 0 {
		t.Fatal("no meets streamed")
	}
	if trailer.TookMS < 0 || trailer.Truncated {
		t.Errorf("trailer = %+v", trailer)
	}

	// Same answers, same order, as the non-streaming endpoint.
	batch := do(t, s, "POST", "/v2/query", body)
	if batch.Code != http.StatusOK {
		t.Fatalf("plain v2: %d", batch.Code)
	}
	resp := decode[wireV2Response](t, batch)
	if len(resp.Result.Meets) != len(meets) {
		t.Fatalf("stream %d meets, batch %d", len(meets), len(resp.Result.Meets))
	}
	for i := range meets {
		if meets[i].Source != resp.Result.Meets[i].Source ||
			meets[i].Node != resp.Result.Meets[i].Node ||
			meets[i].Distance != resp.Result.Meets[i].Distance {
			t.Errorf("meet %d: stream %+v vs batch %+v", i, meets[i], resp.Result.Meets[i])
		}
	}

	// Incremental delivery: one flush per line (meets + trailer), and
	// the first flush pushed exactly the first line — a complete,
	// parseable record observable before the handler wrote any more.
	if want := len(meets) + 1; len(rec.flushLens) != want {
		t.Fatalf("flushes = %d, want %d (one per line)", len(rec.flushLens), want)
	}
	firstChunk := rec.Body.String()[:rec.flushLens[0]]
	if !strings.HasSuffix(firstChunk, "\n") || strings.Count(firstChunk, "\n") != 1 {
		t.Fatalf("first flush is not exactly one line: %q", firstChunk)
	}
	var first meetLine
	if err := json.Unmarshal([]byte(firstChunk), &first); err != nil || first.Meet == nil {
		t.Fatalf("first flushed line is not a meet: %q (%v)", firstChunk, err)
	}
	if rec.flushLens[0] >= rec.Body.Len() {
		t.Fatal("first flush already held the complete response — nothing streamed")
	}
}

// TestQueryV2StreamLimitAndCursor walks a streamed result across pages
// via the trailer's cursor.
func TestQueryV2StreamLimitAndCursor(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	full, _ := streamLines(t, doStream(t, s, `{"terms":["Bit","1999"],"exclude_root":true}`).Body.String())
	if len(full) < 2 {
		t.Fatalf("workload too small: %d meets", len(full))
	}
	var collected []ncq.CorpusMeet
	cursor := ""
	for pages := 0; ; pages++ {
		body := `{"terms":["Bit","1999"],"exclude_root":true,"limit":1`
		if cursor != "" {
			body += `,"cursor":"` + cursor + `"`
		}
		body += `}`
		rec := doStream(t, s, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: %d %s", pages, rec.Code, rec.Body)
		}
		meets, trailer := streamLines(t, rec.Body.String())
		collected = append(collected, meets...)
		if trailer.NextCursor == "" {
			break
		}
		cursor = trailer.NextCursor
		if pages > len(full) {
			t.Fatal("pagination does not terminate")
		}
	}
	if len(collected) != len(full) {
		t.Fatalf("paged stream returned %d meets, full stream %d", len(collected), len(full))
	}
}

// TestQueryV2StreamRejects pins the 400 family: batch bodies and
// query-language requests cannot stream.
func TestQueryV2StreamRejects(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	if rec := doStream(t, s, `{"batch":[{"terms":["Bit"]}]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("batch stream: %d", rec.Code)
	}
	if rec := doStream(t, s, `{"query":"SELECT tag(e) FROM //author AS e"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("query-language stream: %d", rec.Code)
	}
	if rec := doStream(t, s, `{"doc":"ghost","terms":["Bit"]}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown doc stream: %d", rec.Code)
	}
}

// TestQueryV2StaleCursorGone pins the mutation contract of v2 cursors:
// a page cursor presented after the corpus changed answers 410 Gone —
// on the plain endpoint and the streaming one — instead of silently
// cutting a page from a re-ranked answer set.
func TestQueryV2StaleCursorGone(t *testing.T) {
	s := newTestServer(t)
	loadDocs(t, s)
	rec := do(t, s, "POST", "/v2/query", `{"terms":["Bit","1999"],"exclude_root":true,"limit":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("first page: %d %s", rec.Code, rec.Body)
	}
	resp := decode[wireV2Response](t, rec)
	if resp.NextCursor == "" {
		t.Fatal("first page minted no cursor")
	}
	next := `{"terms":["Bit","1999"],"exclude_root":true,"limit":1,"cursor":"` + resp.NextCursor + `"}`

	// Before any mutation the cursor pages on fine.
	if rec := do(t, s, "POST", "/v2/query", next); rec.Code != http.StatusOK {
		t.Fatalf("second page: %d %s", rec.Code, rec.Body)
	}

	// Mutate the corpus; the cursor's generation no longer matches.
	if rec := do(t, s, "PUT", "/v1/docs/extra", bibArticle); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/v2/query", next); rec.Code != http.StatusGone {
		t.Errorf("stale cursor on /v2/query: %d %s", rec.Code, rec.Body)
	}
	if rec := doStream(t, s, next); rec.Code != http.StatusGone {
		t.Errorf("stale cursor on stream: %d %s", rec.Code, rec.Body)
	}
}
