package pathsum

import (
	"reflect"
	"testing"
)

// fixture builds the Fig. 1 path summary:
//
//	/bibliography
//	/bibliography/institute
//	/bibliography/institute/article          (+@key)
//	/bibliography/institute/article/author
//	…/author/firstname, …/firstname/cdata    (+@string)
//	…
func fixture(t *testing.T) (*Summary, map[string]PathID) {
	t.Helper()
	s := New()
	ids := map[string]PathID{}
	bib := s.MustIntern(Invalid, "bibliography", Elem)
	ids["bib"] = bib
	inst := s.MustIntern(bib, "institute", Elem)
	ids["inst"] = inst
	art := s.MustIntern(inst, "article", Elem)
	ids["art"] = art
	ids["art@key"] = s.MustIntern(art, "key", Attr)
	au := s.MustIntern(art, "author", Elem)
	ids["author"] = au
	fn := s.MustIntern(au, "firstname", Elem)
	ids["firstname"] = fn
	fncd := s.MustIntern(fn, "cdata", Elem)
	ids["firstname/cdata"] = fncd
	ids["firstname/cdata@string"] = s.MustIntern(fncd, "string", Attr)
	yr := s.MustIntern(art, "year", Elem)
	ids["year"] = yr
	yrcd := s.MustIntern(yr, "cdata", Elem)
	ids["year/cdata"] = yrcd
	return s, ids
}

func TestInternIdempotent(t *testing.T) {
	s, ids := fixture(t)
	again, err := s.Intern(ids["inst"], "article", Elem)
	if err != nil {
		t.Fatal(err)
	}
	if again != ids["art"] {
		t.Errorf("re-interning returned %d, want %d", again, ids["art"])
	}
	n := s.Len()
	s.MustIntern(ids["inst"], "article", Elem)
	if s.Len() != n {
		t.Error("idempotent intern grew the summary")
	}
}

func TestInternErrors(t *testing.T) {
	s := New()
	if _, err := s.Intern(Invalid, "root", Attr); err == nil {
		t.Error("attribute root accepted")
	}
	if _, err := s.Intern(Invalid, "", Elem); err == nil {
		t.Error("empty label accepted")
	}
	s.MustIntern(Invalid, "a", Elem)
	if _, err := s.Intern(Invalid, "b", Elem); err == nil {
		t.Error("second root accepted")
	}
	if _, err := s.Intern(PathID(99), "x", Elem); err == nil {
		t.Error("unknown parent accepted")
	}
}

func TestAccessors(t *testing.T) {
	s, ids := fixture(t)
	if s.Root() != ids["bib"] {
		t.Errorf("Root = %d", s.Root())
	}
	if s.Parent(ids["art"]) != ids["inst"] {
		t.Error("Parent wrong")
	}
	if s.Parent(s.Root()) != Invalid {
		t.Error("root Parent should be Invalid")
	}
	if s.Label(ids["art"]) != "article" {
		t.Errorf("Label = %q", s.Label(ids["art"]))
	}
	if s.Kind(ids["art@key"]) != Attr || s.Kind(ids["art"]) != Elem {
		t.Error("Kind wrong")
	}
	if s.Depth(s.Root()) != 0 || s.Depth(ids["art"]) != 2 || s.Depth(ids["firstname/cdata@string"]) != 6 {
		t.Error("Depth wrong")
	}
	kids := s.Children(ids["art"])
	if len(kids) != 2 || kids[0] != ids["author"] || kids[1] != ids["year"] {
		t.Errorf("Children(article) = %v", kids)
	}
	attrs := s.AttrPaths(ids["art"])
	if len(attrs) != 1 || attrs[0] != ids["art@key"] {
		t.Errorf("AttrPaths(article) = %v", attrs)
	}
}

func TestStringForms(t *testing.T) {
	s, ids := fixture(t)
	cases := []struct {
		id   PathID
		want string
	}{
		{ids["bib"], "/bibliography"},
		{ids["art"], "/bibliography/institute/article"},
		{ids["art@key"], "/bibliography/institute/article@key"},
		{ids["firstname/cdata"], "/bibliography/institute/article/author/firstname/cdata"},
		{ids["firstname/cdata@string"], "/bibliography/institute/article/author/firstname/cdata@string"},
	}
	for _, c := range cases {
		if got := s.String(c.id); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.id, got, c.want)
		}
	}
	if got := s.String(Invalid); got != "<invalid path>" {
		t.Errorf("String(Invalid) = %q", got)
	}
}

func TestLabelsAndLookup(t *testing.T) {
	s, ids := fixture(t)
	labels := s.Labels(ids["author"])
	want := []string{"bibliography", "institute", "article", "author"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("Labels = %v, want %v", labels, want)
	}
	id, ok := s.Lookup(want)
	if !ok || id != ids["author"] {
		t.Errorf("Lookup = (%d,%v), want (%d,true)", id, ok, ids["author"])
	}
	if _, ok := s.Lookup([]string{"bibliography", "nope"}); ok {
		t.Error("Lookup of unknown path succeeded")
	}
	if _, ok := s.Lookup([]string{"wrongroot"}); ok {
		t.Error("Lookup with wrong root succeeded")
	}
	if _, ok := s.Lookup(nil); ok {
		t.Error("Lookup of empty sequence succeeded")
	}
	aid, ok := s.LookupAttr([]string{"bibliography", "institute", "article"}, "key")
	if !ok || aid != ids["art@key"] {
		t.Errorf("LookupAttr = (%d,%v)", aid, ok)
	}
	if _, ok := s.LookupAttr([]string{"bibliography"}, "nope"); ok {
		t.Error("LookupAttr of unknown attr succeeded")
	}
}

func TestPrefixOrder(t *testing.T) {
	s, ids := fixture(t)
	if !s.IsPrefix(ids["bib"], ids["firstname/cdata"]) {
		t.Error("root should be prefix of deep path")
	}
	if !s.IsPrefix(ids["art"], ids["art"]) {
		t.Error("IsPrefix should be reflexive")
	}
	if s.IsPrefix(ids["author"], ids["year"]) {
		t.Error("siblings are not prefixes")
	}
	if s.IsPrefix(ids["firstname/cdata"], ids["bib"]) {
		t.Error("descendant is not a prefix of ancestor")
	}
	// Leq argument order per Definition 5: Leq(deep, shallow).
	if !s.Leq(ids["firstname/cdata"], ids["art"]) {
		t.Error("Leq(deep, ancestor) should hold")
	}
	if s.Leq(ids["art"], ids["firstname/cdata"]) {
		t.Error("Leq(ancestor, deep) should not hold")
	}
	if s.IsPrefix(Invalid, ids["art"]) || s.IsPrefix(ids["art"], Invalid) {
		t.Error("Invalid should never be in prefix relation")
	}
}

func TestDeepestFirst(t *testing.T) {
	s, _ := fixture(t)
	order := s.DeepestFirst()
	pos := map[PathID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range s.ElemPaths() {
		for _, c := range s.Children(id) {
			if pos[c] > pos[id] {
				t.Errorf("child %s ordered after parent %s", s.String(c), s.String(id))
			}
		}
	}
	// Attribute paths are excluded.
	for _, id := range order {
		if s.Kind(id) != Elem {
			t.Errorf("DeepestFirst contains attribute path %s", s.String(id))
		}
	}
	// Last entry must be the root.
	if order[len(order)-1] != s.Root() {
		t.Error("root is not last in DeepestFirst")
	}
}

func TestAllPathsAndElemPaths(t *testing.T) {
	s, _ := fixture(t)
	all := s.AllPaths()
	if len(all) != s.Len() {
		t.Errorf("AllPaths returned %d, want %d", len(all), s.Len())
	}
	elems := s.ElemPaths()
	attrs := 0
	for _, id := range all {
		if s.Kind(id) == Attr {
			attrs++
		}
	}
	if len(elems)+attrs != len(all) {
		t.Error("ElemPaths + attribute paths != AllPaths")
	}
}

func TestEmptySummary(t *testing.T) {
	s := New()
	if s.Root() != Invalid {
		t.Error("empty summary root should be Invalid")
	}
	if s.Len() != 0 {
		t.Error("empty summary Len should be 0")
	}
	if _, ok := s.Lookup([]string{"x"}); ok {
		t.Error("Lookup on empty summary succeeded")
	}
}
