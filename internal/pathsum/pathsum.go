// Package pathsum implements the path summary of the paper
// (Definition 3): the set of all label paths occurring in a document,
// interned into small integer identifiers.
//
// The Monet transform stores one binary relation per path, so the path
// summary doubles as the catalogue of the store. It is tree-shaped —
// each path has a unique parent path — which is exactly the structure
// the general meet algorithm (Figure 5 of the paper) rolls up bottom-up.
//
// The prefix order of Definition 5 (path(o1) ≤ path(o2) iff path(o2)
// is a prefix of path(o1)) becomes an ancestor test on summary nodes.
package pathsum

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PathID identifies an interned path. IDs are dense indices starting at
// 0 (the root path); Invalid marks "no path".
type PathID int32

// Invalid is the PathID of no path, e.g. the parent of the root path.
const Invalid PathID = -1

// Kind discriminates element paths from attribute paths. Character
// data is an element path with the label "cdata"; its text lives under
// an attribute path named "string", following the paper's Figure 2
// (relations like bibliography/institute/article/year/cdata@string).
type Kind uint8

// Path kinds.
const (
	Elem Kind = iota // an element (or cdata) step
	Attr             // an attribute leaf
)

type node struct {
	parent   PathID
	label    string
	kind     Kind
	depth    int32
	children []PathID // element children, in interning order
	attrs    []PathID // attribute children, in interning order
}

type key struct {
	parent PathID
	label  string
	kind   Kind
}

// Summary is an interned path summary. The zero value is not usable;
// construct with New.
type Summary struct {
	nodes []node
	byKey map[key]PathID

	// dfMu guards the lazily built DeepestFirst cache. Interning
	// invalidates it; concurrent readers of a fully loaded summary
	// share one computation (mirroring the BAT's lazy head index).
	dfMu    sync.Mutex
	dfCache []PathID
}

// New returns an empty summary.
func New() *Summary {
	return &Summary{byKey: make(map[key]PathID)}
}

// Intern returns the PathID for the path that extends parent with one
// step (label, kind), creating it if needed. The root path is interned
// with parent == Invalid and must be an element. Interning is
// idempotent: the same step yields the same ID.
func (s *Summary) Intern(parent PathID, label string, kind Kind) (PathID, error) {
	if parent == Invalid && kind != Elem {
		return Invalid, fmt.Errorf("pathsum: root path must be an element, got attribute %q", label)
	}
	if parent != Invalid && !s.valid(parent) {
		return Invalid, fmt.Errorf("pathsum: unknown parent path %d", parent)
	}
	if label == "" {
		return Invalid, fmt.Errorf("pathsum: empty label")
	}
	k := key{parent, label, kind}
	if id, ok := s.byKey[k]; ok {
		return id, nil
	}
	if parent == Invalid && len(s.nodes) > 0 {
		return Invalid, fmt.Errorf("pathsum: second root path %q (root is %q)", label, s.nodes[0].label)
	}
	var depth int32
	if parent != Invalid {
		depth = s.nodes[parent].depth + 1
	}
	id := PathID(len(s.nodes))
	s.nodes = append(s.nodes, node{parent: parent, label: label, kind: kind, depth: depth})
	s.byKey[k] = id
	s.dfMu.Lock()
	s.dfCache = nil
	s.dfMu.Unlock()
	if parent != Invalid {
		if kind == Attr {
			s.nodes[parent].attrs = append(s.nodes[parent].attrs, id)
		} else {
			s.nodes[parent].children = append(s.nodes[parent].children, id)
		}
	}
	return id, nil
}

// MustIntern is Intern that panics on error; for fixtures and loaders
// whose inputs are validated elsewhere.
func (s *Summary) MustIntern(parent PathID, label string, kind Kind) PathID {
	id, err := s.Intern(parent, label, kind)
	if err != nil {
		panic(err)
	}
	return id
}

func (s *Summary) valid(id PathID) bool {
	return id >= 0 && int(id) < len(s.nodes)
}

// Len returns the number of interned paths.
func (s *Summary) Len() int { return len(s.nodes) }

// Root returns the root path's ID, or Invalid for an empty summary.
func (s *Summary) Root() PathID {
	if len(s.nodes) == 0 {
		return Invalid
	}
	return 0
}

// Parent returns the parent path of id (Invalid for the root).
func (s *Summary) Parent(id PathID) PathID { return s.nodes[id].parent }

// Label returns the last step's label of path id.
func (s *Summary) Label(id PathID) string { return s.nodes[id].label }

// Kind returns whether path id names an element or an attribute.
func (s *Summary) Kind(id PathID) Kind { return s.nodes[id].kind }

// Depth returns the number of steps below the root path (root = 0).
func (s *Summary) Depth(id PathID) int { return int(s.nodes[id].depth) }

// Children returns the element child paths of id in interning order.
// The returned slice must not be modified.
func (s *Summary) Children(id PathID) []PathID { return s.nodes[id].children }

// AttrPaths returns the attribute child paths of id in interning order.
// The returned slice must not be modified.
func (s *Summary) AttrPaths(id PathID) []PathID { return s.nodes[id].attrs }

// Labels returns the label sequence of path id from the root down.
func (s *Summary) Labels(id PathID) []string {
	var rev []string
	for cur := id; cur != Invalid; cur = s.nodes[cur].parent {
		rev = append(rev, s.nodes[cur].label)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// String renders a path as "/a/b/c" for element paths and "/a/b@n" for
// attribute paths — the display form used throughout the system.
func (s *Summary) String(id PathID) string {
	if !s.valid(id) {
		return "<invalid path>"
	}
	labels := s.Labels(id)
	if s.nodes[id].kind == Attr {
		return "/" + strings.Join(labels[:len(labels)-1], "/") + "@" + labels[len(labels)-1]
	}
	return "/" + strings.Join(labels, "/")
}

// Lookup resolves a label sequence (root first) to an element PathID.
func (s *Summary) Lookup(labels []string) (PathID, bool) {
	if len(s.nodes) == 0 || len(labels) == 0 || s.nodes[0].label != labels[0] {
		return Invalid, false
	}
	cur := PathID(0)
	for _, l := range labels[1:] {
		id, ok := s.byKey[key{cur, l, Elem}]
		if !ok {
			return Invalid, false
		}
		cur = id
	}
	return cur, true
}

// LookupAttr resolves a label sequence plus attribute name.
func (s *Summary) LookupAttr(labels []string, attr string) (PathID, bool) {
	owner, ok := s.Lookup(labels)
	if !ok {
		return Invalid, false
	}
	id, ok := s.byKey[key{owner, attr, Attr}]
	return id, ok
}

// IsPrefix reports whether anc is a prefix (ancestor-or-self) of id in
// the summary tree. In the paper's notation (Definition 5) this is
// path(id) ≤ path(anc).
func (s *Summary) IsPrefix(anc, id PathID) bool {
	if !s.valid(anc) || !s.valid(id) {
		return false
	}
	for cur := id; cur != Invalid; cur = s.nodes[cur].parent {
		if cur == anc {
			return true
		}
		if s.nodes[cur].depth < s.nodes[anc].depth {
			return false
		}
	}
	return false
}

// Leq is the paper's ≤ on the paths of two objects: Leq(p, q) holds
// when q's path is a prefix of p's (q at-or-above p). It is IsPrefix
// with the argument order of Definition 5.
func (s *Summary) Leq(p, q PathID) bool { return s.IsPrefix(q, p) }

// DeepestFirst returns all element PathIDs ordered by decreasing depth
// (ties in ascending ID order). This is the contraction order of the
// general meet algorithm: every path appears after all of its summary
// children, so rolling up in this order contracts leaves repeatedly
// until the root is reached (Figure 5 of the paper).
//
// The order is computed once and cached (interning invalidates it);
// the returned slice is shared and must not be modified.
func (s *Summary) DeepestFirst() []PathID {
	s.dfMu.Lock()
	defer s.dfMu.Unlock()
	if s.dfCache != nil {
		return s.dfCache
	}
	out := make([]PathID, 0, len(s.nodes))
	for id := range s.nodes {
		if s.nodes[id].kind == Elem {
			out = append(out, PathID(id))
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := s.nodes[out[i]].depth, s.nodes[out[j]].depth
		if di != dj {
			return di > dj
		}
		return out[i] < out[j]
	})
	s.dfCache = out
	return out
}

// ElemPaths returns all element PathIDs in interning order.
func (s *Summary) ElemPaths() []PathID {
	out := make([]PathID, 0, len(s.nodes))
	for id := range s.nodes {
		if s.nodes[id].kind == Elem {
			out = append(out, PathID(id))
		}
	}
	return out
}

// AllPaths returns every PathID (elements and attributes) in interning
// order.
func (s *Summary) AllPaths() []PathID {
	out := make([]PathID, len(s.nodes))
	for id := range out {
		out[id] = PathID(id)
	}
	return out
}
