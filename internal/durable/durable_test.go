package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ncq"
	"ncq/internal/wal"
	"ncq/internal/xmltree"
)

func fig1DB(t testing.TB) *ncq.Database {
	t.Helper()
	db, err := ncq.FromDocument(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func openStore(t testing.TB, dir string) (*Store, *ncq.Corpus) {
	t.Helper()
	c := ncq.NewCorpus()
	s, err := Open(dir, wal.PolicyAlways, c)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

// membershipFingerprint captures everything recovery must reproduce:
// names in order, plain-vs-sharded shape, shard counts, generation.
func membershipFingerprint(c *ncq.Corpus) string {
	var b strings.Builder
	for _, name := range c.Names() {
		_, plain := c.Get(name)
		fmt.Fprintf(&b, "%s plain=%v shards=%d\n", name, plain, c.ShardCount(name))
	}
	fmt.Fprintf(&b, "gen=%d", c.Generation())
	return b.String()
}

func TestStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, c := openStore(t, dir)
	db := fig1DB(t)

	if replaced, err := s.PutPlain("plain", db); err != nil || replaced {
		t.Fatalf("PutPlain = %v, %v", replaced, err)
	}
	if replaced, err := s.PutShards("shardy", []*ncq.Database{db, db, db}); err != nil || replaced {
		t.Fatalf("PutShards = %v, %v", replaced, err)
	}
	if replaced, err := s.PutPlain("gone", db); err != nil || replaced {
		t.Fatalf("PutPlain(gone) = %v, %v", replaced, err)
	}
	if replaced, err := s.PutPlain("plain", db); err != nil || !replaced {
		t.Fatalf("replace = %v, %v", replaced, err)
	}
	if ok, err := s.Delete("gone"); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, err := s.Delete("never-there"); err != nil || ok {
		t.Fatalf("Delete(absent) = %v, %v", ok, err)
	}
	want := membershipFingerprint(c)
	if c.Generation() != 5 {
		t.Fatalf("generation = %d, want 5", c.Generation())
	}
	st := s.Stats()
	if st.Commits != 5 || st.SnapshotBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, c2 := openStore(t, dir)
	defer s2.Close()
	if got := membershipFingerprint(c2); got != want {
		t.Errorf("after restart:\n%s\nwant:\n%s", got, want)
	}
	if s2.Stats().ReplayDocs != 2 {
		t.Errorf("replayed %d docs, want 2", s2.Stats().ReplayDocs)
	}
	// The recovered member answers queries like the original.
	a, _, err := c.MeetOfTermsIn("plain", nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c2.MeetOfTermsIn("plain", nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("answers differ: %+v vs %+v", a, b)
	}
	// Only the winning directories survive on disk.
	dirs := s2.DocDirs()
	if len(dirs) != 2 {
		t.Errorf("doc dirs = %v, want 2 winners", dirs)
	}
}

func TestStoreMutationsSurviveWithoutClose(t *testing.T) {
	// PolicyAlways means the log needs no Close to be replayable: drop
	// the store on the floor, reopen the directory, everything is
	// there. (This is the kill -9 case minus the kill.)
	dir := t.TempDir()
	s, c := openStore(t, dir)
	if _, err := s.PutPlain("d", fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	want := membershipFingerprint(c)
	// No Close. Reopen against the same files.
	_, c2 := openStore(t, filepath.Clean(dir))
	if got := membershipFingerprint(c2); got != want {
		t.Errorf("reopen:\n%s\nwant:\n%s", got, want)
	}
	_ = s
}

func TestStoreInsertionOrderPreserved(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	db := fig1DB(t)
	for _, name := range []string{"c", "a", "b"} {
		if _, err := s.PutPlain(name, db); err != nil {
			t.Fatal(err)
		}
	}
	// Replacing "c" keeps its position at the front.
	if _, err := s.PutPlain("c", db); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, c2 := openStore(t, dir)
	if got := c2.Names(); !reflect.DeepEqual(got, []string{"c", "a", "b"}) {
		t.Errorf("names after restart = %v, want [c a b]", got)
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	db := fig1DB(t)
	// Churn one name far past compactSlack.
	for i := 0; i < compactSlack+8; i++ {
		if _, err := s.PutPlain("churn", db); err != nil {
			t.Fatal(err)
		}
	}
	gen := compactSlack + 8
	s.Close()
	s2, c2 := openStore(t, dir)
	if s2.Stats().Compactions != 1 {
		t.Fatalf("boot did not compact: %+v", s2.Stats())
	}
	if c2.Generation() != uint64(gen) {
		t.Errorf("generation after compaction = %d, want %d", c2.Generation(), gen)
	}
	s2.Close()
	// The compacted log replays identically (and quickly).
	s3, c3 := openStore(t, dir)
	defer s3.Close()
	if c3.Generation() != uint64(gen) || s3.Stats().ReplayRecords > 2 {
		t.Errorf("recompacted replay: gen=%d records=%d", c3.Generation(), s3.Stats().ReplayRecords)
	}
}

func TestStoreOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	if _, err := s.PutPlain("keep", fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Fake the debris of a crash after rename, before the WAL append:
	// a committed-looking directory no record references.
	orphan := filepath.Join(dir, "docs", "g99-orphan")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	// And a staging leftover.
	if err := os.MkdirAll(filepath.Join(dir, "staging", "commit"), 0o755); err != nil {
		t.Fatal(err)
	}
	s2, c2 := openStore(t, dir)
	defer s2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan directory survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, "staging")); !os.IsNotExist(err) {
		t.Error("staging directory survived recovery")
	}
	if c2.Generation() != 1 || c2.Len() != 1 {
		t.Errorf("recovered corpus: gen=%d len=%d", c2.Generation(), c2.Len())
	}
}

func TestStoreMissingSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	if _, err := s.PutPlain("doc", fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	docDirs := s.DocDirs()
	s.Close()
	if err := os.RemoveAll(filepath.Join(dir, "docs", docDirs[0])); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, wal.PolicyAlways, ncq.NewCorpus())
	if err == nil || !strings.Contains(err.Error(), "logged as committed") {
		t.Errorf("Open = %v, want hard error naming the damaged document", err)
	}
}

func TestStoreCorruptLogFailsBoot(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	if _, err := s.PutPlain("a", fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPlain("b", fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	logPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xff // inside the first record
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, wal.PolicyAlways, ncq.NewCorpus())
	var ce *wal.CorruptError
	if !errorsAs(err, &ce) {
		t.Errorf("Open = %v, want *wal.CorruptError", err)
	}
}

// errorsAs avoids importing errors just for one assertion helper.
func errorsAs(err error, target *(*wal.CorruptError)) bool {
	for err != nil {
		if ce, ok := err.(*wal.CorruptError); ok {
			*target = ce
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestStoreBypassDetected(t *testing.T) {
	dir := t.TempDir()
	s, c := openStore(t, dir)
	defer s.Close()
	// Mutating the corpus directly while a durable store manages it is
	// a programming error the store reports on its next operation
	// rather than silently losing the change.
	if err := c.Add("bypass", fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("bypass"); err != nil {
		t.Fatal(err) // the delete itself is logged fine
	}
}

func TestOpenRejectsNonEmptyCorpus(t *testing.T) {
	c := ncq.NewCorpus()
	if err := c.Add("pre", fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.TempDir(), wal.PolicyAlways, c); err == nil {
		t.Error("non-empty corpus accepted")
	}
}

func TestDocDirNameEscaping(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	weird := "../etc/passwd? sp%ce"
	if _, err := s.PutPlain(weird, fig1DB(t)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, c2 := openStore(t, dir)
	if !c2.Has(weird) {
		t.Errorf("weird name lost across restart; names = %v", c2.Names())
	}
	// Nothing escaped the data directory.
	if _, err := os.Stat(filepath.Join(dir, "..", "etc")); !os.IsNotExist(err) {
		t.Error("escaped the data directory")
	}
}
