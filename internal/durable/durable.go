// Package durable persists a managed corpus: every logical document
// lives in a data directory as per-shard .snap artifacts, and an
// append-only checksummed mutation log (internal/wal) records each
// PUT/DELETE with the corpus generation it produced. A restarted — or
// crashed — node replays log-after-snapshot and comes back at its
// exact pre-crash generation, answering queries byte-identically to
// the process that died.
//
// Layout under the data directory:
//
//	wal.log                      — the mutation log
//	docs/g<gen>-<name>/          — one directory per committed put
//	    shard-000.snap …         — per-shard snapshots (framing i/n)
//	staging/                     — commits in flight; swept at boot
//
// Commit protocol for a put: the shard snapshots are staged (written,
// fsynced, directory fsynced) before the corpus mutation; under the
// corpus write lock the staging directory is renamed to its final
// generation-stamped name and the WAL record appended; only then is
// the request acknowledged. A crash at any point before the WAL append
// leaves an orphan directory that boot sweeps away — the corpus
// recovers to the previous acknowledged state, never a half-applied
// one.
package durable

import (
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ncq"
	"ncq/internal/wal"
)

// compactSlack is how far the log may outgrow the live membership
// before boot rewrites it to just the winning records.
const compactSlack = 64

// Stats describes a store's durability activity.
type Stats struct {
	WAL            wal.Stats
	ReplayRecords  int           // WAL records replayed at boot
	ReplayDocs     int           // documents restored at boot
	ReplayDuration time.Duration // boot recovery time
	SnapshotBytes  uint64        // snapshot bytes written since boot
	Commits        uint64        // acknowledged mutations since boot
	Compactions    uint64        // log rewrites performed
}

// Store binds a corpus to a data directory. All mutations must go
// through the store (PutPlain, PutShards, Delete); it installs a
// corpus mutation hook that persists each change before the mutating
// call returns.
type Store struct {
	dataDir string
	corpus  *ncq.Corpus
	log     *wal.Log

	mu        sync.Mutex // serialises commits; held around every corpus mutation
	pending   *pendingPut
	commitErr error
	prevDirs  []string // superseded directories to drop after a commit

	replayRecords int
	replayDocs    int
	replayTime    time.Duration
	snapBytes     atomic.Uint64
	commits       atomic.Uint64
	compactions   atomic.Uint64
}

// pendingPut carries a staged commit from the public put methods into
// the mutation hook that finishes it under the corpus write lock.
type pendingPut struct {
	name   string
	shards int // 0 for a plain member
	stage  string
}

// Open recovers the data directory into corpus and returns the store
// managing it. The corpus must be empty; after Open it holds every
// committed document at the exact logged generation, and all further
// mutations through the store are persisted with the given fsync
// policy.
func Open(dataDir string, policy wal.Policy, corpus *ncq.Corpus) (*Store, error) {
	if corpus.Len() != 0 {
		return nil, fmt.Errorf("durable: corpus already has %d members; recovery needs an empty one", corpus.Len())
	}
	for _, sub := range []string{"", "docs"} {
		if err := os.MkdirAll(filepath.Join(dataDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
	}
	// Staging holds only commits that never finished; a fresh boot owes
	// them nothing.
	if err := os.RemoveAll(filepath.Join(dataDir, "staging")); err != nil {
		return nil, fmt.Errorf("durable: sweep staging: %w", err)
	}

	start := time.Now()
	log, recs, err := wal.Open(filepath.Join(dataDir, "wal.log"), policy)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{dataDir: dataDir, corpus: corpus, log: log, replayRecords: len(recs)}

	names, winners, maxGen := replayMembership(recs)
	for _, name := range names {
		if err := s.loadDoc(winners[name]); err != nil {
			log.Close()
			return nil, err
		}
	}
	corpus.RestoreGeneration(maxGen)
	s.replayDocs = len(names)
	s.replayTime = time.Since(start)

	if err := s.sweepOrphans(names, winners); err != nil {
		log.Close()
		return nil, err
	}
	if len(recs) > len(names)+compactSlack {
		if err := s.compact(names, winners, maxGen, policy); err != nil {
			log.Close()
			return nil, err
		}
	}

	corpus.SetMutationHook(s.onMutation)
	return s, nil
}

// replayMembership runs the first recovery pass: it simulates the
// corpus registration order over the logged mutations, returning the
// surviving names in insertion order, each name's winning put, and the
// highest generation the log reached. Registration keeps a replaced
// member's position — exactly what Corpus.register does — so the
// recovered /v1/docs listing and corpus-wide answer order match the
// pre-crash process.
func replayMembership(recs []wal.Record) (names []string, winners map[string]wal.Record, maxGen uint64) {
	winners = make(map[string]wal.Record)
	for _, r := range recs {
		if r.Gen > maxGen {
			maxGen = r.Gen
		}
		switch r.Op {
		case wal.OpPut:
			if _, ok := winners[r.Name]; !ok {
				names = append(names, r.Name)
			}
			winners[r.Name] = r
		case wal.OpDelete:
			if _, ok := winners[r.Name]; ok {
				delete(winners, r.Name)
				for i, n := range names {
					if n == r.Name {
						names = append(names[:i], names[i+1:]...)
						break
					}
				}
			}
		}
	}
	return names, winners, maxGen
}

// docDirName is the directory holding one committed put. The name is
// path-escaped so any logical document name maps to a single safe
// filesystem component.
func docDirName(gen uint64, name string) string {
	return fmt.Sprintf("g%d-%s", gen, url.PathEscape(name))
}

func (s *Store) docsDir() string { return filepath.Join(s.dataDir, "docs") }

func shardFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", i))
}

// loadDoc restores one winning put into the corpus from its snapshot
// directory. A missing or unreadable artifact for a logged commit is a
// hard error: the WAL acknowledged this mutation, so its content must
// exist.
func (s *Store) loadDoc(rec wal.Record) error {
	dir := filepath.Join(s.docsDir(), docDirName(rec.Gen, rec.Name))
	fail := func(err error) error {
		return fmt.Errorf("durable: document %q at generation %d is logged as committed but its snapshot cannot be loaded (%w); the data directory is damaged — restore it from a copy or delete %s AND the wal.log records naming it to abandon the document", rec.Name, rec.Gen, err, dir)
	}
	if rec.Shards == 0 {
		db, err := openShardFile(shardFile(dir, 0), 0, 1)
		if err != nil {
			return fail(err)
		}
		if _, err := s.corpus.Put(rec.Name, db); err != nil {
			return fail(err)
		}
		return nil
	}
	dbs := make([]*ncq.Database, rec.Shards)
	for i := range dbs {
		db, err := openShardFile(shardFile(dir, i), i, rec.Shards)
		if err != nil {
			return fail(err)
		}
		dbs[i] = db
	}
	if _, err := s.corpus.AddShardDBs(rec.Name, dbs); err != nil {
		return fail(err)
	}
	return nil
}

func openShardFile(path string, shard, shards int) (*ncq.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, gotShard, gotShards, err := ncq.OpenSnapshotShard(f)
	if err != nil {
		return nil, err
	}
	if gotShard != shard || gotShards != shards {
		return nil, fmt.Errorf("%s: shard framing %d/%d does not match its place %d/%d", path, gotShard, gotShards, shard, shards)
	}
	return db, nil
}

// sweepOrphans removes every docs/ entry that no winning record
// references: directories of replaced or deleted documents, and the
// debris of commits that crashed after the rename but before the WAL
// append.
func (s *Store) sweepOrphans(names []string, winners map[string]wal.Record) error {
	keep := make(map[string]bool, len(names))
	for _, name := range names {
		r := winners[name]
		keep[docDirName(r.Gen, r.Name)] = true
	}
	entries, err := os.ReadDir(s.docsDir())
	if err != nil {
		return fmt.Errorf("durable: sweep: %w", err)
	}
	for _, e := range entries {
		if keep[e.Name()] {
			continue
		}
		if err := os.RemoveAll(filepath.Join(s.docsDir(), e.Name())); err != nil {
			return fmt.Errorf("durable: sweep %s: %w", e.Name(), err)
		}
	}
	return nil
}

// compact rewrites the log to just the winning puts (in registration
// order, preserving recovery order) plus a final OpGen floor, so the
// compacted log replays to the identical membership and generation.
func (s *Store) compact(names []string, winners map[string]wal.Record, maxGen uint64, policy wal.Policy) error {
	live := make([]wal.Record, 0, len(names)+1)
	for _, name := range names {
		live = append(live, winners[name])
	}
	live = append(live, wal.Record{Op: wal.OpGen, Gen: maxGen})
	if err := s.log.Close(); err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	path := filepath.Join(s.dataDir, "wal.log")
	if err := wal.Rewrite(path, live); err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	log, recs, err := wal.Open(path, policy)
	if err != nil {
		return fmt.Errorf("durable: compact reopen: %w", err)
	}
	if len(recs) != len(live) {
		log.Close()
		return fmt.Errorf("durable: compact reopen replayed %d records, want %d", len(recs), len(live))
	}
	s.log = log
	s.compactions.Add(1)
	return nil
}

// PutPlain registers db under name and persists it as a single
// standalone snapshot. The returned replaced mirrors Corpus.Put.
func (s *Store) PutPlain(name string, db *ncq.Database) (replaced bool, err error) {
	return s.put(name, []*ncq.Database{db}, true)
}

// PutShards registers dbs as one sharded member and persists each
// shard as its own snapshot file.
func (s *Store) PutShards(name string, dbs []*ncq.Database) (replaced bool, err error) {
	return s.put(name, dbs, false)
}

func (s *Store) put(name string, dbs []*ncq.Database, plain bool) (bool, error) {
	if len(dbs) == 0 || (plain && len(dbs) != 1) {
		return false, fmt.Errorf("durable: put %q: bad shard count %d", name, len(dbs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Stage the snapshots before touching the corpus: the expensive,
	// fallible work happens while readers still see the old state.
	stage := filepath.Join(s.dataDir, "staging", "commit")
	if err := os.RemoveAll(stage); err != nil {
		return false, fmt.Errorf("durable: put %q: %w", name, err)
	}
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return false, fmt.Errorf("durable: put %q: %w", name, err)
	}
	shards := len(dbs)
	for i, db := range dbs {
		if db == nil {
			return false, fmt.Errorf("durable: put %q: nil shard %d", name, i)
		}
		if err := s.writeShardFile(shardFile(stage, i), db, i, shards); err != nil {
			return false, fmt.Errorf("durable: put %q: %w", name, err)
		}
	}
	if err := wal.SyncDir(stage); err != nil {
		return false, fmt.Errorf("durable: put %q: %w", name, err)
	}

	pendingShards := shards
	if plain {
		pendingShards = 0
	}
	s.pending = &pendingPut{name: name, shards: pendingShards, stage: stage}
	s.commitErr = nil
	s.prevDirs = nil

	var replaced bool
	var err error
	if plain {
		replaced, err = s.corpus.Put(name, dbs[0])
	} else {
		replaced, err = s.corpus.AddShardDBs(name, dbs)
	}
	s.pending = nil
	if err == nil {
		err = s.commitErr
	}
	if err != nil {
		os.RemoveAll(stage)
		return false, err
	}
	s.commits.Add(1)
	s.dropPrevDirs()
	return replaced, nil
}

// Delete evicts name from the corpus and logs the eviction; the
// snapshot directory is removed once the record is durable.
func (s *Store) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitErr = nil
	s.prevDirs = nil
	if !s.corpus.Remove(name) {
		return false, nil
	}
	if s.commitErr != nil {
		return true, s.commitErr
	}
	s.commits.Add(1)
	s.dropPrevDirs()
	return true, nil
}

// onMutation is the corpus mutation hook: it runs under the corpus
// write lock (and, because every mutation routes through the store's
// methods, under s.mu), seeing the exact generation the mutation
// produced. It finishes the commit — rename for puts, log append for
// both — so by the time the mutating call returns, the change is as
// durable as the fsync policy promises.
func (s *Store) onMutation(m ncq.Mutation) {
	if m.Delete {
		if err := s.log.Append(wal.Record{Op: wal.OpDelete, Gen: m.Gen, Name: m.Name}); err != nil {
			s.commitErr = err
			return
		}
		s.markSuperseded(m.Name, 0)
		return
	}
	p := s.pending
	if p == nil || p.name != m.Name || p.shards != m.Shards {
		s.commitErr = fmt.Errorf("durable: corpus mutation of %q bypassed the store; the change is in memory but not persisted", m.Name)
		return
	}
	final := filepath.Join(s.docsDir(), docDirName(m.Gen, m.Name))
	wal.Crashpoint("rename-pre")
	if err := os.Rename(p.stage, final); err != nil {
		s.commitErr = err
		return
	}
	wal.Crashpoint("rename-post")
	if err := wal.SyncDir(s.docsDir()); err != nil {
		s.commitErr = err
		return
	}
	// m.Shards is 0 for a plain member; the record preserves that so
	// recovery restores plain vs sharded registration exactly.
	if err := s.log.Append(wal.Record{Op: wal.OpPut, Gen: m.Gen, Name: m.Name, Shards: m.Shards}); err != nil {
		s.commitErr = err
		return
	}
	s.markSuperseded(m.Name, m.Gen)
}

// markSuperseded queues every directory of name other than keepGen for
// removal after the commit acknowledges. Removal is deferred out of
// the corpus lock; a crash first leaves orphans the next boot sweeps.
func (s *Store) markSuperseded(name string, keepGen uint64) {
	entries, err := os.ReadDir(s.docsDir())
	if err != nil {
		return // sweep at next boot
	}
	suffix := "-" + url.PathEscape(name)
	keep := docDirName(keepGen, name)
	for _, e := range entries {
		if e.Name() != keep && strings.HasSuffix(e.Name(), suffix) && strings.HasPrefix(e.Name(), "g") {
			s.prevDirs = append(s.prevDirs, filepath.Join(s.docsDir(), e.Name()))
		}
	}
}

func (s *Store) dropPrevDirs() {
	for _, dir := range s.prevDirs {
		os.RemoveAll(dir) // best-effort; boot sweeps leftovers
	}
	s.prevDirs = nil
}

// writeShardFile persists one shard snapshot with the full crash-safe
// discipline: temp file in the same directory, fsync, atomic rename.
func (s *Store) writeShardFile(path string, db *ncq.Database, shard, shards int) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	cw := &countingWriter{w: wal.CrashWriter(tmp, "snapshot-mid")}
	if err := db.SaveSnapshotShard(cw, shard, shards); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	s.snapBytes.Add(uint64(cw.n))
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Stats returns the store's durability counters.
func (s *Store) Stats() Stats {
	return Stats{
		WAL:            s.log.Stats(),
		ReplayRecords:  s.replayRecords,
		ReplayDocs:     s.replayDocs,
		ReplayDuration: s.replayTime,
		SnapshotBytes:  s.snapBytes.Load(),
		Commits:        s.commits.Load(),
		Compactions:    s.compactions.Load(),
	}
}

// Sync flushes any batched WAL appends to stable storage.
func (s *Store) Sync() error { return s.log.Sync() }

// Close detaches the store from the corpus and closes the log.
func (s *Store) Close() error {
	s.corpus.SetMutationHook(nil)
	return s.log.Close()
}

// DocDirs lists the committed snapshot directories in docs/, sorted —
// a debugging and test aid.
func (s *Store) DocDirs() []string {
	entries, err := os.ReadDir(s.docsDir())
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out
}
