package bat

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

func TestDedupSorted(t *testing.T) {
	if got := SortDedup([]OID{5, 3, 5, 1, 3, 3}); !reflect.DeepEqual(got, []OID{1, 3, 5}) {
		t.Errorf("SortDedup = %v, want [1 3 5]", got)
	}
	oids := []OID{9, 2, 9}
	slices.Sort(oids)
	if got := DedupSorted(oids); !reflect.DeepEqual(got, []OID{2, 9}) {
		t.Errorf("sort+dedup = %v, want [2 9]", got)
	}
	if got := DedupSorted[OID](nil); got != nil {
		t.Errorf("DedupSorted(nil) = %v", got)
	}
	if got := DedupSorted([]int32{7}); !reflect.DeepEqual(got, []int32{7}) {
		t.Errorf("singleton = %v", got)
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []OID }{
		{[]OID{1, 3, 5, 7}, []OID{3, 4, 7, 9}, []OID{3, 7}},
		{[]OID{1, 2}, []OID{3, 4}, nil},
		{nil, []OID{1}, nil},
		{[]OID{2, 4}, []OID{2, 4}, []OID{2, 4}},
	}
	for _, c := range cases {
		if got := IntersectSorted(nil, c.a, c.b); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// The posting-list instantiation: sorted association row ids.
	if got := IntersectSorted(nil, []int32{0, 2, 9}, []int32{2, 3, 9}); !reflect.DeepEqual(got, []int32{2, 9}) {
		t.Errorf("row-id intersect = %v, want [2 9]", got)
	}
	// Recycled destination: no allocation beyond dst's capacity.
	dst := make([]OID, 0, 8)
	out := IntersectSorted(dst, []OID{1, 2, 3}, []OID{2, 3, 4})
	if !reflect.DeepEqual(out, []OID{2, 3}) || &out[0] != &dst[:1][0] {
		t.Errorf("recycled dst not reused: %v", out)
	}
}

// TestIntersectSortedAgainstSets cross-checks the merge against the
// hash-set implementation on random inputs.
func TestIntersectSortedAgainstSets(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		draw := func() ([]OID, *Set) {
			set := NewSet()
			for i, n := 0, r.Intn(30); i < n; i++ {
				set.Add(OID(r.Intn(40) + 1))
			}
			return set.Slice(), set
		}
		a, as := draw()
		b, bs := draw()
		got, want := IntersectSorted(nil, a, b), as.Intersect(bs).Slice()
		if !reflect.DeepEqual(got, want) && len(got)+len(want) > 0 {
			t.Fatalf("trial %d: intersect %v vs %v", trial, got, want)
		}
	}
}
