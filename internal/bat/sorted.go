package bat

// Sorted-slice primitives underneath the columnar hot path. The
// full-text index intersects sorted posting lists (association row
// ids) and deduplicates sorted owner columns; the meet roll-up
// deduplicates its sorted input and unmatched buffers. All operations
// are linear merges with no hashing, and when the caller supplies a
// destination they allocate nothing.

import (
	"cmp"
	"slices"
)

// SortDedup sorts xs ascending in place and strips duplicates,
// returning the deduplicated prefix.
func SortDedup[T cmp.Ordered](xs []T) []T {
	slices.Sort(xs)
	return DedupSorted(xs)
}

// DedupSorted removes adjacent duplicates from an ascending slice in
// place and returns the deduplicated prefix.
func DedupSorted[T comparable](xs []T) []T {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}

// IntersectSorted appends the intersection of two ascending
// duplicate-free slices to dst and returns it. Pass a recycled dst[:0]
// for an allocation-free merge; nil grows a fresh slice.
func IntersectSorted[T cmp.Ordered](dst, a, b []T) []T {
	// Galloping would win on wildly skewed sizes; the linear merge is
	// branch-predictable and already memory-bound at posting scale.
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
