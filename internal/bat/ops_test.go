package bat

import (
	"reflect"
	"testing"
)

func pairsOf[T comparable](b *BAT[T]) []Pair[T] {
	out := make([]Pair[T], 0, b.Len())
	for i := 0; i < b.Len(); i++ {
		out = append(out, b.Pair(i))
	}
	return out
}

func TestJoin(t *testing.T) {
	// a: provenance -> current, b: current -> parent.
	a := FromPairs("a", []Pair[OID]{{10, 1}, {11, 2}, {12, 3}})
	b := FromPairs("b", []Pair[OID]{{1, 100}, {2, 200}, {4, 400}})
	got := Join(a, b)
	want := []Pair[OID]{{10, 100}, {11, 200}}
	if !reflect.DeepEqual(pairsOf(got), want) {
		t.Errorf("Join = %v, want %v", pairsOf(got), want)
	}
}

func TestJoinExpandsMultipleMatches(t *testing.T) {
	a := FromPairs("a", []Pair[OID]{{10, 1}})
	b := FromPairs("b", []Pair[string]{{1, "x"}, {1, "y"}})
	got := Join(a, b)
	want := []Pair[string]{{10, "x"}, {10, "y"}}
	if !reflect.DeepEqual(pairsOf(got), want) {
		t.Errorf("Join = %v, want %v", pairsOf(got), want)
	}
}

func TestJoinEmpty(t *testing.T) {
	a := New[OID]("a")
	b := FromPairs("b", []Pair[OID]{{1, 2}})
	if got := Join(a, b); got.Len() != 0 {
		t.Errorf("Join(empty, b).Len() = %d, want 0", got.Len())
	}
	if got := Join(b, a); got.Len() != 0 {
		t.Errorf("Join(b, empty).Len() = %d, want 0", got.Len())
	}
}

func TestSemijoinAntijoin(t *testing.T) {
	a := FromPairs("a", []Pair[string]{{1, "a"}, {2, "b"}, {3, "c"}})
	keys := SetOf(1, 3)
	semi := Semijoin(a, keys)
	if want := []Pair[string]{{1, "a"}, {3, "c"}}; !reflect.DeepEqual(pairsOf(semi), want) {
		t.Errorf("Semijoin = %v, want %v", pairsOf(semi), want)
	}
	anti := Antijoin(a, keys)
	if want := []Pair[string]{{2, "b"}}; !reflect.DeepEqual(pairsOf(anti), want) {
		t.Errorf("Antijoin = %v, want %v", pairsOf(anti), want)
	}
	// Semijoin + Antijoin partition the input.
	if semi.Len()+anti.Len() != a.Len() {
		t.Error("Semijoin and Antijoin do not partition the input")
	}
}

func TestSelectTail(t *testing.T) {
	a := FromPairs("a", []Pair[int]{{1, 5}, {2, 10}, {3, 15}})
	got := SelectTail(a, func(v int) bool { return v >= 10 })
	want := []Pair[int]{{2, 10}, {3, 15}}
	if !reflect.DeepEqual(pairsOf(got), want) {
		t.Errorf("SelectTail = %v, want %v", pairsOf(got), want)
	}
	eq := SelectTailEq(a, 10)
	if want := []Pair[int]{{2, 10}}; !reflect.DeepEqual(pairsOf(eq), want) {
		t.Errorf("SelectTailEq = %v, want %v", pairsOf(eq), want)
	}
}

func TestReverse(t *testing.T) {
	a := FromPairs("e", []Pair[OID]{{1, 2}, {1, 3}, {2, 4}})
	r := Reverse(a)
	want := []Pair[OID]{{2, 1}, {3, 1}, {4, 2}}
	if !reflect.DeepEqual(pairsOf(r), want) {
		t.Errorf("Reverse = %v, want %v", pairsOf(r), want)
	}
	rr := Reverse(r)
	if !reflect.DeepEqual(pairsOf(rr), pairsOf(a)) {
		t.Error("Reverse(Reverse(a)) != a")
	}
}

func TestUnique(t *testing.T) {
	a := FromPairs("a", []Pair[OID]{{1, 2}, {1, 2}, {1, 3}, {1, 2}})
	u := Unique(a)
	want := []Pair[OID]{{1, 2}, {1, 3}}
	if !reflect.DeepEqual(pairsOf(u), want) {
		t.Errorf("Unique = %v, want %v", pairsOf(u), want)
	}
}

func TestUniqueHead(t *testing.T) {
	a := FromPairs("a", []Pair[string]{{1, "first"}, {2, "x"}, {1, "second"}})
	u := UniqueHead(a)
	want := []Pair[string]{{1, "first"}, {2, "x"}}
	if !reflect.DeepEqual(pairsOf(u), want) {
		t.Errorf("UniqueHead = %v, want %v", pairsOf(u), want)
	}
}

func TestUnion(t *testing.T) {
	a := FromPairs("a", []Pair[OID]{{1, 2}})
	b := FromPairs("b", []Pair[OID]{{3, 4}})
	u := Union(a, b)
	want := []Pair[OID]{{1, 2}, {3, 4}}
	if !reflect.DeepEqual(pairsOf(u), want) {
		t.Errorf("Union = %v, want %v", pairsOf(u), want)
	}
}

func TestHeadSetTailSet(t *testing.T) {
	a := FromPairs("a", []Pair[OID]{{1, 10}, {2, 20}, {1, 30}})
	hs := HeadSet(a)
	if !hs.Equal(SetOf(1, 2)) {
		t.Errorf("HeadSet = %v, want {1,2}", hs.Slice())
	}
	ts := TailSet(a)
	if !ts.Equal(SetOf(10, 20, 30)) {
		t.Errorf("TailSet = %v, want {10,20,30}", ts.Slice())
	}
}

func TestIntersectTails(t *testing.T) {
	a := FromPairs("a", []Pair[OID]{{1, 100}, {2, 200}})
	b := FromPairs("b", []Pair[OID]{{3, 200}, {4, 300}})
	got := IntersectTails(a, b)
	if !got.Equal(SetOf(200)) {
		t.Errorf("IntersectTails = %v, want {200}", got.Slice())
	}
}

func TestSelectTailInNotIn(t *testing.T) {
	a := FromPairs("a", []Pair[OID]{{1, 100}, {2, 200}, {3, 300}})
	keys := SetOf(100, 300)
	in := SelectTailIn(a, keys)
	if want := []Pair[OID]{{1, 100}, {3, 300}}; !reflect.DeepEqual(pairsOf(in), want) {
		t.Errorf("SelectTailIn = %v, want %v", pairsOf(in), want)
	}
	out := SelectTailNotIn(a, keys)
	if want := []Pair[OID]{{2, 200}}; !reflect.DeepEqual(pairsOf(out), want) {
		t.Errorf("SelectTailNotIn = %v, want %v", pairsOf(out), want)
	}
}

func TestCountAndGroupCountTail(t *testing.T) {
	a := FromPairs("a", []Pair[OID]{{1, 9}, {1, 9}, {2, 9}, {2, 8}})
	if got := Count(a, 1); got != 2 {
		t.Errorf("Count(1) = %d, want 2", got)
	}
	if got := Count(a, 7); got != 0 {
		t.Errorf("Count(7) = %d, want 0", got)
	}
	gc := GroupCountTail(a)
	if gc[9] != 3 || gc[8] != 1 {
		t.Errorf("GroupCountTail = %v, want map[8:1 9:3]", gc)
	}
}
