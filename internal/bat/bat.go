// Package bat implements binary association tables (BATs), the column
// substrate underneath the Monet XML storage model.
//
// The paper evaluates the meet operator on top of the Monet main-memory
// database server, whose execution model is built entirely from binary
// relations and a small algebra of operations on them (the MIL
// primitives of Boncz & Kersten, "MIL Primitives for Querying a
// Fragmented World", VLDB Journal 8(2), 1999). This package reproduces
// the slice of that algebra the paper's algorithms need: append-only
// binary tables with an OID head column and a typed tail column, plus
// join, semijoin, anti-join, selection, reversal and de-duplication.
//
// A BAT is deliberately simple: two parallel slices and a lazily built
// hash index on the head column. All operations allocate their result;
// inputs are never mutated, which keeps the relational style of the
// paper's pseudocode (Figures 3-5) easy to express and reason about.
package bat

import (
	"fmt"
	"sort"
	"sync"
)

// OID is a unique object identifier for a node of the XML syntax tree.
// OIDs are assigned in depth-first document order starting at 1;
// Nil (zero) is reserved for "no object", e.g. the parent of the root.
type OID uint32

// Nil is the invalid OID. It is used as the parent of the document root
// and as the "no meet" result of bounded meet variants.
const Nil OID = 0

// Pair is a single binary unit (BUN in Monet terminology): one
// head-tail association.
type Pair[T comparable] struct {
	Head OID
	Tail T
}

// BAT is a binary association table: an ordered multiset of (OID, T)
// pairs. The zero value is not usable; construct with New.
//
// Concurrency: a fully loaded BAT (no further Append calls) is safe for
// concurrent readers; the lazily built head index is guarded by a
// mutex. Appending concurrently with anything else is not.
type BAT[T comparable] struct {
	name string
	head []OID
	tail []T

	// index maps a head value to the positions at which it occurs.
	// It is built lazily by buildIndex (under mu) and invalidated by
	// Append.
	mu    sync.Mutex
	index map[OID][]int32
}

// New returns an empty BAT with the given relation name. In the Monet
// transform the name is the path of the association type (Definition 4
// of the paper), e.g. "/bibliography/institute/article".
func New[T comparable](name string) *BAT[T] {
	return &BAT[T]{name: name}
}

// NewWithCapacity returns an empty BAT pre-sized for n pairs. Bulk
// loaders use it to avoid repeated growth while streaming a document.
func NewWithCapacity[T comparable](name string, n int) *BAT[T] {
	return &BAT[T]{
		name: name,
		head: make([]OID, 0, n),
		tail: make([]T, 0, n),
	}
}

// FromPairs builds a BAT from explicit pairs; convenient in tests.
func FromPairs[T comparable](name string, pairs []Pair[T]) *BAT[T] {
	b := NewWithCapacity[T](name, len(pairs))
	for _, p := range pairs {
		b.Append(p.Head, p.Tail)
	}
	return b
}

// Name returns the relation name of the BAT.
func (b *BAT[T]) Name() string { return b.name }

// Len returns the number of pairs in the BAT.
func (b *BAT[T]) Len() int { return len(b.head) }

// Append adds one association. Appending invalidates any index built
// so far; loaders should append everything before querying.
func (b *BAT[T]) Append(h OID, t T) {
	b.head = append(b.head, h)
	b.tail = append(b.tail, t)
	b.index = nil
}

// Head returns the head value at position i.
func (b *BAT[T]) Head(i int) OID { return b.head[i] }

// Tail returns the tail value at position i.
func (b *BAT[T]) Tail(i int) T { return b.tail[i] }

// Pair returns the association at position i.
func (b *BAT[T]) Pair(i int) Pair[T] { return Pair[T]{b.head[i], b.tail[i]} }

// Heads returns a copy of the head column.
func (b *BAT[T]) Heads() []OID {
	out := make([]OID, len(b.head))
	copy(out, b.head)
	return out
}

// Tails returns a copy of the tail column.
func (b *BAT[T]) Tails() []T {
	out := make([]T, len(b.tail))
	copy(out, b.tail)
	return out
}

// buildIndex materialises the hash index on the head column. Taking
// the mutex on every call establishes the happens-before edge that
// makes the subsequent unguarded map reads of concurrent readers safe.
func (b *BAT[T]) buildIndex() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.index != nil {
		return
	}
	idx := make(map[OID][]int32, len(b.head))
	for i, h := range b.head {
		idx[h] = append(idx[h], int32(i))
	}
	b.index = idx
}

// Find returns the tail of the first pair whose head equals h.
// The boolean reports whether such a pair exists. This is the
// "hash look-up" the paper uses for the parent function in Figure 3.
func (b *BAT[T]) Find(h OID) (T, bool) {
	b.buildIndex()
	if pos, ok := b.index[h]; ok && len(pos) > 0 {
		return b.tail[pos[0]], true
	}
	var zero T
	return zero, false
}

// FindAll returns the tails of every pair whose head equals h, in
// insertion order. The result is nil when h does not occur.
func (b *BAT[T]) FindAll(h OID) []T {
	b.buildIndex()
	pos, ok := b.index[h]
	if !ok {
		return nil
	}
	out := make([]T, len(pos))
	for i, p := range pos {
		out[i] = b.tail[p]
	}
	return out
}

// HasHead reports whether h occurs in the head column.
func (b *BAT[T]) HasHead(h OID) bool {
	b.buildIndex()
	_, ok := b.index[h]
	return ok
}

// Each calls fn for every pair in insertion order. It stops early when
// fn returns false.
func (b *BAT[T]) Each(fn func(h OID, t T) bool) {
	for i := range b.head {
		if !fn(b.head[i], b.tail[i]) {
			return
		}
	}
}

// Clone returns a deep copy with the same name and contents.
func (b *BAT[T]) Clone() *BAT[T] {
	c := NewWithCapacity[T](b.name, b.Len())
	c.head = append(c.head, b.head...)
	c.tail = append(c.tail, b.tail...)
	return c
}

// SortByHead returns a copy sorted by ascending head value; pairs with
// equal heads keep their relative order (stable). Sorted BATs print
// deterministically, which the tests rely on.
func (b *BAT[T]) SortByHead() *BAT[T] {
	perm := make([]int, b.Len())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		return b.head[perm[i]] < b.head[perm[j]]
	})
	c := NewWithCapacity[T](b.name, b.Len())
	for _, i := range perm {
		c.head = append(c.head, b.head[i])
		c.tail = append(c.tail, b.tail[i])
	}
	return c
}

// String renders the BAT in a compact [name: h->t, ...] form for
// debugging and test failure messages.
func (b *BAT[T]) String() string {
	s := fmt.Sprintf("[%s:", b.name)
	for i := range b.head {
		s += fmt.Sprintf(" %d->%v", b.head[i], b.tail[i])
	}
	return s + "]"
}

// MemBytes estimates the memory footprint of the BAT's columns in
// bytes, ignoring the lazily built index. String tails count the string
// headers only; the monetx store adds character data separately.
func (b *BAT[T]) MemBytes() int {
	var t T
	return len(b.head)*4 + len(b.tail)*sizeofTail(t)
}

func sizeofTail(v any) int {
	switch v.(type) {
	case OID:
		return 4
	case int, int64, uint64:
		return 8
	case int32, uint32:
		return 4
	case string:
		return 16
	default:
		return 8
	}
}
