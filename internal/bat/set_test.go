package bat

import (
	"reflect"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	if !s.Add(3) {
		t.Error("Add(3) on empty set reported not-new")
	}
	if s.Add(3) {
		t.Error("Add(3) twice reported new")
	}
	s.Add(1)
	if s.Len() != 2 || s.Empty() {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Has(1) || s.Has(2) {
		t.Error("membership wrong")
	}
	s.Remove(1)
	if s.Has(1) {
		t.Error("Remove(1) did not remove")
	}
	s.Remove(42) // absent: no-op, must not panic
}

func TestSetSliceSorted(t *testing.T) {
	s := SetOf(5, 1, 3)
	if got := s.Slice(); !reflect.DeepEqual(got, []OID{1, 3, 5}) {
		t.Errorf("Slice() = %v, want [1 3 5]", got)
	}
}

func TestSetEach(t *testing.T) {
	s := SetOf(1, 2, 3)
	var n int
	s.Each(func(OID) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Each visited %d, want 2 (early stop)", n)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetOf(1, 2, 3)
	b := SetOf(2, 3, 4)
	if got := a.Union(b); !got.Equal(SetOf(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got.Slice())
	}
	if got := a.Intersect(b); !got.Equal(SetOf(2, 3)) {
		t.Errorf("Intersect = %v", got.Slice())
	}
	if got := b.Intersect(a); !got.Equal(SetOf(2, 3)) {
		t.Errorf("Intersect (swapped) = %v", got.Slice())
	}
	if got := a.Diff(b); !got.Equal(SetOf(1)) {
		t.Errorf("Diff = %v", got.Slice())
	}
	// Operands untouched.
	if !a.Equal(SetOf(1, 2, 3)) || !b.Equal(SetOf(2, 3, 4)) {
		t.Error("set algebra mutated operands")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	a := SetOf(1)
	c := a.Clone()
	c.Add(2)
	if a.Has(2) {
		t.Error("Clone aliased the original")
	}
	if !c.Has(1) {
		t.Error("Clone lost members")
	}
}

func TestSetEqual(t *testing.T) {
	if !SetOf(1, 2).Equal(SetOf(2, 1)) {
		t.Error("order should not matter")
	}
	if SetOf(1).Equal(SetOf(1, 2)) {
		t.Error("different cardinality reported equal")
	}
	if SetOf(1, 3).Equal(SetOf(1, 2)) {
		t.Error("different members reported equal")
	}
}
