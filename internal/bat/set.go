package bat

import "sort"

// Set is a mutable set of OIDs. It backs the intersection, difference
// and membership steps of the meet algorithms. The zero value is not
// usable; construct with NewSet or SetOf.
type Set struct {
	m map[OID]struct{}
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{m: make(map[OID]struct{})} }

// SetOf returns a set holding the given OIDs.
func SetOf(oids ...OID) *Set {
	s := &Set{m: make(map[OID]struct{}, len(oids))}
	for _, o := range oids {
		s.m[o] = struct{}{}
	}
	return s
}

// Add inserts o and reports whether it was newly added.
func (s *Set) Add(o OID) bool {
	if _, ok := s.m[o]; ok {
		return false
	}
	s.m[o] = struct{}{}
	return true
}

// Remove deletes o from the set.
func (s *Set) Remove(o OID) { delete(s.m, o) }

// Has reports membership of o.
func (s *Set) Has(o OID) bool {
	_, ok := s.m[o]
	return ok
}

// Len returns the cardinality of the set.
func (s *Set) Len() int { return len(s.m) }

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return len(s.m) == 0 }

// Slice returns the members in ascending OID order.
func (s *Set) Slice() []OID {
	out := make([]OID, 0, len(s.m))
	for o := range s.m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Each calls fn for every member in unspecified order, stopping early
// when fn returns false.
func (s *Set) Each(fn func(OID) bool) {
	for o := range s.m {
		if !fn(o) {
			return
		}
	}
}

// Union returns a new set holding the members of s and t.
func (s *Set) Union(t *Set) *Set {
	out := &Set{m: make(map[OID]struct{}, len(s.m)+t.Len())}
	for o := range s.m {
		out.m[o] = struct{}{}
	}
	for o := range t.m {
		out.m[o] = struct{}{}
	}
	return out
}

// Intersect returns a new set holding the members present in both.
func (s *Set) Intersect(t *Set) *Set {
	small, large := s, t
	if t.Len() < s.Len() {
		small, large = t, s
	}
	out := NewSet()
	for o := range small.m {
		if large.Has(o) {
			out.Add(o)
		}
	}
	return out
}

// Diff returns a new set holding the members of s not present in t.
func (s *Set) Diff(t *Set) *Set {
	out := NewSet()
	for o := range s.m {
		if !t.Has(o) {
			out.Add(o)
		}
	}
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{m: make(map[OID]struct{}, len(s.m))}
	for o := range s.m {
		out.m[o] = struct{}{}
	}
	return out
}

// Equal reports whether s and t hold exactly the same members.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for o := range s.m {
		if !t.Has(o) {
			return false
		}
	}
	return true
}
