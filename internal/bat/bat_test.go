package bat

import (
	"strings"
	"testing"
)

func TestNewAndAppend(t *testing.T) {
	b := New[string]("r")
	if b.Name() != "r" {
		t.Fatalf("Name() = %q, want %q", b.Name(), "r")
	}
	if b.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", b.Len())
	}
	b.Append(1, "a")
	b.Append(2, "b")
	b.Append(1, "c")
	if b.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", b.Len())
	}
	if b.Head(0) != 1 || b.Tail(0) != "a" {
		t.Errorf("pair 0 = (%d,%q), want (1,a)", b.Head(0), b.Tail(0))
	}
	if got := b.Pair(2); got != (Pair[string]{1, "c"}) {
		t.Errorf("Pair(2) = %v, want {1 c}", got)
	}
}

func TestFromPairsAndClone(t *testing.T) {
	b := FromPairs("x", []Pair[OID]{{1, 2}, {3, 4}})
	c := b.Clone()
	c.Append(5, 6)
	if b.Len() != 2 {
		t.Errorf("Clone aliased the original: Len = %d, want 2", b.Len())
	}
	if c.Len() != 3 {
		t.Errorf("clone Len = %d, want 3", c.Len())
	}
	if c.Name() != "x" {
		t.Errorf("clone name = %q, want x", c.Name())
	}
}

func TestFind(t *testing.T) {
	b := FromPairs("r", []Pair[string]{{1, "a"}, {2, "b"}, {1, "c"}})
	got, ok := b.Find(1)
	if !ok || got != "a" {
		t.Errorf("Find(1) = (%q,%v), want (a,true)", got, ok)
	}
	if _, ok := b.Find(9); ok {
		t.Error("Find(9) reported present, want absent")
	}
	all := b.FindAll(1)
	if len(all) != 2 || all[0] != "a" || all[1] != "c" {
		t.Errorf("FindAll(1) = %v, want [a c]", all)
	}
	if b.FindAll(9) != nil {
		t.Errorf("FindAll(9) = %v, want nil", b.FindAll(9))
	}
	if !b.HasHead(2) || b.HasHead(7) {
		t.Error("HasHead membership wrong")
	}
}

func TestFindAfterAppendRebuildsIndex(t *testing.T) {
	b := New[string]("r")
	b.Append(1, "a")
	if _, ok := b.Find(2); ok {
		t.Fatal("Find(2) before append reported present")
	}
	b.Append(2, "b")
	got, ok := b.Find(2)
	if !ok || got != "b" {
		t.Errorf("Find(2) after append = (%q,%v), want (b,true)", got, ok)
	}
}

func TestHeadsTailsAreCopies(t *testing.T) {
	b := FromPairs("r", []Pair[OID]{{1, 10}, {2, 20}})
	h := b.Heads()
	h[0] = 99
	if b.Head(0) != 1 {
		t.Error("Heads() exposed internal storage")
	}
	tl := b.Tails()
	tl[0] = 99
	if b.Tail(0) != 10 {
		t.Error("Tails() exposed internal storage")
	}
}

func TestEachStopsEarly(t *testing.T) {
	b := FromPairs("r", []Pair[OID]{{1, 1}, {2, 2}, {3, 3}})
	var visited int
	b.Each(func(h OID, _ OID) bool {
		visited++
		return h < 2
	})
	if visited != 2 {
		t.Errorf("Each visited %d pairs, want 2", visited)
	}
}

func TestSortByHead(t *testing.T) {
	b := FromPairs("r", []Pair[string]{{3, "x"}, {1, "a"}, {3, "y"}, {2, "m"}})
	s := b.SortByHead()
	want := []Pair[string]{{1, "a"}, {2, "m"}, {3, "x"}, {3, "y"}}
	for i, w := range want {
		if s.Pair(i) != w {
			t.Errorf("sorted pair %d = %v, want %v", i, s.Pair(i), w)
		}
	}
	// Stability: equal heads keep insertion order (x before y).
	if s.Tail(2) != "x" || s.Tail(3) != "y" {
		t.Error("SortByHead is not stable")
	}
	// Original untouched.
	if b.Head(0) != 3 {
		t.Error("SortByHead mutated its input")
	}
}

func TestString(t *testing.T) {
	b := FromPairs("r", []Pair[OID]{{1, 2}})
	if s := b.String(); !strings.Contains(s, "1->2") || !strings.Contains(s, "r") {
		t.Errorf("String() = %q, want it to mention the name and the pair", s)
	}
}

func TestMemBytes(t *testing.T) {
	oo := FromPairs("oo", []Pair[OID]{{1, 2}, {3, 4}})
	if got := oo.MemBytes(); got != 2*(4+4) {
		t.Errorf("MemBytes oid×oid = %d, want 16", got)
	}
	os := FromPairs("os", []Pair[string]{{1, "x"}})
	if got := os.MemBytes(); got != 4+16 {
		t.Errorf("MemBytes oid×string = %d, want 20", got)
	}
	oi := FromPairs("oi", []Pair[int]{{1, 7}})
	if got := oi.MemBytes(); got != 4+8 {
		t.Errorf("MemBytes oid×int = %d, want 12", got)
	}
}
