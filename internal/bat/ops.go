package bat

// This file holds the relational operations (the MIL-primitive slice)
// used by the meet algorithms: join, semijoin, anti-join, selection,
// reversal, de-duplication and set-style combinators on head columns.
//
// All operations are non-destructive: they allocate a new BAT and leave
// the operands untouched, mirroring the bulk operator-at-a-time
// execution model of the Monet server the paper ran on.

// Join composes a with b over a's tail and b's head:
//
//	Join(a, b) = { (h, t) | (h, x) in a, (x, t) in b }
//
// This is the paper's "binary join on associations" from Section 3.2:
// joining an association BAT with the parent BAT lifts a set of objects
// one level towards the root while the head keeps the provenance.
// Pairs are produced in the order of a, expanding multiple matches in
// b's insertion order.
func Join[T comparable](a *BAT[OID], b *BAT[T]) *BAT[T] {
	b.buildIndex()
	out := NewWithCapacity[T](a.name+"*"+b.name, a.Len())
	for i := range a.head {
		if pos, ok := b.index[a.tail[i]]; ok {
			for _, p := range pos {
				out.Append(a.head[i], b.tail[p])
			}
		}
	}
	return out
}

// Semijoin keeps the pairs of a whose head occurs in keys.
func Semijoin[T comparable](a *BAT[T], keys *Set) *BAT[T] {
	out := New[T](a.name + "?")
	for i := range a.head {
		if keys.Has(a.head[i]) {
			out.Append(a.head[i], a.tail[i])
		}
	}
	return out
}

// Antijoin keeps the pairs of a whose head does NOT occur in keys.
// Together with Semijoin it implements the "remove matched elements"
// step of the set-oriented meet (Figure 4).
func Antijoin[T comparable](a *BAT[T], keys *Set) *BAT[T] {
	out := New[T](a.name + "!")
	for i := range a.head {
		if !keys.Has(a.head[i]) {
			out.Append(a.head[i], a.tail[i])
		}
	}
	return out
}

// SelectTail keeps the pairs whose tail satisfies pred.
func SelectTail[T comparable](a *BAT[T], pred func(T) bool) *BAT[T] {
	out := New[T](a.name + "/sel")
	for i := range a.tail {
		if pred(a.tail[i]) {
			out.Append(a.head[i], a.tail[i])
		}
	}
	return out
}

// SelectTailEq keeps the pairs whose tail equals v. It is the exact-
// match point selection used by the full-text fallback scan.
func SelectTailEq[T comparable](a *BAT[T], v T) *BAT[T] {
	return SelectTail(a, func(t T) bool { return t == v })
}

// Reverse swaps head and tail of an OID×OID BAT. The Monet transform
// stores edges parent->child; reversing yields the child->parent
// ("parent function") BAT the meet algorithms navigate with.
func Reverse(a *BAT[OID]) *BAT[OID] {
	out := NewWithCapacity[OID]("rev("+a.name+")", a.Len())
	for i := range a.head {
		out.Append(a.tail[i], a.head[i])
	}
	return out
}

// Unique removes duplicate pairs, keeping first occurrences in order.
func Unique[T comparable](a *BAT[T]) *BAT[T] {
	seen := make(map[Pair[T]]struct{}, a.Len())
	out := New[T](a.name + "/uniq")
	for i := range a.head {
		p := Pair[T]{a.head[i], a.tail[i]}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out.Append(p.Head, p.Tail)
	}
	return out
}

// UniqueHead removes pairs with duplicate heads, keeping the first pair
// for each head in insertion order.
func UniqueHead[T comparable](a *BAT[T]) *BAT[T] {
	seen := make(map[OID]struct{}, a.Len())
	out := New[T](a.name + "/uniqh")
	for i := range a.head {
		if _, dup := seen[a.head[i]]; dup {
			continue
		}
		seen[a.head[i]] = struct{}{}
		out.Append(a.head[i], a.tail[i])
	}
	return out
}

// Union concatenates a and b (bag semantics, preserving order).
func Union[T comparable](a, b *BAT[T]) *BAT[T] {
	out := NewWithCapacity[T](a.name+"+"+b.name, a.Len()+b.Len())
	out.head = append(out.head, a.head...)
	out.tail = append(out.tail, a.tail...)
	out.head = append(out.head, b.head...)
	out.tail = append(out.tail, b.tail...)
	return out
}

// HeadSet collects the distinct head values of a into a Set.
func HeadSet[T comparable](a *BAT[T]) *Set {
	s := NewSet()
	for _, h := range a.head {
		s.Add(h)
	}
	return s
}

// TailSet collects the distinct tail values of an OID×OID BAT.
func TailSet(a *BAT[OID]) *Set {
	s := NewSet()
	for _, t := range a.tail {
		s.Add(t)
	}
	return s
}

// IntersectTails returns the set of OIDs occurring as tails of both a
// and b. This is the D := O1 ∩ O2 step of Figure 4 when the lifted
// current-ancestor column is the tail.
func IntersectTails(a, b *BAT[OID]) *Set {
	at := TailSet(a)
	out := NewSet()
	for _, t := range b.tail {
		if at.Has(t) {
			out.Add(t)
		}
	}
	return out
}

// SelectTailIn keeps the pairs of a whose tail is a member of keys.
func SelectTailIn(a *BAT[OID], keys *Set) *BAT[OID] {
	out := New[OID](a.name + "/in")
	for i := range a.tail {
		if keys.Has(a.tail[i]) {
			out.Append(a.head[i], a.tail[i])
		}
	}
	return out
}

// SelectTailNotIn keeps the pairs of a whose tail is not in keys.
func SelectTailNotIn(a *BAT[OID], keys *Set) *BAT[OID] {
	out := New[OID](a.name + "/notin")
	for i := range a.tail {
		if !keys.Has(a.tail[i]) {
			out.Append(a.head[i], a.tail[i])
		}
	}
	return out
}

// Count returns the number of pairs whose head equals h.
func Count[T comparable](a *BAT[T], h OID) int {
	a.buildIndex()
	return len(a.index[h])
}

// GroupCountTail returns, for each distinct tail OID, the number of
// pairs carrying it. The general meet (Figure 5) uses this to find
// candidate ancestors that received at least two contributions.
func GroupCountTail(a *BAT[OID]) map[OID]int {
	out := make(map[OID]int)
	for _, t := range a.tail {
		out[t]++
	}
	return out
}
