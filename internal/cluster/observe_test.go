package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeWorker serves a fixed status for every streaming query, counting
// attempts — a stand-in for a saturated or broken worker.
func fakeWorker(tb testing.TB, name string, status int, hdr map[string]string, body string) (Worker, *atomic.Int64) {
	tb.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/query" {
			http.NotFound(w, r)
			return
		}
		attempts.Add(1)
		for k, v := range hdr {
			w.Header().Set(k, v)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(body))
	}))
	tb.Cleanup(ts.Close)
	return Worker{Name: name, URL: ts.URL}, &attempts
}

// TestWorker429RelayedNotRetried pins the backpressure contract: a
// worker shedding load with 429 is a deterministic answer for this
// moment — the coordinator relays the status and the worker's
// Retry-After hint verbatim and never retries (a retry would defeat
// the worker's load shedding exactly when it matters most).
func TestWorker429RelayedNotRetried(t *testing.T) {
	wk, attempts := fakeWorker(t, "w1", http.StatusTooManyRequests,
		map[string]string{"Retry-After": "7"}, `{"error":"server saturated; retry after 7 second(s)"}`)
	_, ts := startCoordinator(t, Config{Workers: []Worker{wk}, Retries: 3})

	resp, err := http.Post(ts.URL+"/v2/query", "application/json",
		strings.NewReader(`{"terms":["Bit"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429 relayed", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want the worker's \"7\" relayed", ra)
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("worker saw %d attempts, want exactly 1 (429 must not be retried)", n)
	}
}

// A worker 5xx, by contrast, IS retried up to Retries times — the
// twin of the 429 contract above.
func TestWorker5xxRetried(t *testing.T) {
	wk, attempts := fakeWorker(t, "w1", http.StatusInternalServerError,
		nil, `{"error":"boom"}`)
	_, ts := startCoordinator(t, Config{Workers: []Worker{wk}, Retries: 2})

	resp, err := http.Post(ts.URL+"/v2/query", "application/json",
		strings.NewReader(`{"terms":["Bit"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("worker saw %d attempts, want 3 (initial + 2 retries)", n)
	}
}

// TestCoordinatorMetrics pins the coordinator's scatter telemetry:
// per-worker stream-open latency and per-worker error counters by
// kind, exposed at /v1/metrics.
func TestCoordinatorMetrics(t *testing.T) {
	srv, wk := startWorker(t, "w1")
	addDoc(t, srv, "bib", `<bib><book><author>Bit</author><year>1999</year></book></bib>`)
	bad, _ := fakeWorker(t, "w2", http.StatusInternalServerError, nil, `{"error":"boom"}`)
	_, ts := startCoordinator(t, Config{Workers: []Worker{wk, bad}, Retries: 0})

	// allow_partial survives w2's failure, so both the success and the
	// error leg of the scatter are exercised by one query.
	resp, err := http.Post(ts.URL+"/v2/query", "application/json",
		strings.NewReader(`{"terms":["Bit","1999"],"allow_partial":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`ncq_worker_scatter_duration_seconds_count{worker="w1"} 1`,
		`ncq_worker_errors_total{worker="w2",kind="http_5xx"} 1`,
		`ncq_http_requests_total{route="/v2/query",status="200"} 1`,
		"ncq_queries_total 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("coordinator metrics missing %q:\n%.2000s", want, out)
		}
	}
}

// TestCoordinatorAdmission429 pins the coordinator's own admission
// gate: saturation answers 429 + Retry-After before any worker
// connection is opened.
func TestCoordinatorAdmission429(t *testing.T) {
	wk, attempts := fakeWorker(t, "w1", http.StatusOK, nil, "")
	c, ts := startCoordinator(t, Config{Workers: []Worker{wk}, MaxInFlight: 1})

	release, err := c.limiter.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := http.Post(ts.URL+"/v2/query", "application/json",
		strings.NewReader(`{"terms":["Bit"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if n := attempts.Load(); n != 0 {
		t.Errorf("worker saw %d attempts; a shed request must not reach workers", n)
	}
}
