package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ncq"
	"ncq/internal/admission"
	"ncq/internal/cache"
	"ncq/internal/metrics"
)

const (
	defaultWorkerTimeout = 30 * time.Second
	defaultRetries       = 1
	defaultCacheBytes    = 64 << 20
	defaultPollInterval  = 2 * time.Second
)

// Config configures a Coordinator.
type Config struct {
	// NodeName is the coordinator's identity on /v1/healthz, /v1/stats
	// and its own stream headers. Default "ncqd".
	NodeName string

	// Workers is the cluster membership. Placement and scatter targets
	// derive from it; it is fixed for the coordinator's lifetime.
	Workers []Worker

	// WorkerTimeout bounds every call to a worker — for a streamed
	// query, the whole stream. Default 30s.
	WorkerTimeout time.Duration

	// Retries is how many times an idempotent read is re-attempted
	// against a worker after a transport error or 5xx before the
	// failure policy applies. Mutations are never retried. Default 1.
	Retries int

	// CacheBytes bounds the coordinator's result cache; 0 disables it.
	CacheBytes int64

	// CacheTTL expires cached results by age; 0 means no expiry.
	CacheTTL time.Duration

	// PollInterval is how often Poll refreshes the tracked generation
	// vector from worker health checks, bounding how long a mutation
	// applied directly to a worker (bypassing the coordinator) can keep
	// serving cached coordinator results. Default 2s.
	PollInterval time.Duration

	// Logger receives request logs and worker-failure warnings; nil
	// disables logging.
	Logger *slog.Logger

	// MaxInFlight bounds concurrent query execution (admission
	// control): beyond it up to MaxQueue requests wait up to QueueWait
	// for a slot, and the rest are answered 429 with a Retry-After
	// hint. <= 0 (the default) disables admission control.
	MaxInFlight int
	MaxQueue    int
	QueueWait   time.Duration
}

// Coordinator fronts a cluster of worker nodes: it places documents by
// consistent hashing, scatter-gathers queries over the workers'
// NDJSON streams, and serves the same /v2/query and /v1/docs surface
// as a single node. Create one with New and mount Handler.
type Coordinator struct {
	cfg     config
	ring    *Ring
	workers []Worker
	byName  map[string]Worker
	client  *http.Client
	cache   *cache.LRU
	mux     *http.ServeMux
	started time.Time
	logger  *slog.Logger
	limiter *admission.Limiter

	queries   atomic.Uint64
	mutations atomic.Uint64

	// Observability (observe.go); reg is per-instance like the
	// single-node server's.
	reg             *metrics.Registry
	httpm           *metrics.HTTP
	queriesInflight *metrics.Gauge
	streamsInflight *metrics.Gauge
	scatterDur      *metrics.HistogramVec
	workerErrs      *metrics.CounterVec

	mu   sync.Mutex
	gens map[string]uint64 // tracked generation per worker
}

// config is Config with the defaults applied.
type config struct {
	Config
	cacheBytes int64
}

// New builds a Coordinator over the configured workers.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: a coordinator needs at least one worker")
	}
	c := &Coordinator{
		cfg:     config{Config: cfg, cacheBytes: cfg.CacheBytes},
		workers: append([]Worker(nil), cfg.Workers...),
		byName:  make(map[string]Worker, len(cfg.Workers)),
		client:  &http.Client{},
		started: time.Now(),
		logger:  cfg.Logger,
		limiter: admission.New(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		reg:     metrics.NewRegistry(),
		gens:    make(map[string]uint64, len(cfg.Workers)),
	}
	if c.cfg.NodeName == "" {
		c.cfg.NodeName = "ncqd"
	}
	if c.cfg.WorkerTimeout <= 0 {
		c.cfg.WorkerTimeout = defaultWorkerTimeout
	}
	if c.cfg.Retries < 0 {
		c.cfg.Retries = defaultRetries
	}
	if c.cfg.PollInterval <= 0 {
		c.cfg.PollInterval = defaultPollInterval
	}
	names := make([]string, 0, len(c.workers))
	for _, w := range c.workers {
		if w.Name == "" || w.URL == "" {
			return nil, fmt.Errorf("cluster: worker %+v needs a name and a URL", w)
		}
		if _, dup := c.byName[w.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker %q", w.Name)
		}
		c.byName[w.Name] = w
		names = append(names, w.Name)
	}
	c.ring = NewRing(names)
	c.cache = cache.New(c.cfg.cacheBytes, cache.WithTTL(c.cfg.CacheTTL))
	c.initObservability()
	c.routes()
	return c, nil
}

// Metrics returns the coordinator's metric registry — what
// GET /v1/metrics serves.
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// Handler returns the coordinator's root handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Owner returns the worker owning the logical document name.
func (c *Coordinator) Owner(name string) Worker {
	return c.byName[c.ring.Owner(name)]
}

// noteGen records a worker generation observed on a response — a
// stream header, a routed mutation's X-NCQ-Generation, a health poll.
// Generations are monotone per worker, so only advances are kept; a
// slow response carrying an older generation cannot roll the vector
// back.
func (c *Coordinator) noteGen(worker string, gen uint64) {
	c.mu.Lock()
	if gen > c.gens[worker] {
		c.gens[worker] = gen
	}
	c.mu.Unlock()
}

// genHash folds a generation vector into the single uint64 a cursor
// carries: FNV-64a over the sorted name=generation pairs. Any worker
// mutating changes its generation, hence the hash — the distributed
// analogue of the single corpus generation.
func genHash(gens map[string]uint64) uint64 {
	names := make([]string, 0, len(gens))
	for n := range gens {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		fmt.Fprintf(h, "%s=%d\n", n, gens[n])
	}
	return h.Sum64()
}

// trackedHash returns the hash of the tracked generation vector
// restricted to the given workers — the cache generation key of a
// query over exactly those targets.
func (c *Coordinator) trackedHash(targets []Worker) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	gens := make(map[string]uint64, len(targets))
	for _, w := range targets {
		gens[w.Name] = c.gens[w.Name]
	}
	return genHash(gens)
}

// clusterQuery is the coordinator's /v2/query wire schema: the worker
// schema plus allow_partial. The shared fields are forwarded to
// workers verbatim, which is what keeps the two surfaces one API.
type clusterQuery struct {
	Doc   string   `json:"doc,omitempty"`
	Query string   `json:"query,omitempty"`
	Terms []string `json:"terms,omitempty"`

	ExcludeRoot bool     `json:"exclude_root,omitempty"`
	Exclude     []string `json:"exclude,omitempty"`
	Restrict    []string `json:"restrict,omitempty"`
	Nearest     bool     `json:"nearest,omitempty"`
	Within      int      `json:"within,omitempty"`
	MaxLift     int      `json:"max_lift,omitempty"`

	Limit  int    `json:"limit,omitempty"`
	Cursor string `json:"cursor,omitempty"`

	// Vague is the vague-constraints spec, forwarded to workers
	// verbatim (the ncq.Vague wire shape). Workers blend structural
	// slack into each answer's distance before ranking, so the
	// coordinator's merge needs no vague-specific handling — the
	// blended distance is the order the streams already arrive in.
	Vague *ncq.Vague `json:"vague,omitempty"`

	// AllowPartial degrades worker failures instead of failing the
	// query: the response carries the surviving workers' exact merged
	// ranking, marked incomplete, with per-worker error detail. Strict
	// mode (the default) maps any worker failure to 502.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// clusterRequest is the full POST /v2/query body on the coordinator.
type clusterRequest struct {
	clusterQuery
	Batch     []clusterQuery `json:"batch,omitempty"`
	TimeoutMS int            `json:"timeout_ms,omitempty"`
}

func (q *clusterQuery) validate() error {
	hasQuery := strings.TrimSpace(q.Query) != ""
	if hasQuery == (len(q.Terms) > 0) {
		return errors.New("exactly one of \"query\" or \"terms\" must be set")
	}
	for _, t := range q.Terms {
		if t == "" {
			return errors.New("empty term")
		}
	}
	if q.Within < 0 || q.MaxLift < 0 || q.Limit < 0 {
		return errors.New("\"within\", \"max_lift\" and \"limit\" must be non-negative")
	}
	if q.Vague != nil {
		if hasQuery {
			return errors.New("\"vague\" applies to \"terms\" queries only")
		}
		if q.Vague.MaxSlack < 0 || q.Vague.MaxSlack > ncq.MaxVagueSlack {
			return fmt.Errorf("\"vague.max_slack\" must be between 0 and %d", ncq.MaxVagueSlack)
		}
	}
	return nil
}

// options mirrors the wire fields into an ncq.Options — used only to
// canonicalise the request for cursors and cache keys; execution
// happens on the workers.
func (q *clusterQuery) options() *ncq.Options {
	opt := &ncq.Options{}
	if q.ExcludeRoot {
		opt.ExcludeRoot()
	}
	for _, p := range q.Exclude {
		opt.ExcludePattern(p)
	}
	for _, p := range q.Restrict {
		opt.Restrict(p)
	}
	if q.Nearest {
		opt.Nearest()
	}
	if q.Within > 0 {
		opt.Within(q.Within)
	}
	if q.MaxLift > 0 {
		opt.MaxLift(q.MaxLift)
	}
	return opt
}

// base is the canonical page-independent encoding of the query — what
// the coordinator's cursors are fingerprinted against. It reuses
// ncq.Request.Canonical so equivalent spellings (whitespace, option
// order) share cursors and cache entries exactly as on a single node.
func (q *clusterQuery) base() string {
	r := ncq.Request{Doc: q.Doc, Limit: q.Limit}
	if len(q.Terms) > 0 {
		r.Terms = q.Terms
		r.Options = q.options()
		r.Vague = q.Vague
	} else {
		r.Query = strings.TrimSpace(q.Query)
	}
	return r.Canonical()
}

// workerBody renders the query as the body scattered to each worker:
// coordinator-only fields stripped, the page window folded into a
// pushed-down limit. The coordinator handles the offset itself (a
// worker cannot know which of its meets fall in the global window),
// so each worker is asked for the first offset+limit of its own
// ranking — the most any single worker can contribute to the page.
func workerBody(q *clusterQuery, offset int) []byte {
	wire := *q
	wire.Cursor = ""
	wire.AllowPartial = false
	if q.Limit > 0 {
		wire.Limit = offset + q.Limit
	}
	body, err := json.Marshal(&wire)
	if err != nil {
		panic(fmt.Sprintf("cluster: marshal worker body: %v", err)) // plain data struct; cannot fail
	}
	return body
}

// targetsFor returns the workers a query scatters to: the owner alone
// for a doc-scoped query, the whole cluster otherwise.
func (c *Coordinator) targetsFor(q *clusterQuery) []Worker {
	if q.Doc != "" {
		return []Worker{c.Owner(q.Doc)}
	}
	return c.workers
}

// gather is the result of a scatter: the surviving worker streams as
// merge sources, their aggregated header counters, and the gathered
// generation vector. Close releases every stream.
type gather struct {
	streams   []*workerStream
	sources   []ncq.MeetSource
	total     int
	unmatched int
	gens      map[string]uint64
	hash      uint64

	mu     sync.Mutex
	failed map[string]string // worker -> failure detail (allow_partial)
}

func (g *gather) Close() {
	for _, s := range g.streams {
		s.close()
	}
}

func (g *gather) recordFailure(w Worker, err error) {
	g.mu.Lock()
	g.failed[w.Name] = err.Error()
	g.mu.Unlock()
}

// incomplete reports whether any worker failed (allow_partial mode).
func (g *gather) incomplete() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.failed) > 0
}

func (g *gather) failures() map[string]string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.failed) == 0 {
		return nil
	}
	out := make(map[string]string, len(g.failed))
	for k, v := range g.failed {
		out[k] = v
	}
	return out
}

// scatterQuery opens the query's worker streams in parallel and reads
// every header — totals and generations are known before the first
// merged yield. Worker failures follow the query's policy: strict
// mode aborts on the first failure; allow_partial records it and
// continues with the survivors (failing only when no worker
// survives). A worker answering 4xx is a deterministic request error
// and aborts in either mode.
func (c *Coordinator) scatterQuery(ctx context.Context, q *clusterQuery, offset int) (*gather, error) {
	targets := c.targetsFor(q)
	body := workerBody(q, offset)
	streams := make([]*workerStream, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, wk := range targets {
		wg.Add(1)
		go func(i int, wk Worker) {
			defer wg.Done()
			t0 := time.Now()
			streams[i], errs[i] = c.openStream(ctx, wk, body)
			c.observeScatter(wk, time.Since(t0), errs[i])
		}(i, wk)
	}
	wg.Wait()

	g := &gather{
		gens:   make(map[string]uint64, len(targets)),
		failed: make(map[string]string),
	}
	abort := func(err error) (*gather, error) {
		g.Close()
		return nil, err
	}
	var lastErr error
	for i, wk := range targets {
		if err := errs[i]; err != nil {
			var he *workerHTTPError
			if errors.As(err, &he) && he.status < 500 {
				return abort(err) // the request itself is bad; every worker agrees
			}
			if !q.AllowPartial {
				return abort(err)
			}
			g.recordFailure(wk, err)
			lastErr = err
			continue
		}
		ws := streams[i]
		g.streams = append(g.streams, ws)
		g.sources = append(g.sources, ws)
		g.total += ws.header.Total
		g.unmatched += ws.header.Unmatched
		g.gens[wk.Name] = ws.header.Generation
		if q.AllowPartial {
			ws.onFail = func(w Worker, err error) error {
				g.recordFailure(w, err)
				return nil // end this source quietly; the merge continues
			}
		}
	}
	if len(g.streams) == 0 {
		return abort(fmt.Errorf("all %d workers failed: %w", len(targets), lastErr))
	}
	g.hash = genHash(g.gens)
	for w, gen := range g.gens {
		c.noteGen(w, gen)
	}
	return g, nil
}

// pageOutcome is one executed coordinator page, ready for any
// envelope (single response, batch item).
type pageOutcome struct {
	raw        json.RawMessage
	cached     bool
	hash       uint64
	truncated  bool
	nextCursor string
	incomplete bool
	failed     map[string]string
}

// clusterResult is the coordinator's result payload — field-for-field
// the single-node "terms" payload, so a distributed answer is
// byte-identical to the answer one node holding the whole corpus
// would give.
type clusterResult struct {
	Mode      string           `json:"mode"`
	Meets     []ncq.CorpusMeet `json:"meets,omitempty"`
	Unmatched int              `json:"unmatched,omitempty"`
	Truncated bool             `json:"truncated,omitempty"`
}

// errQueryLanguage rejects query-language requests on the coordinator.
var errQueryLanguage = errors.New("query-language requests are not supported in coordinator mode; send \"terms\" requests, or query a worker directly")

// cachedPage is the cache value: everything a response envelope needs.
type cachedPage struct {
	raw        json.RawMessage
	truncated  bool
	nextCursor string
}

// runPage executes one term query page: resolve the cursor, serve
// from cache when the tracked generation vector still matches,
// otherwise scatter, verify the cursor against the gathered vector
// (mismatch → ErrStaleCursor, the distributed 410), merge the worker
// streams into the exact global ranking and mint the next cursor.
// Partial results are never cached and never mint a cursor — a page
// chain is always exact.
func (c *Coordinator) runPage(ctx context.Context, q *clusterQuery) (*pageOutcome, error) {
	if strings.TrimSpace(q.Query) != "" {
		return nil, errQueryLanguage
	}
	base := q.base()
	offset, curGen, err := ncq.ResolveCursor(q.Cursor, base)
	if err != nil {
		return nil, err
	}
	c.queries.Add(1)
	targets := c.targetsFor(q)
	pageKey := fmt.Sprintf("%s page=%d", base, offset)
	tracked := c.trackedHash(targets)
	if q.Cursor == "" || curGen == tracked {
		if v, ok := c.cache.Get(cache.Key{Gen: tracked, Query: pageKey}); ok {
			p := v.(*cachedPage)
			return &pageOutcome{raw: p.raw, cached: true, hash: tracked,
				truncated: p.truncated, nextCursor: p.nextCursor}, nil
		}
	}
	g, err := c.scatterQuery(ctx, q, offset)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	if q.Cursor != "" && curGen != g.hash {
		return nil, fmt.Errorf("ncq: %w: the cluster changed since this cursor was minted", ncq.ErrStaleCursor)
	}
	out := &pageOutcome{hash: g.hash}
	res := clusterResult{Mode: "terms"}
	for m, err := range ncq.MergeMeets(ctx, g.sources, offset, q.Limit) {
		if err != nil {
			return nil, err
		}
		res.Meets = append(res.Meets, m)
	}
	if q.Doc != "" {
		// Single-node semantics: the unmatched count is reported for
		// doc-scoped results only (the doc lives wholly on its owner).
		res.Unmatched = g.unmatched
	}
	out.incomplete = g.incomplete()
	out.failed = g.failures()
	if q.Limit > 0 && g.total > offset+q.Limit {
		res.Truncated = true
		out.truncated = true
		if !out.incomplete {
			out.nextCursor = ncq.MintCursor(offset+q.Limit, base, g.hash)
		}
	}
	raw, err := json.Marshal(&res)
	if err != nil {
		return nil, fmt.Errorf("encode result: %v", err)
	}
	out.raw = raw
	if !out.incomplete {
		c.cache.Put(cache.Key{Gen: g.hash, Query: pageKey},
			&cachedPage{raw: raw, truncated: out.truncated, nextCursor: out.nextCursor}, len(raw))
	}
	return out, nil
}

// workerHealth is one worker's health as seen by the coordinator.
type workerHealth struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Status     string `json:"status"` // "ok" or "unreachable"
	Generation uint64 `json:"generation,omitempty"`
	Docs       int    `json:"docs,omitempty"`
	Error      string `json:"error,omitempty"`
}

// PollOnce health-checks every worker in parallel, refreshing the
// tracked generation vector from the responses, and returns the
// per-worker view.
func (c *Coordinator) PollOnce(ctx context.Context) []workerHealth {
	out := make([]workerHealth, len(c.workers))
	var wg sync.WaitGroup
	for i, wk := range c.workers {
		wg.Add(1)
		go func(i int, wk Worker) {
			defer wg.Done()
			out[i] = c.pollWorker(ctx, wk)
		}(i, wk)
	}
	wg.Wait()
	return out
}

func (c *Coordinator) pollWorker(ctx context.Context, wk Worker) workerHealth {
	h := workerHealth{Name: wk.Name, URL: wk.URL, Status: "unreachable"}
	wctx, cancel := context.WithTimeout(ctx, c.cfg.WorkerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(wctx, http.MethodGet, wk.URL+"/v1/healthz", nil)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	resp, err := c.client.Do(req)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	defer resp.Body.Close()
	var body struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Docs       int    `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
		h.Error = fmt.Sprintf("health check failed (status %d)", resp.StatusCode)
		return h
	}
	h.Status, h.Generation, h.Docs = "ok", body.Generation, body.Docs
	c.noteGen(wk.Name, body.Generation)
	return h
}

// Poll refreshes the tracked generation vector every PollInterval
// until ctx is cancelled. Run it in a goroutine next to the HTTP
// server; it bounds how stale the coordinator's cache can serve when
// workers are mutated behind its back.
func (c *Coordinator) Poll(ctx context.Context) {
	t := time.NewTicker(c.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.PollOnce(ctx)
		}
	}
}
