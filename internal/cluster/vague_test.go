package cluster

// TestVagueDistributedEqualsSingleNode pins the coordinator's vague
// contract: workers blend relaxation slack into the distance before
// their streams reach the merge, so a vague query answered by the
// cluster is byte-identical to the same corpus on one node — result
// payloads, every cursor page, and the streamed NDJSON meet lines.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ncq"
	"ncq/internal/server"
)

func TestVagueDistributedEqualsSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	docs := map[string]string{}
	for i := 0; i < 9; i++ {
		docs[fmt.Sprintf("doc%d", i)] = docXML(rng, 4+rng.Intn(10))
	}

	single := server.New(nil)
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	var workers []Worker
	var srvs []*server.Server
	for i := 1; i <= 3; i++ {
		srv, w := startWorker(t, fmt.Sprintf("w%d", i))
		srvs, workers = append(srvs, srv), append(workers, w)
	}
	_, coordTS := startCoordinator(t, Config{Workers: workers})

	// The same synonym classes on every node: expansion is a worker-
	// side concern, the coordinator only forwards the spec.
	thesaurus := func() *ncq.Thesaurus { return ncq.NewThesaurus().Add("subject", "Topic3") }
	single.Corpus().SetThesaurus(thesaurus())
	for _, srv := range srvs {
		srv.Corpus().SetThesaurus(thesaurus())
	}

	for name, xml := range docs {
		if status, body := httpDo(t, "PUT", singleTS.URL+"/v1/docs/"+name, xml); status != http.StatusCreated {
			t.Fatalf("single PUT %s: %d %s", name, status, body)
		}
		if status, body := httpDo(t, "PUT", coordTS.URL+"/v1/docs/"+name, xml); status != http.StatusCreated {
			t.Fatalf("cluster PUT %s: %d %s", name, status, body)
		}
	}

	// Misspelled restrict ("artcle"), slack budgets, and expansion —
	// including a spec the exact engine answers empty.
	queries := []string{
		`{"terms":["Author1","199"],"exclude_root":true,"restrict":["/bib/artcle"],"vague":{"max_slack":2}}`,
		`{"terms":["Author1","199"],"exclude_root":true,"restrict":["/bib/artcle"]}`,
		`{"terms":["subject","study"],"exclude_root":true,"vague":{"max_slack":0,"expand":true}}`,
		`{"terms":["Topic3"],"exclude_root":true,"nearest":true,"vague":{"max_slack":1,"expand":true}}`,
		`{"doc":"doc3","terms":["Author","199"],"exclude_root":true,"vague":{"max_slack":1}}`,
	}
	for _, q := range queries {
		sStatus, sEnv, sRaw := postQuery(t, singleTS.URL, q)
		cStatus, cEnv, cRaw := postQuery(t, coordTS.URL, q)
		if sStatus != http.StatusOK || cStatus != http.StatusOK {
			t.Fatalf("query %s: single %d %s, cluster %d %s", q, sStatus, sRaw, cStatus, cRaw)
		}
		if string(sEnv.Result) != string(cEnv.Result) {
			t.Errorf("query %s:\nsingle  %s\ncluster %s", q, sEnv.Result, cEnv.Result)
		}
	}
	// The relaxed restrict and the expansion actually produced answers.
	for _, q := range []string{queries[0], queries[2]} {
		_, probe, _ := postQuery(t, coordTS.URL, q)
		if !strings.Contains(string(probe.Result), `"meets"`) {
			t.Fatalf("vague workload degenerate for %s: %s", q, probe.Result)
		}
	}

	// Cursor pagination under an active vague spec: every page
	// byte-identical, same page count, fingerprints interchangeable
	// only within the same spec.
	base := `{"terms":["Author1","199"],"exclude_root":true,"restrict":["/bib/artcle"],` +
		`"vague":{"max_slack":2},"limit":3`
	sCursor, cCursor, pages := "", "", 0
	for {
		sq, cq := base+"}", base+"}"
		if sCursor != "" {
			sq = fmt.Sprintf(`%s,"cursor":%q}`, base, sCursor)
			cq = fmt.Sprintf(`%s,"cursor":%q}`, base, cCursor)
		}
		sStatus, sEnv, sRaw := postQuery(t, singleTS.URL, sq)
		cStatus, cEnv, cRaw := postQuery(t, coordTS.URL, cq)
		if sStatus != http.StatusOK || cStatus != http.StatusOK {
			t.Fatalf("page %d: single %d %s, cluster %d %s", pages, sStatus, sRaw, cStatus, cRaw)
		}
		if string(sEnv.Result) != string(cEnv.Result) {
			t.Fatalf("page %d differs:\nsingle  %s\ncluster %s", pages, sEnv.Result, cEnv.Result)
		}
		if sEnv.Truncated != cEnv.Truncated {
			t.Fatalf("page %d: truncated single=%t cluster=%t", pages, sEnv.Truncated, cEnv.Truncated)
		}
		pages++
		if !sEnv.Truncated {
			break
		}
		sCursor, cCursor = sEnv.NextCursor, cEnv.NextCursor
		if pages > 50 {
			t.Fatal("pagination did not terminate")
		}
	}
	if pages < 2 {
		t.Fatalf("workload too small: %d page(s)", pages)
	}

	// Streaming: the coordinator's merged NDJSON equals the single
	// node's, blended meet line for blended meet line.
	streamQ := `{"terms":["Author1","199"],"exclude_root":true,"restrict":["/bib/artcle"],"vague":{"max_slack":2}}`
	sMeets := streamMeets(t, singleTS.URL, streamQ)
	cMeets := streamMeets(t, coordTS.URL, streamQ)
	if len(sMeets) == 0 || len(sMeets) != len(cMeets) {
		t.Fatalf("streamed %d meets single, %d cluster", len(sMeets), len(cMeets))
	}
	for i := range sMeets {
		if sMeets[i] != cMeets[i] {
			t.Fatalf("streamed meet %d differs: %s vs %s", i, sMeets[i], cMeets[i])
		}
	}

	// The coordinator rejects malformed vague specs itself, before any
	// worker sees the request.
	for _, bad := range []string{
		`{"terms":["Author1"],"vague":{"max_slack":99}}`,
		`{"query":"SELECT meet(e1, e2) FROM //year AS e1, //author AS e2","vague":{"max_slack":1}}`,
	} {
		if status, _, raw := postQuery(t, coordTS.URL, bad); status != http.StatusBadRequest {
			t.Errorf("coordinator accepted %s: %d %s", bad, status, raw)
		}
	}
}
