package cluster

// The coordinator's HTTP surface — deliberately the same shape a
// single ncqd node serves, so clients (and the CLIs) need no cluster
// awareness:
//
//	POST   /v2/query       scatter-gather term query over all workers
//	                       (?stream=1 merges the workers' NDJSON
//	                       streams incrementally); "allow_partial"
//	                       degrades worker failures instead of 502
//	PUT    /v1/docs/{name} routed to the ring owner of the name
//	GET    /v1/docs/{name} routed to the ring owner
//	DELETE /v1/docs/{name} routed to the ring owner
//	GET    /v1/docs        union of every worker's documents
//	GET    /v1/healthz     live worker poll: ok / degraded
//	GET    /v1/stats       coordinator counters + per-worker stats

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"ncq"
	"ncq/internal/metrics"
)

const (
	maxRequestBody  = 8 << 20
	maxBatchQueries = 256
)

func (c *Coordinator) routes() {
	mux := http.NewServeMux()
	handle := func(pattern, route string, quiet bool, h http.Handler) {
		mux.Handle(pattern, c.httpm.Instrument(route, c.logger, quiet, h))
	}
	handle("POST /v2/query", "/v2/query", false, c.admit(http.HandlerFunc(c.handleQuery)))
	handle("PUT /v1/docs/{name}", "/v1/docs/{name}", false, http.HandlerFunc(c.handleDocProxy))
	handle("GET /v1/docs/{name}", "/v1/docs/{name}", false, http.HandlerFunc(c.handleDocProxy))
	handle("DELETE /v1/docs/{name}", "/v1/docs/{name}", false, http.HandlerFunc(c.handleDocProxy))
	handle("GET /v1/docs", "/v1/docs", false, http.HandlerFunc(c.handleListDocs))
	handle("GET /v1/healthz", "/v1/healthz", true, http.HandlerFunc(c.handleHealthz))
	handle("GET /v1/stats", "/v1/stats", true, http.HandlerFunc(c.handleStats))
	handle("GET /v1/metrics", "/v1/metrics", true, c.reg.Handler())
	c.mux = mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// statusOf maps a coordinator-side failure to its HTTP status. A
// worker's 4xx is relayed verbatim (the request itself is bad); every
// other worker failure is the coordinator's 502.
func statusOf(err error) int {
	var he *workerHTTPError
	switch {
	case errors.As(err, &he):
		if he.status < 500 {
			return he.status
		}
		return http.StatusBadGateway
	case errors.Is(err, errQueryLanguage):
		return http.StatusNotImplemented
	case errors.Is(err, ncq.ErrBadCursor):
		return http.StatusBadRequest
	case errors.Is(err, ncq.ErrStaleCursor):
		return http.StatusGone
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadGateway
	}
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// writeQueryError renders an execution failure, relaying a worker's
// Retry-After hint when the failure is a relayed 4xx (a shed worker's
// 429 backpressure must reach the client intact — the coordinator
// never retries it; see openStream).
func writeQueryError(w http.ResponseWriter, err error) {
	var he *workerHTTPError
	if errors.As(err, &he) && he.status < 500 && he.retryAfter != "" {
		w.Header().Set("Retry-After", he.retryAfter)
	}
	writeError(w, statusOf(err), "%v", err)
}

// queryResponse is the coordinator's single-query envelope: the
// single-node envelope plus the partial-result fields. Generation is
// the hash of the gathered worker generation vector — the value the
// response's cursors are stamped with.
type queryResponse struct {
	Cached       bool              `json:"cached"`
	Generation   uint64            `json:"generation"`
	TookMS       float64           `json:"took_ms"`
	Truncated    bool              `json:"truncated,omitempty"`
	NextCursor   string            `json:"next_cursor,omitempty"`
	Incomplete   bool              `json:"incomplete,omitempty"`
	WorkerErrors map[string]string `json:"worker_errors,omitempty"`
	Result       json.RawMessage   `json:"result"`
}

type batchItem struct {
	Status       int               `json:"status"`
	Cached       bool              `json:"cached,omitempty"`
	Error        string            `json:"error,omitempty"`
	Truncated    bool              `json:"truncated,omitempty"`
	NextCursor   string            `json:"next_cursor,omitempty"`
	Incomplete   bool              `json:"incomplete,omitempty"`
	WorkerErrors map[string]string `json:"worker_errors,omitempty"`
	Result       json.RawMessage   `json:"result,omitempty"`
}

func wantsFlag(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var req clusterRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request exceeds the %d byte limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "\"timeout_ms\" must be non-negative")
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if wantsFlag(r, "stream") {
		if len(req.Batch) > 0 {
			writeError(w, http.StatusBadRequest,
				"\"batch\" cannot stream; issue one streaming query at a time")
			return
		}
		c.handleStream(ctx, w, start, &req.clusterQuery, wantsFlag(r, "header"))
		return
	}
	if len(req.Batch) > 0 {
		c.handleBatch(ctx, w, start, req.Batch)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	metrics.SetFingerprint(ctx, req.base())
	out, err := c.runPage(ctx, &req.clusterQuery)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if out.cached {
		w.Header().Set("X-NCQ-Cache", "hit")
	} else {
		w.Header().Set("X-NCQ-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Cached:       out.cached,
		Generation:   out.hash,
		TookMS:       msSince(start),
		Truncated:    out.truncated,
		NextCursor:   out.nextCursor,
		Incomplete:   out.incomplete,
		WorkerErrors: out.failed,
		Result:       out.raw,
	})
}

func (c *Coordinator) handleBatch(ctx context.Context, w http.ResponseWriter, start time.Time, batch []clusterQuery) {
	if len(batch) > maxBatchQueries {
		writeError(w, http.StatusBadRequest,
			"batch of %d queries exceeds the limit of %d", len(batch), maxBatchQueries)
		return
	}
	items := make([]batchItem, len(batch))
	for i := range batch {
		q := &batch[i]
		if err := q.validate(); err != nil {
			items[i] = batchItem{Status: http.StatusBadRequest, Error: "invalid request: " + err.Error()}
			continue
		}
		out, err := c.runPage(ctx, q)
		if err != nil {
			items[i] = batchItem{Status: statusOf(err), Error: err.Error()}
			continue
		}
		items[i] = batchItem{
			Status:       http.StatusOK,
			Cached:       out.cached,
			Truncated:    out.truncated,
			NextCursor:   out.nextCursor,
			Incomplete:   out.incomplete,
			WorkerErrors: out.failed,
			Result:       out.raw,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": c.trackedHash(c.workers),
		"took_ms":    msSince(start),
		"results":    items,
	})
}

// coordinator stream line shapes; the meet lines are identical to a
// worker's, the trailer adds the partial-result fields.
type streamHeader struct {
	Header     bool   `json:"header"`
	Node       string `json:"node"`
	Generation uint64 `json:"generation"`
	Total      int    `json:"total"`
	Unmatched  int    `json:"unmatched"`
}

type streamTrailer struct {
	Trailer      bool              `json:"trailer"`
	Unmatched    int               `json:"unmatched"`
	Truncated    bool              `json:"truncated,omitempty"`
	NextCursor   string            `json:"next_cursor,omitempty"`
	Incomplete   bool              `json:"incomplete,omitempty"`
	WorkerErrors map[string]string `json:"worker_errors,omitempty"`
	TookMS       float64           `json:"took_ms"`
}

// handleStream is the coordinator's ?stream=1 form: the workers'
// NDJSON streams merged line by line into the global rank, flushed as
// produced. Like the single-node endpoint it bypasses the cache — the
// value is the incremental production.
func (c *Coordinator) handleStream(ctx context.Context, w http.ResponseWriter, start time.Time, q *clusterQuery, withHeader bool) {
	if err := q.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	if strings.TrimSpace(q.Query) != "" {
		writeError(w, statusOf(errQueryLanguage), "%v", errQueryLanguage)
		return
	}
	base := q.base()
	metrics.SetFingerprint(ctx, base)
	offset, curGen, err := ncq.ResolveCursor(q.Cursor, base)
	if err != nil {
		writeError(w, statusOf(err), "%v", err)
		return
	}
	c.queries.Add(1)
	c.streamsInflight.Inc()
	defer c.streamsInflight.Dec()
	g, err := c.scatterQuery(ctx, q, offset)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	defer g.Close()
	if q.Cursor != "" && curGen != g.hash {
		writeError(w, http.StatusGone,
			"ncq: %v: the cluster changed since this cursor was minted", ncq.ErrStaleCursor)
		return
	}
	flusher, _ := w.(http.Flusher)
	started := false
	writeLine := func(v any) bool {
		line, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	ensureStarted := func() {
		if started {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-NCQ-Cache", "bypass")
		w.WriteHeader(http.StatusOK)
		started = true
		if withHeader {
			writeLine(streamHeader{
				Header:     true,
				Node:       c.cfg.NodeName,
				Generation: g.hash,
				Total:      g.total,
				Unmatched:  g.unmatched,
			})
		}
	}
	for m, err := range ncq.MergeMeets(ctx, g.sources, offset, q.Limit) {
		if err != nil {
			if !started {
				writeError(w, statusOf(err), "%v", err)
			} else {
				writeLine(map[string]string{"error": err.Error()})
			}
			return
		}
		ensureStarted()
		if !writeLine(map[string]*ncq.CorpusMeet{"meet": &m}) {
			return // client went away
		}
	}
	ensureStarted()
	tr := streamTrailer{
		Trailer:      true,
		Unmatched:    g.unmatched,
		Incomplete:   g.incomplete(),
		WorkerErrors: g.failures(),
		TookMS:       msSince(start),
	}
	if q.Limit > 0 && g.total > offset+q.Limit {
		tr.Truncated = true
		if !tr.Incomplete {
			tr.NextCursor = ncq.MintCursor(offset+q.Limit, base, g.hash)
		}
	}
	writeLine(tr)
}

// handleDocProxy routes a document read or mutation to the worker
// that owns the name on the ring. Mutations are never retried (a
// replayed PUT racing another client is not idempotent in effect);
// the owner's generation stamp is folded into the tracked vector, so
// the very next query's cursor already reflects the mutation.
func (c *Coordinator) handleDocProxy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	wk := c.Owner(name)
	target := wk.URL + "/v1/docs/" + url.PathEscape(name)
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.WorkerTimeout)
	defer cancel()
	attempts := 1
	if r.Method == http.MethodGet {
		attempts += c.cfg.Retries // reads are safe to retry; mutations are not
	}
	var resp *http.Response
	var err error
	for i := 0; i < attempts; i++ {
		var req *http.Request
		req, err = http.NewRequestWithContext(ctx, r.Method, target, r.Body)
		if err != nil {
			break
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		req.ContentLength = r.ContentLength
		resp, err = c.client.Do(req)
		if err == nil {
			break
		}
	}
	if err != nil {
		writeError(w, http.StatusBadGateway, "worker %s: %v", wk.Name, err)
		return
	}
	defer resp.Body.Close()
	if gen := resp.Header.Get("X-NCQ-Generation"); gen != "" {
		if v, err := strconv.ParseUint(gen, 10, 64); err == nil {
			c.noteGen(wk.Name, v)
		}
	}
	mutation := r.Method == http.MethodPut || r.Method == http.MethodDelete
	if mutation && resp.StatusCode < 300 {
		c.mutations.Add(1)
		c.cache.Purge()
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-NCQ-Worker", wk.Name)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// workerDoc is one document of the cluster listing: the worker's
// docInfo plus which worker holds it.
type workerDoc struct {
	Name   string          `json:"name"`
	Shards int             `json:"shards"`
	Stats  json.RawMessage `json:"stats"`
	Worker string          `json:"worker"`
}

func (c *Coordinator) handleListDocs(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		docs []workerDoc
		err  error
	}
	results := c.forEachWorker(r.Context(), func(ctx context.Context, wk Worker) any {
		var out listing
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.URL+"/v1/docs", nil)
		if err != nil {
			out.err = err
			return out
		}
		resp, err := c.client.Do(req)
		if err != nil {
			out.err = err
			return out
		}
		defer resp.Body.Close()
		var body struct {
			Docs       []workerDoc `json:"docs"`
			Generation uint64      `json:"generation"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			out.err = err
			return out
		}
		if resp.StatusCode != http.StatusOK {
			out.err = fmt.Errorf("status %d", resp.StatusCode)
			return out
		}
		c.noteGen(wk.Name, body.Generation)
		for i := range body.Docs {
			body.Docs[i].Worker = wk.Name
		}
		out.docs = body.Docs
		return out
	})
	docs := []workerDoc{}
	workerErrors := map[string]string{}
	for i, res := range results {
		l := res.(listing)
		if l.err != nil {
			workerErrors[c.workers[i].Name] = l.err.Error()
			continue
		}
		docs = append(docs, l.docs...)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	body := map[string]any{
		"docs":       docs,
		"generation": c.trackedHash(c.workers),
	}
	if len(workerErrors) > 0 {
		body["worker_errors"] = workerErrors
	}
	writeJSON(w, http.StatusOK, body)
}

// forEachWorker runs fn against every worker in parallel, each under
// its own WorkerTimeout derived from ctx — so a caller that goes away
// (a disconnected /v1/docs or /v1/stats client) cancels the whole
// scatter instead of leaving len(workers) orphaned requests running
// to their full timeout. Results come back in worker order.
func (c *Coordinator) forEachWorker(ctx context.Context, fn func(ctx context.Context, wk Worker) any) []any {
	out := make([]any, len(c.workers))
	done := make(chan int, len(c.workers))
	for i, wk := range c.workers {
		go func(i int, wk Worker) {
			wctx, cancel := context.WithTimeout(ctx, c.cfg.WorkerTimeout)
			defer cancel()
			out[i] = fn(wctx, wk)
			done <- i
		}(i, wk)
	}
	for range c.workers {
		<-done
	}
	return out
}

// handleHealthz reports the coordinator's liveness and a live poll of
// every worker: "ok" when all workers answer, "degraded" otherwise.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	health := c.PollOnce(r.Context())
	status := "ok"
	for _, h := range health {
		if h.Status != "ok" {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"node":       c.cfg.NodeName,
		"role":       "coordinator",
		"generation": c.trackedHash(c.workers),
		"workers":    health,
	})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := c.forEachWorker(r.Context(), func(ctx context.Context, wk Worker) any {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.URL+"/v1/stats", nil)
		if err != nil {
			return map[string]string{"name": wk.Name, "error": err.Error()}
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return map[string]string{"name": wk.Name, "error": err.Error()}
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil || resp.StatusCode != http.StatusOK {
			return map[string]string{"name": wk.Name, "error": fmt.Sprintf("status %d", resp.StatusCode)}
		}
		return json.RawMessage(raw)
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"node":           c.cfg.NodeName,
		"role":           "coordinator",
		"uptime_seconds": time.Since(c.started).Seconds(),
		"generation":     c.trackedHash(c.workers),
		"workers":        len(c.workers),
		"queries":        c.queries.Load(),
		"mutations":      c.mutations.Load(),
		"cache":          c.cache.Stats(),
		"admission":      c.limiter.Stats(),
		"worker_stats":   stats,
	})
}
