// Package cluster turns ncqd into a horizontally scalable system: a
// coordinator node that places documents on worker nodes by consistent
// hashing and scatter-gathers queries across them, merging the
// workers' independently ranked NDJSON streams into one exact global
// ranking.
//
// The design exploits the symmetry PR 5 created: a corpus member is a
// ranked stream k-way merged by (distance, source, shard, node), so a
// remote worker speaking NDJSON over /v2/query?stream=1&header=1 is
// the same abstraction as a local member. The coordinator opens one
// stream per worker, reads each worker's header (total, unmatched,
// generation), and feeds the per-line decoded meets into
// ncq.MergeMeets — the first global result is bounded by the slowest
// worker's first answer, never by any worker's full answer set.
// Because consistent hashing places every logical document on exactly
// one worker, the per-worker rankings cover disjoint (source, shard)
// sets and their merge equals the single-node ranking bit for bit.
//
// Consistency across pages is generation-vector based: every worker
// stamps its stream header with the corpus generation its membership
// snapshot was taken at, the coordinator hashes the gathered vector
// into the cursor it mints, and a later page whose gathered vector
// hashes differently fails with 410 Gone — exactly the single-node
// ErrStaleCursor contract, extended across nodes.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerWorker is how many virtual nodes each worker contributes to
// the ring. 128 keeps the placement spread within a few percent of
// uniform for small worker counts while the ring stays tiny.
const vnodesPerWorker = 128

// Ring is a consistent-hash ring placing logical document names on
// worker nodes. Placement is deterministic in the worker set alone —
// virtual nodes are hashed from worker names, so every coordinator
// configured with the same workers (in any order) routes a name
// identically — and adding or removing one worker moves only ~1/n of
// the names instead of reshuffling everything.
type Ring struct {
	hashes []uint64 // sorted vnode positions
	owners []string // owners[i] owns the arc ending at hashes[i]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a clusters on short similar keys ("w1#0", "w1#1", ...); the
	// splitmix64 finalizer avalanches the bits so vnode positions — and
	// document names — spread uniformly around the ring.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds the ring over the given worker names.
func NewRing(workers []string) *Ring {
	r := &Ring{
		hashes: make([]uint64, 0, len(workers)*vnodesPerWorker),
		owners: make([]string, 0, len(workers)*vnodesPerWorker),
	}
	type vnode struct {
		hash  uint64
		owner string
	}
	vnodes := make([]vnode, 0, len(workers)*vnodesPerWorker)
	for _, w := range workers {
		for i := 0; i < vnodesPerWorker; i++ {
			vnodes = append(vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", w, i)), owner: w})
		}
	}
	// The owner tie-break keeps placement deterministic even on the
	// (astronomically unlikely) vnode hash collision.
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		return vnodes[i].owner < vnodes[j].owner
	})
	for _, v := range vnodes {
		r.hashes = append(r.hashes, v.hash)
		r.owners = append(r.owners, v.owner)
	}
	return r
}

// Owner returns the worker that owns the logical document name: the
// first virtual node at or clockwise after the name's hash.
func (r *Ring) Owner(name string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := hash64(name)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the highest vnode onto the first
	}
	return r.owners[i]
}
