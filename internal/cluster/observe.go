package cluster

// Coordinator observability and admission. Mirrors the single-node
// server (internal/server/observe.go): a per-instance registry served
// at GET /v1/metrics, one request-log line per request, and an
// admission gate on the query route only. On top of that the
// coordinator tracks its scatter edge — per-worker stream-open latency
// and a per-worker error counter by kind — because in a cluster the
// first question behind a latency regression is "which worker".

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"ncq/internal/admission"
	"ncq/internal/metrics"
)

// initObservability registers the coordinator's metric families.
// Called once from New, before routes.
func (c *Coordinator) initObservability() {
	reg := c.reg
	c.httpm = metrics.NewHTTP(reg)

	c.queriesInflight = reg.Gauge("ncq_queries_inflight",
		"Query requests currently admitted and executing (including streams).")
	c.streamsInflight = reg.Gauge("ncq_streams_inflight",
		"Merged NDJSON query streams currently open to clients.")
	c.scatterDur = reg.HistogramVec("ncq_worker_scatter_duration_seconds",
		"Time from scatter to a worker's stream header (its counters and first answer ready), per worker.",
		nil, "worker")
	c.workerErrs = reg.CounterVec("ncq_worker_errors_total",
		"Worker failures during scatter, by worker and kind (http_4xx, http_5xx, timeout, transport).",
		"worker", "kind")

	reg.CounterFunc("ncq_queries_total",
		"Term queries that reached scatter execution, batch items included.",
		func() float64 { return float64(c.queries.Load()) })
	reg.CounterFunc("ncq_mutations_total",
		"Document mutations routed to ring owners that succeeded.",
		func() float64 { return float64(c.mutations.Load()) })
	reg.GaugeFunc("ncq_pool_depth",
		"Cluster membership: the number of configured workers.",
		func() float64 { return float64(len(c.workers)) })
	reg.GaugeFunc("ncq_uptime_seconds",
		"Seconds since the coordinator was constructed.",
		func() float64 { return time.Since(c.started).Seconds() })

	reg.CounterFunc("ncq_cache_hits_total",
		"Result cache lookups answered from the cache.",
		func() float64 { return float64(c.cache.Stats().Hits) })
	reg.CounterFunc("ncq_cache_misses_total",
		"Result cache lookups that fell through to a scatter.",
		func() float64 { return float64(c.cache.Stats().Misses) })
	reg.GaugeFunc("ncq_cache_hit_ratio",
		"Lifetime cache hit ratio: hits / (hits + misses); 0 before any lookup.",
		func() float64 {
			st := c.cache.Stats()
			total := st.Hits + st.Misses
			if total == 0 {
				return 0
			}
			return float64(st.Hits) / float64(total)
		})
	reg.GaugeFunc("ncq_cache_entries",
		"Entries currently resident in the result cache.",
		func() float64 { return float64(c.cache.Stats().Entries) })
	reg.GaugeFunc("ncq_cache_bytes",
		"Approximate bytes currently retained by the result cache.",
		func() float64 { return float64(c.cache.Stats().Bytes) })
	reg.GaugeFunc("ncq_cache_cap_bytes",
		"Configured byte capacity of the result cache.",
		func() float64 { return float64(c.cache.Stats().CapBytes) })
	reg.CounterFunc("ncq_cache_evictions_total",
		"Entries evicted from the result cache to stay within capacity.",
		func() float64 { return float64(c.cache.Stats().Evictions) })

	reg.GaugeFunc("ncq_admission_inflight",
		"Executions currently holding an admission slot; 0 when admission control is off.",
		func() float64 { return float64(c.limiter.Stats().InFlight) })
	reg.GaugeFunc("ncq_admission_queued",
		"Acquisitions currently waiting for an admission slot.",
		func() float64 { return float64(c.limiter.Stats().Queued) })
	reg.GaugeFunc("ncq_admission_capacity",
		"Configured admission concurrency limit; 0 when admission control is off.",
		func() float64 { return float64(c.limiter.Stats().MaxConcurrent) })
	reg.CounterFunc("ncq_admission_admitted_total",
		"Query requests granted an admission slot.",
		func() float64 { return float64(c.limiter.Stats().Admitted) })
	reg.CounterFunc("ncq_admission_rejected_total",
		"Query requests shed with 429 because slots and queue were full.",
		func() float64 { return float64(c.limiter.Stats().Rejected) })
}

// observeScatter records one worker stream-open outcome: the latency
// to its header on success, a per-kind error count on failure — and,
// on failure, one log line naming the worker, since "which worker" is
// the first question a degraded cluster raises.
func (c *Coordinator) observeScatter(wk Worker, elapsed time.Duration, err error) {
	if err == nil {
		c.scatterDur.With(wk.Name).Observe(elapsed.Seconds())
		return
	}
	c.workerErrs.With(wk.Name, errKind(err)).Inc()
	if c.logger != nil {
		c.logger.Warn("worker scatter failed",
			"worker", wk.Name, "kind", errKind(err),
			"duration", elapsed, "err", err)
	}
}

// errKind buckets a worker failure for ncq_worker_errors_total.
func errKind(err error) string {
	var he *workerHTTPError
	switch {
	case errors.As(err, &he):
		if he.status < 500 {
			return "http_4xx"
		}
		return "http_5xx"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "transport"
	}
}

// admit gates the query route behind the admission limiter, exactly
// like the single-node server: saturation answers 429 + Retry-After
// before any worker connection is opened.
func (c *Coordinator) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := c.limiter.Acquire(r.Context())
		if err != nil {
			if errors.Is(err, admission.ErrSaturated) {
				w.Header().Set("Retry-After", strconv.Itoa(c.limiter.RetryAfterSeconds()))
				writeError(w, http.StatusTooManyRequests,
					"coordinator saturated; retry after %d second(s)", c.limiter.RetryAfterSeconds())
				return
			}
			writeError(w, 499, "client closed request while queued for admission")
			return
		}
		defer release()
		c.queriesInflight.Inc()
		defer c.queriesInflight.Dec()
		next.ServeHTTP(w, r)
	})
}
