package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestListDocsCancellationPropagates pins the fix for the /v1/docs and
// /v1/stats scatter running on a context detached from the request:
// a client that goes away must cancel the in-flight worker calls, not
// leave them running out the full WorkerTimeout. The fake worker
// stalls its /v1/docs handler until its request context is cancelled;
// only the coordinator propagating the client's cancellation can
// release it before the one-minute timeout.
func TestListDocsCancellationPropagates(t *testing.T) {
	var startOnce, releaseOnce sync.Once
	started := make(chan struct{})
	released := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/docs" {
			w.WriteHeader(http.StatusOK)
			return
		}
		startOnce.Do(func() { close(started) })
		<-r.Context().Done()
		releaseOnce.Do(func() { close(released) })
	}))
	defer stalled.Close()

	_, coordTS := startCoordinator(t, Config{
		Workers:       []Worker{{Name: "stalled", URL: stalled.URL}},
		WorkerTimeout: time.Minute,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordTS.URL+"/v1/docs", nil)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never received the scatter request")
	}
	cancel()

	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("client cancellation did not reach the worker; the scatter is not inheriting the request context")
	}
	<-clientDone
}
