package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ncq"
	"ncq/internal/server"
)

// startWorker runs a plain ncqd node (the worker role is just a
// label) on an httptest listener.
func startWorker(tb testing.TB, name string) (*server.Server, Worker) {
	tb.Helper()
	srv := server.New(nil, server.WithNodeName(name), server.WithRole("worker"))
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return srv, Worker{Name: name, URL: ts.URL}
}

func startCoordinator(tb testing.TB, cfg Config) (*Coordinator, *httptest.Server) {
	tb.Helper()
	c, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	tb.Cleanup(ts.Close)
	return c, ts
}

// docXML builds one deterministic pseudo-random bibliography document.
func docXML(r *rand.Rand, records int) string {
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb,
			"<article><author>Author%d</author><year>%d</year><title>Topic%d study</title></article>",
			r.Intn(30), 1990+r.Intn(12), r.Intn(8))
	}
	sb.WriteString("</bib>")
	return sb.String()
}

// addDoc loads xml straight into a worker's corpus, bypassing routing
// — for tests that control placement themselves.
func addDoc(tb testing.TB, srv *server.Server, name, xml string) {
	tb.Helper()
	db, err := ncq.Open(strings.NewReader(xml))
	if err != nil {
		tb.Fatal(err)
	}
	if err := srv.Corpus().Add(name, db); err != nil {
		tb.Fatal(err)
	}
}

func httpDo(tb testing.TB, method, url, body string) (int, []byte) {
	tb.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, raw
}

// envelope covers both the single-node and the coordinator /v2/query
// response shapes.
type envelope struct {
	Cached       bool              `json:"cached"`
	Generation   uint64            `json:"generation"`
	Truncated    bool              `json:"truncated"`
	NextCursor   string            `json:"next_cursor"`
	Incomplete   bool              `json:"incomplete"`
	WorkerErrors map[string]string `json:"worker_errors"`
	Result       json.RawMessage   `json:"result"`
}

func postQuery(tb testing.TB, baseURL, body string) (int, envelope, []byte) {
	tb.Helper()
	status, raw := httpDo(tb, "POST", baseURL+"/v2/query", body)
	var env envelope
	if status == http.StatusOK {
		if err := json.Unmarshal(raw, &env); err != nil {
			tb.Fatalf("decode %q: %v", raw, err)
		}
	}
	return status, env, raw
}

func TestParseWorkers(t *testing.T) {
	wks, err := ParseWorkers("db1:7171, http://db2:7171")
	if err != nil {
		t.Fatal(err)
	}
	if len(wks) != 2 || wks[0].Name != "db1:7171" || wks[0].URL != "http://db1:7171" ||
		wks[1].Name != "db2:7171" || wks[1].URL != "http://db2:7171" {
		t.Fatalf("ParseWorkers = %+v", wks)
	}
	for _, bad := range []string{"", "a:1,,b:2", "a:1,a:1"} {
		if _, err := ParseWorkers(bad); err == nil {
			t.Errorf("ParseWorkers(%q) succeeded", bad)
		}
	}
}

// TestRingPlacement pins the consistent-hashing contract: placement is
// deterministic and order-independent, reasonably balanced, and
// removing a worker moves only the names that worker owned.
func TestRingPlacement(t *testing.T) {
	names := make([]string, 1000)
	for i := range names {
		names[i] = fmt.Sprintf("doc-%d", i)
	}
	r1 := NewRing([]string{"a", "b", "c"})
	r2 := NewRing([]string{"c", "a", "b"})
	counts := map[string]int{}
	for _, n := range names {
		if r1.Owner(n) != r2.Owner(n) {
			t.Fatalf("placement depends on worker order for %q", n)
		}
		counts[r1.Owner(n)]++
	}
	for _, w := range []string{"a", "b", "c"} {
		if counts[w] < len(names)/10 {
			t.Errorf("worker %s owns only %d of %d names", w, counts[w], len(names))
		}
	}
	shrunk := NewRing([]string{"a", "b"})
	for _, n := range names {
		if owner := r1.Owner(n); owner != "c" && shrunk.Owner(n) != owner {
			t.Fatalf("removing c moved %q from %s to %s", n, owner, shrunk.Owner(n))
		}
	}
}

// TestDistributedEqualsSingleNode is the cluster's ground truth: a
// random corpus split across three workers by the ring must answer
// byte-identically to one node holding every document — including
// each cursor page and the 410 a mutation forces between pages.
func TestDistributedEqualsSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := map[string]string{}
	for i := 0; i < 9; i++ {
		docs[fmt.Sprintf("doc%d", i)] = docXML(rng, 4+rng.Intn(10))
	}

	single := server.New(nil)
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	var workers []Worker
	var srvs []*server.Server
	for i := 1; i <= 3; i++ {
		srv, w := startWorker(t, fmt.Sprintf("w%d", i))
		srvs, workers = append(srvs, srv), append(workers, w)
	}
	coord, coordTS := startCoordinator(t, Config{Workers: workers})

	for name, xml := range docs {
		if status, body := httpDo(t, "PUT", singleTS.URL+"/v1/docs/"+name, xml); status != http.StatusCreated {
			t.Fatalf("single PUT %s: %d %s", name, status, body)
		}
		if status, body := httpDo(t, "PUT", coordTS.URL+"/v1/docs/"+name, xml); status != http.StatusCreated {
			t.Fatalf("cluster PUT %s: %d %s", name, status, body)
		}
	}
	for i, srv := range srvs {
		if srv.Corpus().Len() == 0 {
			t.Fatalf("worker %d holds no documents; placement degenerate", i+1)
		}
	}
	// Every document must live on exactly the worker the ring names.
	for name := range docs {
		owner := coord.Owner(name)
		for i, srv := range srvs {
			if has := srv.Corpus().Has(name); has != (workers[i].Name == owner.Name) {
				t.Fatalf("doc %s: on worker %s (has=%t), ring owner %s", name, workers[i].Name, has, owner.Name)
			}
		}
	}

	queries := []string{
		`{"terms":["Author1","199"],"exclude_root":true}`,
		`{"terms":["Topic3"],"exclude_root":true,"nearest":true}`,
		`{"doc":"doc3","terms":["Author","nosuchterm"],"exclude_root":true}`,
		`{"terms":["nosuchterm"]}`,
	}
	for _, q := range queries {
		sStatus, sEnv, sRaw := postQuery(t, singleTS.URL, q)
		cStatus, cEnv, cRaw := postQuery(t, coordTS.URL, q)
		if sStatus != http.StatusOK || cStatus != http.StatusOK {
			t.Fatalf("query %s: single %d %s, cluster %d %s", q, sStatus, sRaw, cStatus, cRaw)
		}
		if string(sEnv.Result) != string(cEnv.Result) {
			t.Errorf("query %s:\nsingle  %s\ncluster %s", q, sEnv.Result, cEnv.Result)
		}
	}

	// Cursor pagination: every page byte-identical, same page count.
	base := `{"terms":["Author1","199"],"exclude_root":true,"limit":4`
	sCursor, cCursor, pages := "", "", 0
	var firstClusterCursor string
	for {
		sq, cq := base+"}", base+"}"
		if sCursor != "" {
			sq = fmt.Sprintf(`%s,"cursor":%q}`, base, sCursor)
			cq = fmt.Sprintf(`%s,"cursor":%q}`, base, cCursor)
		}
		sStatus, sEnv, sRaw := postQuery(t, singleTS.URL, sq)
		cStatus, cEnv, cRaw := postQuery(t, coordTS.URL, cq)
		if sStatus != http.StatusOK || cStatus != http.StatusOK {
			t.Fatalf("page %d: single %d %s, cluster %d %s", pages, sStatus, sRaw, cStatus, cRaw)
		}
		if string(sEnv.Result) != string(cEnv.Result) {
			t.Fatalf("page %d differs:\nsingle  %s\ncluster %s", pages, sEnv.Result, cEnv.Result)
		}
		if sEnv.Truncated != cEnv.Truncated {
			t.Fatalf("page %d: truncated single=%t cluster=%t", pages, sEnv.Truncated, cEnv.Truncated)
		}
		if pages == 0 && cEnv.NextCursor != "" {
			firstClusterCursor = cEnv.NextCursor
		}
		pages++
		if !sEnv.Truncated {
			break
		}
		sCursor, cCursor = sEnv.NextCursor, cEnv.NextCursor
		if pages > 50 {
			t.Fatal("pagination did not terminate")
		}
	}
	if pages < 2 {
		t.Fatalf("workload too small: %d page(s)", pages)
	}

	// Streaming: the coordinator's merged NDJSON equals the single
	// node's, meet line for meet line.
	sMeets := streamMeets(t, singleTS.URL, `{"terms":["Author1","199"],"exclude_root":true}`)
	cMeets := streamMeets(t, coordTS.URL, `{"terms":["Author1","199"],"exclude_root":true}`)
	if len(sMeets) == 0 || len(sMeets) != len(cMeets) {
		t.Fatalf("streamed %d meets single, %d cluster", len(sMeets), len(cMeets))
	}
	for i := range sMeets {
		if sMeets[i] != cMeets[i] {
			t.Fatalf("streamed meet %d differs: %s vs %s", i, sMeets[i], cMeets[i])
		}
	}

	// A mutation between pages re-ranks the answer set on both
	// topologies: the pre-mutation cursor must fail with 410 Gone.
	extra := docXML(rng, 5)
	if status, body := httpDo(t, "PUT", coordTS.URL+"/v1/docs/late", extra); status != http.StatusCreated {
		t.Fatalf("cluster PUT late: %d %s", status, body)
	}
	if status, _ := httpDo(t, "PUT", singleTS.URL+"/v1/docs/late", extra); status != http.StatusCreated {
		t.Fatal("single PUT late failed")
	}
	staleQ := fmt.Sprintf(`%s,"cursor":%q}`, base, firstClusterCursor)
	if status, _, raw := postQuery(t, coordTS.URL, staleQ); status != http.StatusGone {
		t.Fatalf("stale cluster cursor: %d %s", status, raw)
	}
}

// streamMeets drains a /v2/query?stream=1 response into its meet
// lines (as compacted JSON strings) and checks the trailer arrived.
func streamMeets(tb testing.TB, baseURL, body string) []string {
	tb.Helper()
	resp, err := http.Post(baseURL+"/v2/query?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		tb.Fatalf("stream: %d %s", resp.StatusCode, raw)
	}
	var meets []string
	sawTrailer := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), scanBufSize)
	for sc.Scan() {
		var line struct {
			Meet    json.RawMessage `json:"meet"`
			Trailer bool            `json:"trailer"`
			Error   string          `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			tb.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			tb.Fatalf("error line: %s", line.Error)
		case line.Trailer:
			sawTrailer = true
		case line.Meet != nil:
			meets = append(meets, string(line.Meet))
		}
	}
	if !sawTrailer {
		tb.Fatal("stream ended without a trailer")
	}
	return meets
}

// startFaultyWorker serves the streaming protocol far enough to be
// admitted to the merge — 200, header line — then kills the
// connection: a worker dying mid-stream.
func startFaultyWorker(tb testing.TB, name string) Worker {
	tb.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/healthz":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"status":"ok","node":%q,"generation":1,"docs":1}`, name)
		case r.URL.Path == "/v2/query":
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			fmt.Fprintf(w, `{"header":true,"node":%q,"generation":1,"total":3,"unmatched":0}`+"\n", name)
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		default:
			http.NotFound(w, r)
		}
	}))
	tb.Cleanup(ts.Close)
	return Worker{Name: name, URL: ts.URL}
}

// TestPartialResults pins the failure semantics: a worker dying
// mid-stream fails the query with 502 and per-worker detail by
// default, while allow_partial degrades to the surviving workers'
// exact merged ranking marked incomplete — with no resume cursor,
// since a partial page chain could silently skip answers.
func TestPartialResults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w1Srv, w1 := startWorker(t, "w1")
	w2Srv, w2 := startWorker(t, "w2")
	addDoc(t, w1Srv, "alpha", docXML(rng, 8))
	addDoc(t, w2Srv, "beta", docXML(rng, 8))
	faulty := startFaultyWorker(t, "faulty")

	// Reference: the two healthy workers alone.
	_, healthyTS := startCoordinator(t, Config{Workers: []Worker{w1, w2}})
	_, mixedTS := startCoordinator(t, Config{Workers: []Worker{w1, w2, faulty}, Retries: 0})

	q := `{"terms":["Author","199"],"exclude_root":true}`
	_, want, _ := postQuery(t, healthyTS.URL, q)

	status, _, raw := postQuery(t, mixedTS.URL, q)
	if status != http.StatusBadGateway {
		t.Fatalf("strict mode: status %d, want 502 (%s)", status, raw)
	}
	if !strings.Contains(string(raw), "faulty") {
		t.Errorf("strict error lacks worker detail: %s", raw)
	}

	partialQ := `{"terms":["Author","199"],"exclude_root":true,"allow_partial":true}`
	status, env, raw := postQuery(t, mixedTS.URL, partialQ)
	if status != http.StatusOK {
		t.Fatalf("allow_partial: status %d (%s)", status, raw)
	}
	if !env.Incomplete {
		t.Error("allow_partial response not marked incomplete")
	}
	if env.WorkerErrors["faulty"] == "" {
		t.Errorf("missing per-worker error detail: %v", env.WorkerErrors)
	}
	if env.NextCursor != "" {
		t.Error("partial result minted a resume cursor")
	}
	if string(env.Result) != string(want.Result) {
		t.Errorf("partial result is not the survivors' exact merge:\ngot  %s\nwant %s", env.Result, want.Result)
	}

	// The streaming form reports the same degradation in its trailer.
	resp, err := http.Post(mixedTS.URL+"/v2/query?stream=1", "application/json", strings.NewReader(partialQ))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawIncomplete bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Trailer      bool              `json:"trailer"`
			Incomplete   bool              `json:"incomplete"`
			WorkerErrors map[string]string `json:"worker_errors"`
		}
		if json.Unmarshal(sc.Bytes(), &line) == nil && line.Trailer {
			sawIncomplete = line.Incomplete && line.WorkerErrors["faulty"] != ""
		}
	}
	if !sawIncomplete {
		t.Error("streaming trailer did not carry incomplete + worker_errors")
	}
}

// TestCoordinatorFirstYieldBeforeWorkerDrains instruments the NDJSON
// decode path: the coordinator's first globally ranked result must be
// produced while every worker's stream is still open — before any
// worker's trailer has been decoded — which pins that the merge
// consumes the streams incrementally instead of buffering them.
func TestCoordinatorFirstYieldBeforeWorkerDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w1Srv, w1 := startWorker(t, "w1")
	w2Srv, w2 := startWorker(t, "w2")
	addDoc(t, w1Srv, "alpha", docXML(rng, 20))
	addDoc(t, w2Srv, "beta", docXML(rng, 20))
	coord, _ := startCoordinator(t, Config{Workers: []Worker{w1, w2}})

	var mu sync.Mutex
	decoded := map[string][]string{} // worker -> line kinds, in decode order
	testLineDecode = func(worker, kind string) {
		mu.Lock()
		decoded[worker] = append(decoded[worker], kind)
		mu.Unlock()
	}
	defer func() { testLineDecode = nil }()

	q := &clusterQuery{Terms: []string{"Author", "199"}, ExcludeRoot: true}
	g, err := coord.scatterQuery(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	trailers := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, kinds := range decoded {
			for _, k := range kinds {
				if k == "trailer" {
					n++
				}
			}
		}
		return n
	}
	yields := 0
	for _, err := range ncq.MergeMeets(context.Background(), g.sources, 0, 0) {
		if err != nil {
			t.Fatal(err)
		}
		if yields == 0 {
			if n := trailers(); n != 0 {
				t.Fatalf("first merged yield after %d worker stream(s) fully drained", n)
			}
			mu.Lock()
			for _, w := range []string{"w1", "w2"} {
				if len(decoded[w]) == 0 || decoded[w][0] != "header" {
					t.Errorf("worker %s: decoded %v before first yield, want header first", w, decoded[w])
				}
			}
			mu.Unlock()
		}
		yields++
	}
	if yields < 4 {
		t.Fatalf("workload too small: %d yields", yields)
	}
	if trailers() != 2 {
		t.Errorf("full drain decoded %d trailers, want 2", trailers())
	}
}

// TestCoordinatorCache pins the generation-vector cache: a repeated
// page is a hit, and a routed mutation advances the vector so the
// next query misses instead of serving the stale ranking.
func TestCoordinatorCache(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, w1 := startWorker(t, "w1")
	_, w2 := startWorker(t, "w2")
	_, coordTS := startCoordinator(t, Config{Workers: []Worker{w1, w2}, CacheBytes: 1 << 20})

	if status, body := httpDo(t, "PUT", coordTS.URL+"/v1/docs/seed", docXML(rng, 8)); status != http.StatusCreated {
		t.Fatalf("PUT seed: %d %s", status, body)
	}
	q := `{"terms":["Author","199"],"exclude_root":true}`
	_, first, _ := postQuery(t, coordTS.URL, q)
	if first.Cached {
		t.Error("first query served from cache")
	}
	_, second, _ := postQuery(t, coordTS.URL, q)
	if !second.Cached {
		t.Error("repeated query missed the cache")
	}
	if status, body := httpDo(t, "PUT", coordTS.URL+"/v1/docs/more", docXML(rng, 4)); status != http.StatusCreated {
		t.Fatalf("PUT more: %d %s", status, body)
	}
	_, third, _ := postQuery(t, coordTS.URL, q)
	if third.Cached {
		t.Error("query after mutation served the stale cached ranking")
	}
	if third.Generation == second.Generation {
		t.Error("mutation did not advance the generation vector")
	}
}

// TestCoordinatorRequestErrors pins the coordinator-side error
// mapping: query-language requests are 501, garbage cursors 400.
func TestCoordinatorRequestErrors(t *testing.T) {
	_, w1 := startWorker(t, "w1")
	_, coordTS := startCoordinator(t, Config{Workers: []Worker{w1}})
	if status, _ := httpDo(t, "POST", coordTS.URL+"/v2/query", `{"query":"SELECT e1 FROM //author AS e1"}`); status != http.StatusNotImplemented {
		t.Errorf("query-language request: %d, want 501", status)
	}
	if status, _ := httpDo(t, "POST", coordTS.URL+"/v2/query", `{"terms":["x"],"cursor":"garbage"}`); status != http.StatusBadRequest {
		t.Errorf("garbage cursor: %d, want 400", status)
	}
	if status, _ := httpDo(t, "POST", coordTS.URL+"/v2/query", `{}`); status != http.StatusBadRequest {
		t.Errorf("empty request: %d, want 400", status)
	}
}

// TestClusterEndpoints covers the remaining surface: the merged
// document listing, the live health poll and the stats roll-up.
func TestClusterEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, w1 := startWorker(t, "w1")
	_, w2 := startWorker(t, "w2")
	coord, coordTS := startCoordinator(t, Config{Workers: []Worker{w1, w2}, NodeName: "front"})
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("doc%d", i)
		if status, body := httpDo(t, "PUT", coordTS.URL+"/v1/docs/"+name, docXML(rng, 3)); status != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", name, status, body)
		}
	}

	status, raw := httpDo(t, "GET", coordTS.URL+"/v1/docs", "")
	var listing struct {
		Docs []workerDoc `json:"docs"`
	}
	if status != http.StatusOK || json.Unmarshal(raw, &listing) != nil {
		t.Fatalf("GET /v1/docs: %d %s", status, raw)
	}
	if len(listing.Docs) != 4 {
		t.Fatalf("listing has %d docs, want 4: %s", len(listing.Docs), raw)
	}
	for _, d := range listing.Docs {
		if d.Worker != coord.Owner(d.Name).Name {
			t.Errorf("doc %s listed on %s, ring owner %s", d.Name, d.Worker, coord.Owner(d.Name).Name)
		}
	}

	status, raw = httpDo(t, "GET", coordTS.URL+"/v1/healthz", "")
	var health struct {
		Status  string         `json:"status"`
		Node    string         `json:"node"`
		Role    string         `json:"role"`
		Workers []workerHealth `json:"workers"`
	}
	if status != http.StatusOK || json.Unmarshal(raw, &health) != nil {
		t.Fatalf("GET /v1/healthz: %d %s", status, raw)
	}
	if health.Status != "ok" || health.Node != "front" || health.Role != "coordinator" || len(health.Workers) != 2 {
		t.Errorf("healthz = %s", raw)
	}

	// A GET for a document routes to its owner and relays the answer.
	status, raw = httpDo(t, "GET", coordTS.URL+"/v1/docs/doc1", "")
	if status != http.StatusOK || !strings.Contains(string(raw), `"name":"doc1"`) {
		t.Errorf("GET doc1: %d %s", status, raw)
	}
	if status, _ := httpDo(t, "DELETE", coordTS.URL+"/v1/docs/doc1", ""); status != http.StatusNoContent {
		t.Errorf("DELETE doc1: %d", status)
	}
	if status, _ := httpDo(t, "GET", coordTS.URL+"/v1/docs/doc1", ""); status != http.StatusNotFound {
		t.Errorf("GET deleted doc1: %d, want 404", status)
	}

	status, raw = httpDo(t, "GET", coordTS.URL+"/v1/stats", "")
	var stats struct {
		Role    string `json:"role"`
		Workers int    `json:"workers"`
	}
	if status != http.StatusOK || json.Unmarshal(raw, &stats) != nil ||
		stats.Role != "coordinator" || stats.Workers != 2 {
		t.Errorf("GET /v1/stats: %d %s", status, raw)
	}
}

// BenchmarkCoordinatorScatterGather measures one scatter-gathered
// page over three workers: stream opens, header reads, k-way merge
// and result encoding, with the cache disabled so every iteration
// pays the full distributed path.
func BenchmarkCoordinatorScatterGather(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var workers []Worker
	for i := 1; i <= 3; i++ {
		srv, w := startWorker(b, fmt.Sprintf("w%d", i))
		for d := 0; d < 3; d++ {
			addDoc(b, srv, fmt.Sprintf("w%d-doc%d", i, d), docXML(rng, 10))
		}
		workers = append(workers, w)
	}
	coord, err := New(Config{Workers: workers, CacheBytes: 0})
	if err != nil {
		b.Fatal(err)
	}
	q := &clusterQuery{Terms: []string{"Author1", "199"}, ExcludeRoot: true, Limit: 10}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := coord.runPage(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if out.cached || len(out.raw) == 0 {
			b.Fatalf("iteration served from cache or empty (cached=%t)", out.cached)
		}
	}
}
