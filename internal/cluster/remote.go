package cluster

// The remote member: a worker's /v2/query?stream=1&header=1 NDJSON
// response consumed incrementally as an ncq.MeetSource. Each line is
// decoded as it arrives and handed to the k-way merge — the
// coordinator never buffers a worker's answer set, so its first global
// result is bounded by the slowest worker's first answer, exactly like
// the in-process fan-out it mirrors.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"ncq"
)

// Worker is one worker node of the cluster.
type Worker struct {
	Name string // identity used on the ring and in error detail
	URL  string // base URL, e.g. "http://db2:7171"
}

// ParseWorkers parses the -workers flag: a comma-separated list of
// worker addresses. A bare host:port gets the http scheme; the
// host:port is the worker's name.
func ParseWorkers(s string) ([]Worker, error) {
	var workers []Worker
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, errors.New("empty worker address")
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		u, err := url.Parse(part)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("invalid worker address %q", part)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("duplicate worker %q", u.Host)
		}
		seen[u.Host] = true
		workers = append(workers, Worker{Name: u.Host, URL: strings.TrimSuffix(u.String(), "/")})
	}
	if len(workers) == 0 {
		return nil, errors.New("no workers configured")
	}
	return workers, nil
}

// workerHTTPError is a non-200 response from a worker. A 4xx is a
// deterministic request error — the coordinator relays it verbatim
// instead of retrying or degrading, since every retry and every other
// worker would fail the same way for the same input.
type workerHTTPError struct {
	worker     string
	status     int
	msg        string
	retryAfter string // the worker's Retry-After hint, relayed on 429
}

func (e *workerHTTPError) Error() string {
	return fmt.Sprintf("worker %s: %s (status %d)", e.worker, e.msg, e.status)
}

// wireLine is the union of the NDJSON line shapes a worker stream
// carries: header, meet, trailer, error.
type wireLine struct {
	Header     bool            `json:"header"`
	Node       string          `json:"node"`
	Generation uint64          `json:"generation"`
	Total      int             `json:"total"`
	Unmatched  int             `json:"unmatched"`
	Meet       *ncq.CorpusMeet `json:"meet"`
	Trailer    bool            `json:"trailer"`
	Error      string          `json:"error"`
}

func (ln *wireLine) kind() string {
	switch {
	case ln.Meet != nil:
		return "meet"
	case ln.Header:
		return "header"
	case ln.Trailer:
		return "trailer"
	default:
		return "error"
	}
}

// testLineDecode, when set, is invoked for every NDJSON line decoded
// from a worker stream, with the worker's name and the line kind
// ("header", "meet", "trailer", "error"). Tests use it to observe that
// the coordinator's first merged yield happens before any worker's
// trailer has been decoded — i.e. before any stream fully drains.
var testLineDecode func(worker, kind string)

// scanBufSize bounds one NDJSON line; meets can carry whole XML
// subtrees, so the cap is generous.
const scanBufSize = 16 << 20

// workerStream is one worker's open NDJSON stream, consumed line by
// line as an ncq.MeetSource. The header has already been read by
// openStream; Next yields meets until the trailer. Failures — a broken
// connection, a mid-stream error line — are routed through onFail,
// which implements the partial-results policy: return the error to
// abort the whole merge (strict mode), or record it and return nil to
// end just this source (allow_partial).
type workerStream struct {
	worker Worker
	header wireLine
	body   io.ReadCloser
	sc     *bufio.Scanner
	cancel context.CancelFunc
	done   bool
	onFail func(w Worker, err error) error
}

func (s *workerStream) Next() (ncq.CorpusMeet, bool, error) {
	if s.done {
		return ncq.CorpusMeet{}, false, nil
	}
	if s.sc.Scan() {
		var ln wireLine
		if err := json.Unmarshal(s.sc.Bytes(), &ln); err != nil {
			return s.fail(fmt.Errorf("decode stream line: %w", err))
		}
		if hook := testLineDecode; hook != nil {
			hook(s.worker.Name, ln.kind())
		}
		switch {
		case ln.Meet != nil:
			return *ln.Meet, true, nil
		case ln.Trailer:
			s.close()
			return ncq.CorpusMeet{}, false, nil
		case ln.Error != "":
			return s.fail(errors.New(ln.Error))
		default:
			return s.fail(fmt.Errorf("unexpected stream line %q", s.sc.Text()))
		}
	}
	// The stream ended without a trailer: the worker died mid-answer.
	err := s.sc.Err()
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return s.fail(err)
}

// fail closes the stream and applies the failure policy.
func (s *workerStream) fail(err error) (ncq.CorpusMeet, bool, error) {
	s.close()
	err = fmt.Errorf("worker %s: %w", s.worker.Name, err)
	if s.onFail != nil {
		err = s.onFail(s.worker, err)
	}
	return ncq.CorpusMeet{}, false, err
}

// close releases the stream's connection; idempotent.
func (s *workerStream) close() {
	if s.done {
		return
	}
	s.done = true
	s.body.Close()
	s.cancel()
}

// openStream POSTs the query body to the worker's streaming endpoint
// and reads the header line — which the worker emits once its fan-out
// has completed and its counters are final, i.e. together with its
// first answer. Transport errors and 5xx responses are retried up to
// retries times (the read is idempotent; no meet has been consumed
// yet); a 4xx is returned immediately as a workerHTTPError. The
// returned stream owns a context bounded by timeout spanning its whole
// life.
func (c *Coordinator) openStream(ctx context.Context, w Worker, body []byte) (*workerStream, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		ws, err := c.dialStream(ctx, w, body)
		if err == nil {
			return ws, nil
		}
		lastErr = err
		var he *workerHTTPError
		if errors.As(err, &he) && he.status < 500 {
			return nil, err // deterministic request error; retrying cannot help
		}
	}
	return nil, lastErr
}

// dialStream is one attempt of openStream.
func (c *Coordinator) dialStream(ctx context.Context, w Worker, body []byte) (*workerStream, error) {
	wctx, cancel := context.WithTimeout(ctx, c.cfg.WorkerTimeout)
	req, err := http.NewRequestWithContext(wctx, http.MethodPost,
		w.URL+"/v2/query?stream=1&header=1", bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := readErrorBody(resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		cancel()
		return nil, &workerHTTPError{worker: w.Name, status: resp.StatusCode, msg: msg, retryAfter: retryAfter}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), scanBufSize)
	ws := &workerStream{worker: w, body: resp.Body, sc: sc, cancel: cancel}
	if err := ws.readHeader(); err != nil {
		ws.close()
		return nil, err
	}
	return ws, nil
}

// readHeader consumes the stream's opening header line.
func (s *workerStream) readHeader() error {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return err
		}
		return io.ErrUnexpectedEOF
	}
	if err := json.Unmarshal(s.sc.Bytes(), &s.header); err != nil {
		return fmt.Errorf("decode stream header: %w", err)
	}
	if hook := testLineDecode; hook != nil {
		hook(s.worker.Name, s.header.kind())
	}
	if !s.header.Header {
		return fmt.Errorf("stream did not open with a header line: %q", s.sc.Text())
	}
	return nil
}

// readErrorBody extracts the message of a JSON error envelope, falling
// back to the raw body.
func readErrorBody(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
