package xmltree

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the parser. Accepted inputs must
// produce valid documents that survive a serialise/re-parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a><b>hi</b></a>",
		`<a x="1">t<b/>u</a>`,
		"<a>Hacking &amp; RSI</a>",
		"<a><!-- c --><?pi?><b/></a>",
		"<a><b></a>",
		"",
		"<cdata>x</cdata>",
		"<a>\xff\xfe</a>",
		strings.Repeat("<n>", 50) + "x" + strings.Repeat("</n>", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		doc, err := ParseString(in)
		if err != nil {
			return // rejected input is fine
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("accepted document is invalid: %v\ninput: %q", err, in)
		}
		again, err := ParseString(doc.XMLString())
		if err != nil {
			t.Fatalf("serialised form does not re-parse: %v\ninput: %q\nxml: %q",
				err, in, doc.XMLString())
		}
		if !Equal(doc, again) {
			t.Fatalf("round trip changed document\ninput: %q", in)
		}
	})
}
