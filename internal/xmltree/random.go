package xmltree

import (
	"fmt"
	"math/rand"
)

// Random generates a pseudo-random document for property-based tests.
// The tree has at most maxNodes nodes (at least one), element labels
// drawn from a small alphabet so that many nodes share a schema path
// (exercising the path-partitioned store), and cdata leaves with short
// numeric texts. The same *rand.Rand state yields the same document.
func Random(r *rand.Rand, maxNodes int) *Document {
	if maxNodes < 1 {
		maxNodes = 1
	}
	labels := []string{"a", "b", "c", "d", "e"}
	budget := 1 + r.Intn(maxNodes)
	b := NewBuilder("root")
	open := []*Node{b.Root()}
	for n := 1; n < budget && len(open) > 0; n++ {
		parent := open[r.Intn(len(open))]
		if r.Intn(4) == 0 {
			// Avoid adjacent cdata siblings: they would merge into one
			// node on a serialise/parse round trip.
			if k := len(parent.Children); k == 0 || parent.Children[k-1].Kind != CData {
				b.Text(parent, fmt.Sprintf("t%d", r.Intn(8)))
			}
			continue
		}
		label := labels[r.Intn(len(labels))]
		var attrs []Attr
		if r.Intn(5) == 0 {
			attrs = []Attr{{"k", fmt.Sprintf("v%d", r.Intn(4))}}
		}
		child := b.Element(parent, label, attrs...)
		open = append(open, child)
		// Occasionally close a subtree so depth varies.
		if r.Intn(3) == 0 {
			open = append(open[:0], open[1:]...)
		}
	}
	d, err := b.Done()
	if err != nil {
		panic(err) // generator bug, not input-dependent
	}
	return d
}
