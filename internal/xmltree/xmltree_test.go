package xmltree

import (
	"math/rand"
	"testing"

	"ncq/internal/bat"
)

func TestFig1OIDNumbering(t *testing.T) {
	d := Fig1()
	if err := d.Validate(); err != nil {
		t.Fatalf("Fig1 invalid: %v", err)
	}
	// The paper's Figure 1 assigns o1..o19 in depth-first order.
	want := []struct {
		oid   bat.OID
		label string
		text  string
	}{
		{1, "bibliography", ""},
		{2, "institute", ""},
		{3, "article", ""},
		{4, "author", ""},
		{5, "firstname", ""},
		{6, CDataLabel, "Ben"},
		{7, "lastname", ""},
		{8, CDataLabel, "Bit"},
		{9, "title", ""},
		{10, CDataLabel, "How to Hack"},
		{11, "year", ""},
		{12, CDataLabel, "1999"},
		{13, "article", ""},
		{14, "author", ""},
		{15, CDataLabel, "Bob Byte"},
		{16, "title", ""},
		{17, CDataLabel, "Hacking & RSI"},
		{18, "year", ""},
		{19, CDataLabel, "1999"},
	}
	if d.Len() != len(want) {
		t.Fatalf("Fig1 has %d nodes, want %d", d.Len(), len(want))
	}
	for _, w := range want {
		n := d.Node(w.oid)
		if n == nil {
			t.Fatalf("no node with OID %d", w.oid)
		}
		if n.Label != w.label || n.Text != w.text {
			t.Errorf("o%d = (%q,%q), want (%q,%q)", w.oid, n.Label, n.Text, w.label, w.text)
		}
	}
	if v, ok := d.Node(3).Attr("key"); !ok || v != "BB99" {
		t.Errorf("o3 key attr = (%q,%v), want (BB99,true)", v, ok)
	}
	if v, ok := d.Node(13).Attr("key"); !ok || v != "BK99" {
		t.Errorf("o13 key attr = (%q,%v), want (BK99,true)", v, ok)
	}
	if _, ok := d.Node(3).Attr("missing"); ok {
		t.Error("absent attribute reported present")
	}
}

func TestFig1LCAExamples(t *testing.T) {
	// The worked examples of paper Section 3.1.
	d := Fig1()
	cases := []struct {
		name string
		a, b bat.OID
		want bat.OID
	}{
		{"Ben+Bit is the author", 6, 8, 4},
		{"BobByte with itself is the cdata node", 15, 15, 15},
		{"Bit+1999(first) is the article", 8, 12, 3},
		{"1999+1999 across articles is the institute", 12, 19, 2},
		{"order does not matter", 12, 8, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := d.LCA(d.Node(c.a), d.Node(c.b))
			if got.OID != c.want {
				t.Errorf("LCA(o%d,o%d) = o%d, want o%d", c.a, c.b, got.OID, c.want)
			}
		})
	}
}

func TestDist(t *testing.T) {
	d := Fig1()
	cases := []struct {
		a, b bat.OID
		want int
	}{
		{6, 8, 4},  // Ben↑firstname↑author↓lastname↓Bit
		{8, 12, 5}, // Bit↑↑↑article↓year↓1999
		{1, 1, 0},
		{1, 2, 1},
		{12, 19, 6}, // across the two articles via the institute
	}
	for _, c := range cases {
		if got := d.Dist(d.Node(c.a), d.Node(c.b)); got != c.want {
			t.Errorf("Dist(o%d,o%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPathLabels(t *testing.T) {
	d := Fig1()
	n := d.Node(8) // cdata "Bit"
	want := "/bibliography/institute/article/author/lastname/cdata"
	if got := n.PathString(); got != want {
		t.Errorf("PathString = %q, want %q", got, want)
	}
	if got := d.Root.PathString(); got != "/bibliography" {
		t.Errorf("root PathString = %q", got)
	}
}

func TestContainsInterval(t *testing.T) {
	d := Fig1()
	art := d.Node(3) // first article, subtree o3..o12
	if !art.Contains(d.Node(8)) || !art.Contains(art) {
		t.Error("Contains should include descendants and self")
	}
	if art.Contains(d.Node(13)) || art.Contains(d.Node(2)) {
		t.Error("Contains should exclude siblings and ancestors")
	}
	if !d.Root.Contains(d.Node(19)) {
		t.Error("root should contain every node")
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	d := Fig1()
	var oids []bat.OID
	d.Walk(func(n *Node) bool {
		oids = append(oids, n.OID)
		return true
	})
	for i, o := range oids {
		if int(o) != i+1 {
			t.Fatalf("walk order broken at %d: got OID %d", i, o)
		}
	}
	var count int
	d.Walk(func(n *Node) bool {
		count++
		return n.OID < 5
	})
	if count != 5 {
		t.Errorf("early-stopped walk visited %d, want 5", count)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("reserved root label", func(t *testing.T) {
		if _, err := NewBuilder(CDataLabel).Done(); err == nil {
			t.Error("want error for cdata root label")
		}
	})
	t.Run("empty root label", func(t *testing.T) {
		if _, err := NewBuilder("").Done(); err == nil {
			t.Error("want error for empty root label")
		}
	})
	t.Run("reserved element label", func(t *testing.T) {
		b := NewBuilder("r")
		b.Element(b.Root(), CDataLabel)
		if _, err := b.Done(); err == nil {
			t.Error("want error for cdata element label")
		}
	})
	t.Run("element under text", func(t *testing.T) {
		b := NewBuilder("r")
		txt := b.Text(b.Root(), "hello")
		b.Element(txt, "x")
		if _, err := b.Done(); err == nil {
			t.Error("want error for element under cdata")
		}
	})
	t.Run("text under text", func(t *testing.T) {
		b := NewBuilder("r")
		txt := b.Text(b.Root(), "hello")
		b.Text(txt, "nested")
		if _, err := b.Done(); err == nil {
			t.Error("want error for text under cdata")
		}
	})
	t.Run("empty text dropped", func(t *testing.T) {
		b := NewBuilder("r")
		if n := b.Text(b.Root(), ""); n != nil {
			t.Error("empty text should return nil")
		}
		d, err := b.Done()
		if err != nil {
			t.Fatal(err)
		}
		if d.Len() != 1 {
			t.Errorf("document has %d nodes, want 1", d.Len())
		}
	})
}

func TestNodeLookupOutOfRange(t *testing.T) {
	d := Fig1()
	if d.Node(0) != nil {
		t.Error("Node(0) should be nil")
	}
	if d.Node(d.MaxOID()+1) != nil {
		t.Error("Node(max+1) should be nil")
	}
	if d.Node(d.MaxOID()) == nil {
		t.Error("Node(max) should exist")
	}
}

func TestLabels(t *testing.T) {
	d := Fig1()
	want := []string{"article", "author", "bibliography", "firstname", "institute", "lastname", "title", "year"}
	got := d.Labels()
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := Fig1(), Fig1()
	if !Equal(a, b) {
		t.Error("identical documents reported unequal")
	}
	c := MustDocument("bibliography", func(b *Builder) {
		b.Element(b.Root(), "institute")
	})
	if Equal(a, c) {
		t.Error("different documents reported equal")
	}
}

func TestRandomDocumentsValid(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		d := Random(r, 60)
		if err := d.Validate(); err != nil {
			t.Fatalf("random document %d invalid: %v", i, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(7)), 50)
	b := Random(rand.New(rand.NewSource(7)), 50)
	if !Equal(a, b) {
		t.Error("Random with equal seeds produced different documents")
	}
}

func TestKindString(t *testing.T) {
	if Element.String() != "element" || CData.String() != "cdata" {
		t.Error("Kind.String wrong")
	}
}
