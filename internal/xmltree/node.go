// Package xmltree implements the conceptual data model of the paper
// (Section 2, Definition 1): an XML document is a rooted tree with
// labelled element nodes, attribute labels, character data modelled as
// a dedicated child node labelled "cdata", and a rank that orders
// siblings.
//
// The package parses documents with encoding/xml, assigns OIDs in
// depth-first document order, and maintains for every node its parent,
// depth, sibling rank and preorder interval. The interval gives O(1)
// ancestorship tests, which the tests use to cross-check the join-based
// navigation of the Monet store.
package xmltree

import (
	"fmt"
	"sort"
	"strings"

	"ncq/internal/bat"
)

// CDataLabel is the reserved label of character-data nodes. Element
// tags may not use it (Parse and the builder reject such documents);
// this mirrors the paper's convention of treating CDATA as a special
// "cdata" node whose text is an attribute.
const CDataLabel = "cdata"

// Kind discriminates element nodes from character-data nodes.
type Kind uint8

// Node kinds.
const (
	Element Kind = iota // an element with a tag, attributes and children
	CData               // a character-data leaf holding text
)

// String returns "element" or "cdata".
func (k Kind) String() string {
	if k == CData {
		return "cdata"
	}
	return "element"
}

// Attr is a single attribute: a (name, value) pair attached to an
// element node (the label_A function of Definition 1).
type Attr struct {
	Name  string
	Value string
}

// Node is one node of the XML syntax tree.
type Node struct {
	OID   bat.OID // depth-first preorder identifier, root = 1
	Kind  Kind
	Label string // element tag; CDataLabel for character data
	Text  string // character data; empty for elements
	Attrs []Attr // attributes in document order; nil for cdata nodes

	Parent   *Node
	Children []*Node

	Rank  int     // 1-based position among siblings
	Depth int     // number of edges from the root
	End   bat.OID // largest OID in this node's subtree (preorder interval)
}

// IsRoot reports whether the node is the document root.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// PathLabels returns the labels on the path from the root down to n,
// inclusive — the paper's path(o) of Definition 3.
func (n *Node) PathLabels() []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Label)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// PathString renders the node's path as "/a/b/c".
func (n *Node) PathString() string {
	return "/" + strings.Join(n.PathLabels(), "/")
}

// Contains reports whether other lies in n's subtree (n included),
// using the preorder interval: O(1).
func (n *Node) Contains(other *Node) bool {
	return n.OID <= other.OID && other.OID <= n.End
}

// Document is a parsed XML document: the root node plus an OID-indexed
// directory of all nodes.
type Document struct {
	Root  *Node
	nodes []*Node // nodes[oid] for oid in [1, len); nodes[0] == nil
}

// Len returns the number of nodes (elements plus cdata nodes).
func (d *Document) Len() int { return len(d.nodes) - 1 }

// Node returns the node with the given OID, or nil when out of range.
func (d *Document) Node(oid bat.OID) *Node {
	if int(oid) <= 0 || int(oid) >= len(d.nodes) {
		return nil
	}
	return d.nodes[oid]
}

// MaxOID returns the largest assigned OID.
func (d *Document) MaxOID() bat.OID { return bat.OID(len(d.nodes) - 1) }

// Walk visits every node in document (preorder) order. It stops early
// when fn returns false.
func (d *Document) Walk(fn func(*Node) bool) {
	var rec func(*Node) bool
	rec = func(n *Node) bool {
		if !fn(n) {
			return false
		}
		for _, c := range n.Children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	if d.Root != nil {
		rec(d.Root)
	}
}

// LCA returns the lowest common ancestor of a and b by plain parent
// walking. It is deliberately naive: the meet package's algorithms are
// verified against it.
func (d *Document) LCA(a, b *Node) *Node {
	for a.Depth > b.Depth {
		a = a.Parent
	}
	for b.Depth > a.Depth {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// Dist returns the number of edges on the unique path between a and b.
func (d *Document) Dist(a, b *Node) int {
	m := d.LCA(a, b)
	return (a.Depth - m.Depth) + (b.Depth - m.Depth)
}

// Validate checks the structural invariants the rest of the system
// relies on: preorder OID assignment, parent/child symmetry, contiguous
// 1-based ranks, depth bookkeeping and interval containment. It returns
// the first violation found, or nil.
func (d *Document) Validate() error {
	if d.Root == nil {
		return fmt.Errorf("xmltree: document has no root")
	}
	if d.Root.OID != 1 {
		return fmt.Errorf("xmltree: root OID = %d, want 1", d.Root.OID)
	}
	next := bat.OID(1)
	var err error
	d.Walk(func(n *Node) bool {
		if n.OID != next {
			err = fmt.Errorf("xmltree: node %q has OID %d, want %d (preorder)", n.Label, n.OID, next)
			return false
		}
		next++
		if d.Node(n.OID) != n {
			err = fmt.Errorf("xmltree: directory entry for OID %d does not match node", n.OID)
			return false
		}
		if n.Kind == CData && (len(n.Children) > 0 || len(n.Attrs) > 0) {
			err = fmt.Errorf("xmltree: cdata node %d has children or attributes", n.OID)
			return false
		}
		if n.Kind == Element && n.Label == CDataLabel {
			err = fmt.Errorf("xmltree: element node %d uses reserved label %q", n.OID, CDataLabel)
			return false
		}
		for i, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("xmltree: child %d of node %d has wrong parent", c.OID, n.OID)
				return false
			}
			if c.Rank != i+1 {
				err = fmt.Errorf("xmltree: child %d of node %d has rank %d, want %d", c.OID, n.OID, c.Rank, i+1)
				return false
			}
			if c.Depth != n.Depth+1 {
				err = fmt.Errorf("xmltree: child %d depth %d, want %d", c.OID, c.Depth, n.Depth+1)
				return false
			}
			if !(n.OID < c.OID && c.End <= n.End) {
				err = fmt.Errorf("xmltree: interval of child %d not contained in parent %d", c.OID, n.OID)
				return false
			}
		}
		if len(n.Children) == 0 && n.End != n.OID {
			err = fmt.Errorf("xmltree: leaf %d has End %d, want %d", n.OID, n.End, n.OID)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if int(next)-1 != d.Len() {
		return fmt.Errorf("xmltree: walked %d nodes, directory holds %d", int(next)-1, d.Len())
	}
	return nil
}

// Equal reports whether two documents have identical structure, labels,
// attributes and text. OIDs are compared implicitly because both sides
// are preorder-numbered.
func Equal(a, b *Document) bool {
	if a.Len() != b.Len() {
		return false
	}
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if x.Kind != y.Kind || x.Label != y.Label || x.Text != y.Text {
			return false
		}
		if len(x.Attrs) != len(y.Attrs) || len(x.Children) != len(y.Children) {
			return false
		}
		for i := range x.Attrs {
			if x.Attrs[i] != y.Attrs[i] {
				return false
			}
		}
		for i := range x.Children {
			if !eq(x.Children[i], y.Children[i]) {
				return false
			}
		}
		return true
	}
	return eq(a.Root, b.Root)
}

// Labels returns the sorted set of distinct element labels in the
// document (excluding the cdata label); handy for diagnostics.
func (d *Document) Labels() []string {
	set := map[string]struct{}{}
	d.Walk(func(n *Node) bool {
		if n.Kind == Element {
			set[n.Label] = struct{}{}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
