package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and returns its syntax tree.
//
// Following the paper's "common simplification", PCDATA and CDATA are
// not distinguished: any non-whitespace character data becomes a cdata
// node. Adjacent character-data tokens (as produced by entity
// references) are merged into a single node. Comments, processing
// instructions and directives are skipped. Namespace prefixes are kept
// verbatim as part of the label, since the paper's model is purely
// label-based.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var (
		b       *Builder
		stack   []*Node
		pending strings.Builder
	)
	flushText := func() {
		if pending.Len() == 0 {
			return
		}
		// Leading and trailing whitespace is formatting, not data, in
		// the paper's model; internal whitespace is preserved.
		text := strings.TrimSpace(pending.String())
		pending.Reset()
		if text == "" {
			return
		}
		b.Text(stack[len(stack)-1], text)
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse at byte %d: %w", dec.InputOffset(), err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			label := flatName(t.Name)
			if label == CDataLabel {
				return nil, fmt.Errorf("xmltree: parse at byte %d: element uses reserved label %q",
					dec.InputOffset(), CDataLabel)
			}
			attrs := make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				attrs = append(attrs, Attr{flatName(a.Name), a.Value})
			}
			if b == nil {
				b = NewBuilder(label)
				b.Root().Attrs = attrs
				stack = append(stack, b.Root())
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse at byte %d: multiple root elements", dec.InputOffset())
			}
			flushText()
			n := b.Element(stack[len(stack)-1], label, attrs...)
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %s", flatName(t.Name))
			}
			flushText()
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if b != nil && len(stack) > 0 {
				pending.Write(t)
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Outside the paper's data model; skipped.
		}
	}
	if b == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: %d unclosed element(s)", len(stack))
	}
	return b.Done()
}

// ParseString is Parse on a string; convenient in tests and examples.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// flatName renders an xml.Name with its namespace prefix dropped and
// the space kept only when it looks like a prefix URI is absent. The
// paper's model has no namespaces, so local names suffice.
func flatName(n xml.Name) string { return n.Local }
