package xmltree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	d, err := ParseString(`<a x="1"><b>hi</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Root.Label != "a" {
		t.Errorf("root = %q, want a", d.Root.Label)
	}
	if v, ok := d.Root.Attr("x"); !ok || v != "1" {
		t.Errorf("attr x = (%q,%v)", v, ok)
	}
	if d.Len() != 4 { // a, b, cdata(hi), c
		t.Errorf("Len = %d, want 4", d.Len())
	}
	b := d.Root.Children[0]
	if b.Label != "b" || len(b.Children) != 1 || b.Children[0].Text != "hi" {
		t.Errorf("unexpected b subtree: %+v", b)
	}
}

func TestParseSkipsWhitespaceComments(t *testing.T) {
	d, err := ParseString("<a>\n  <!-- note -->\n  <?pi data?>\n  <b>x</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 { // a, b, cdata(x)
		t.Errorf("Len = %d, want 3 (whitespace/comments must not create nodes)", d.Len())
	}
}

func TestParseMergesEntitySplitText(t *testing.T) {
	d, err := ParseString(`<a>Hacking &amp; RSI</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (entity must not split the cdata node)", d.Len())
	}
	if got := d.Root.Children[0].Text; got != "Hacking & RSI" {
		t.Errorf("text = %q, want %q", got, "Hacking & RSI")
	}
}

func TestParsePreservesInternalWhitespace(t *testing.T) {
	d, err := ParseString(`<a>How to Hack</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Root.Children[0].Text; got != "How to Hack" {
		t.Errorf("text = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></a>"},
		{"garbage", "not xml at all <<<"},
		{"reserved cdata element", "<a><cdata>x</cdata></a>"},
		{"truncated", "<a><b>text"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestParseErrorsCarryOffsets(t *testing.T) {
	_, err := ParseString("<a><b>text</b><cdata>x</cdata></a>")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "byte") {
		t.Errorf("error %q does not mention the input offset", err)
	}
}

func TestParseDeepNesting(t *testing.T) {
	var sb strings.Builder
	const depth = 500
	for i := 0; i < depth; i++ {
		sb.WriteString("<n>")
	}
	sb.WriteString("leaf")
	for i := 0; i < depth; i++ {
		sb.WriteString("</n>")
	}
	d, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != depth+1 {
		t.Errorf("Len = %d, want %d", d.Len(), depth+1)
	}
	leaf := d.Node(d.MaxOID())
	if leaf.Depth != depth {
		t.Errorf("leaf depth = %d, want %d", leaf.Depth, depth)
	}
}

func TestRoundTripFig1(t *testing.T) {
	d := Fig1()
	s := d.XMLString()
	d2, err := ParseString(s)
	if err != nil {
		t.Fatalf("re-parse: %v\nserialised: %s", err, s)
	}
	if !Equal(d, d2) {
		t.Errorf("round trip changed the document:\n%s\nvs\n%s", s, d2.XMLString())
	}
}

func TestRoundTripEscaping(t *testing.T) {
	d := MustDocument("r", func(b *Builder) {
		e := b.Element(b.Root(), "e", Attr{"a", `va&l"ue<`})
		b.Text(e, `x < y && y > "z"`)
	})
	d2, err := ParseString(d.XMLString())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, d2) {
		t.Errorf("escaping round trip failed:\n%s", d.XMLString())
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		d := Random(r, 80)
		d2, err := ParseString(d.XMLString())
		if err != nil {
			t.Fatalf("doc %d: re-parse: %v\n%s", i, err, d.XMLString())
		}
		if !Equal(d, d2) {
			t.Fatalf("doc %d: round trip changed document\n%s\nvs\n%s",
				i, d.XMLString(), d2.XMLString())
		}
		if err := d2.Validate(); err != nil {
			t.Fatalf("doc %d: reparsed invalid: %v", i, err)
		}
	}
}

func TestIndentedOutputParses(t *testing.T) {
	d := Fig1()
	var sb strings.Builder
	if err := d.WriteXML(&sb, true); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("indented output does not re-parse: %v\n%s", err, sb.String())
	}
	if !Equal(d, d2) {
		t.Error("indented round trip changed the document")
	}
	if !strings.Contains(sb.String(), "\n") {
		t.Error("indented output has no newlines")
	}
}
