package xmltree

import (
	"fmt"

	"ncq/internal/bat"
)

// Builder constructs a Document programmatically. The generators in
// internal/datagen and the parser both go through it, so every document
// in the system satisfies the same invariants (see Document.Validate).
//
// Usage:
//
//	b := NewBuilder("bibliography")
//	art := b.Element(b.Root(), "article", Attr{"key", "BB99"})
//	b.Text(art, "…")
//	doc, err := b.Done()
type Builder struct {
	root *Node
	err  error
}

// NewBuilder starts a document whose root element has the given label.
func NewBuilder(rootLabel string) *Builder {
	b := &Builder{root: &Node{Kind: Element, Label: rootLabel}}
	if rootLabel == CDataLabel {
		b.err = fmt.Errorf("xmltree: root label %q is reserved for character data", rootLabel)
	}
	if rootLabel == "" {
		b.err = fmt.Errorf("xmltree: empty root label")
	}
	return b
}

// Root returns the root node under construction.
func (b *Builder) Root() *Node { return b.root }

// Element appends a child element to parent and returns it.
func (b *Builder) Element(parent *Node, label string, attrs ...Attr) *Node {
	if b.err == nil {
		switch {
		case parent == nil:
			b.err = fmt.Errorf("xmltree: Element with nil parent")
		case parent.Kind != Element:
			b.err = fmt.Errorf("xmltree: cannot add element under cdata node")
		case label == CDataLabel:
			b.err = fmt.Errorf("xmltree: element label %q is reserved for character data", label)
		case label == "":
			b.err = fmt.Errorf("xmltree: empty element label")
		}
	}
	n := &Node{Kind: Element, Label: label, Attrs: attrs, Parent: parent}
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	return n
}

// Text appends a character-data child to parent and returns it. Empty
// text is dropped (nil is returned) so that whitespace-only content
// never produces nodes.
func (b *Builder) Text(parent *Node, text string) *Node {
	if text == "" {
		return nil
	}
	if b.err == nil {
		switch {
		case parent == nil:
			b.err = fmt.Errorf("xmltree: Text with nil parent")
		case parent.Kind != Element:
			b.err = fmt.Errorf("xmltree: cannot add text under cdata node")
		}
	}
	n := &Node{Kind: CData, Label: CDataLabel, Text: text, Parent: parent}
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	return n
}

// Done finalises the document: it assigns preorder OIDs, depths,
// sibling ranks and subtree intervals, and returns the Document. The
// builder must not be reused afterwards.
func (b *Builder) Done() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	d := &Document{Root: b.root}
	d.nodes = append(d.nodes, nil) // OID 0 is Nil
	next := bat.OID(1)
	var rec func(n *Node, depth int) bat.OID
	rec = func(n *Node, depth int) bat.OID {
		n.OID = next
		n.Depth = depth
		next++
		d.nodes = append(d.nodes, n)
		end := n.OID
		for i, c := range n.Children {
			c.Rank = i + 1
			end = rec(c, depth+1)
		}
		n.End = end
		return end
	}
	rec(b.root, 0)
	b.root.Rank = 1
	return d, nil
}

// MustDocument builds a document from a nesting function and panics on
// error; it keeps test fixtures compact.
func MustDocument(rootLabel string, build func(b *Builder)) *Document {
	b := NewBuilder(rootLabel)
	if build != nil {
		build(b)
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

// Fig1 constructs the example document of the paper's Figure 1: a
// bibliography of one institute with two articles. The preorder OID
// assignment reproduces the paper's numbering exactly:
//
//	o1 bibliography, o2 institute, o3 article[key=BB99], o4 author,
//	o5 firstname, o6 cdata "Ben", o7 lastname, o8 cdata "Bit",
//	o9 title, o10 cdata "How to Hack", o11 year, o12 cdata "1999",
//	o13 article[key=BK99], o14 author, o15 cdata "Bob Byte",
//	o16 title, o17 cdata "Hacking & RSI", o18 year, o19 cdata "1999".
func Fig1() *Document {
	return MustDocument("bibliography", func(b *Builder) {
		inst := b.Element(b.Root(), "institute")

		a1 := b.Element(inst, "article", Attr{"key", "BB99"})
		au1 := b.Element(a1, "author")
		fn := b.Element(au1, "firstname")
		b.Text(fn, "Ben")
		ln := b.Element(au1, "lastname")
		b.Text(ln, "Bit")
		t1 := b.Element(a1, "title")
		b.Text(t1, "How to Hack")
		y1 := b.Element(a1, "year")
		b.Text(y1, "1999")

		a2 := b.Element(inst, "article", Attr{"key", "BK99"})
		au2 := b.Element(a2, "author")
		b.Text(au2, "Bob Byte")
		t2 := b.Element(a2, "title")
		b.Text(t2, "Hacking & RSI")
		y2 := b.Element(a2, "year")
		b.Text(y2, "1999")
	})
}
