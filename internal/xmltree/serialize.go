package xmltree

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteXML serialises the document as XML to w. When indent is true the
// output is pretty-printed with two-space indentation and cdata content
// on its own line; when false the output is compact and round-trips
// exactly through Parse (whitespace-free).
func (d *Document) WriteXML(w io.Writer, indent bool) error {
	bw := bufio.NewWriter(w)
	if err := writeNode(bw, d.Root, 0, indent); err != nil {
		return fmt.Errorf("xmltree: write: %w", err)
	}
	if indent {
		if _, err := bw.WriteString("\n"); err != nil {
			return fmt.Errorf("xmltree: write: %w", err)
		}
	}
	return bw.Flush()
}

// XMLString returns the compact XML serialisation of the document.
func (d *Document) XMLString() string {
	var sb strings.Builder
	_ = d.WriteXML(&sb, false) // strings.Builder never errors
	return sb.String()
}

func writeNode(w *bufio.Writer, n *Node, depth int, indent bool) error {
	pad := func() error {
		if !indent {
			return nil
		}
		if depth > 0 || n.Rank > 1 {
			if _, err := w.WriteString("\n"); err != nil {
				return err
			}
		}
		_, err := w.WriteString(strings.Repeat("  ", depth))
		return err
	}
	if n.Kind == CData {
		if err := pad(); err != nil {
			return err
		}
		return escapeText(w, n.Text)
	}
	if err := pad(); err != nil {
		return err
	}
	if _, err := w.WriteString("<" + n.Label); err != nil {
		return err
	}
	for _, a := range n.Attrs {
		if _, err := w.WriteString(" " + a.Name + `="`); err != nil {
			return err
		}
		if err := escapeAttr(w, a.Value); err != nil {
			return err
		}
		if _, err := w.WriteString(`"`); err != nil {
			return err
		}
	}
	if len(n.Children) == 0 {
		_, err := w.WriteString("/>")
		return err
	}
	if _, err := w.WriteString(">"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1, indent); err != nil {
			return err
		}
	}
	if indent {
		if _, err := w.WriteString("\n" + strings.Repeat("  ", depth)); err != nil {
			return err
		}
	}
	_, err := w.WriteString("</" + n.Label + ">")
	return err
}

func escapeText(w *bufio.Writer, s string) error {
	for _, r := range s {
		var err error
		switch r {
		case '&':
			_, err = w.WriteString("&amp;")
		case '<':
			_, err = w.WriteString("&lt;")
		case '>':
			_, err = w.WriteString("&gt;")
		default:
			_, err = w.WriteRune(r)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func escapeAttr(w *bufio.Writer, s string) error {
	for _, r := range s {
		var err error
		switch r {
		case '&':
			_, err = w.WriteString("&amp;")
		case '<':
			_, err = w.WriteString("&lt;")
		case '"':
			_, err = w.WriteString("&quot;")
		default:
			_, err = w.WriteRune(r)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
