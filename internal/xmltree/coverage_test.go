package xmltree

import (
	"errors"
	"io"
	"strings"
	"testing"

	"ncq/internal/bat"
)

func TestIsRoot(t *testing.T) {
	d := Fig1()
	if !d.Root.IsRoot() {
		t.Error("root is not IsRoot")
	}
	if d.Node(2).IsRoot() {
		t.Error("non-root reports IsRoot")
	}
}

// brokenDoc builds a structurally valid document and then corrupts one
// invariant, checking that Validate catches each corruption.
func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Document { return Fig1() }
	cases := []struct {
		name  string
		wreck func(d *Document)
	}{
		{"no root", func(d *Document) { d.Root = nil }},
		{"root OID", func(d *Document) { d.Root.OID = 5 }},
		{"preorder broken", func(d *Document) { d.Node(5).OID = 99 }},
		{"cdata with children", func(d *Document) {
			cd := d.Node(6)
			cd.Children = append(cd.Children, d.Node(7))
		}},
		{"cdata with attrs", func(d *Document) {
			d.Node(6).Attrs = []Attr{{"x", "y"}}
		}},
		{"reserved element label", func(d *Document) {
			d.Node(5).Label = CDataLabel
			d.Node(5).Kind = Element
		}},
		{"wrong parent pointer", func(d *Document) { d.Node(4).Parent = d.Node(13) }},
		{"wrong rank", func(d *Document) { d.Node(9).Rank = 7 }},
		{"wrong depth", func(d *Document) { d.Node(9).Depth = 0 }},
		{"interval not contained", func(d *Document) { d.Node(3).End = 99 }},
		{"leaf with wrong End", func(d *Document) { d.Node(6).End = 7 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := fresh()
			c.wreck(d)
			if err := d.Validate(); err == nil {
				t.Errorf("corruption %q not caught", c.name)
			}
		})
	}
	// Sanity: the uncorrupted document validates.
	if err := fresh().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqualDetectsEveryDifference(t *testing.T) {
	base := Fig1()
	cases := []struct {
		name  string
		wreck func(d *Document)
	}{
		{"label", func(d *Document) { d.Node(3).Label = "paper" }},
		{"text", func(d *Document) { d.Node(6).Text = "Len" }},
		{"attr value", func(d *Document) { d.Node(3).Attrs[0].Value = "X" }},
		{"attr added", func(d *Document) {
			d.Node(4).Attrs = append(d.Node(4).Attrs, Attr{"n", "v"})
		}},
		{"child dropped", func(d *Document) {
			n := d.Node(4)
			n.Children = n.Children[:1]
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Fig1()
			c.wreck(d)
			if Equal(base, d) {
				t.Errorf("difference %q not detected", c.name)
			}
		})
	}
}

// failingWriter errors after n bytes, driving the serializer's error
// paths.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("writer full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteXMLPropagatesWriterErrors(t *testing.T) {
	d := Fig1()
	full := d.XMLString()
	for budget := 0; budget < len(full); budget += 7 {
		w := &failingWriter{n: budget}
		if err := d.WriteXML(w, false); err == nil {
			t.Fatalf("budget %d: no error from failing writer", budget)
		}
		w = &failingWriter{n: budget}
		if err := d.WriteXML(w, true); err == nil {
			t.Fatalf("budget %d (indent): no error from failing writer", budget)
		}
	}
	// A writer with exactly enough budget succeeds.
	w := &failingWriter{n: len(full) + 1}
	if err := d.WriteXML(w, false); err != nil {
		t.Fatalf("exact budget failed: %v", err)
	}
}

func TestWriteXMLToDiscard(t *testing.T) {
	// io.Discard exercises the success path without buffering quirks.
	if err := Fig1().WriteXML(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}

func TestMustDocumentPanicsOnBuilderError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDocument did not panic on builder error")
		}
	}()
	MustDocument("r", func(b *Builder) {
		b.Element(b.Root(), CDataLabel) // reserved label
	})
}

func TestSelfClosedAndEmptyElements(t *testing.T) {
	d, err := ParseString(`<a><b/><c></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	// Both render self-closed.
	if got := d.XMLString(); got != "<a><b/><c/></a>" {
		t.Errorf("XMLString = %q", got)
	}
}

func TestAttrEscapingEdgeCases(t *testing.T) {
	d := MustDocument("r", func(b *Builder) {
		b.Element(b.Root(), "e", Attr{"a", `<>&"`})
	})
	s := d.XMLString()
	if !strings.Contains(s, `a="&lt;>&amp;&quot;"`) {
		t.Errorf("attr escaping = %q", s)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Root.Children[0].Attr("a"); v != `<>&"` {
		t.Errorf("round-tripped attr = %q", v)
	}
}

func TestNodeContainsAcrossDocumentBoundaries(t *testing.T) {
	d := Fig1()
	// Contains is purely interval-based; OIDs from another document
	// with the same numbers behave consistently (documented behaviour:
	// the caller must not mix documents, but it must not panic).
	other := Fig1()
	if !d.Node(3).Contains(other.Node(8)) {
		t.Skip("interval semantics only; nothing to assert beyond no-panic")
	}
}

func TestDistSymmetry(t *testing.T) {
	d := Fig1()
	for a := bat.OID(1); a <= d.MaxOID(); a++ {
		for b := bat.OID(1); b <= d.MaxOID(); b++ {
			if d.Dist(d.Node(a), d.Node(b)) != d.Dist(d.Node(b), d.Node(a)) {
				t.Fatalf("Dist not symmetric for (%d,%d)", a, b)
			}
		}
	}
}
