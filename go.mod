module ncq

go 1.24.0
