package ncq_test

// The benchmark suite regenerates the paper's evaluation (one bench per
// figure plus the Section 5 scaling claim) and adds ablations for the
// design choices DESIGN.md calls out. cmd/ncqbench prints the same
// series as TSV tables; EXPERIMENTS.md records the measured shapes.
// The suite lives in the external test package so the server-level
// benchmarks can import ncq/internal/server (which itself imports ncq).

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"ncq"
	"ncq/internal/bat"
	"ncq/internal/core"
	"ncq/internal/datagen"
	"ncq/internal/experiments"
	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/query"
	"ncq/internal/server"
)

var (
	mmOnce  sync.Once
	mmSetup *experiments.Setup

	bibOnce  sync.Once
	bibSetup *experiments.Setup
)

// multimedia returns the Figure 6 workload (~70k nodes), built once.
func multimedia(b *testing.B) *experiments.Setup {
	b.Helper()
	mmOnce.Do(func() {
		s, err := experiments.LoadMultimedia(datagen.DefaultMultimediaConfig())
		if err != nil {
			panic(err)
		}
		mmSetup = s
	})
	return mmSetup
}

// dblp returns the Figure 7 workload (~90k nodes), built once.
func dblp(b *testing.B) *experiments.Setup {
	b.Helper()
	bibOnce.Do(func() {
		s, err := experiments.LoadDBLP(datagen.DefaultDBLPConfig())
		if err != nil {
			panic(err)
		}
		bibSetup = s
	})
	return bibSetup
}

// BenchmarkFig6FulltextOnly is the flat series of Figure 6: the
// full-text search whose cost dominates the combined query.
func BenchmarkFig6FulltextOnly(b *testing.B) {
	setup := multimedia(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setup.Index.Search("landscape")
	}
}

// BenchmarkFig6MeetByDistance is the rising series of Figure 6: the
// pairwise meet at controlled distances 0..20. The per-op time should
// grow linearly with the distance and stay orders of magnitude below
// the full-text search.
func BenchmarkFig6MeetByDistance(b *testing.B) {
	setup := multimedia(b)
	for d := 0; d <= 20; d += 4 {
		termA, termB := datagen.ProbeTerms(d)
		hitsA := setup.Index.Search(termA)
		hitsB := setup.Index.Search(termB)
		if len(hitsA) != 1 || len(hitsB) != 1 {
			b.Fatalf("probe %d: %d/%d hits", d, len(hitsA), len(hitsB))
		}
		o1, o2 := hitsA[0].Owner, hitsB[0].Owner
		b.Run(fmt.Sprintf("distance=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Meet2(setup.Store, o1, o2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7CaseStudy is Figure 7: the meet of the "ICDE" hits with
// all year hits of a widening interval, root excluded. Time per
// operation should grow roughly linearly as the interval (and with it
// the output cardinality) grows.
func BenchmarkFig7CaseStudy(b *testing.B) {
	setup := dblp(b)
	for _, low := range []int{1999, 1996, 1992, 1988, 1984} {
		hits := setup.Index.SearchSubstring("ICDE")
		for y := low; y <= 1999; y++ {
			hits = append(hits, setup.Index.SearchSubstring(fmt.Sprintf("%d", y))...)
		}
		groups := setup.Index.Groups(hits)
		opt := core.ExcludeRoot(setup.Store)
		var out int
		b.Run(fmt.Sprintf("yearLow=%d", low), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, _, err := core.Meet(setup.Store, groups, opt)
				if err != nil {
					b.Fatal(err)
				}
				out = len(results)
			}
			b.ReportMetric(float64(out), "results")
		})
	}
}

// BenchmarkMeetInputScaling isolates the Section 5 claim: meet cost is
// linear in the input cardinality.
func BenchmarkMeetInputScaling(b *testing.B) {
	setup := dblp(b)
	var yearHits []fulltext.Hit
	for y := 1984; y <= 1999; y++ {
		yearHits = append(yearHits, setup.Index.SearchSubstring(fmt.Sprintf("%d", y))...)
	}
	opt := core.ExcludeRoot(setup.Store)
	for _, frac := range []int{1, 2, 4, 8} {
		n := len(yearHits) / frac
		groups := setup.Index.Groups(yearHits[:n])
		b.Run(fmt.Sprintf("inputs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Meet(setup.Store, groups, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParent compares the two execution styles of the
// set-oriented meet: per-OID parent arrays (this reproduction's fast
// path) versus pure BAT joins (the paper's in-Monet execution).
func BenchmarkAblationParent(b *testing.B) {
	setup := dblp(b)
	groups := setup.Index.Groups(setup.Index.SearchSubstring("ICDE"))
	var icde []bat.OID
	for _, g := range groups {
		if len(g) > len(icde) {
			icde = g
		}
	}
	groups = setup.Index.Groups(setup.Index.SearchSubstring("1999"))
	var year []bat.OID
	for _, g := range groups {
		if len(g) > len(year) {
			year = g
		}
	}
	b.Run("parent-array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MeetSets(setup.Store, icde, year, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parent-bat-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MeetSetsBAT(setup.Store, icde, year, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSteering measures the value of the paper's
// path-prefix steering in meet_2 against an ancestor-set baseline that
// has no path information (Figure 3's motivation).
func BenchmarkAblationSteering(b *testing.B) {
	setup := multimedia(b)
	termA, termB := datagen.ProbeTerms(6)
	o1 := setup.Index.Search(termA)[0].Owner
	o2 := setup.Index.Search(termB)[0].Owner
	b.Run("prefix-steered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Meet2(setup.Store, o1, o2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ancestor-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Meet2AncestorSetForBench(setup.Store, o1, o2)
		}
	})
}

// BenchmarkSearch measures the steady-state single-token full-text
// search on the compact posting lists: a pre-sorted slice view plus
// one copy, so allocs/op stays flat however hot the term is.
func BenchmarkSearch(b *testing.B) {
	setup := dblp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(setup.Index.Search("ICDE")) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkMeetRollup measures the warm columnar roll-up of the
// general meet (Figure 5) on a Figure-7-sized input: path-bucketed
// scratch recycled across queries, so a steady-state query allocates
// O(results), not O(inputs·levels).
func BenchmarkMeetRollup(b *testing.B) {
	setup := dblp(b)
	hits := setup.Index.SearchSubstring("ICDE")
	for y := 1992; y <= 1999; y++ {
		hits = append(hits, setup.Index.SearchSubstring(fmt.Sprintf("%d", y))...)
	}
	groups := setup.Index.Groups(hits)
	opt := core.ExcludeRoot(setup.Store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Meet(setup.Store, groups, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulkLoad measures the Monet transform itself (the paper
// reports bulk-load characteristics in its companion paper [19]).
func BenchmarkBulkLoad(b *testing.B) {
	doc := datagen.DBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1995, YearTo: 1999, PubsPerVenueYear: 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := monetx.Load(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures inverted-index construction.
func BenchmarkIndexBuild(b *testing.B) {
	doc := datagen.DBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1995, YearTo: 1999, PubsPerVenueYear: 20})
	store, err := monetx.Load(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fulltext.New(store)
	}
}

// BenchmarkBATJoin measures the core relational primitive.
func BenchmarkBATJoin(b *testing.B) {
	setup := dblp(b)
	// Join every record's year edge with the record edge relation.
	sum := setup.Store.Summary()
	recPath, ok := sum.Lookup([]string{"dblp", "inproceedings"})
	if !ok {
		b.Fatal("no record path")
	}
	yearPath, ok := sum.Lookup([]string{"dblp", "inproceedings", "year"})
	if !ok {
		b.Fatal("no year path")
	}
	years := setup.Store.ParentBAT(yearPath) // year -> record
	recs := setup.Store.ParentBAT(recPath)   // record -> root
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Join(years, recs)
	}
}

// BenchmarkQueryEndToEnd runs the full pipeline: parse, bind, filter,
// meet, format.
func BenchmarkQueryEndToEnd(b *testing.B) {
	setup := dblp(b)
	engine := query.NewEngine(setup.Store, setup.Index)
	const q = `SELECT meet(e1, e2; EXCLUDE /dblp)
		FROM //booktitle/cdata AS e1, //year/cdata AS e2
		WHERE e1 CONTAINS 'ICDE' AND e2 CONTAINS '1999'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := engine.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(ans.Rows) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkSnapshotSave measures persisting the store.
func BenchmarkSnapshotSave(b *testing.B) {
	setup := dblp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if err := setup.Store.WriteSnapshot(&sink); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(sink))
	}
}

// BenchmarkSnapshotLoad measures reopening from a snapshot — the fast
// path that skips XML parsing and shredding.
func BenchmarkSnapshotLoad(b *testing.B) {
	setup := dblp(b)
	var buf bytes.Buffer
	if err := setup.Store.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := monetx.ReadSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

type countingWriter int

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

// BenchmarkExplosionBaseline contrasts the minimal set-oriented meet
// with the naive all-pairs baseline on one Figure 7 work unit.
func BenchmarkExplosionBaseline(b *testing.B) {
	setup := dblp(b)
	groups := setup.Index.Groups(setup.Index.SearchSubstring("ICDE"))
	var icde []bat.OID
	for _, g := range groups {
		if len(g) > len(icde) {
			icde = g
		}
	}
	groups = setup.Index.Groups(setup.Index.SearchSubstring("1999"))
	var year []bat.OID
	for _, g := range groups {
		if len(g) > len(year) {
			year = g
		}
	}
	b.Run("minimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MeetSets(setup.Store, icde, year, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("all-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MeetPairsBaseline(setup.Store, icde, year); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchCorpus builds a corpus of shards — distinct synthetic DBLP
// fragments — as the ncqd server would hold after preloading.
func benchCorpus(b *testing.B, shards int) *ncq.Corpus {
	b.Helper()
	c := ncq.NewCorpus()
	for i := 0; i < shards; i++ {
		doc := datagen.DBLP(datagen.DBLPConfig{
			Seed: int64(i + 1), YearFrom: 1995, YearTo: 1999, PubsPerVenueYear: 10,
		})
		db, err := ncq.FromDocument(doc)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Add(fmt.Sprintf("shard-%d", i), db); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkCorpusMeetParallel measures the corpus-wide meet fan-out:
// the same query over the same membership, executed serially versus
// with the bounded worker pool. On a multi-core host the parallel
// series should approach a shards/cores speed-up; on one core the two
// series coincide (the pool then only adds scheduling noise).
func BenchmarkCorpusMeetParallel(b *testing.B) {
	c := benchCorpus(b, 8)
	widths := []int{1, runtime.GOMAXPROCS(0), 8}
	seen := map[int]bool{}
	for _, w := range widths {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			c.SetParallelism(w)
			for i := 0; i < b.N; i++ {
				meets, err := c.MeetOfTerms(ncq.ExcludeRoot(), "ICDE", "1999")
				if err != nil {
					b.Fatal(err)
				}
				if len(meets) == 0 {
					b.Fatal("no meets")
				}
			}
		})
	}
	c.SetParallelism(0)
}

// BenchmarkServerQuery measures the full HTTP query path of ncqd: JSON
// decode, cache lookup, corpus meet, JSON encode. The cold series
// disables the cache so every request recomputes; the cached series
// must be served entirely from the LRU (verified per request).
func BenchmarkServerQuery(b *testing.B) {
	corpus := benchCorpus(b, 4)
	body := []byte(`{"terms":["ICDE","1999"],"exclude_root":true}`)
	post := func(b *testing.B, h http.Handler) string {
		req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		return rec.Header().Get("X-NCQ-Cache")
	}
	b.Run("cold", func(b *testing.B) {
		h := server.New(corpus, server.WithCacheBytes(0)).Handler()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if post(b, h) != "miss" {
				b.Fatal("cold request hit the cache")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		h := server.New(corpus).Handler()
		post(b, h) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if post(b, h) != "hit" {
				b.Fatal("cached request missed")
			}
		}
	})
}

// BenchmarkVagueQuery measures the vague-constraints serving path —
// relaxation of a misspelled restrict pattern against every member's
// path summary plus blended re-ranking — through the same HTTP surface
// as BenchmarkServerQuery. The cold series recomputes the relaxation
// on every request; the cached series pins that an active vague spec
// is an ordinary cache citizen (keyed by its canonical encoding).
func BenchmarkVagueQuery(b *testing.B) {
	corpus := benchCorpus(b, 4)
	body := []byte(`{"terms":["ICDE","1999"],"restrict":["/dblp/inprocedings"],` +
		`"exclude_root":true,"vague":{"max_slack":2}}`)
	post := func(b *testing.B, h http.Handler) string {
		req := httptest.NewRequest("POST", "/v2/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		if !bytes.Contains(rec.Body.Bytes(), []byte(`"meets"`)) {
			b.Fatalf("no meets: %s", rec.Body)
		}
		return rec.Header().Get("X-NCQ-Cache")
	}
	b.Run("cold", func(b *testing.B) {
		h := server.New(corpus, server.WithCacheBytes(0)).Handler()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if post(b, h) != "miss" {
				b.Fatal("cold request hit the cache")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		h := server.New(corpus).Handler()
		post(b, h) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if post(b, h) != "hit" {
				b.Fatal("cached request missed")
			}
		}
	})
}

// BenchmarkShardedQuery measures the document-sharding fan-out: the
// same nearest-concept query against one large DBLP document loaded
// unsharded (shards=1) versus split into subtree shards searched in
// parallel. The full-text scan dominates the query (Figure 6), so on a
// multi-core host the sharded series should approach a cores-wide
// speed-up; on one core the series coincide.
func BenchmarkShardedQuery(b *testing.B) {
	doc := datagen.DBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1992, YearTo: 1999, PubsPerVenueYear: 40})
	widths := []int{1, runtime.GOMAXPROCS(0), 8}
	seen := map[int]bool{}
	for _, k := range widths {
		if seen[k] {
			continue
		}
		seen[k] = true
		c := ncq.NewCorpus()
		if _, _, err := c.AddSharded("dblp", doc, k); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				meets, _, err := c.MeetOfTermsIn("dblp", ncq.ExcludeRoot(), "ICDE", "1999")
				if err != nil {
					b.Fatal(err)
				}
				if len(meets) == 0 {
					b.Fatal("no meets")
				}
			}
		})
	}
}

// BenchmarkBatchQuery measures the batch endpoint's amortisation win:
// the same 16 distinct queries issued as 16 single requests versus one
// batch request. The cold series recomputes every query (the batch
// adds pool fan-out across queries); the cached series is pure
// protocol overhead (one HTTP exchange and JSON envelope versus 16).
func BenchmarkBatchQuery(b *testing.B) {
	const nq = 16
	corpus := benchCorpus(b, 4)
	singles := make([][]byte, nq)
	var batch bytes.Buffer
	batch.WriteString(`{"queries":[`)
	for i := 0; i < nq; i++ {
		q := fmt.Sprintf(`{"terms":["ICDE","%d"],"exclude_root":true}`, 1995+i%5)
		singles[i] = []byte(q)
		if i > 0 {
			batch.WriteString(",")
		}
		batch.WriteString(q)
	}
	batch.WriteString(`]}`)

	post := func(b *testing.B, h http.Handler, path string, body []byte) {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	for _, mode := range []struct {
		name string
		opts []server.Option
		warm bool
	}{
		{"cold", []server.Option{server.WithCacheBytes(0)}, false},
		{"cached", nil, true},
	} {
		h := server.New(corpus, mode.opts...).Handler()
		if mode.warm {
			post(b, h, "/v1/query/batch", batch.Bytes())
		}
		b.Run("individual/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, body := range singles {
					post(b, h, "/v1/query", body)
				}
			}
		})
		b.Run("batch/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				post(b, h, "/v1/query/batch", batch.Bytes())
			}
		})
	}
}

// BenchmarkRunStream measures the unified execution API over a corpus:
// the full ranked stream versus a pushed-down limit that materialises
// only the head of the answer set.
func BenchmarkRunStream(b *testing.B) {
	c := benchCorpus(b, 4)
	ctx := context.Background()
	req := ncq.Request{Terms: []string{"ICDE", "1999"}, Options: ncq.ExcludeRoot()}
	b.Run("all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := c.RunStream(ctx, req, func(ncq.CorpusMeet) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("no meets")
			}
		}
	})
	limited := req
	limited.Limit = 5
	b.Run("limit=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := c.RunStream(ctx, limited, func(ncq.CorpusMeet) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
			if n != 5 {
				b.Fatalf("streamed %d meets", n)
			}
		}
	})
}

// BenchmarkQueryV2 measures the unified HTTP endpoint: JSON decode,
// canonical cache key, corpus run with pushed-down limit, JSON encode.
// The cold series disables the cache; the cached series must be served
// entirely from the LRU (verified per request).
func BenchmarkQueryV2(b *testing.B) {
	corpus := benchCorpus(b, 4)
	body := []byte(`{"terms":["ICDE","1999"],"exclude_root":true,"limit":8}`)
	post := func(b *testing.B, h http.Handler) string {
		req := httptest.NewRequest("POST", "/v2/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		return rec.Header().Get("X-NCQ-Cache")
	}
	b.Run("cold", func(b *testing.B) {
		h := server.New(corpus, server.WithCacheBytes(0)).Handler()
		for i := 0; i < b.N; i++ {
			if post(b, h) != "miss" {
				b.Fatal("cold request hit the cache")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		h := server.New(corpus).Handler()
		post(b, h) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if post(b, h) != "hit" {
				b.Fatal("cached request missed")
			}
		}
	})
}

// BenchmarkStreamFirstMeet measures time-to-first-result on a
// multi-member corpus with a cold cache: the consumer takes the first
// globally ranked meet off the Results sequence and abandons the rest.
// Under the k-way merge this is bounded by the slowest member's first
// answer (compute + O(n) heapify), with no global sort and no full
// drain — the latency the streaming surfaces put in front of users.
func BenchmarkStreamFirstMeet(b *testing.B) {
	c := benchCorpus(b, 8)
	ctx := context.Background()
	req := ncq.Request{Terms: []string{"ICDE", "1999"}, Options: ncq.ExcludeRoot()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := false
		for _, err := range c.Results(ctx, req) {
			if err != nil {
				b.Fatal(err)
			}
			got = true
			break
		}
		if !got {
			b.Fatal("no meets")
		}
	}
}

// BenchmarkResultsDrain measures the full incremental path end to end:
// fan-out, per-member lazy ranking, k-way merge, and a complete drain
// of the sequence — the streaming equivalent of an unlimited Run.
func BenchmarkResultsDrain(b *testing.B) {
	c := benchCorpus(b, 4)
	ctx := context.Background()
	req := ncq.Request{Terms: []string{"ICDE", "1999"}, Options: ncq.ExcludeRoot()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, err := range c.Results(ctx, req) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n == 0 {
			b.Fatal("no meets")
		}
	}
}

// BenchmarkQueryParseOnly isolates the query compiler.
func BenchmarkQueryParseOnly(b *testing.B) {
	const q = `SELECT meet(e1, e2; EXCLUDE /dblp, WITHIN 6)
		FROM //booktitle/cdata AS e1, //year/cdata AS e2
		WHERE e1 CONTAINS 'ICDE' AND e2 CONTAINS '1999'`
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
