package ncq_test

import (
	"context"
	"fmt"
	"log"

	"ncq"
)

const bib = `<bibliography><institute>
<article key="BB99"><author><firstname>Ben</firstname><lastname>Bit</lastname></author>
<title>How to Hack</title><year>1999</year></article>
<article key="BK99"><author>Bob Byte</author><title>Hacking &amp; RSI</title><year>1999</year></article>
</institute></bibliography>`

// The headline interaction: ask what connects two strings without
// knowing any tags. The answer's type comes from the data.
func ExampleDatabase_MeetOfTerms() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	meets, _, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range meets {
		fmt.Printf("<%s> at distance %d\n", m.Tag, m.Distance)
	}
	// Output:
	// <article> at distance 5
}

// The unified execution API: one Request in, one Result out — the same
// surface a Corpus and the ncqd server speak — with context
// cancellation, pushed-down limits and cursor pagination.
func ExampleQuerier_Run() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Run(context.Background(), ncq.Request{
		Terms: []string{"Bit", "1999"},
		Limit: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.Meets {
		fmt.Printf("<%s> at distance %d\n", m.Tag, m.Distance)
	}
	// Output:
	// <article> at distance 5
}

// Cursor pagination: ask for one page at a time by carrying the
// cursor forward. A cursor is bound to the exact query that minted it
// and to the corpus generation — presenting it after any mutation
// fails with ErrStaleCursor (410 Gone over HTTP) instead of silently
// cutting the next page from a re-ranked answer set.
func ExampleQuerier_Run_cursorPaging() {
	db, err := ncq.OpenString(`<bib>` +
		`<article><author>Ann Bit</author><year>1999</year></article>` +
		`<article><author>Bob Bit</author><year>1999</year></article>` +
		`</bib>`)
	if err != nil {
		log.Fatal(err)
	}
	req := ncq.Request{Terms: []string{"Bit", "1999"}, Limit: 1}
	for page := 1; ; page++ {
		res, err := db.Run(context.Background(), req)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range res.Meets {
			fmt.Printf("page %d: <%s> at distance %d\n", page, m.Tag, m.Distance)
		}
		if res.NextCursor == "" {
			break
		}
		req.Cursor = res.NextCursor // same query, next page
	}
	// Output:
	// page 1: <article> at distance 4
	// page 2: <article> at distance 4
}

// The iterator-native surface: ranked meets as an incremental
// sequence. On a corpus the meets flow as soon as every member has
// produced its first answer; breaking out of the range ends execution
// early.
func ExampleQuerier_Results() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	for m, err := range db.Results(context.Background(), ncq.Request{
		Terms: []string{"Bit", "1999"},
	}) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("<%s> at distance %d\n", m.Tag, m.Distance)
		break // the pushed-down limit: stop after the best concept
	}
	// Output:
	// <article> at distance 5
}

// The paper's SQL variant with meet as a declarative aggregation.
func ExampleDatabase_Query() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := db.Query(`
		SELECT meet(e1, e2)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans.XML())
	// Output:
	// <answer>
	//   <result> article </result>
	// </answer>
}

// Restricting the result type turns the meet into keyword search
// (Section 6 of the paper).
func ExampleRestrict() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	meets, _, err := db.MeetOfTerms(ncq.Restrict("//article"), "Ben", "Bit")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range meets {
		fmt.Printf("<%s key=%q>\n", m.Tag, mustAttr(db, m.Node, "key"))
	}
	// Output:
	// <article key="BB99">
}

// Explain renders a meet in terms of its witnesses' contexts.
func ExampleDatabase_Explain() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	meets, _, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		log.Fatal(err)
	}
	text, err := db.Explain(meets[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)
	// Output:
	// <article> connects:
	//   · author/lastname/cdata = "Bit"
	//   · year/cdata = "1999"
}

// Meet2 computes the nearest concept of an explicit pair.
func ExampleDatabase_Meet2() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	ben := db.Search("Ben")[0].Node
	bit := db.Search("Bit")[0].Node
	m, err := db.Meet2(ben, bit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("<%s> %d edges apart\n", m.Tag, m.Distance)
	// Output:
	// <author> 4 edges apart
}

// A thesaurus broadens a search that returned too few answers.
func ExampleThesaurus() {
	db, err := ncq.OpenString(bib)
	if err != nil {
		log.Fatal(err)
	}
	th := ncq.NewThesaurus().Add("robert", "bob")
	for _, h := range db.SearchExpanded(th, "Robert") {
		fmt.Println(h.Value)
	}
	// Output:
	// Bob Byte
}

func mustAttr(db *ncq.Database, n ncq.NodeID, name string) string {
	v, _ := db.Attr(n, name)
	return v
}
