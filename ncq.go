// Package ncq is a Go implementation of nearest concept queries over
// XML documents — a reproduction of A. Schmidt, M. Kersten and
// M. Windhouwer, "Querying XML Documents Made Easy: Nearest Concept
// Queries", ICDE 2001.
//
// The library lets applications query XML documents whose content they
// know but whose mark-up they do not: full-text search locates strings,
// and the meet operator returns the lowest common ancestors of the hits
// — the "nearest concepts" that relate them. The result type is not
// specified in the query; it emerges from the database instance.
//
// # Quick start
//
//	db, err := ncq.OpenString(`<bib><book><author>Bit</author>` +
//	    `<year>1999</year></book></bib>`)
//	if err != nil { ... }
//	meets, _, err := db.MeetOfTerms(nil, "Bit", "1999")
//	// meets[0].Tag == "book": Bit published something in 1999.
//
// Underneath, documents are shredded into the path-partitioned binary
// relations of the Monet XML storage scheme; the meet algorithms of the
// paper's Figures 3-5 run directly on those relations.
//
// At scale, the unified Querier surface (Run, Results, RunStream over
// a Database or a multi-document Corpus) executes term queries as an
// incrementally merged, globally ranked sequence: with Results
// (range-over-func) the first nearest concept reaches the caller as
// soon as every corpus member has produced its locally best answer,
// and abandoning the range abandons the rest of the work.
package ncq

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"ncq/internal/bat"
	"ncq/internal/core"
	"ncq/internal/fulltext"
	"ncq/internal/idref"
	"ncq/internal/monetx"
	"ncq/internal/pathexpr"
	"ncq/internal/pathsum"
	"ncq/internal/query"
	"ncq/internal/xmltree"
)

// NodeID identifies a node of a loaded document. IDs are assigned in
// depth-first document order starting at 1; 0 is never a valid node.
type NodeID = bat.OID

// Database is a loaded XML document ready for nearest concept queries.
type Database struct {
	doc    *xmltree.Document
	store  *monetx.Store
	index  *fulltext.Index
	engine *query.Engine
}

// Open parses an XML document from r and loads it.
func Open(r io.Reader) (*Database, error) {
	doc, err := ParseDocument(r)
	if err != nil {
		return nil, err
	}
	return FromDocument(doc)
}

// ParseDocument parses an XML document from r without loading it into
// a database — the form Corpus.AddSharded and FromDocument consume.
func ParseDocument(r io.Reader) (*xmltree.Document, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	return doc, nil
}

// OpenString is Open on a string.
func OpenString(s string) (*Database, error) {
	return Open(strings.NewReader(s))
}

// FromDocument loads an already parsed syntax tree.
func FromDocument(doc *xmltree.Document) (*Database, error) {
	if doc == nil {
		return nil, fmt.Errorf("ncq: nil document")
	}
	store, err := monetx.Load(doc)
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	idx := fulltext.New(store)
	return &Database{
		doc:    doc,
		store:  store,
		index:  idx,
		engine: query.NewEngine(store, idx),
	}, nil
}

// Len returns the number of nodes (elements plus character data).
func (db *Database) Len() int { return db.store.Len() }

// Root returns the NodeID of the document root.
func (db *Database) Root() NodeID { return db.store.Root() }

// Tag returns the element label of n ("cdata" for character data).
func (db *Database) Tag(n NodeID) string { return db.store.Label(n) }

// Path returns the full label path of n, e.g. "/bib/book/year".
func (db *Database) Path(n NodeID) string { return db.store.PathString(n) }

// Parent returns the parent of n, or 0 for the root.
func (db *Database) Parent(n NodeID) NodeID { return db.store.Parent(n) }

// Children returns the children of n in document order.
func (db *Database) Children(n NodeID) []NodeID { return db.store.Children(n) }

// Value returns the character data of n: its text if n is a cdata
// node, otherwise the concatenated direct cdata children.
func (db *Database) Value(n NodeID) string {
	if t, ok := db.store.Text(n); ok {
		return t
	}
	var parts []string
	for _, c := range db.store.Children(n) {
		if t, ok := db.store.Text(c); ok {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " ")
}

// Attr returns the value of the named attribute of element n.
func (db *Database) Attr(n NodeID, name string) (string, bool) {
	return db.store.AttrValue(n, name)
}

// Before reports whether a starts before b in document order.
func (db *Database) Before(a, b NodeID) bool { return db.store.DocBefore(a, b) }

// NextSibling returns the sibling immediately following n, or 0.
func (db *Database) NextSibling(n NodeID) NodeID { return db.store.NextSibling(n) }

// PrevSibling returns the sibling immediately preceding n, or 0.
func (db *Database) PrevSibling(n NodeID) NodeID { return db.store.PrevSibling(n) }

// Subtree renders the subtree rooted at element n as an XML string —
// the "starting point for displaying and browsing" of Section 4 of the
// paper.
func (db *Database) Subtree(n NodeID) (string, error) {
	sub, err := db.store.ReassembleSubtree(n)
	if err != nil {
		return "", fmt.Errorf("ncq: %w", err)
	}
	return sub.XMLString(), nil
}

// Hit is one full-text match.
type Hit struct {
	Node  NodeID `json:"node"`  // the node carrying the string (cdata node or attribute owner)
	Value string `json:"value"` // the complete stored string
	Path  string `json:"path"`  // the string relation's path, e.g. "/bib/book/year/cdata@string"
}

// Search returns the nodes whose strings contain term as a word,
// case-insensitively (multi-word terms match as a phrase).
func (db *Database) Search(term string) []Hit {
	return db.wrapHits(db.index.Search(term))
}

// SearchSubstring returns the nodes whose strings contain sub as a
// case-sensitive substring — the paper's `contains` semantics.
func (db *Database) SearchSubstring(sub string) []Hit {
	return db.wrapHits(db.index.SearchSubstring(sub))
}

func (db *Database) wrapHits(hits []fulltext.Hit) []Hit {
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{Node: h.Owner, Value: h.Value, Path: db.store.Summary().String(h.Path)}
	}
	return out
}

// Meet is one nearest concept: the lowest common ancestor of its
// witnesses.
type Meet struct {
	Node      NodeID   `json:"node"`
	Tag       string   `json:"tag"`       // the concept's element label — the paper's result type
	Path      string   `json:"path"`      // its full path
	Witnesses []NodeID `json:"witnesses"` // the inputs this concept connects, ascending
	Distance  int      `json:"distance"`  // total parent joins spent; the ranking key
}

// Options tunes the meet operator (the Section 4 extensions of the
// paper). The zero value is the plain operator. Use the helper
// functions (ExcludeRoot, ExcludePattern, ...) to build one fluently.
type Options struct {
	excludePatterns  []string
	restrictPatterns []string
	excludeRoot      bool
	skipExcluded     bool
	maxLift          int
	maxDistance      int
}

// ExcludeRoot discards meets at the document root — almost always
// wanted on large databases (used in the paper's DBLP case study).
func ExcludeRoot() *Options { return (&Options{}).ExcludeRoot() }

// ExcludeRoot marks the document root as an inadmissible result type.
func (o *Options) ExcludeRoot() *Options {
	o.excludeRoot = true
	return o
}

// ExcludePattern marks every path matching the pattern (pathexpr
// syntax, e.g. "//article") as inadmissible.
func ExcludePattern(pattern string) *Options { return (&Options{}).ExcludePattern(pattern) }

// ExcludePattern adds an inadmissible path pattern.
func (o *Options) ExcludePattern(pattern string) *Options {
	o.excludePatterns = append(o.excludePatterns, pattern)
	return o
}

// Nearest switches exclusion to "find the nearest admissible concept":
// inadmissible meets do not swallow their witnesses, the search
// continues upward (an extension beyond the paper).
func (o *Options) Nearest() *Options {
	o.skipExcluded = true
	return o
}

// Restrict keeps only meets whose path matches the pattern; matches at
// other paths climb until they reach an admissible node. This is how
// "by restricting the result types, the operator can be used to
// implement keyword search as a special case" (Section 6 of the
// paper): restricting to "//inproceedings" turns the meet into keyword
// search over bibliography records.
func Restrict(pattern string) *Options { return (&Options{}).Restrict(pattern) }

// Restrict adds an admissible result-path pattern.
func (o *Options) Restrict(pattern string) *Options {
	o.restrictPatterns = append(o.restrictPatterns, pattern)
	return o
}

// Within keeps only meets whose two closest witnesses are at most d
// edges apart — the paper's distance-restricted meet.
func Within(d int) *Options { return (&Options{}).Within(d) }

// Within sets the pairwise distance bound.
func (o *Options) Within(d int) *Options {
	o.maxDistance = d
	return o
}

// MaxLift bounds how many parent steps any single input may take.
func (o *Options) MaxLift(n int) *Options {
	o.maxLift = n
	return o
}

// compile lowers the public Options into core.Options.
func (o *Options) compile(db *Database) (*core.Options, error) {
	if o == nil {
		return nil, nil
	}
	opt := &core.Options{
		MaxLift:      o.maxLift,
		MaxDistance:  o.maxDistance,
		SkipExcluded: o.skipExcluded,
	}
	if o.excludeRoot || len(o.excludePatterns) > 0 {
		opt.Exclude = map[pathsum.PathID]bool{}
		if o.excludeRoot {
			opt.Exclude[db.store.Summary().Root()] = true
		}
		for _, src := range o.excludePatterns {
			pat, err := pathexpr.Compile(src)
			if err != nil {
				return nil, fmt.Errorf("ncq: exclude pattern: %w", err)
			}
			for _, pid := range pat.SelectPaths(db.store.Summary()) {
				opt.Exclude[pid] = true
			}
		}
	}
	if len(o.restrictPatterns) > 0 {
		// A whitelist is the complement blacklist with climbing
		// semantics: inadmissible meets pass their witnesses upward
		// until an admissible path is reached.
		sum := db.store.Summary()
		admissible := map[pathsum.PathID]bool{}
		for _, src := range o.restrictPatterns {
			pat, err := pathexpr.Compile(src)
			if err != nil {
				return nil, fmt.Errorf("ncq: restrict pattern: %w", err)
			}
			for _, pid := range pat.SelectPaths(sum) {
				admissible[pid] = true
			}
		}
		if opt.Exclude == nil {
			opt.Exclude = map[pathsum.PathID]bool{}
		}
		for _, pid := range sum.ElemPaths() {
			if !admissible[pid] {
				opt.Exclude[pid] = true
			}
		}
		opt.SkipExcluded = true
	}
	return opt, nil
}

// MeetOf computes the nearest concepts of an arbitrary set of nodes
// (the general meet of the paper's Figure 5). It returns the meets in
// document order plus the inputs that found no partner.
func (db *Database) MeetOf(nodes []NodeID, opt *Options) ([]Meet, []NodeID, error) {
	copt, err := opt.compile(db)
	if err != nil {
		return nil, nil, err
	}
	results, unmatched, err := core.MeetOIDs(db.store, nodes, copt)
	if err != nil {
		return nil, nil, fmt.Errorf("ncq: %w", err)
	}
	return db.wrapResults(results), unmatched, nil
}

// MeetOfTerms runs the paper's flagship interaction in one call: a
// full-text search per term (substring semantics) followed by the meet
// of all hits. This answers questions like "what connects 'Bit' and
// '1999' in this document?" without any schema knowledge.
//
// Each term contributes its own input set, so a node matched by two
// different terms is reported as its own nearest concept at distance
// zero (the paper's "Bob"/"Byte" example).
//
// The meets are returned in document order, as before the unified API;
// it is a wrapper over Run, which returns them ranked and additionally
// supports cancellation, limits and pagination.
func (db *Database) MeetOfTerms(opt *Options, terms ...string) ([]Meet, []NodeID, error) {
	if len(terms) == 0 {
		return []Meet{}, nil, nil
	}
	res, err := db.Run(context.Background(), Request{Terms: terms, Options: opt}) //lint:ncqvet-ignore legacy ctx-less public API; ctx-aware callers use Run
	if err != nil {
		return nil, nil, err
	}
	meets := make([]Meet, len(res.Meets))
	for i, m := range res.Meets {
		meets[i] = m.Meet
	}
	// A node can host two meets: a roll-up of distinct witnesses and a
	// degenerate self-meet (both terms hitting the node itself). The
	// pre-unified order put the roll-up first; the ranked input has the
	// distance-0 self-meet first, so the tie-break restores it.
	selfMeet := func(m Meet) bool {
		return len(m.Witnesses) == 1 && m.Witnesses[0] == m.Node
	}
	sort.SliceStable(meets, func(i, j int) bool {
		if meets[i].Node != meets[j].Node {
			return meets[i].Node < meets[j].Node
		}
		return !selfMeet(meets[i]) && selfMeet(meets[j])
	})
	return meets, res.UnmatchedNodes, nil
}

// meetOfSets lowers per-term input sets into core.MeetMulti.
func (db *Database) meetOfSets(sets [][]NodeID, opt *Options) ([]Meet, []NodeID, error) {
	copt, err := opt.compile(db)
	if err != nil {
		return nil, nil, err
	}
	results, unmatched, err := core.MeetMulti(db.store, sets, copt)
	if err != nil {
		return nil, nil, fmt.Errorf("ncq: %w", err)
	}
	return db.wrapResults(results), unmatched, nil
}

// Meet2 returns the nearest concept of exactly two nodes together with
// their distance in edges (the pairwise meet of Figure 3).
func (db *Database) Meet2(a, b NodeID) (Meet, error) {
	m, joins, err := core.Meet2(db.store, a, b)
	if err != nil {
		return Meet{}, fmt.Errorf("ncq: %w", err)
	}
	return Meet{
		Node:      m,
		Tag:       db.store.Label(m),
		Path:      db.store.PathString(m),
		Witnesses: []NodeID{a, b},
		Distance:  joins,
	}, nil
}

// Dist returns the number of edges between two nodes.
func (db *Database) Dist(a, b NodeID) (int, error) {
	d, err := core.Dist(db.store, a, b)
	if err != nil {
		return 0, fmt.Errorf("ncq: %w", err)
	}
	return d, nil
}

// RankMeets orders meets by ascending distance (the paper's join-count
// ranking heuristic), breaking ties by document order, in place, and
// returns its argument.
func RankMeets(meets []Meet) []Meet {
	sort.SliceStable(meets, func(i, j int) bool {
		if meets[i].Distance != meets[j].Distance {
			return meets[i].Distance < meets[j].Distance
		}
		return meets[i].Node < meets[j].Node
	})
	return meets
}

// RankMeetsBySourceProximity orders meets by how close together their
// witnesses appear in the document (smallest witness OID span first) —
// the "distances in the source file" heuristic of Section 4. Ties break
// by join distance, then document order. In place; returns its argument.
func RankMeetsBySourceProximity(meets []Meet) []Meet {
	span := func(m Meet) NodeID {
		if len(m.Witnesses) == 0 {
			return 0
		}
		return m.Witnesses[len(m.Witnesses)-1] - m.Witnesses[0]
	}
	sort.SliceStable(meets, func(i, j int) bool {
		si, sj := span(meets[i]), span(meets[j])
		if si != sj {
			return si < sj
		}
		if meets[i].Distance != meets[j].Distance {
			return meets[i].Distance < meets[j].Distance
		}
		return meets[i].Node < meets[j].Node
	})
	return meets
}

func (db *Database) wrapResults(results []core.Result) []Meet {
	out := make([]Meet, len(results))
	for i, r := range results {
		out[i] = Meet{
			Node:      r.Meet,
			Tag:       db.store.Label(r.Meet),
			Path:      db.store.PathString(r.Meet),
			Witnesses: r.Witnesses,
			Distance:  r.Distance,
		}
	}
	return out
}

// Answer re-exports the query engine's answer type.
type Answer = query.Answer

// Query evaluates a query in the paper's SQL variant, e.g.
//
//	SELECT meet(e1, e2)
//	FROM //cdata AS e1, //cdata AS e2
//	WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'
//
// It is a wrapper over Run.
func (db *Database) Query(src string) (*Answer, error) {
	if src == "" {
		return db.engine.Query(src) // preserve the parser's error shape
	}
	res, err := db.Run(context.Background(), Request{Query: src}) //lint:ncqvet-ignore legacy ctx-less public API; ctx-aware callers use Run
	if err != nil {
		return nil, err
	}
	return res.Answers[0].Answer, nil
}

// References builds the ID/IDREF reference graph of the document (the
// paper's future-work extension) using the given attribute names,
// typically "id" and "idref".
func (db *Database) References(idAttr, refAttr string) (*RefGraph, error) {
	g, err := idref.New(db.store, idAttr, refAttr)
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	return &RefGraph{g: g, db: db}, nil
}

// RefGraph is the reference-augmented view of a database.
type RefGraph struct {
	g  *idref.Graph
	db *Database
}

// Meet returns the nearest concept of two nodes on the reference-
// augmented graph together with their shortest-path distance.
func (rg *RefGraph) Meet(a, b NodeID) (Meet, error) {
	m, dist, err := rg.g.Meet(a, b)
	if err != nil {
		return Meet{}, fmt.Errorf("ncq: %w", err)
	}
	return Meet{
		Node:      m,
		Tag:       rg.db.store.Label(m),
		Path:      rg.db.store.PathString(m),
		Witnesses: []NodeID{a, b},
		Distance:  dist,
	}, nil
}

// Refs returns the number of reference edges.
func (rg *RefGraph) Refs() int { return rg.g.Refs() }

// Lookup resolves an ID attribute value to its declaring element.
func (rg *RefGraph) Lookup(id string) (NodeID, bool) { return rg.g.Lookup(id) }

// Stats summarises the loaded store.
type Stats struct {
	Nodes        int `json:"nodes"`        // tree nodes
	Paths        int `json:"paths"`        // distinct paths (relations in the catalogue)
	Associations int `json:"associations"` // stored binary associations
	MemBytes     int `json:"mem_bytes"`    // estimated column memory
	Terms        int `json:"terms"`        // distinct full-text tokens
}

// Stats reports storage and index statistics.
func (db *Database) Stats() Stats {
	st := db.store.Stats()
	return Stats{
		Nodes:        st.Nodes,
		Paths:        st.Paths,
		Associations: st.Associations,
		MemBytes:     st.MemBytes,
		Terms:        db.index.Terms(),
	}
}

// WriteXML serialises the loaded document back to XML.
func (db *Database) WriteXML(w io.Writer, indent bool) error {
	return db.doc.WriteXML(w, indent)
}

// PathInfo describes one relation of the storage catalogue.
type PathInfo = monetx.PathInfo

// Paths lists the storage catalogue: every path with its association
// count — the schema a nearest-concept user never has to know, made
// inspectable.
func (db *Database) Paths() []PathInfo { return db.store.PathInfos() }

// DumpTransform writes the path-partitioned storage representation in
// the style of the paper's Figure 2, truncating each relation to limit
// pairs when limit > 0.
func (db *Database) DumpTransform(w io.Writer, limit int) error {
	return db.store.DumpTransform(w, limit)
}
