package ncq

import (
	"fmt"
	"sync"
	"testing"

	"ncq/internal/xmltree"
)

// TestConcurrentReads hammers one loaded database from many goroutines
// exercising every read path — full-text, meets, queries, navigation,
// reassembly — to validate the documented guarantee that a loaded
// Database is safe for concurrent readers (run with -race to verify).
func TestConcurrentReads(t *testing.T) {
	db, err := FromDocument(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 6 {
				case 0:
					if meets, _, err := db.MeetOfTerms(nil, "Bit", "1999"); err != nil || len(meets) != 1 {
						errs <- fmt.Errorf("MeetOfTerms: %v (%d meets)", err, len(meets))
						return
					}
				case 1:
					if hits := db.Search("ben"); len(hits) != 1 {
						errs <- fmt.Errorf("Search: %d hits", len(hits))
						return
					}
				case 2:
					ans, err := db.Query(`SELECT tag(e) FROM //year AS e`)
					if err != nil || len(ans.Rows) != 2 {
						errs <- fmt.Errorf("Query: %v", err)
						return
					}
				case 3:
					if _, err := db.Subtree(3); err != nil {
						errs <- fmt.Errorf("Subtree: %v", err)
						return
					}
				case 4:
					if m, err := db.Meet2(6, 8); err != nil || m.Node != 4 {
						errs <- fmt.Errorf("Meet2: %v", err)
						return
					}
				case 5:
					if kids := db.Children(3); len(kids) != 3 {
						errs <- fmt.Errorf("Children: %v", kids)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
