package ncq

import (
	"fmt"
	"sync"
	"testing"

	"ncq/internal/xmltree"
)

// TestCorpusConcurrentMixed hammers one corpus with mixed traffic —
// Add, Remove, Get, Names, corpus-wide meets and query-language queries
// — to validate the documented guarantee that a Corpus is safe for
// concurrent readers and writers (run with -race to verify). Queries
// must always see a consistent membership snapshot: every answer's
// source must be a name that was registered at some point.
func TestCorpusConcurrentMixed(t *testing.T) {
	base, err := FromDocument(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	other, err := OpenString(otherMarkup)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpus()
	if err := c.Add("seed", base); err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("doc-%d", g)
			for i := 0; i < iters; i++ {
				switch (g + i) % 5 {
				case 0: // writer: add / replace
					db := base
					if g%2 == 0 {
						db = other
					}
					if err := c.Add(name, db); err != nil {
						errs <- fmt.Errorf("Add: %v", err)
						return
					}
				case 1: // writer: remove
					c.Remove(name)
				case 2: // reader: corpus meet
					meets, err := c.MeetOfTerms(ExcludeRoot(), "Bit", "1999")
					if err != nil {
						errs <- fmt.Errorf("MeetOfTerms: %v", err)
						return
					}
					for _, m := range meets {
						if m.Source == "" {
							errs <- fmt.Errorf("meet with empty source")
							return
						}
					}
				case 3: // reader: corpus query
					if _, err := c.Query(`SELECT tag(e) FROM //year AS e`); err != nil {
						errs <- fmt.Errorf("Query: %v", err)
						return
					}
				case 4: // reader: metadata
					if _, ok := c.Get("seed"); !ok {
						errs <- fmt.Errorf("seed disappeared")
						return
					}
					if c.Len() != len(c.Names()) {
						// Len and Names each take the lock; both are
						// point-in-time reads so they may legitimately
						// disagree under churn — just exercise them.
						_ = c.Generation()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// After the dust settles "seed" must still be resolvable and the
	// generation must reflect that mutations happened.
	if c.Generation() == 0 {
		t.Error("generation never advanced")
	}
	if _, ok := c.Get("seed"); !ok {
		t.Error("seed lost")
	}
}

// TestConcurrentReads hammers one loaded database from many goroutines
// exercising every read path — full-text, meets, queries, navigation,
// reassembly — to validate the documented guarantee that a loaded
// Database is safe for concurrent readers (run with -race to verify).
func TestConcurrentReads(t *testing.T) {
	db, err := FromDocument(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 6 {
				case 0:
					if meets, _, err := db.MeetOfTerms(nil, "Bit", "1999"); err != nil || len(meets) != 1 {
						errs <- fmt.Errorf("MeetOfTerms: %v (%d meets)", err, len(meets))
						return
					}
				case 1:
					if hits := db.Search("ben"); len(hits) != 1 {
						errs <- fmt.Errorf("Search: %d hits", len(hits))
						return
					}
				case 2:
					ans, err := db.Query(`SELECT tag(e) FROM //year AS e`)
					if err != nil || len(ans.Rows) != 2 {
						errs <- fmt.Errorf("Query: %v", err)
						return
					}
				case 3:
					if _, err := db.Subtree(3); err != nil {
						errs <- fmt.Errorf("Subtree: %v", err)
						return
					}
				case 4:
					if m, err := db.Meet2(6, 8); err != nil || m.Node != 4 {
						errs <- fmt.Errorf("Meet2: %v", err)
						return
					}
				case 5:
					if kids := db.Children(3); len(kids) != 3 {
						errs <- fmt.Errorf("Children: %v", kids)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
