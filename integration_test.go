package ncq

import (
	"fmt"
	"strings"
	"testing"

	"ncq/internal/datagen"
)

// openDBLP generates and loads a small synthetic bibliography through
// the full public pipeline (generate → serialise → parse → shred).
func openDBLP(t *testing.T, pubs int) *Database {
	t.Helper()
	cfg := datagen.DefaultDBLPConfig()
	cfg.PubsPerVenueYear = pubs
	var xml strings.Builder
	if err := datagen.DBLP(cfg).WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	db, err := OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestIntegrationCaseStudy runs the paper's DBLP case study end to end
// through the public API only: load XML, query in the SQL variant,
// cross-check with MeetOfTerms, verify the answers against ground
// truth extracted through navigation.
func TestIntegrationCaseStudy(t *testing.T) {
	db := openDBLP(t, 3)

	// The ICDE-1999 publications via the query language.
	ans, err := db.Query(`
		SELECT meet(e1, e2; EXCLUDE /dblp)
		FROM //booktitle/cdata AS e1, //year/cdata AS e2
		WHERE e1 CONTAINS 'ICDE' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 ICDE-1999 records\n%s", len(ans.Rows), ans.XML())
	}
	for _, r := range ans.Rows {
		if r.Tag != "inproceedings" {
			t.Errorf("row tag = %q", r.Tag)
		}
		// Ground truth through navigation.
		var venue, year string
		for _, c := range db.Children(r.OID) {
			switch db.Tag(c) {
			case "booktitle":
				venue = db.Value(c)
			case "year":
				year = db.Value(c)
			}
		}
		if venue != "ICDE" || year != "1999" {
			t.Errorf("record %d is %s %s, want ICDE 1999", r.OID, venue, year)
		}
	}

	// The API path gives the same set.
	meets, _, err := db.MeetOfTerms(ExcludeRoot(), "ICDE", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != len(ans.Rows) {
		t.Errorf("MeetOfTerms found %d, query found %d", len(meets), len(ans.Rows))
	}
	for i, m := range meets {
		if m.Node != ans.Rows[i].OID {
			t.Errorf("result %d differs: %d vs %d", i, m.Node, ans.Rows[i].OID)
		}
	}

	// Each result explains itself in terms of its witnesses.
	text, err := db.Explain(meets[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "booktitle/cdata") || !strings.Contains(text, "year/cdata") {
		t.Errorf("Explain = %s", text)
	}
}

// TestIntegrationNoICDE1985 checks the 1985 gap through the public API.
func TestIntegrationNoICDE1985(t *testing.T) {
	db := openDBLP(t, 2)
	meets, _, err := db.MeetOfTerms(ExcludeRoot(), "ICDE", "1985")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 0 {
		t.Errorf("ICDE 1985 returned %d results, want 0 (no ICDE in 1985)", len(meets))
	}
	meets, _, err = db.MeetOfTerms(ExcludeRoot(), "VLDB", "1985")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 2 {
		t.Errorf("VLDB 1985 returned %d results, want 2", len(meets))
	}
}

// TestIntegrationSnapshotEquivalence snapshots the loaded bibliography
// and checks the reloaded database answers the case study identically.
func TestIntegrationSnapshotEquivalence(t *testing.T) {
	db := openDBLP(t, 2)
	var buf strings.Builder
	bw := &builderWriter{&buf}
	if err := db.SaveSnapshot(bw); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, year := range []string{"1999", "1990", "1984"} {
		a, _, err := db.MeetOfTerms(ExcludeRoot(), "ICDE", year)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := back.MeetOfTerms(ExcludeRoot(), "ICDE", year)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("year %s: %d vs %d results after snapshot", year, len(a), len(b))
		}
		for i := range a {
			if a[i].Node != b[i].Node || a[i].Distance != b[i].Distance {
				t.Fatalf("year %s result %d differs", year, i)
			}
		}
	}
}

// builderWriter adapts strings.Builder to io.Writer (Builder already
// implements it; the wrapper just documents intent at the call site).
type builderWriter struct{ b *strings.Builder }

func (w *builderWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

// TestIntegrationPathsAndTransform exercises the catalogue inspection
// on a generated document.
func TestIntegrationPathsAndTransform(t *testing.T) {
	db := openDBLP(t, 2)
	infos := db.Paths()
	var recCount int
	for _, pi := range infos {
		if pi.Path == "/dblp/inproceedings" {
			recCount = pi.Count
		}
	}
	wantRecords := 5*16*2 - 2 // venues × years × pubs, minus ICDE 1985
	if recCount != wantRecords {
		t.Errorf("record count = %d, want %d", recCount, wantRecords)
	}
	var sb strings.Builder
	if err := db.DumpTransform(&sb, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "/dblp/inproceedings@key = {") {
		t.Errorf("transform dump missing key relation:\n%s", firstLines(sb.String(), 5))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestIntegrationRankedCLIStyleFlow mirrors what cmd/ncq does: search,
// meet, rank, show, on a generated document.
func TestIntegrationRankedCLIStyleFlow(t *testing.T) {
	db := openDBLP(t, 2)
	hits := db.SearchSubstring("Schmidt")
	if len(hits) == 0 {
		t.Fatal("no Schmidt in the generated data")
	}
	meets, _, err := db.MeetOfTerms(ExcludeRoot(), "Schmidt", "VLDB")
	if err != nil {
		t.Fatal(err)
	}
	RankMeets(meets)
	for i := 1; i < len(meets); i++ {
		if meets[i].Distance < meets[i-1].Distance {
			t.Fatal("ranking broken")
		}
	}
	if len(meets) > 0 {
		if _, err := db.Subtree(meets[0].Node); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIntegrationStatsPlausible sanity-checks storage accounting on a
// larger generated document.
func TestIntegrationStatsPlausible(t *testing.T) {
	db := openDBLP(t, 4)
	st := db.Stats()
	if st.Nodes < 1000 {
		t.Errorf("suspiciously small: %+v", st)
	}
	if st.Associations <= st.Nodes {
		t.Errorf("associations (%d) should exceed nodes (%d): edges + ranks + strings", st.Associations, st.Nodes)
	}
	if st.Terms == 0 || st.MemBytes == 0 || st.Paths == 0 {
		t.Errorf("zero fields: %+v", st)
	}
	_ = fmt.Sprintf("%+v", st) // Stats must be printable
}
