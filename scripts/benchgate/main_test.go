package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		vals map[string]float64
		ok   bool
	}{
		{
			"BenchmarkServerQuery/cold-4         	     100	   1104213 ns/op",
			"BenchmarkServerQuery/cold-4", map[string]float64{"ns/op": 1104213}, true,
		},
		{
			"BenchmarkSnapshotSave-4   10  9.5 ns/op  120 MB/s", "BenchmarkSnapshotSave-4",
			map[string]float64{"ns/op": 9.5}, true,
		},
		{
			"BenchmarkFig7CaseStudy/yearLow=1999-4  3  2000 ns/op  42 results",
			"BenchmarkFig7CaseStudy/yearLow=1999-4", map[string]float64{"ns/op": 2000}, true,
		},
		{
			"BenchmarkSearch-4  500  2100 ns/op  1024 B/op  1 allocs/op",
			"BenchmarkSearch-4", map[string]float64{"ns/op": 2100, "B/op": 1024, "allocs/op": 1}, true,
		},
		{"PASS", "", nil, false},
		{"ok  	ncq	0.6s", "", nil, false},
		{"goos: linux", "", nil, false},
	}
	for _, c := range cases {
		name, vals, ok := parseLine(c.line)
		if name != c.name || ok != c.ok || len(vals) != len(c.vals) {
			t.Errorf("parseLine(%q) = (%q, %v, %t), want (%q, %v, %t)",
				c.line, name, vals, ok, c.name, c.vals, c.ok)
			continue
		}
		for unit, want := range c.vals {
			if vals[unit] != want {
				t.Errorf("parseLine(%q)[%s] = %v, want %v", c.line, unit, vals[unit], want)
			}
		}
	}
}

func TestGated(t *testing.T) {
	prefixes := []string{"BenchmarkServerQuery", "BenchmarkCorpusMeetParallel"}
	for name, want := range map[string]bool{
		"BenchmarkServerQuery/cold-4":             true,
		"BenchmarkServerQuery-16":                 true,
		"BenchmarkCorpusMeetParallel/workers=1-4": true,
		"BenchmarkBatchQuery/batch/cold-4":        false,
		"BenchmarkServerQueryExtra-4":             false,
	} {
		if got := gated(name, prefixes); got != want {
			t.Errorf("gated(%q) = %t", name, got)
		}
	}
	if !gated("BenchmarkAnything-4", nil) {
		t.Error("empty prefix list must gate everything")
	}
}

func mkSamples(unit string, xs ...float64) samples {
	return samples{unit: xs}
}

func TestCompareGate(t *testing.T) {
	base := map[string]samples{
		"BenchmarkServerQuery/cold-4": mkSamples("ns/op", 100, 110, 105),
		"BenchmarkBatchQuery/cold-4":  mkSamples("ns/op", 100, 100, 100),
		"BenchmarkOnlyInBase-4":       mkSamples("ns/op", 1),
	}
	// Within threshold: +10% on the gated benchmark.
	head := map[string]samples{
		"BenchmarkServerQuery/cold-4": mkSamples("ns/op", 115, 116, 114),
		"BenchmarkBatchQuery/cold-4":  mkSamples("ns/op", 900), // ungated: may regress freely
		"BenchmarkOnlyInHead-4":       mkSamples("ns/op", 1),
	}
	report, failed := compare(base, head, 20, []string{"BenchmarkServerQuery"})
	if failed {
		t.Fatalf("+10%% failed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "missing from head") || !strings.Contains(report, "new in head") {
		t.Errorf("report lacks presence notes:\n%s", report)
	}

	// Beyond threshold fails.
	head["BenchmarkServerQuery/cold-4"] = mkSamples("ns/op", 140, 141, 139)
	report, failed = compare(base, head, 20, []string{"BenchmarkServerQuery"})
	if !failed {
		t.Fatalf("+33%% passed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Errorf("failing report lacks FAIL line:\n%s", report)
	}
}

func TestCompareGatesMemoryMetrics(t *testing.T) {
	base := map[string]samples{
		"BenchmarkServerQuery/cold-4": {
			"ns/op": {100, 101}, "B/op": {1000, 1000}, "allocs/op": {50, 50},
		},
	}
	// ns/op steady, allocs/op doubled: the gate must fail.
	head := map[string]samples{
		"BenchmarkServerQuery/cold-4": {
			"ns/op": {100, 100}, "B/op": {1010, 1010}, "allocs/op": {100, 100},
		},
	}
	report, failed := compare(base, head, 20, []string{"BenchmarkServerQuery"})
	if !failed {
		t.Fatalf("allocs/op doubling passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op") {
		t.Errorf("report lacks allocs/op line:\n%s", report)
	}

	// A metric present only in the head run (e.g. baseline ran without
	// -benchmem) must not gate.
	base["BenchmarkServerQuery/cold-4"] = samples{"ns/op": {100, 101}}
	if report, failed := compare(base, head, 20, []string{"BenchmarkServerQuery"}); failed {
		t.Fatalf("head-only metric gated:\n%s", report)
	}

	// Zero-to-nonzero on a gated metric counts as a regression.
	base["BenchmarkServerQuery/cold-4"] = samples{"ns/op": {100}, "allocs/op": {0}}
	head["BenchmarkServerQuery/cold-4"] = samples{"ns/op": {100}, "allocs/op": {3}}
	if report, failed := compare(base, head, 20, []string{"BenchmarkServerQuery"}); !failed {
		t.Fatalf("0 -> 3 allocs/op passed the gate:\n%s", report)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.txt", `
goos: linux
BenchmarkServerQuery/cold-4   100  1000 ns/op  2000 B/op  20 allocs/op
BenchmarkServerQuery/cold-4   100  1020 ns/op  2000 B/op  20 allocs/op
BenchmarkOther-4              100  500 ns/op
PASS
`)
	good := write("good.txt", `
BenchmarkServerQuery/cold-4   100  1100 ns/op  2050 B/op  20 allocs/op
BenchmarkServerQuery/cold-4   100  1090 ns/op  2050 B/op  20 allocs/op
BenchmarkOther-4              100  5000 ns/op
`)
	bad := write("bad.txt", `
BenchmarkServerQuery/cold-4   100  2000 ns/op  2000 B/op  20 allocs/op
BenchmarkServerQuery/cold-4   100  2100 ns/op  2000 B/op  20 allocs/op
`)
	badMem := write("badmem.txt", `
BenchmarkServerQuery/cold-4   100  1000 ns/op  9000 B/op  220 allocs/op
BenchmarkServerQuery/cold-4   100  1010 ns/op  9000 B/op  220 allocs/op
`)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	gate := []string{"-gate", "BenchmarkServerQuery", "-threshold", "20"}
	if code := run(append(gate, base, good), devnull, devnull); code != 0 {
		t.Errorf("good head: exit %d", code)
	}
	if code := run(append(gate, base, bad), devnull, devnull); code != 1 {
		t.Errorf("bad head: exit %d", code)
	}
	if code := run(append(gate, base, badMem), devnull, devnull); code != 1 {
		t.Errorf("memory-regressed head: exit %d", code)
	}
	if code := run([]string{base}, devnull, devnull); code != 2 {
		t.Errorf("missing arg: exit %d", code)
	}
	if code := run(append(gate, filepath.Join(dir, "absent.txt"), good), devnull, devnull); code != 2 {
		t.Errorf("absent file: exit %d", code)
	}
}
