package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkServerQuery/cold-4         	     100	   1104213 ns/op", "BenchmarkServerQuery/cold-4", 1104213, true},
		{"BenchmarkSnapshotSave-4   10  9.5 ns/op  120 MB/s", "BenchmarkSnapshotSave-4", 9.5, true},
		{"BenchmarkFig7CaseStudy/yearLow=1999-4  3  2000 ns/op  42 results", "BenchmarkFig7CaseStudy/yearLow=1999-4", 2000, true},
		{"PASS", "", 0, false},
		{"ok  	ncq	0.6s", "", 0, false},
		{"goos: linux", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseLine(c.line)
		if name != c.name || ns != c.ns || ok != c.ok {
			t.Errorf("parseLine(%q) = (%q, %v, %t), want (%q, %v, %t)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestGated(t *testing.T) {
	prefixes := []string{"BenchmarkServerQuery", "BenchmarkCorpusMeetParallel"}
	for name, want := range map[string]bool{
		"BenchmarkServerQuery/cold-4":             true,
		"BenchmarkServerQuery-16":                 true,
		"BenchmarkCorpusMeetParallel/workers=1-4": true,
		"BenchmarkBatchQuery/batch/cold-4":        false,
		"BenchmarkServerQueryExtra-4":             false,
	} {
		if got := gated(name, prefixes); got != want {
			t.Errorf("gated(%q) = %t", name, got)
		}
	}
	if !gated("BenchmarkAnything-4", nil) {
		t.Error("empty prefix list must gate everything")
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkServerQuery/cold-4": {100, 110, 105},
		"BenchmarkBatchQuery/cold-4":  {100, 100, 100},
		"BenchmarkOnlyInBase-4":       {1},
	}
	// Within threshold: +10% on the gated benchmark.
	head := map[string][]float64{
		"BenchmarkServerQuery/cold-4": {115, 116, 114},
		"BenchmarkBatchQuery/cold-4":  {900}, // ungated: may regress freely
		"BenchmarkOnlyInHead-4":       {1},
	}
	report, failed := compare(base, head, 20, []string{"BenchmarkServerQuery"})
	if failed {
		t.Fatalf("+10%% failed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "missing from head") || !strings.Contains(report, "new in head") {
		t.Errorf("report lacks presence notes:\n%s", report)
	}

	// Beyond threshold fails.
	head["BenchmarkServerQuery/cold-4"] = []float64{140, 141, 139}
	report, failed = compare(base, head, 20, []string{"BenchmarkServerQuery"})
	if !failed {
		t.Fatalf("+33%% passed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Errorf("failing report lacks FAIL line:\n%s", report)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.txt", `
goos: linux
BenchmarkServerQuery/cold-4   100  1000 ns/op
BenchmarkServerQuery/cold-4   100  1020 ns/op
BenchmarkOther-4              100  500 ns/op
PASS
`)
	good := write("good.txt", `
BenchmarkServerQuery/cold-4   100  1100 ns/op
BenchmarkServerQuery/cold-4   100  1090 ns/op
BenchmarkOther-4              100  5000 ns/op
`)
	bad := write("bad.txt", `
BenchmarkServerQuery/cold-4   100  2000 ns/op
BenchmarkServerQuery/cold-4   100  2100 ns/op
`)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	gate := []string{"-gate", "BenchmarkServerQuery", "-threshold", "20"}
	if code := run(append(gate, base, good), devnull, devnull); code != 0 {
		t.Errorf("good head: exit %d", code)
	}
	if code := run(append(gate, base, bad), devnull, devnull); code != 1 {
		t.Errorf("bad head: exit %d", code)
	}
	if code := run([]string{base}, devnull, devnull); code != 2 {
		t.Errorf("missing arg: exit %d", code)
	}
	if code := run(append(gate, filepath.Join(dir, "absent.txt"), good), devnull, devnull); code != 2 {
		t.Errorf("absent file: exit %d", code)
	}
}
