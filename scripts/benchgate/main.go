// Command benchgate compares two `go test -bench` outputs (a baseline
// and a head run, each typically produced with -count N) and exits
// non-zero when a gated benchmark's median regressed by more than the
// threshold in any tracked metric: ns/op always, and — when the runs
// were produced with -benchmem — B/op and allocs/op as well, so an
// allocation regression on the serving path fails the build even when
// wall-clock noise hides it. CI runs it after benchstat: benchstat
// renders the human table, benchgate is the machine-checkable gate,
// with no dependency outside the standard library.
//
// Usage:
//
//	benchgate [-threshold 20] [-gate name,name,...] base.txt head.txt
//
// A gate entry is a benchmark's base name: the name up to its first
// '/' with the trailing -GOMAXPROCS suffix stripped, compared exactly.
// "BenchmarkServerQuery" gates BenchmarkServerQuery/cold-4 and
// BenchmarkServerQuery/cached-4 alike, but not
// BenchmarkServerQueryExtra. Benchmarks present in only one file are
// reported but never gate; a metric present in only one run never
// gates either.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// units are the tracked metrics, in report order.
var units = []string{"ns/op", "B/op", "allocs/op"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 20, "maximum allowed regression in percent (per metric)")
	gate := fs.String("gate", "", "comma-separated benchmark base names to gate, sub-benchmarks included (empty = all)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchgate [-threshold PCT] [-gate P1,P2] base.txt head.txt")
		return 2
	}
	base, err := parseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	head, err := parseFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	report, failed := compare(base, head, *threshold, gatePrefixes(*gate))
	fmt.Fprint(stdout, report)
	if failed {
		return 1
	}
	return 0
}

func gatePrefixes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// samples holds one benchmark's measurements per tracked unit.
type samples map[string][]float64

// parseFile extracts the tracked metrics per benchmark name from go
// test -bench output.
func parseFile(path string) (map[string]samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]samples)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, vals, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s := out[name]
		if s == nil {
			s = make(samples)
			out[name] = s
		}
		for unit, v := range vals {
			s[unit] = append(s[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return out, nil
}

// parseLine reads one "BenchmarkName-P  N  123.4 ns/op  56 B/op ..."
// line, returning every tracked metric present. A line counts only
// when it carries ns/op (every go test bench line does).
func parseLine(line string) (name string, vals map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	for i := 2; i+1 < len(fields); i += 2 {
		unit := fields[i+1]
		if !tracked(unit) {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		if vals == nil {
			vals = make(map[string]float64, len(units))
		}
		vals[unit] = v
	}
	if _, hasNS := vals["ns/op"]; !hasNS {
		return "", nil, false
	}
	return fields[0], vals, true
}

func tracked(unit string) bool {
	for _, u := range units {
		if u == unit {
			return true
		}
	}
	return false
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gated reports whether the benchmark's base name — sub-benchmark path
// and -GOMAXPROCS suffix stripped — exactly matches one of the gate
// entries (an empty list gates everything).
func gated(name string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	bare := name
	if i := strings.IndexByte(bare, '/'); i >= 0 {
		bare = bare[:i]
	}
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndexByte(bare, '-'); i >= 0 {
		if _, err := strconv.Atoi(bare[i+1:]); err == nil {
			bare = bare[:i]
		}
	}
	for _, p := range prefixes {
		if bare == p {
			return true
		}
	}
	return false
}

// compare renders a delta table per tracked metric and reports whether
// any gated benchmark regressed beyond threshold percent in any of
// them.
func compare(base, head map[string]samples, threshold float64, prefixes []string) (string, bool) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	failed := false
	for _, n := range names {
		hs, ok := head[n]
		if !ok {
			fmt.Fprintf(&b, "%-60s missing from head run\n", n)
			continue
		}
		for _, unit := range units {
			bxs, hxs := base[n][unit], hs[unit]
			if len(bxs) == 0 || len(hxs) == 0 {
				continue // metric absent from one run: report nothing, gate nothing
			}
			bm, hm := median(bxs), median(hxs)
			var delta float64
			switch {
			case bm != 0:
				delta = 100 * (hm - bm) / bm
			case hm != 0:
				// From zero to anything: an unbounded regression, so
				// no finite threshold can wave it through.
				delta = math.Inf(1)
			}
			mark := " "
			if gated(n, prefixes) {
				mark = "·"
				if delta > threshold {
					mark = "✗"
					failed = true
				}
			}
			fmt.Fprintf(&b, "%s %-58s %12.0f -> %12.0f %-9s %+6.1f%%\n", mark, n, bm, hm, unit, delta)
		}
	}
	for n := range head {
		if _, ok := base[n]; !ok {
			fmt.Fprintf(&b, "  %-58s new in head run\n", n)
		}
	}
	if failed {
		fmt.Fprintf(&b, "FAIL: gated benchmark regressed more than %.0f%%\n", threshold)
	} else {
		fmt.Fprintf(&b, "ok: no gated benchmark regressed more than %.0f%%\n", threshold)
	}
	return b.String(), failed
}
