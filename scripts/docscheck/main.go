// Command docscheck keeps the operator documentation honest. It fails
// (exit 1, one line per violation) when:
//
//   - a relative Markdown link anywhere in the repo points at a file
//     that does not exist,
//   - an ncqd flag defined in cmd/ncqd/main.go is not documented in
//     docs/OPERATIONS.md, or
//   - an ncq_* metric name registered in non-test Go source is not
//     documented in docs/OPERATIONS.md, or
//   - an ncqvet analyzer registered under scripts/ncqvet/passes is not
//     documented in docs/ARCHITECTURE.md's "Enforced invariants".
//
// Run it from the repository root: go run ./scripts/docscheck
// CI's docs job does exactly that, so documentation drift is a build
// failure, not a review nit.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

const (
	opsPath  = "docs/OPERATIONS.md"
	archPath = "docs/ARCHITECTURE.md"
)

var (
	// [text](target) — inline Markdown links. Reference-style links
	// are not used in this repo.
	linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// fs.String("addr", ...) and friends in cmd/ncqd/main.go.
	flagRe = regexp.MustCompile(`fs\.(?:String|Bool|Int|Int64|Uint|Float64|Duration)\("([a-z][a-z0-9-]*)"`)
	// "ncq_..." string literals: the metric names handed to the
	// registry constructors.
	metricRe = regexp.MustCompile(`"(ncq_[a-z0-9_]+)"`)
	// Name: "maporder" — the analyzer registrations in
	// scripts/ncqvet/passes/*/*.go.
	analyzerRe = regexp.MustCompile(`Name:\s*"([a-z][a-z0-9]*)"`)
)

func main() {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	ops, err := os.ReadFile(opsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v (run from the repository root)\n", err)
		os.Exit(1)
	}
	opsText := string(ops)

	arch, err := os.ReadFile(archPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v (run from the repository root)\n", err)
		os.Exit(1)
	}

	checkLinks(report)
	checkFlags(opsText, report)
	checkMetrics(opsText, report)
	checkAnalyzers(string(arch), report)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck: "+p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkLinks verifies that every relative link in every Markdown file
// resolves to an existing file or directory.
func checkLinks(report func(string, ...any)) {
	_ = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			report("%s: %v", path, err)
			return nil
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				report("%s: broken link %q (%s does not exist)", path, m[1], resolved)
			}
		}
		return nil
	})
}

// checkFlags verifies that every flag ncqd defines appears, backticked
// with its dash (`-addr`), in OPERATIONS.md.
func checkFlags(opsText string, report func(string, ...any)) {
	src, err := os.ReadFile("cmd/ncqd/main.go")
	if err != nil {
		report("cmd/ncqd/main.go: %v", err)
		return
	}
	matches := flagRe.FindAllStringSubmatch(string(src), -1)
	if len(matches) == 0 {
		report("cmd/ncqd/main.go: no flag definitions found — did the flag idiom change?")
		return
	}
	for _, m := range dedup(matches) {
		if !strings.Contains(opsText, "`-"+m+"`") {
			report("%s: ncqd flag -%s is not documented", opsPath, m)
		}
	}
}

// checkMetrics verifies that every ncq_* metric name in non-test Go
// source appears in OPERATIONS.md.
func checkMetrics(opsText string, report func(string, ...any)) {
	var names []string
	_ = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			report("%s: %v", path, err)
			return nil
		}
		for _, m := range metricRe.FindAllStringSubmatch(string(body), -1) {
			names = append(names, m[1])
		}
		return nil
	})
	if len(names) == 0 {
		report("no ncq_* metric names found in Go source — did the registry idiom change?")
		return
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if !strings.Contains(opsText, "`"+n+"`") {
			report("%s: metric %s is not documented", opsPath, n)
		}
	}
}

// checkAnalyzers verifies that every ncqvet analyzer (the Name field
// of each registration under scripts/ncqvet/passes) appears,
// backticked, in ARCHITECTURE.md — the linter's contract is only as
// discoverable as its documentation.
func checkAnalyzers(archText string, report func(string, ...any)) {
	var names []string
	_ = filepath.WalkDir("scripts/ncqvet/passes", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			report("%s: %v", path, err)
			return nil
		}
		for _, m := range analyzerRe.FindAllStringSubmatch(string(body), -1) {
			names = append(names, m[1])
		}
		return nil
	})
	if len(names) == 0 {
		report("no analyzer registrations found under scripts/ncqvet/passes — did the Name idiom change?")
		return
	}
	sort.Strings(names)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if !strings.Contains(archText, "`"+n+"`") {
			report("%s: ncqvet analyzer %s is not documented", archPath, n)
		}
	}
}

func dedup(matches [][]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range matches {
		if !seen[m[1]] {
			seen[m[1]] = true
			out = append(out, m[1])
		}
	}
	sort.Strings(out)
	return out
}
