// Command ncqvet is the repository's invariant checker: a
// multichecker in the mould of golang.org/x/tools/go/analysis with
// five custom passes encoding the conventions the compiler cannot
// see — the byte-exact global answer order, context threading through
// every fan-out layer, pooled-scratch hygiene, the range-over-func
// producer protocol, and per-route instrumentation.
//
// Usage, from the repository root:
//
//	go build -C scripts/ncqvet -o /tmp/ncqvet . && /tmp/ncqvet ./...
//
// The build environment is offline and the root module is
// dependency-free by policy, so ncqvet is its own zero-dependency
// module: the analysis core, the package loader (compiler export
// data via `go list -export`) and the fixture runner are stdlib-only
// reimplementations of the x/tools shapes. Of the stock passes the
// suite is meant to bundle, copylocks and lostcancel ship inside the
// toolchain's own vet and run as a subprocess (-stock=false to skip);
// nilness and unusedwrite are SSA-based and gated on a vendored
// golang.org/x/tools, which this environment cannot fetch.
//
// A finding is suppressed by an end-of-line (or preceding-line)
// directive with a mandatory reason:
//
//	//lint:ncqvet-ignore legacy public signature predates ctx plumbing
//
// A reason-less directive is itself a finding. See the "Enforced
// invariants" section of docs/ARCHITECTURE.md for the analyzer list.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"ncqvet/internal/analysis"
	"ncqvet/internal/ignore"
	"ncqvet/internal/load"
	"ncqvet/passes/ctxflow"
	"ncqvet/passes/maporder"
	"ncqvet/passes/poolbalance"
	"ncqvet/passes/routeinstrument"
	"ncqvet/passes/yieldstop"
)

// scoped pairs an analyzer with the module-relative package paths it
// runs on (nil scope = the whole module). maporder and
// routeinstrument stay inside the ranking/serving packages they were
// written for — their heuristics assume output-producing code;
// ctxflow, poolbalance and yieldstop encode module-wide disciplines.
type scoped struct {
	a     *analysis.Analyzer
	paths []string // module-relative prefixes; "" is the root package
}

var suite = []scoped{
	{maporder.Analyzer, []string{"", "internal/server", "internal/cluster"}},
	{ctxflow.Analyzer, nil},
	{poolbalance.Analyzer, nil},
	{yieldstop.Analyzer, nil},
	{routeinstrument.Analyzer, []string{"internal/server", "internal/cluster"}},
}

func main() {
	var (
		list  = flag.Bool("list", false, "list the registered analyzers and exit")
		stock = flag.Bool("stock", true, "also run the toolchain's vet passes (copylocks, lostcancel)")
		dir   = flag.String("C", ".", "directory of the module to check")
	)
	flag.Parse()
	if *list {
		for _, s := range suite {
			fmt.Printf("%-16s %s\n", s.a.Name, s.a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *stock {
		// copylocks and lostcancel are the stock passes the Go
		// toolchain itself ships; running them through the same
		// binary keeps `ncqvet ./...` the single lint entry point.
		cmd := exec.Command("go", append([]string{"vet", "-copylocks", "-lostcancel"}, patterns...)...)
		cmd.Dir = *dir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := load.Targets(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncqvet: %v\n", err)
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, s := range suite {
			if !inScope(s, pkg) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  s.a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := s.a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "ncqvet: %s on %s: %v\n", s.a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		diags = ignore.Filter(pkg.Fset, pkg.Files, diags)
		sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// inScope reports whether pkg falls under one of s's module-relative
// path prefixes.
func inScope(s scoped, pkg *load.Package) bool {
	if s.paths == nil {
		return true
	}
	rel := pkg.ImportPath
	if pkg.Module != "" {
		rel = strings.TrimPrefix(strings.TrimPrefix(pkg.ImportPath, pkg.Module), "/")
	}
	for _, p := range s.paths {
		if p == rel || (p != "" && strings.HasPrefix(rel, p+"/")) {
			return true
		}
	}
	return false
}
