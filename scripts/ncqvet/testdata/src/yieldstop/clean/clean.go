// Fixture: compliant producers — every false return of yield stops
// the emission, or nothing can yield afterwards.
package cleancase

// stopOnFalse is the canonical producer loop.
func stopOnFalse(items []int, yield func(int) bool) {
	for _, v := range items {
		if !yield(v) {
			return
		}
	}
}

// assigned observes the result through a named variable.
func assigned(items []int, yield func(int) bool) {
	for _, v := range items {
		if ok := yield(v); !ok {
			return
		}
	}
}

// errThenReturn: an ignored result is harmless when the very next
// statement returns, and a trailing yield has nothing after it.
func errThenReturn(err error, yield func(int, error) bool) {
	if err != nil {
		yield(0, err)
		return
	}
	if !yield(1, nil) {
		return
	}
	yield(2, nil)
}

// breakOut leaves the loop instead of returning — also terminal.
func breakOut(items []int, yield func(int) bool) {
	for _, v := range items {
		if !yield(v) {
			break
		}
	}
}
