// Fixture: producers that keep yielding after yield returned false —
// the shape that panics a range-over-func consumer.
package flagcase

// loopIgnored discards the result while the loop can yield again.
func loopIgnored(items []int, yield func(int) bool) {
	for _, v := range items {
		yield(v) // want `result of yield is ignored`
	}
}

// laterYield blanks the first result with a second yield pending.
func laterYield(a, b int, yield func(int) bool) {
	_ = yield(a) // want `result of yield is ignored`
	yield(b)
}

// observedDropped tests the false and then carries on regardless.
func observedDropped(items []int, yield func(int) bool) {
	n := 0
	for _, v := range items {
		if !yield(v) { // want `does not stop the producer`
			n++
		}
	}
	_ = n
}
