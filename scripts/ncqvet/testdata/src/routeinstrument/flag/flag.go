// Fixture: mux registrations whose handler never passes through
// metrics.Instrument — invisible routes.
package flagcase

import (
	"net/http"

	"ncq/internal/metrics"
)

func routes(m *metrics.HTTP) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/raw", http.NotFoundHandler())                                // want `without metrics.Instrument`
	mux.HandleFunc("GET /v1/rawfn", func(w http.ResponseWriter, r *http.Request) {}) // want `without metrics.Instrument`
	mux.Handle("GET /v1/ok", m.Instrument("/v1/ok", http.NotFoundHandler()))
	return mux
}
