// Fixture: the repo idiom — a single handle closure wrapping every
// handler, so each mux.Handle site passes through Instrument.
package cleancase

import (
	"net/http"

	"ncq/internal/metrics"
)

func routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.Handler) {
		mux.Handle(pattern, metrics.Instrument(route, h))
	}
	handle("GET /v1/query", "/v1/query", http.NotFoundHandler())
	handle("GET /v1/stats", "/v1/stats", http.NotFoundHandler())
	return mux
}
