// Fixture: every function here lets map iteration order reach an
// output — the exact bug class maporder exists to catch.
package flagcase

import (
	"fmt"
	"io"
)

// emitDirect streams map entries straight to the writer: the wire
// order changes run to run.
func emitDirect(w io.Writer, counts map[string]int) {
	for k, v := range counts { // want `nondeterministic order`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// collectUnsorted builds a key slice that leaves the function unsorted.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

// yieldUnsorted pushes map entries into a range-over-func consumer.
func yieldUnsorted(m map[string]int, yield func(string) bool) {
	for k := range m { // want `output stream`
		if !yield(k) {
			return
		}
	}
}

// sendUnsorted forwards map keys over a channel.
func sendUnsorted(m map[string]int, ch chan<- string) {
	for k := range m { // want `output stream`
		ch <- k
	}
}
