// Fixture: the blessed shapes — collect-then-sort, map-to-map
// rebuilds and order-independent folds must produce no diagnostics.
package cleancase

import (
	"fmt"
	"io"
	"sort"
)

// emitSorted is the canonical idiom: collect keys, sort, then emit.
func emitSorted(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, counts[k])
	}
}

// sortFuncLater sorts with a comparator after the range completes.
func sortFuncLater(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// rebuild writes into another map: no iteration order escapes.
func rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// reduce folds into a scalar: order-independent by construction.
func reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
