// Fixture: properly threaded contexts produce no diagnostics.
package cleancase

import "context"

type store struct{}

func (s *store) Load() error                           { return nil }
func (s *store) LoadContext(ctx context.Context) error { return ctx.Err() }

// serve threads its ctx into every layer below it, including the
// literal it launches.
func serve(ctx context.Context, s *store) error {
	if err := s.LoadContext(ctx); err != nil {
		return err
	}
	go func(ctx context.Context) {
		_ = s.LoadContext(ctx)
	}(ctx)
	return nil
}

// plain holds no ctx, so the ctx-less variant is the right call.
func plain(s *store) error {
	return s.Load()
}
