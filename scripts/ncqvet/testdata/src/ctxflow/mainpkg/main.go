// Fixture: func main is the one place a fresh root context belongs.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
