// Fixture: severed context chains — fresh Background/TODO roots
// outside main, and ctx-dropping calls with a *Context sibling.
package flagcase

import "context"

type store struct{}

func (s *store) Load() error                           { return nil }
func (s *store) LoadContext(ctx context.Context) error { return ctx.Err() }

func compute() int                           { return 0 }
func computeContext(ctx context.Context) int { _ = ctx; return 0 }

func serve(ctx context.Context, s *store) error {
	_ = compute()                    // want `use computeContext`
	if err := s.Load(); err != nil { // want `use LoadContext`
		return err
	}
	return run(context.Background()) // want `severs the cancellation chain`
}

func run(ctx context.Context) error { return ctx.Err() }

func detached() {
	ctx := context.TODO() // want `severs the cancellation chain`
	_ = ctx
}
