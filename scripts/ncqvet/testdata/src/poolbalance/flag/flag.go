// Fixture: pooled scratch that can leak — no Put at all, or a plain
// Put an early return can jump over.
package flagcase

import (
	"errors"
	"sync"
)

var scratch = sync.Pool{New: func() any { return new([64]byte) }}

var errFail = errors.New("fail")

// leak never returns the value to the pool and never hands it off.
func leak() {
	buf := scratch.Get().(*[64]byte) // want `no matching scratch.Put`
	buf[0] = 1
}

// earlyReturn can leave between the Get and the plain Put.
func earlyReturn(fail bool) error {
	buf := scratch.Get().(*[64]byte) // want `defer the Put`
	if fail {
		return errFail
	}
	buf[0] = 1
	scratch.Put(buf)
	return nil
}
