// Fixture: every accepted pool shape — deferred Put (direct and via a
// deferred literal), return-free plain Put, ownership transfer.
package cleancase

import "sync"

var scratch = sync.Pool{New: func() any { return new([64]byte) }}

// deferred is the preferred, exception-safe shape.
func deferred() {
	buf := scratch.Get().(*[64]byte)
	defer scratch.Put(buf)
	buf[0] = 1
}

// deferredClosure puts from inside a deferred function literal.
func deferredClosure() int {
	buf := scratch.Get().(*[64]byte)
	defer func() { scratch.Put(buf) }()
	return int(buf[0])
}

// linear pairs a plain Put with no return between Get and Put.
func linear() {
	buf := scratch.Get().(*[64]byte)
	buf[0] = 1
	scratch.Put(buf)
}

// handoff transfers ownership to the caller, getScratch-style: the
// matching Put is the caller's obligation.
func handoff() *[64]byte {
	buf := scratch.Get().(*[64]byte)
	return buf
}

// direct returns the raw Get: ownership moves with the value.
func direct() any {
	return scratch.Get()
}
