// Package metrics is a fixture stub of ncq/internal/metrics, exposing
// just the Instrument surface routeinstrument matches on (by name and
// package-path suffix, not signature).
package metrics

import "net/http"

// Instrument wraps next with the serving middleware.
func Instrument(route string, next http.Handler) http.Handler { return next }

// HTTP mirrors a collector carrying Instrument as a method.
type HTTP struct{}

// Instrument is the method-shaped variant.
func (h *HTTP) Instrument(route string, next http.Handler) http.Handler { return next }
