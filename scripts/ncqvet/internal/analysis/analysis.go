// Package analysis is a dependency-free core modelled on
// golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package and reports Diagnostics through its Pass.
//
// The build environment for this repository is offline — the module
// cache holds no third-party code — so ncqvet cannot depend on
// x/tools. The API mirrors the upstream shape (Analyzer.Run(*Pass),
// Pass.Reportf, Diagnostic{Pos, Message}) closely enough that moving
// the passes onto the real framework, should the dependency ever be
// vendored, is a mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check. Name appears in diagnostic
// output, in docs/ARCHITECTURE.md (enforced by scripts/docscheck) and
// in `ncqvet -list`.
type Analyzer struct {
	Name string
	Doc  string

	// Run inspects the package in pass and reports findings via
	// pass.Report/Reportf. The returned error aborts the whole run —
	// reserve it for internal failures, not findings.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }
