// Package astq holds the small AST/type queries the ncqvet passes
// share: callee resolution, named-type tests, function-body walks
// with parent tracking.
package astq

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Callee resolves the statically called function or method of call,
// or nil for dynamic calls (function values, yield parameters).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsNamed reports whether t (aliases resolved) is the named type
// path.name, e.g. IsNamed(t, "context", "Context").
func IsNamed(t types.Type, path, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == name && o.Pkg() != nil && o.Pkg().Path() == path
}

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// FirstParamIsContext reports whether sig's first parameter is a
// context.Context.
func FirstParamIsContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && IsNamed(sig.Params().At(0).Type(), "context", "Context")
}

// Funcs calls fn for every function body in file — declarations and
// literals — with the node owning the body.
func Funcs(file *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// Parents maps every node under root to its syntactic parent.
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ExprString renders e compactly — the identity key for "same
// expression" comparisons like pool receivers (scratchPool, s.pool).
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// RootIdent returns the leftmost identifier of a selector chain or
// index expression, or nil (x in x.f.g, x[i].f).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
