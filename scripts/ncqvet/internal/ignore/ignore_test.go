package ignore

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"ncqvet/internal/analysis"
)

const src = `package p

func a() int {
	return 1 //lint:ncqvet-ignore eol directive with a reason
}

func b() int {
	//lint:ncqvet-ignore preceding-line directive with a reason
	return 2
}

func c() int {
	return 3 //lint:ncqvet-ignore
}

func d() int {
	return 4
}

func e() int {
	return 5 //lint:ncqvet-ignoreX not one of ours
}
`

func TestFilter(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	at := func(line int) token.Pos { return tf.LineStart(line) }
	diags := []analysis.Diagnostic{
		{Pos: at(4), Message: "suppressed by eol directive", Analyzer: "t"},
		{Pos: at(9), Message: "suppressed by preceding directive", Analyzer: "t"},
		{Pos: at(13), Message: "kept: directive has no reason", Analyzer: "t"},
		{Pos: at(17), Message: "kept: no directive at all", Analyzer: "t"},
		{Pos: at(21), Message: "kept: not an ncqvet directive", Analyzer: "t"},
	}

	out := Filter(fset, []*ast.File{f}, diags)

	var kept, malformed []string
	for _, d := range out {
		if strings.Contains(d.Message, "requires a reason") {
			malformed = append(malformed, fset.Position(d.Pos).String())
			continue
		}
		kept = append(kept, d.Message)
	}
	wantKept := []string{
		"kept: directive has no reason",
		"kept: no directive at all",
		"kept: not an ncqvet directive",
	}
	if len(kept) != len(wantKept) {
		t.Fatalf("kept %v, want %v", kept, wantKept)
	}
	for i := range kept {
		if kept[i] != wantKept[i] {
			t.Errorf("kept[%d] = %q, want %q", i, kept[i], wantKept[i])
		}
	}
	if len(malformed) != 1 {
		t.Fatalf("malformed directives reported at %v, want exactly one (line 13)", malformed)
	}
	if pos := malformed[0]; !strings.Contains(pos, "fix.go:13") {
		t.Errorf("malformed directive reported at %s, want fix.go:13", pos)
	}
}
