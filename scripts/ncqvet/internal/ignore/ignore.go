// Package ignore implements the ncqvet suppression directive:
//
//	//lint:ncqvet-ignore <reason>
//
// placed on the flagged line or the line directly above it. The
// reason is required — a directive without one is itself reported —
// so every suppression documents why the invariant does not apply,
// the same contract nolint-style escape hatches have in larger
// linters. Directives never suppress in bulk: one directive covers
// one line.
package ignore

import (
	"go/ast"
	"go/token"
	"strings"

	"ncqvet/internal/analysis"
)

const prefix = "//lint:ncqvet-ignore"

// directive is one parsed ncqvet-ignore comment.
type directive struct {
	pos    token.Pos
	line   int // line the directive suppresses (its own, or the one below)
	reason string
	used   bool
}

// Filter drops diagnostics suppressed by a directive in files and
// appends one diagnostic per malformed (reason-less) directive. The
// returned slice preserves the input order.
func Filter(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) []analysis.Diagnostic {
	var dirs []*directive
	byLine := map[string][]*directive{} // file name -> directives
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //lint:ncqvet-ignoreXXX — not ours
				}
				pos := fset.Position(c.Pos())
				d := &directive{
					pos:    c.Pos(),
					line:   pos.Line,
					reason: strings.TrimSpace(rest),
				}
				dirs = append(dirs, d)
				byLine[pos.Filename] = append(byLine[pos.Filename], d)
			}
		}
	}

	var out []analysis.Diagnostic
	for _, diag := range diags {
		pos := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range byLine[pos.Filename] {
			if d.reason == "" {
				continue // malformed; reported below, never suppresses
			}
			// A directive on its own line covers the next line; an
			// end-of-line directive covers its own.
			if d.line == pos.Line || d.line == pos.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	for _, d := range dirs {
		if d.reason == "" {
			out = append(out, analysis.Diagnostic{
				Pos:      d.pos,
				Message:  "ncqvet-ignore directive requires a reason, e.g. //lint:ncqvet-ignore legacy API predates ctx plumbing",
				Analyzer: "ncqvet",
			})
		}
	}
	return out
}
