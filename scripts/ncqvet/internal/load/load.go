// Package load type-checks Go packages without golang.org/x/tools.
//
// Dependencies are imported from compiler export data produced by
// `go list -export` (served straight from the build cache, so loading
// is offline and fast); only the packages under analysis — and, in
// fixture mode, stub packages under a testdata/src root — are parsed
// and checked from source. This is the same division of labour as
// go/packages' LoadTypes+NeedSyntax mode, in ~200 lines of stdlib.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one source-loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Module     string // module path; "" for fixture packages
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader resolves imports for source-checked packages: fixture
// directories first (parsed and checked recursively), everything else
// through gc export data located by `go list -export`.
type Loader struct {
	Fset    *token.FileSet
	workDir string            // where go list runs
	exports map[string]string // import path -> export data file
	srcDirs map[string]string // import path -> source dir (fixtures)
	srcPkgs map[string]*Package
	gc      types.ImporterFrom
}

func newLoader(workDir string) *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		workDir: workDir,
		exports: map[string]string{},
		srcDirs: map[string]string{},
		srcPkgs: map[string]*Package{},
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Module     *struct{ Path string }
}

// goList runs `go list -deps -export -json` on patterns in dir and
// merges every discovered export file into the loader's table.
func (l *Loader) goList(patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.workDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Targets loads the packages matched by patterns (resolved by the go
// command in dir), type-checked from source with their dependency
// graph imported from export data. Test files are not loaded: the
// invariants ncqvet enforces live in shipping code, and the stock
// `go vet` passes already cover tests.
func Targets(dir string, patterns []string) ([]*Package, error) {
	l := newLoader(dir)
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		if p.Module != nil {
			pkg.Module = p.Module.Path
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Fixtures returns a loader whose non-stdlib imports resolve under
// srcRoot (testdata/src/<importpath>), the analysistest layout.
func Fixtures(srcRoot string) (*Loader, error) {
	l := newLoader(srcRoot)
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(srcRoot, path)
				if err != nil {
					return err
				}
				l.srcDirs[filepath.ToSlash(rel)] = path
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scanning fixtures under %s: %v", srcRoot, err)
	}
	return l, nil
}

// Load type-checks the fixture package at importPath from source,
// fetching export data for any stdlib imports on first use.
func (l *Loader) Load(importPath string) (*Package, error) {
	dir, ok := l.srcDirs[importPath]
	if !ok {
		return nil, fmt.Errorf("no fixture package %q under %s", importPath, l.workDir)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			files = append(files, n)
		}
	}
	sort.Strings(files)
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package from source, memoized by
// import path (fixture stubs may be both analyzed and imported).
func (l *Loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	if p, ok := l.srcPkgs[importPath]; ok {
		return p, nil
	}
	var files []*ast.File
	var imports []string
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	if err := l.ensureExports(imports); err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.srcPkgs[importPath] = p
	return p, nil
}

// ensureExports resolves export data for any import that is neither a
// fixture package nor already located. Targets loaded through goList
// never miss (their -deps walk located everything), so this only runs
// for fixture loads.
func (l *Loader) ensureExports(imports []string) error {
	var missing []string
	for _, p := range imports {
		if p == "unsafe" || p == "C" {
			continue
		}
		if _, ok := l.srcDirs[p]; ok {
			continue
		}
		if _, ok := l.exports[p]; ok {
			continue
		}
		missing = append(missing, p)
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	_, err := l.goList(missing)
	return err
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: fixture sources win,
// everything else is export data.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.srcDirs[path]; ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gc.ImportFrom(path, dir, mode)
}
