// Package analysistest runs an analyzer over fixture packages laid
// out like golang.org/x/tools/go/analysis/analysistest's:
// testdata/src/<importpath>/*.go, with expectations written as
//
//	code() // want "regexp"
//
// comments. Every diagnostic must match a want on its line and every
// want must be matched — so a fixture with no want comments doubles
// as a clean fixture: any diagnostic fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"ncqvet/internal/analysis"
	"ncqvet/internal/load"
)

// expectation is one want pattern, anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from <dir>/src/<path>, applies a,
// and checks its diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader, err := load.Fixtures(dir + "/src")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		checkExpectations(t, pkg, pass.Diagnostics())
	}
}

func checkExpectations(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg.Fset, c)...)
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the want patterns of one comment. Both quoted
// ("...") and backquoted (`...`) patterns are accepted.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var out []*expectation
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want: %q", pos, c.Text)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern: %q", pos, c.Text)
		}
		pat := rest[1 : 1+end]
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(rest[2+end:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns: %q", pos, c.Text)
	}
	return out
}

// Errorf formats a position for test failure messages.
func Errorf(fset *token.FileSet, pos token.Pos, format string, args ...any) string {
	return fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...))
}
