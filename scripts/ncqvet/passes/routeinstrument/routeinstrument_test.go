package routeinstrument_test

import (
	"testing"

	"ncqvet/internal/analysistest"
	"ncqvet/passes/routeinstrument"
)

func TestRouteInstrument(t *testing.T) {
	analysistest.Run(t, "../../testdata", routeinstrument.Analyzer, "routeinstrument/flag", "routeinstrument/clean")
}
