// Package routeinstrument is the AST-level twin of docscheck's drift
// guard: every route registered on an http.ServeMux in the serving
// packages (internal/server, internal/cluster) must wrap its handler
// in metrics.Instrument. A bare mux.Handle ships a route with no
// latency histogram, no request counter and no request log line —
// invisible to the dashboards docs/OPERATIONS.md promises.
//
// The check is syntactic over the registration call: the handler
// argument's expression tree must contain a call to a function or
// method named Instrument declared in the internal/metrics package.
// The repo idiom — a local `handle` closure that wraps every handler
// — satisfies it at its single mux.Handle site.
package routeinstrument

import (
	"go/ast"
	"go/types"
	"strings"

	"ncqvet/internal/analysis"
	"ncqvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "routeinstrument",
	Doc:  "flag ServeMux route registrations whose handler is not wrapped by metrics.Instrument",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkRegistration(pass, call)
			return true
		})
	}
	return nil
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr) {
	f := astq.Callee(pass.TypesInfo, call)
	if f == nil || (f.Name() != "Handle" && f.Name() != "HandleFunc") {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if !astq.IsNamed(astq.Deref(sig.Recv().Type()), "net/http", "ServeMux") {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	if containsInstrument(pass, call.Args[1]) {
		return
	}
	route := astq.ExprString(pass.Fset, call.Args[0])
	pass.Reportf(call.Pos(), "route %s is registered without metrics.Instrument; wrap the handler so the route gets latency histograms and request logs", route)
}

// containsInstrument reports whether the expression tree contains a
// call to internal/metrics' Instrument.
func containsInstrument(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		f := astq.Callee(pass.TypesInfo, call)
		if f != nil && f.Name() == "Instrument" && f.Pkg() != nil && strings.HasSuffix(f.Pkg().Path(), "internal/metrics") {
			found = true
		}
		return !found
	})
	return found
}
