package maporder_test

import (
	"testing"

	"ncqvet/internal/analysistest"
	"ncqvet/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "../../testdata", maporder.Analyzer, "maporder/flag", "maporder/clean")
}
