// Package maporder flags `for range` over a map whose iteration order
// can reach ordered output: an appended slice that is never sorted, a
// writer/encoder, a yield function, or a channel send. The repo's
// answer contract is a byte-exact (distance, source, shard, node)
// global order — TestDistributedEqualsSingleNode pins it — and one
// unsorted map range in a serving path silently breaks that
// determinism on a Go runtime whose map order is deliberately random.
//
// The safe idiom is collect-keys-then-sort; the analyzer recognises
// it: an append inside the range is clean when the slice is passed to
// a sort.*/slices.Sort*-style call (any callee whose name contains
// "Sort") later in the same function.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ncqvet/internal/analysis"
	"ncqvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose nondeterministic order reaches emitted output",
	Run:  run,
}

// emitNames are callee names that move data toward an output stream.
var emitNames = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Sprintf": false, // pure formatting does not emit by itself
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		astq.Funcs(file, func(node ast.Node, body *ast.BlockStmt) {
			// Only inspect ranges directly owned by this body, not
			// those of nested literals (Funcs visits them separately).
			for rng := range ownRanges(node, body) {
				checkRange(pass, body, rng)
			}
		})
	}
	return nil
}

// ownRanges yields the RangeStmts over maps inside body, excluding
// any nested function literal's.
func ownRanges(owner ast.Node, body *ast.BlockStmt) map[*ast.RangeStmt]bool {
	out := map[*ast.RangeStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != owner {
			return false
		}
		if rng, ok := n.(*ast.RangeStmt); ok {
			out[rng] = true
		}
		return true
	})
	return out
}

func checkRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
		return
	}
	// Scan the loop body for emissions and appended slices.
	var appended []*ast.Ident // slice vars receiving loop data
	emitted := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			emitted = true
		case *ast.CallExpr:
			if isEmitCall(pass.TypesInfo, v) {
				emitted = true
			}
			return true
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(v.Lhs) {
					continue
				}
				if id := astq.RootIdent(v.Lhs[i]); id != nil && id.Name != "_" {
					appended = append(appended, id)
				}
			}
		}
		return true
	})
	if emitted {
		pass.Reportf(rng.For, "range over map %s writes to an output stream in nondeterministic order; iterate sorted keys instead", astq.ExprString(pass.Fset, rng.X))
		return
	}
	for _, id := range appended {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			continue
		}
		if _, isSlice := types.Unalias(obj.Type()).Underlying().(*types.Slice); !isSlice {
			continue
		}
		// Declared inside the loop body: it cannot leave the
		// iteration carrying order (redeclared fresh each pass).
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		if !sortedAfter(pass, funcBody, obj, rng.End()) {
			pass.Reportf(rng.For, "range over map %s appends to %s in nondeterministic order and %s is never sorted; sort it (or iterate sorted keys) before it is used", astq.ExprString(pass.Fset, rng.X), id.Name, id.Name)
		}
	}
}

// isEmitCall reports calls that push data outward: encoder/writer
// methods, fmt printing to a writer, or a yield-style func(...) bool
// parameter.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	if f := astq.Callee(info, call); f != nil {
		return emitNames[f.Name()]
	}
	// Dynamic call: a func-typed value. Treat bool-returning function
	// parameters (range-over-func yield) as emission.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Var); ok {
			if sig, ok := types.Unalias(obj.Type()).Underlying().(*types.Signature); ok {
				return sig.Results().Len() == 1 && isBool(sig.Results().At(0).Type())
			}
		}
	}
	return false
}

func isBool(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// isSortFunc recognises sorting callees: everything in package sort
// (Strings, Ints, Slice, Stable, ...), the slices.Sort* family, and
// any helper whose name contains "Sort" (bat.SortDedup).
func isSortFunc(f *types.Func) bool {
	if f.Pkg() != nil && f.Pkg().Path() == "sort" {
		return true
	}
	return strings.Contains(f.Name(), "Sort")
}

// sortedAfter reports whether obj is passed to a sorting call
// (sort.Strings, sort.Slice, slices.SortFunc, SortDedup, ...) after
// pos in the function body.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		f := astq.Callee(pass.TypesInfo, call)
		if f == nil || !isSortFunc(f) {
			return true
		}
		for _, arg := range call.Args {
			if id := astq.RootIdent(arg); id != nil && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
