package poolbalance_test

import (
	"testing"

	"ncqvet/internal/analysistest"
	"ncqvet/passes/poolbalance"
)

func TestPoolBalance(t *testing.T) {
	analysistest.Run(t, "../../testdata", poolbalance.Analyzer, "poolbalance/flag", "poolbalance/clean")
}
