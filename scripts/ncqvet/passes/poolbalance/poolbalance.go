// Package poolbalance enforces pooled-scratch hygiene around
// sync.Pool: a Get must be balanced by a Put the function can reach
// on every return path. The columnar roll-up (internal/core) and the
// predicate-scan bitsets (internal/fulltext) recycle scratch through
// pools; a leaked Get silently degrades the zero-allocs-warm contract
// the benchgate pins, without failing any test.
//
// Accepted shapes, checked per enclosing function:
//
//   - a deferred Put on the same pool (directly or inside a deferred
//     literal) — the preferred form, exception-safe by construction;
//   - a plain Put with no return statement between the Get and the
//     Put — an early return there would leak the value;
//   - the Get value escaping via return — ownership moves to the
//     caller (the getScratch/putScratch pair splits the obligation
//     across a helper boundary the analyzer cannot see into).
package poolbalance

import (
	"go/ast"

	"ncqvet/internal/analysis"
	"ncqvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolbalance",
	Doc:  "flag sync.Pool.Get calls without a Put reachable on every return path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		astq.Funcs(file, func(node ast.Node, body *ast.BlockStmt) {
			checkFunc(pass, node, body)
		})
	}
	return nil
}

// poolCall is one Get or Put on a sync.Pool inside a function.
type poolCall struct {
	call     *ast.CallExpr
	pool     string // normalized receiver expression, the pool's identity
	deferred bool
}

func checkFunc(pass *analysis.Pass, owner ast.Node, body *ast.BlockStmt) {
	var gets, puts []poolCall
	var returns []*ast.ReturnStmt

	// Explicit recursive traversal — ast.Inspect cannot carry state
	// down the walk, and deferred Puts may live directly in a
	// DeferStmt or inside a deferred function literal.
	var visit func(n ast.Node, deferred bool)
	visit = func(n ast.Node, deferred bool) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			if pc, ok := poolMethodCall(pass, v.Call, "Put"); ok {
				pc.deferred = true
				puts = append(puts, pc)
				return
			}
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				visit(lit.Body, true)
				return
			}
			visit(v.Call, deferred)
			return
		case *ast.FuncLit:
			if v != owner {
				// Nested literal: its own Funcs visit checks it. But a
				// Put inside a literal deferred by this function was
				// handled above; any other nested use stays separate.
				return
			}
		case *ast.ReturnStmt:
			returns = append(returns, v)
		case *ast.CallExpr:
			if pc, ok := poolMethodCall(pass, v, "Get"); ok {
				gets = append(gets, pc)
			}
			if pc, ok := poolMethodCall(pass, v, "Put"); ok {
				pc.deferred = deferred
				puts = append(puts, pc)
			}
		}
		children(n, func(c ast.Node) { visit(c, deferred) })
	}
	visit(body, false)

	for _, g := range gets {
		checkGet(pass, body, g, puts, returns)
	}
}

// children invokes fn on each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		fn(c)
		return false
	})
}

// poolMethodCall matches recv.Name(...) where recv is a sync.Pool or
// *sync.Pool, returning the call tagged with the pool's identity.
func poolMethodCall(pass *analysis.Pass, call *ast.CallExpr, name string) (poolCall, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return poolCall{}, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !astq.IsNamed(astq.Deref(tv.Type), "sync", "Pool") {
		return poolCall{}, false
	}
	return poolCall{call: call, pool: astq.ExprString(pass.Fset, sel.X)}, true
}

func checkGet(pass *analysis.Pass, body *ast.BlockStmt, g poolCall, puts []poolCall, returns []*ast.ReturnStmt) {
	var plain []poolCall
	for _, p := range puts {
		if p.pool != g.pool {
			continue
		}
		if p.deferred {
			return // balanced on every path
		}
		plain = append(plain, p)
	}
	if len(plain) > 0 {
		// A plain Put balances the Get only if no return can fire
		// between them.
		first := plain[0].call.Pos()
		for _, p := range plain[1:] {
			if p.call.Pos() < first {
				first = p.call.Pos()
			}
		}
		for _, r := range returns {
			if r.Pos() > g.call.End() && r.End() < first {
				pass.Reportf(g.call.Pos(), "%s.Get is not balanced on the return path at %s; defer the Put", g.pool, pass.Fset.Position(r.Pos()))
				return
			}
		}
		return
	}
	if escapesViaReturn(pass, body, g, returns) {
		return
	}
	pass.Reportf(g.call.Pos(), "%s.Get has no matching %s.Put in this function; defer one, or return the value to transfer ownership", g.pool, g.pool)
}

// escapesViaReturn reports whether the Get's value is returned by the
// function — directly, or through the variable it was assigned to
// (possibly via a type assertion).
func escapesViaReturn(pass *analysis.Pass, body *ast.BlockStmt, g poolCall, returns []*ast.ReturnStmt) bool {
	parents := astq.Parents(body)
	// Climb through type assertions/conversions/parens wrapping the Get.
	var n ast.Node = g.call
	for {
		p := parents[n]
		switch p.(type) {
		case *ast.TypeAssertExpr, *ast.ParenExpr, *ast.CallExpr:
			n = p
			continue
		}
		break
	}
	switch p := parents[n].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		// v := pool.Get().(*T): find which LHS the value landed in.
		for i, rhs := range p.Rhs {
			if rhs == n && i < len(p.Lhs) {
				id, ok := p.Lhs[i].(*ast.Ident)
				if !ok {
					return false
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					return false
				}
				for _, r := range returns {
					for _, res := range r.Results {
						if rid := astq.RootIdent(res); rid != nil && pass.TypesInfo.Uses[rid] == obj {
							return true
						}
					}
				}
			}
		}
	}
	return false
}
