package yieldstop_test

import (
	"testing"

	"ncqvet/internal/analysistest"
	"ncqvet/passes/yieldstop"
)

func TestYieldStop(t *testing.T) {
	analysistest.Run(t, "../../testdata", yieldstop.Analyzer, "yieldstop/flag", "yieldstop/clean")
}
