// Package yieldstop enforces the range-over-func producer protocol in
// iter.Seq/iter.Seq2 producers: once yield returns false the producer
// must stop yielding. A yield whose false return is ignored — while
// more yields can still run — keeps pushing into a consumer that
// already left the range loop, which panics at runtime ("range
// function continued iteration after function for loop body returned
// false") on the lucky days and silently corrupts limit/cursor
// accounting on the rest.
//
// A producer is any function — named or literal — with a parameter
// called yield of type func(...) bool, the range-over-func
// convention every Seq in this repo follows (Results, MergeMeets,
// drain). Flagged shapes:
//
//   - yield(v) as a bare statement (or assigned to _) when another
//     yield can still execute: inside a loop, or with a later yield in
//     the producer — unless the very next statement returns;
//   - if !yield(v) { ... } whose body does not end in return, break,
//     continue or goto: the false was observed and then dropped.
package yieldstop

import (
	"go/ast"
	"go/token"
	"go/types"

	"ncqvet/internal/analysis"
	"ncqvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "yieldstop",
	Doc:  "flag iter.Seq producers that keep yielding after yield returned false",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		astq.Funcs(file, func(node ast.Node, body *ast.BlockStmt) {
			if obj := yieldParam(pass.TypesInfo, node); obj != nil {
				checkProducer(pass, node, body, obj)
			}
		})
	}
	return nil
}

// yieldParam returns the function's `yield func(...) bool` parameter
// object, or nil.
func yieldParam(info *types.Info, node ast.Node) types.Object {
	var ft *ast.FuncType
	switch d := node.(type) {
	case *ast.FuncDecl:
		ft = d.Type
	case *ast.FuncLit:
		ft = d.Type
	}
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name != "yield" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			sig, ok := types.Unalias(obj.Type()).Underlying().(*types.Signature)
			if !ok || sig.Results().Len() != 1 {
				continue
			}
			if b, ok := types.Unalias(sig.Results().At(0).Type()).Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
				return obj
			}
		}
	}
	return nil
}

func checkProducer(pass *analysis.Pass, owner ast.Node, body *ast.BlockStmt, yield types.Object) {
	parents := astq.Parents(body)

	// All yield call sites in source order, excluding nested literals
	// (they capture yield and are themselves producers only by the
	// same convention; calls there still belong to this protocol, so
	// nested literals are NOT excluded — a goroutine yielding is its
	// own bug, but ignoring the false return is this one).
	var calls []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == yield {
			calls = append(calls, call)
		}
		return true
	})

	for _, call := range calls {
		switch parent := parents[call].(type) {
		case *ast.ExprStmt:
			checkIgnored(pass, body, parents, calls, call, parent)
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if rhs != ast.Expr(call) || i >= len(parent.Lhs) {
					continue
				}
				if id, ok := parent.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					checkIgnored(pass, body, parents, calls, call, parent)
				}
			}
		case *ast.UnaryExpr:
			// if !yield(v) { ... } — the false must stop the producer.
			if parent.Op != token.NOT {
				continue
			}
			ifStmt, ok := parents[parent].(*ast.IfStmt)
			if !ok || ifStmt.Cond != ast.Expr(parent) {
				continue
			}
			if !terminal(ifStmt.Body) {
				pass.Reportf(call.Pos(), "false result of yield is observed but the branch does not stop the producer; end it with return (or break out of the emission)")
			}
		}
	}
}

// checkIgnored handles a yield whose result is discarded.
func checkIgnored(pass *analysis.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, calls []*ast.CallExpr, call *ast.CallExpr, stmt ast.Stmt) {
	// The next statement returning makes the ignored false harmless:
	// nothing can yield afterwards.
	if next := nextStmt(parents, stmt); next != nil {
		if _, ok := next.(*ast.ReturnStmt); ok {
			return
		}
	}
	inLoop := false
climb:
	for n := ast.Node(stmt); n != nil && n != ast.Node(body); n = parents[n] {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
			break climb
		case *ast.FuncLit:
			// A nested literal bounds the climb: an enclosing loop
			// outside the literal re-enters the literal, not this
			// statement.
			break climb
		}
	}
	laterYield := false
	for _, c := range calls {
		if c.Pos() > call.End() {
			laterYield = true
			break
		}
	}
	if inLoop || laterYield {
		pass.Reportf(call.Pos(), "result of yield is ignored but the producer can still yield; stop when yield returns false (if !yield(...) { return })")
	}
}

// nextStmt returns the statement following stmt in its enclosing
// block, or nil.
func nextStmt(parents map[ast.Node]ast.Node, stmt ast.Stmt) ast.Stmt {
	block, ok := parents[stmt].(*ast.BlockStmt)
	if !ok {
		return nil
	}
	for i, s := range block.List {
		if s == stmt && i+1 < len(block.List) {
			return block.List[i+1]
		}
	}
	return nil
}

// terminal reports whether the block's last statement definitely
// leaves the surrounding control flow.
func terminal(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		// panic(...) terminates too.
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
