// Package ctxflow enforces the repo's context-threading discipline:
//
//  1. context.Background() / context.TODO() belong in func main (and
//     tests, which ncqvet does not analyze). Anywhere else they sever
//     the cancellation chain: a handler's deadline no longer reaches
//     the fan-out under it. Deliberate roots — legacy wrappers whose
//     public signature predates ctx plumbing, detached pollers — are
//     annotated with //lint:ncqvet-ignore and a reason.
//
//  2. a function holding a context must not call a context-less
//     callee that has a *Context sibling (Meet vs MeetContext): the
//     sibling exists precisely so the ctx can thread through.
//
// Calls whose first parameter already is a context.Context need no
// check beyond rule 1 — the compiler forces an argument, and the only
// wrong argument is a fresh Background/TODO, which rule 1 catches.
// Function literals inherit the enclosing ctx scope unless they
// declare a context parameter of their own.
package ctxflow

import (
	"go/ast"
	"go/types"

	"ncqvet/internal/analysis"
	"ncqvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag severed context chains: Background/TODO outside main, and ctx-dropping calls with a *Context sibling",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkBody(pass, d.Body, ctxParam(pass.TypesInfo, d.Type), isMain)
				}
			case *ast.GenDecl:
				// Package-level var initializers may hold literals.
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkBody(pass, lit.Body, ctxParam(pass.TypesInfo, lit.Type), isMain)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

// ctxParam returns the function type's context.Context parameter
// object, or nil.
func ctxParam(info *types.Info, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && astq.IsNamed(obj.Type(), "context", "Context") {
				return obj
			}
		}
	}
	return nil
}

// checkBody inspects one function body; nested literals recurse with
// their own ctx parameter if they declare one, otherwise with the
// inherited (captured) scope.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ctxObj types.Object, isMain bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scope := ctxObj
			if own := ctxParam(pass.TypesInfo, lit.Type); own != nil {
				scope = own
			}
			checkBody(pass, lit.Body, scope, isMain)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := astq.Callee(pass.TypesInfo, call)
		if f == nil {
			return true
		}
		if isBackgroundOrTODO(f) {
			if !isMain {
				pass.Reportf(call.Pos(), "context.%s() outside func main severs the cancellation chain; thread a ctx through (or annotate with //lint:ncqvet-ignore and a reason)", f.Name())
			}
			return true
		}
		if ctxObj != nil {
			checkContextSibling(pass, call, f)
		}
		return true
	})
}

func isBackgroundOrTODO(f *types.Func) bool {
	return f.Pkg() != nil && f.Pkg().Path() == "context" &&
		(f.Name() == "Background" || f.Name() == "TODO")
}

// checkContextSibling flags a call to F when F takes no context but a
// sibling FContext — same package scope, or same receiver's method
// set — does.
func checkContextSibling(pass *analysis.Pass, call *ast.CallExpr, f *types.Func) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || astq.FirstParamIsContext(sig) {
		return
	}
	sibName := f.Name() + "Context"
	var sib types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, f.Pkg(), sibName)
		sib = obj
	} else if f.Pkg() != nil {
		sib = f.Pkg().Scope().Lookup(sibName)
	}
	sf, ok := sib.(*types.Func)
	if !ok {
		return
	}
	ssig, ok := sf.Type().(*types.Signature)
	if !ok || !astq.FirstParamIsContext(ssig) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s drops the ctx in scope; use %s", f.Name(), sibName)
}
