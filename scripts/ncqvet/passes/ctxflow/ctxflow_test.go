package ctxflow_test

import (
	"testing"

	"ncqvet/internal/analysistest"
	"ncqvet/passes/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "../../testdata", ctxflow.Analyzer, "ctxflow/flag", "ctxflow/clean", "ctxflow/mainpkg")
}
