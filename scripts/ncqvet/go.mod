module ncqvet

go 1.24.0
