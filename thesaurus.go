package ncq

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ncq/internal/fulltext"
)

// Thesaurus holds synonym classes used to broaden searches — the
// Section 4 suggestion for queries that return too few answers.
// Synonymy is symmetric and transitive; terms are case-folded.
type Thesaurus struct {
	t *fulltext.Thesaurus
}

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{t: fulltext.NewThesaurus()}
}

// Add declares the terms synonymous.
func (t *Thesaurus) Add(term string, synonyms ...string) *Thesaurus {
	t.t.Add(term, synonyms...)
	return t
}

// Expand returns the full synonym class of term, including the term.
func (t *Thesaurus) Expand(term string) []string { return t.t.Expand(term) }

// ParseThesaurus reads synonym classes from r, one class per line as
// comma-separated terms:
//
//	database, databank, db
//	picture, image, img
//
// Blank lines and lines starting with # are skipped. A class line with
// fewer than two terms is an error (a single term declares nothing).
// This is the format of ncqd's -thesaurus flag.
func ParseThesaurus(r io.Reader) (*Thesaurus, error) {
	t := NewThesaurus()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		var terms []string
		for _, part := range strings.Split(s, ",") {
			if part = strings.TrimSpace(part); part != "" {
				terms = append(terms, part)
			}
		}
		if len(terms) < 2 {
			return nil, fmt.Errorf("ncq: thesaurus line %d: a synonym class needs at least two terms", line)
		}
		t.Add(terms[0], terms[1:]...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ncq: thesaurus: %w", err)
	}
	return t, nil
}

// SearchExpanded searches for term and all of its synonyms.
func (db *Database) SearchExpanded(t *Thesaurus, term string) []Hit {
	if t == nil {
		return db.Search(term)
	}
	return db.wrapHits(db.index.SearchExpanded(t.t, term))
}

// MeetOfTermsExpanded is MeetOfTerms with every term broadened through
// the thesaurus first (token search on each synonym). A nil thesaurus
// degrades to substring search on the literal terms. Each original term
// still contributes one input set: its synonyms' hits merged.
func (db *Database) MeetOfTermsExpanded(t *Thesaurus, opt *Options, terms ...string) ([]Meet, []NodeID, error) {
	if t == nil {
		return db.MeetOfTerms(opt, terms...)
	}
	sets := make([][]NodeID, 0, len(terms))
	for _, term := range terms {
		sets = append(sets, fulltext.Owners(db.index.SearchExpanded(t.t, term)))
	}
	return db.meetOfSets(sets, opt)
}
