package ncq

import (
	"ncq/internal/fulltext"
)

// Thesaurus holds synonym classes used to broaden searches — the
// Section 4 suggestion for queries that return too few answers.
// Synonymy is symmetric and transitive; terms are case-folded.
type Thesaurus struct {
	t *fulltext.Thesaurus
}

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{t: fulltext.NewThesaurus()}
}

// Add declares the terms synonymous.
func (t *Thesaurus) Add(term string, synonyms ...string) *Thesaurus {
	t.t.Add(term, synonyms...)
	return t
}

// Expand returns the full synonym class of term, including the term.
func (t *Thesaurus) Expand(term string) []string { return t.t.Expand(term) }

// SearchExpanded searches for term and all of its synonyms.
func (db *Database) SearchExpanded(t *Thesaurus, term string) []Hit {
	if t == nil {
		return db.Search(term)
	}
	return db.wrapHits(db.index.SearchExpanded(t.t, term))
}

// MeetOfTermsExpanded is MeetOfTerms with every term broadened through
// the thesaurus first (token search on each synonym). A nil thesaurus
// degrades to substring search on the literal terms. Each original term
// still contributes one input set: its synonyms' hits merged.
func (db *Database) MeetOfTermsExpanded(t *Thesaurus, opt *Options, terms ...string) ([]Meet, []NodeID, error) {
	if t == nil {
		return db.MeetOfTerms(opt, terms...)
	}
	sets := make([][]NodeID, 0, len(terms))
	for _, term := range terms {
		sets = append(sets, fulltext.Owners(db.index.SearchExpanded(t.t, term)))
	}
	return db.meetOfSets(sets, opt)
}
