// Command ncqgen emits the synthetic datasets of the evaluation as XML
// files: the DBLP-style bibliography of the Figure 7 case study and the
// multimedia description document of the Figure 6 experiment.
//
// Usage:
//
//	ncqgen -dataset dblp       -o dblp.xml [-seed 1] [-pubs 75]
//	ncqgen -dataset multimedia -o multimedia.xml [-seed 2] [-items 3000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ncq/internal/datagen"
	"ncq/internal/xmltree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ncqgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset = fs.String("dataset", "dblp", "dataset to generate: dblp or multimedia")
		out     = fs.String("o", "", "output file (default stdout)")
		seed    = fs.Int64("seed", 0, "random seed (0 = dataset default)")
		pubs    = fs.Int("pubs", 75, "dblp: publications per venue and year")
		items   = fs.Int("items", 3000, "multimedia: number of items")
		indent  = fs.Bool("indent", false, "pretty-print the XML")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	var doc *xmltree.Document
	switch *dataset {
	case "dblp":
		cfg := datagen.DefaultDBLPConfig()
		cfg.PubsPerVenueYear = *pubs
		if *seed != 0 {
			cfg.Seed = *seed
		}
		doc = datagen.DBLP(cfg)
	case "multimedia":
		cfg := datagen.DefaultMultimediaConfig()
		cfg.Items = *items
		if *seed != 0 {
			cfg.Seed = *seed
		}
		doc = datagen.Multimedia(cfg)
	default:
		fmt.Fprintf(stderr, "ncqgen: unknown dataset %q (want dblp or multimedia)\n", *dataset)
		return 2
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "ncqgen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := doc.WriteXML(w, *indent); err != nil {
		fmt.Fprintf(stderr, "ncqgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ncqgen: wrote %d nodes\n", doc.Len())
	return 0
}
