package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncq"
)

func exec(t *testing.T, argv ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(argv, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestGenDBLPToStdout(t *testing.T) {
	code, out, errOut := exec(t, "-dataset", "dblp", "-pubs", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.HasPrefix(out, "<dblp>") {
		t.Errorf("output starts with %q", out[:min(40, len(out))])
	}
	if !strings.Contains(errOut, "wrote") {
		t.Errorf("stderr = %q", errOut)
	}
	// The generated XML loads.
	db, err := ncq.OpenString(out)
	if err != nil {
		t.Fatal(err)
	}
	if db.Tag(db.Root()) != "dblp" {
		t.Error("wrong root")
	}
}

func TestGenMultimediaToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mm.xml")
	code, _, _ := exec(t, "-dataset", "multimedia", "-items", "5", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "probeA0") {
		t.Error("probes missing from generated file")
	}
}

func TestGenSeedChangesOutput(t *testing.T) {
	_, a, _ := exec(t, "-dataset", "dblp", "-pubs", "1", "-seed", "7")
	_, b, _ := exec(t, "-dataset", "dblp", "-pubs", "1", "-seed", "8")
	_, a2, _ := exec(t, "-dataset", "dblp", "-pubs", "1", "-seed", "7")
	if a == b {
		t.Error("different seeds gave identical output")
	}
	if a != a2 {
		t.Error("same seed gave different output")
	}
}

func TestGenIndent(t *testing.T) {
	_, out, _ := exec(t, "-dataset", "dblp", "-pubs", "1", "-indent")
	if !strings.Contains(out, "\n  ") {
		t.Error("indent flag had no effect")
	}
	if _, err := ncq.OpenString(out); err != nil {
		t.Fatalf("indented output does not load: %v", err)
	}
}

func TestGenErrors(t *testing.T) {
	if code, _, errOut := exec(t, "-dataset", "bogus"); code != 2 || !strings.Contains(errOut, "unknown dataset") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
	if code, _, _ := exec(t, "-o", "/nonexistent-dir/x.xml"); code != 1 {
		t.Error("unwritable output accepted")
	}
	if code, _, _ := exec(t, "-badflag"); code != 2 {
		t.Error("bad flag accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
