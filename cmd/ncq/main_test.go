package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncq/internal/server"
)

const fig1XML = `<bibliography><institute>
<article key="BB99"><author><firstname>Ben</firstname><lastname>Bit</lastname></author>
<title>How to Hack</title><year>1999</year></article>
<article key="BK99"><author>Bob Byte</author><title>Hacking &amp; RSI</title><year>1999</year></article>
</institute></bibliography>`

// writeFixture writes the Fig. 1 document to a temp file.
func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1.xml")
	if err := os.WriteFile(path, []byte(fig1XML), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// exec runs the CLI and returns (exit code, stdout, stderr).
func exec(t *testing.T, stdin string, argv ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(argv, strings.NewReader(stdin), &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCLIUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,                           // no args at all
		{"stats"},                     // no input file
		{"-f", "x.xml", "-snap", "y"}, // both inputs
		{"-f", "x.xml"},               // no command
	}
	for _, argv := range cases {
		if code, _, errOut := exec(t, "", argv...); code != 2 || !strings.Contains(errOut, "usage:") {
			t.Errorf("argv %v: code %d, stderr %q", argv, code, errOut)
		}
	}
}

func TestCLIMissingFile(t *testing.T) {
	code, _, errOut := exec(t, "", "-f", "/nonexistent.xml", "stats")
	if code != 1 || !strings.Contains(errOut, "ncq:") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestCLIStats(t *testing.T) {
	f := writeFixture(t)
	code, out, _ := exec(t, "", "-f", f, "stats")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "nodes         19") {
		t.Errorf("stats output:\n%s", out)
	}
}

func TestCLIMeet(t *testing.T) {
	f := writeFixture(t)
	code, out, _ := exec(t, "", "-f", f, "meet", "Bit", "1999")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "<article> node 3") || !strings.Contains(out, "distance 5") {
		t.Errorf("meet output:\n%s", out)
	}
}

func TestCLIMeetShowAndWithin(t *testing.T) {
	f := writeFixture(t)
	_, out, _ := exec(t, "", "-f", f, "-show", "meet", "Bit", "1999")
	if !strings.Contains(out, "<title>How to Hack</title>") {
		t.Errorf("show output:\n%s", out)
	}
	_, out, _ = exec(t, "", "-f", f, "-within", "4", "meet", "Bit", "1999")
	if !strings.Contains(out, "0 nearest concept(s)") {
		t.Errorf("within output:\n%s", out)
	}
}

func TestCLISearch(t *testing.T) {
	f := writeFixture(t)
	code, out, _ := exec(t, "", "-f", f, "search", "Hack")
	if code != 0 || !strings.Contains(out, `"Hack": 2 hit(s)`) {
		t.Errorf("code %d, output:\n%s", code, out)
	}
	if code, _, _ := exec(t, "", "-f", f, "search"); code != 1 {
		t.Error("search without terms should fail")
	}
}

func TestCLIQuery(t *testing.T) {
	f := writeFixture(t)
	code, out, _ := exec(t, "", "-f", f, "query",
		`SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2 WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if code != 0 || !strings.Contains(out, "<result> article </result>") {
		t.Errorf("code %d, output:\n%s", code, out)
	}
	if code, _, errOut := exec(t, "", "-f", f, "query", "garbage"); code != 1 || errOut == "" {
		t.Error("bad query should fail with a diagnostic")
	}
	if code, _, _ := exec(t, "", "-f", f, "query"); code != 1 {
		t.Error("query without SQL should fail")
	}
}

func TestCLIPathsAndTransform(t *testing.T) {
	f := writeFixture(t)
	_, out, _ := exec(t, "", "-f", f, "paths")
	if !strings.Contains(out, "/bibliography/institute/article") {
		t.Errorf("paths output:\n%s", out)
	}
	_, out, _ = exec(t, "", "-f", f, "transform", "1")
	if !strings.Contains(out, "… (1 more)") {
		t.Errorf("transform output:\n%s", out)
	}
}

func TestCLISnapshotRoundTrip(t *testing.T) {
	f := writeFixture(t)
	snap := filepath.Join(t.TempDir(), "fig1.snap")
	code, _, errOut := exec(t, "", "-f", f, "-save-snapshot", snap, "stats")
	if code != 0 || !strings.Contains(errOut, "snapshot written") {
		t.Fatalf("save failed: code %d, stderr %q", code, errOut)
	}
	code, out, _ := exec(t, "", "-snap", snap, "meet", "Bit", "1999")
	if code != 0 || !strings.Contains(out, "<article> node 3") {
		t.Errorf("snapshot meet: code %d\n%s", code, out)
	}
	// Corrupt snapshot fails cleanly.
	if err := os.WriteFile(snap, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := exec(t, "", "-snap", snap, "stats"); code != 1 {
		t.Error("corrupt snapshot accepted")
	}
}

func TestCLIUnknownCommand(t *testing.T) {
	f := writeFixture(t)
	code, _, errOut := exec(t, "", "-f", f, "frobnicate")
	if code != 1 || !strings.Contains(errOut, "unknown command") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
}

func TestCLIRepl(t *testing.T) {
	f := writeFixture(t)
	session := strings.Join([]string{
		"",              // empty line ignored
		"meet Bit 1999", // populates lastMeets
		"show 0",
		"explain 0",
		"show 99",     // out of range
		"search Hack", // inline search
		"stats",
		"SELECT tag(e) FROM //year AS e",
		"bogus",
		"quit",
	}, "\n")
	code, out, _ := exec(t, session, "-f", f, "repl")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"1 concept(s)",
		"<article key=\"BB99\">",
		"<article> connects:",
		"no such result",
		`"Hack": 2 hit(s)`,
		"nodes 19",
		"<result> year </result>",
		"commands:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("repl output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIReplEOF(t *testing.T) {
	f := writeFixture(t)
	// EOF without quit terminates cleanly.
	if code, _, _ := exec(t, "meet Ben", "-f", f, "repl"); code != 0 {
		t.Errorf("exit %d", code)
	}
}

// TestCLIMeetStream pins the local -stream mode: same concepts as the
// batch meet, printed result-lines-first with the summary last.
func TestCLIMeetStream(t *testing.T) {
	f := writeFixture(t)
	code, out, _ := exec(t, "", "-f", f, "-stream", "meet", "Bit", "1999")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "<article> node 3") || !strings.Contains(out, "distance 5") {
		t.Errorf("stream meet output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[len(lines)-1], "nearest concept(s)") {
		t.Errorf("summary line not last:\n%s", out)
	}
}

// TestCLIRemoteMeet runs the CLI against a live ncqd handler: the
// plain v2 round trip and the NDJSON -stream consumption.
func TestCLIRemoteMeet(t *testing.T) {
	srv := server.New(nil)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("PUT", "/v1/docs/fig1", strings.NewReader(fig1XML))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 201 {
		t.Fatalf("PUT: %d %s", rec.Code, rec.Body)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, out, _ := exec(t, "", "-server", ts.URL, "meet", "Bit", "1999")
	if code != 0 {
		t.Fatalf("remote meet exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "<article> fig1 node 3") {
		t.Errorf("remote meet output:\n%s", out)
	}

	code, out, _ = exec(t, "", "-server", ts.URL, "-stream", "meet", "Bit", "1999")
	if code != 0 {
		t.Fatalf("remote stream exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "<article> fig1 node 3") ||
		!strings.Contains(out, "unmatched input(s)") {
		t.Errorf("remote stream output:\n%s", out)
	}

	// Server-side errors surface as CLI diagnostics, not panics.
	code, _, errOut := exec(t, "", "-server", ts.URL, "-stream", "meet", "")
	if code != 1 || !strings.Contains(errOut, "server:") {
		t.Errorf("remote error: code %d, stderr %q", code, errOut)
	}

	// -server supports meet only.
	if code, _, errOut := exec(t, "", "-server", ts.URL, "stats"); code != 2 || !strings.Contains(errOut, "meet command only") {
		t.Errorf("remote stats: code %d, stderr %q", code, errOut)
	}
}
