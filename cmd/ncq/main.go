// Command ncq runs nearest concept queries against an XML file from
// the command line.
//
// Usage:
//
//	ncq -f doc.xml stats
//	ncq -f doc.xml paths                    # the storage catalogue
//	ncq -f doc.xml transform 4              # Figure-2 style dump
//	ncq -f doc.xml search Bit 1999          # full-text hits per term
//	ncq -f doc.xml meet Bit 1999            # nearest concepts of the terms
//	ncq -f doc.xml query "SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2 WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'"
//	ncq -f doc.xml repl                     # interactive session
//
//	ncq -f doc.xml -save-snapshot doc.snap stats   # persist the store
//	ncq -snap doc.snap meet Bit 1999               # reload without parsing
//
//	ncq -f doc.xml -stream meet Bit 1999           # print meets as they rank
//	ncq -server http://localhost:8334 -stream meet Bit 1999
//
// meet accepts the options -exclude-root, -within and -show to control
// the operator and result rendering. -stream switches meet to
// incremental output: each nearest concept is printed the moment the
// ranked stream yields it, with the summary line last. -server runs
// the meet against a running ncqd instead of a local file — with
// -stream it consumes the daemon's NDJSON endpoint
// (POST /v2/query?stream=1), printing each line as it arrives.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"ncq"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, loads the database
// and dispatches the command, writing results to stdout and diagnostics
// to stderr. The return value is the process exit code.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ncq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file        = fs.String("f", "", "XML input file")
		snap        = fs.String("snap", "", "snapshot input file (alternative to -f)")
		saveSnap    = fs.String("save-snapshot", "", "write a snapshot of the loaded store to this file")
		excludeRoot = fs.Bool("exclude-root", true, "meet: discard matches at the document root")
		within      = fs.Int("within", 0, "meet: maximum witness distance (0 = unbounded)")
		show        = fs.Bool("show", false, "meet: print the matched subtrees")
		stream      = fs.Bool("stream", false, "meet: print results incrementally as the ranked stream yields them")
		serverURL   = fs.String("server", "", "run meet against a running ncqd at this base URL instead of a local file")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	usage := func() int {
		fmt.Fprintln(stderr,
			"usage: ncq {-f doc.xml | -snap doc.snap} [-stream] {stats | paths | transform [N] | search TERM... | meet TERM... | query SQL | repl}\n"+
				"       ncq -server URL [-stream] meet TERM...")
		return 2
	}
	if len(args) == 0 {
		return usage()
	}
	if *serverURL != "" {
		if args[0] != "meet" {
			fmt.Fprintln(stderr, "ncq: -server supports the meet command only")
			return usage()
		}
		if len(args) < 2 {
			fmt.Fprintln(stderr, "ncq: meet needs at least one term")
			return usage()
		}
		if *show {
			// Rendering a subtree needs the loaded document, which only
			// the daemon holds; don't accept the flag and drop it.
			fmt.Fprintln(stderr, "ncq: -show needs a local document (-f or -snap); ignored with -server")
		}
		if *file != "" || *snap != "" {
			fmt.Fprintln(stderr, "ncq: -f/-snap are ignored with -server; the query runs against the daemon's corpus")
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		mf := meetFlags{*excludeRoot, *within, *show, *stream}
		if err := remoteMeet(ctx, *serverURL, args[1:], mf, stdout); err != nil {
			fmt.Fprintf(stderr, "ncq: %v\n", err)
			return 1
		}
		return 0
	}
	if (*file == "") == (*snap == "") {
		return usage()
	}

	db, err := load(*file, *snap)
	if err != nil {
		fmt.Fprintf(stderr, "ncq: %v\n", err)
		return 1
	}
	if *saveSnap != "" {
		if err := writeSnapshot(db, *saveSnap); err != nil {
			fmt.Fprintf(stderr, "ncq: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "ncq: snapshot written to %s\n", *saveSnap)
	}

	// Queries run through the unified Run API under a signal-aware
	// context, so an interrupt cancels a long meet instead of killing
	// the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cmd, rest := args[0], args[1:]
	if err := dispatch(ctx, db, cmd, rest, meetFlags{*excludeRoot, *within, *show, *stream}, stdin, stdout); err != nil {
		fmt.Fprintf(stderr, "ncq: %v\n", err)
		return 1
	}
	return 0
}

func load(file, snap string) (*ncq.Database, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ncq.Open(f)
	}
	f, err := os.Open(snap)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ncq.OpenSnapshot(f)
}

// writeSnapshot saves crash-safely: the snapshot is staged in a temp
// file, fsynced, and renamed over the target, so an interrupted save
// can never leave a truncated file where a good snapshot (or nothing)
// used to be.
func writeSnapshot(db *ncq.Database, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name()) // no-op once renamed
	if err := db.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

type meetFlags struct {
	excludeRoot bool
	within      int
	show        bool
	stream      bool
}

func (mf meetFlags) options() *ncq.Options {
	opt := &ncq.Options{}
	if mf.excludeRoot {
		opt.ExcludeRoot()
	}
	if mf.within > 0 {
		opt.Within(mf.within)
	}
	return opt
}

func dispatch(ctx context.Context, db *ncq.Database, cmd string, rest []string, mf meetFlags, stdin io.Reader, stdout io.Writer) error {
	switch cmd {
	case "stats":
		st := db.Stats()
		fmt.Fprintf(stdout, "nodes         %d\n", st.Nodes)
		fmt.Fprintf(stdout, "paths         %d\n", st.Paths)
		fmt.Fprintf(stdout, "associations  %d\n", st.Associations)
		fmt.Fprintf(stdout, "column bytes  %d\n", st.MemBytes)
		fmt.Fprintf(stdout, "index terms   %d\n", st.Terms)
		return nil
	case "paths":
		for _, pi := range db.Paths() {
			kind := "elem"
			if pi.Attr {
				kind = "attr"
			}
			fmt.Fprintf(stdout, "%-6s %8d  %s\n", kind, pi.Count, pi.Path)
		}
		return nil
	case "transform":
		limit := 4
		if len(rest) == 1 {
			fmt.Sscanf(rest[0], "%d", &limit)
		}
		return db.DumpTransform(stdout, limit)
	case "search":
		if len(rest) == 0 {
			return fmt.Errorf("search needs at least one term")
		}
		for _, term := range rest {
			hits := db.SearchSubstring(term)
			fmt.Fprintf(stdout, "%q: %d hit(s)\n", term, len(hits))
			for _, h := range hits {
				fmt.Fprintf(stdout, "  node %-6d %-55s %q\n", h.Node, h.Path, h.Value)
			}
		}
		return nil
	case "meet":
		if len(rest) < 1 {
			return fmt.Errorf("meet needs at least one term")
		}
		if mf.stream {
			return streamMeet(ctx, db, rest, mf, stdout)
		}
		res, err := db.Run(ctx, ncq.Request{Terms: rest, Options: mf.options()})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d nearest concept(s), %d unmatched input(s)\n", len(res.Meets), res.Unmatched)
		for _, m := range res.Meets {
			printMeet(stdout, db, m, mf)
		}
		return nil
	case "query":
		if len(rest) != 1 {
			return fmt.Errorf("query needs exactly one SQL argument")
		}
		res, err := db.Run(ctx, ncq.Request{Query: rest[0]})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res.Answers[0].Answer.XML())
		return nil
	case "repl":
		repl(db, mf, stdin, stdout)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printMeet renders one nearest concept in the meet command's format.
func printMeet(stdout io.Writer, db *ncq.Database, m ncq.CorpusMeet, mf meetFlags) {
	fmt.Fprintf(stdout, "  <%s> node %d  distance %d  witnesses %v  (%s)\n",
		m.Tag, m.Node, m.Distance, m.Witnesses, m.Path)
	if mf.show && db != nil {
		if xml, err := db.Subtree(m.Node); err == nil {
			fmt.Fprintf(stdout, "    %s\n", xml)
		}
	}
}

// streamMeet is the -stream form of the meet command: each nearest
// concept prints the moment the incrementally merged sequence yields
// it, and the summary line — known complete only at the end — comes
// last.
func streamMeet(ctx context.Context, db *ncq.Database, terms []string, mf meetFlags, stdout io.Writer) error {
	seq, stats := db.ResultsWithStats(ctx, ncq.Request{Terms: terms, Options: mf.options()})
	n := 0
	for m, err := range seq {
		if err != nil {
			return err
		}
		printMeet(stdout, db, m, mf)
		n++
	}
	fmt.Fprintf(stdout, "%d nearest concept(s), %d unmatched input(s)\n", n, stats.Unmatched)
	return nil
}

// remoteMeet runs the meet against a running ncqd. With -stream it
// consumes the NDJSON endpoint, printing each meet line as it arrives;
// otherwise it issues a plain v2 query and prints the envelope's
// answer.
func remoteMeet(ctx context.Context, base string, terms []string, mf meetFlags, stdout io.Writer) error {
	reqBody := map[string]any{"terms": terms}
	if mf.excludeRoot {
		reqBody["exclude_root"] = true
	}
	if mf.within > 0 {
		reqBody["within"] = mf.within
	}
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	url := strings.TrimRight(base, "/") + "/v2/query"
	if mf.stream {
		url += "?stream=1"
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("server: %s (%s)", e.Error, resp.Status)
	}
	if mf.stream {
		return printNDJSON(resp.Body, stdout)
	}
	// The corpus-wide wire result carries no unmatched count (a v1
	// compatibility constraint); only the streaming trailer does.
	var envelope struct {
		Result struct {
			Meets []ncq.CorpusMeet `json:"meets"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	fmt.Fprintf(stdout, "%d nearest concept(s)\n", len(envelope.Result.Meets))
	for _, m := range envelope.Result.Meets {
		printRemoteMeet(stdout, m)
	}
	return nil
}

// printNDJSON consumes one NDJSON stream: meets print as their lines
// arrive, the trailer becomes the summary, an error line becomes the
// command's error. A stream that ends without a trailer was cut short
// — the printed meets are a prefix, not the answer — and fails.
func printNDJSON(r io.Reader, stdout io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var line struct {
			Meet      *ncq.CorpusMeet `json:"meet"`
			Trailer   bool            `json:"trailer"`
			Unmatched int             `json:"unmatched"`
			Truncated bool            `json:"truncated"`
			TookMS    float64         `json:"took_ms"`
			Error     string          `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			return fmt.Errorf("server: %s", line.Error)
		case line.Trailer:
			fmt.Fprintf(stdout, "%d nearest concept(s), %d unmatched input(s), %.1f ms\n",
				n, line.Unmatched, line.TookMS)
			return nil
		case line.Meet != nil:
			printRemoteMeet(stdout, *line.Meet)
			n++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream ended without a trailer after %d meet(s); the answer is incomplete", n)
}

// printRemoteMeet renders one meet of a remote answer; node IDs are
// only meaningful together with their source (and shard).
func printRemoteMeet(stdout io.Writer, m ncq.CorpusMeet) {
	origin := m.Source
	if m.Shard > 0 {
		origin = fmt.Sprintf("%s/shard%d", m.Source, m.Shard)
	}
	if origin == "" {
		origin = "corpus"
	}
	fmt.Fprintf(stdout, "  <%s> %s node %d  distance %d  witnesses %v  (%s)\n",
		m.Tag, origin, m.Node, m.Distance, m.Witnesses, m.Path)
}

// repl reads commands from stdin: `search …`, `meet …`, `show N`,
// `explain N` (after a meet), bare SELECT queries, and `quit`.
func repl(db *ncq.Database, mf meetFlags, stdin io.Reader, stdout io.Writer) {
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastMeets []ncq.Meet
	fmt.Fprintln(stdout, "ncq interactive session — try: meet Bit 1999   (quit to exit)")
	for {
		fmt.Fprint(stdout, "ncq> ")
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToLower(fields[0]) {
		case "quit", "exit":
			return
		case "stats":
			st := db.Stats()
			fmt.Fprintf(stdout, "nodes %d, paths %d, associations %d, terms %d\n",
				st.Nodes, st.Paths, st.Associations, st.Terms)
		case "search":
			for _, term := range fields[1:] {
				hits := db.SearchSubstring(term)
				fmt.Fprintf(stdout, "%q: %d hit(s)\n", term, len(hits))
				for i, h := range hits {
					if i >= 10 {
						fmt.Fprintln(stdout, "  …")
						break
					}
					fmt.Fprintf(stdout, "  node %-6d %q\n", h.Node, h.Value)
				}
			}
		case "meet":
			if len(fields) < 2 {
				fmt.Fprintln(stdout, "meet needs at least one term")
				continue
			}
			meets, unmatched, err := db.MeetOfTerms(mf.options(), fields[1:]...)
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			ncq.RankMeets(meets)
			lastMeets = meets
			fmt.Fprintf(stdout, "%d concept(s), %d unmatched\n", len(meets), len(unmatched))
			for i, m := range meets {
				if i >= 10 {
					fmt.Fprintln(stdout, "  …")
					break
				}
				fmt.Fprintf(stdout, "  [%d] <%s> node %d distance %d\n", i, m.Tag, m.Node, m.Distance)
			}
		case "show", "explain":
			if len(fields) != 2 {
				fmt.Fprintln(stdout, "usage: show N | explain N  (after a meet)")
				continue
			}
			var idx int
			if _, err := fmt.Sscanf(fields[1], "%d", &idx); err != nil || idx < 0 || idx >= len(lastMeets) {
				fmt.Fprintln(stdout, "no such result; run meet first")
				continue
			}
			if strings.EqualFold(fields[0], "show") {
				xml, err := db.Subtree(lastMeets[idx].Node)
				if err != nil {
					fmt.Fprintln(stdout, "error:", err)
					continue
				}
				fmt.Fprintln(stdout, xml)
				continue
			}
			text, err := db.Explain(lastMeets[idx])
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprint(stdout, text)
		default:
			if strings.EqualFold(fields[0], "select") {
				ans, err := db.Query(line)
				if err != nil {
					fmt.Fprintln(stdout, "error:", err)
					continue
				}
				fmt.Fprintln(stdout, ans.XML())
				continue
			}
			fmt.Fprintln(stdout, "commands: stats, search T…, meet T…, show N, explain N, SELECT …, quit")
		}
	}
}
