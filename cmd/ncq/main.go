// Command ncq runs nearest concept queries against an XML file from
// the command line.
//
// Usage:
//
//	ncq -f doc.xml stats
//	ncq -f doc.xml paths                    # the storage catalogue
//	ncq -f doc.xml transform 4              # Figure-2 style dump
//	ncq -f doc.xml search Bit 1999          # full-text hits per term
//	ncq -f doc.xml meet Bit 1999            # nearest concepts of the terms
//	ncq -f doc.xml query "SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2 WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'"
//	ncq -f doc.xml repl                     # interactive session
//
//	ncq -f doc.xml -save-snapshot doc.snap stats   # persist the store
//	ncq -snap doc.snap meet Bit 1999               # reload without parsing
//
// meet accepts the options -exclude-root, -within and -show to control
// the operator and result rendering.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"ncq"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, loads the database
// and dispatches the command, writing results to stdout and diagnostics
// to stderr. The return value is the process exit code.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ncq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file        = fs.String("f", "", "XML input file")
		snap        = fs.String("snap", "", "snapshot input file (alternative to -f)")
		saveSnap    = fs.String("save-snapshot", "", "write a snapshot of the loaded store to this file")
		excludeRoot = fs.Bool("exclude-root", true, "meet: discard matches at the document root")
		within      = fs.Int("within", 0, "meet: maximum witness distance (0 = unbounded)")
		show        = fs.Bool("show", false, "meet: print the matched subtrees")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if (*file == "") == (*snap == "") || len(args) == 0 {
		fmt.Fprintln(stderr,
			"usage: ncq {-f doc.xml | -snap doc.snap} {stats | paths | transform [N] | search TERM... | meet TERM... | query SQL | repl}")
		return 2
	}

	db, err := load(*file, *snap)
	if err != nil {
		fmt.Fprintf(stderr, "ncq: %v\n", err)
		return 1
	}
	if *saveSnap != "" {
		if err := writeSnapshot(db, *saveSnap); err != nil {
			fmt.Fprintf(stderr, "ncq: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "ncq: snapshot written to %s\n", *saveSnap)
	}

	// Queries run through the unified Run API under a signal-aware
	// context, so an interrupt cancels a long meet instead of killing
	// the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cmd, rest := args[0], args[1:]
	if err := dispatch(ctx, db, cmd, rest, meetFlags{*excludeRoot, *within, *show}, stdin, stdout); err != nil {
		fmt.Fprintf(stderr, "ncq: %v\n", err)
		return 1
	}
	return 0
}

func load(file, snap string) (*ncq.Database, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ncq.Open(f)
	}
	f, err := os.Open(snap)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ncq.OpenSnapshot(f)
}

func writeSnapshot(db *ncq.Database, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type meetFlags struct {
	excludeRoot bool
	within      int
	show        bool
}

func (mf meetFlags) options() *ncq.Options {
	opt := &ncq.Options{}
	if mf.excludeRoot {
		opt.ExcludeRoot()
	}
	if mf.within > 0 {
		opt.Within(mf.within)
	}
	return opt
}

func dispatch(ctx context.Context, db *ncq.Database, cmd string, rest []string, mf meetFlags, stdin io.Reader, stdout io.Writer) error {
	switch cmd {
	case "stats":
		st := db.Stats()
		fmt.Fprintf(stdout, "nodes         %d\n", st.Nodes)
		fmt.Fprintf(stdout, "paths         %d\n", st.Paths)
		fmt.Fprintf(stdout, "associations  %d\n", st.Associations)
		fmt.Fprintf(stdout, "column bytes  %d\n", st.MemBytes)
		fmt.Fprintf(stdout, "index terms   %d\n", st.Terms)
		return nil
	case "paths":
		for _, pi := range db.Paths() {
			kind := "elem"
			if pi.Attr {
				kind = "attr"
			}
			fmt.Fprintf(stdout, "%-6s %8d  %s\n", kind, pi.Count, pi.Path)
		}
		return nil
	case "transform":
		limit := 4
		if len(rest) == 1 {
			fmt.Sscanf(rest[0], "%d", &limit)
		}
		return db.DumpTransform(stdout, limit)
	case "search":
		if len(rest) == 0 {
			return fmt.Errorf("search needs at least one term")
		}
		for _, term := range rest {
			hits := db.SearchSubstring(term)
			fmt.Fprintf(stdout, "%q: %d hit(s)\n", term, len(hits))
			for _, h := range hits {
				fmt.Fprintf(stdout, "  node %-6d %-55s %q\n", h.Node, h.Path, h.Value)
			}
		}
		return nil
	case "meet":
		if len(rest) < 1 {
			return fmt.Errorf("meet needs at least one term")
		}
		res, err := db.Run(ctx, ncq.Request{Terms: rest, Options: mf.options()})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d nearest concept(s), %d unmatched input(s)\n", len(res.Meets), res.Unmatched)
		for _, m := range res.Meets {
			fmt.Fprintf(stdout, "  <%s> node %d  distance %d  witnesses %v  (%s)\n",
				m.Tag, m.Node, m.Distance, m.Witnesses, m.Path)
			if mf.show {
				if xml, err := db.Subtree(m.Node); err == nil {
					fmt.Fprintf(stdout, "    %s\n", xml)
				}
			}
		}
		return nil
	case "query":
		if len(rest) != 1 {
			return fmt.Errorf("query needs exactly one SQL argument")
		}
		res, err := db.Run(ctx, ncq.Request{Query: rest[0]})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res.Answers[0].Answer.XML())
		return nil
	case "repl":
		repl(db, mf, stdin, stdout)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// repl reads commands from stdin: `search …`, `meet …`, `show N`,
// `explain N` (after a meet), bare SELECT queries, and `quit`.
func repl(db *ncq.Database, mf meetFlags, stdin io.Reader, stdout io.Writer) {
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastMeets []ncq.Meet
	fmt.Fprintln(stdout, "ncq interactive session — try: meet Bit 1999   (quit to exit)")
	for {
		fmt.Fprint(stdout, "ncq> ")
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToLower(fields[0]) {
		case "quit", "exit":
			return
		case "stats":
			st := db.Stats()
			fmt.Fprintf(stdout, "nodes %d, paths %d, associations %d, terms %d\n",
				st.Nodes, st.Paths, st.Associations, st.Terms)
		case "search":
			for _, term := range fields[1:] {
				hits := db.SearchSubstring(term)
				fmt.Fprintf(stdout, "%q: %d hit(s)\n", term, len(hits))
				for i, h := range hits {
					if i >= 10 {
						fmt.Fprintln(stdout, "  …")
						break
					}
					fmt.Fprintf(stdout, "  node %-6d %q\n", h.Node, h.Value)
				}
			}
		case "meet":
			if len(fields) < 2 {
				fmt.Fprintln(stdout, "meet needs at least one term")
				continue
			}
			meets, unmatched, err := db.MeetOfTerms(mf.options(), fields[1:]...)
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			ncq.RankMeets(meets)
			lastMeets = meets
			fmt.Fprintf(stdout, "%d concept(s), %d unmatched\n", len(meets), len(unmatched))
			for i, m := range meets {
				if i >= 10 {
					fmt.Fprintln(stdout, "  …")
					break
				}
				fmt.Fprintf(stdout, "  [%d] <%s> node %d distance %d\n", i, m.Tag, m.Node, m.Distance)
			}
		case "show", "explain":
			if len(fields) != 2 {
				fmt.Fprintln(stdout, "usage: show N | explain N  (after a meet)")
				continue
			}
			var idx int
			if _, err := fmt.Sscanf(fields[1], "%d", &idx); err != nil || idx < 0 || idx >= len(lastMeets) {
				fmt.Fprintln(stdout, "no such result; run meet first")
				continue
			}
			if strings.EqualFold(fields[0], "show") {
				xml, err := db.Subtree(lastMeets[idx].Node)
				if err != nil {
					fmt.Fprintln(stdout, "error:", err)
					continue
				}
				fmt.Fprintln(stdout, xml)
				continue
			}
			text, err := db.Explain(lastMeets[idx])
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprint(stdout, text)
		default:
			if strings.EqualFold(fields[0], "select") {
				ans, err := db.Query(line)
				if err != nil {
					fmt.Fprintln(stdout, "error:", err)
					continue
				}
				fmt.Fprintln(stdout, ans.XML())
				continue
			}
			fmt.Fprintln(stdout, "commands: stats, search T…, meet T…, show N, explain N, SELECT …, quit")
		}
	}
}
