// Command ncqbench regenerates the paper's evaluation figures as TSV
// series on stdout.
//
//	ncqbench -experiment fig6      # Figure 6: meet+fulltext vs distance
//	ncqbench -experiment fig7      # Figure 7: meet time vs output cardinality
//	ncqbench -experiment scaling   # Section 5: input-cardinality scaling
//	ncqbench -experiment ablation  # parent-array vs BAT-join execution
//	ncqbench -experiment explosion # minimal meets vs all-pairs baseline
//	ncqbench -experiment all
//
// The absolute times are this machine's; the shapes are the paper's
// claims (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ncq/internal/datagen"
	"ncq/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ncqbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp   = fs.String("experiment", "all", "fig6, fig7, scaling, ablation, explosion or all")
		items = fs.Int("items", 3000, "fig6: multimedia items")
		pubs  = fs.Int("pubs", 75, "fig7: publications per venue and year")
		iters = fs.Int("iters", 50, "averaging iterations for point measurements")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	known := map[string]bool{"all": true, "fig6": true, "fig7": true,
		"scaling": true, "ablation": true, "explosion": true}
	if !known[*exp] {
		fmt.Fprintf(stderr, "ncqbench: unknown experiment %q\n", *exp)
		return 2
	}

	code := 0
	runOne := func(name string, fn func() error) {
		if code != 0 || (*exp != "all" && *exp != name) {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(stderr, "ncqbench: %s: %v\n", name, err)
			code = 1
		}
	}
	runOne("fig6", func() error { return fig6(stdout, *items, *iters) })
	runOne("fig7", func() error { return fig7(stdout, *pubs) })
	runOne("scaling", func() error { return scaling(stdout, *pubs) })
	runOne("ablation", func() error { return ablation(stdout, *pubs, *iters) })
	runOne("explosion", func() error { return explosion(stdout, *pubs) })
	return code
}

func fig6(w io.Writer, items, iters int) error {
	cfg := datagen.DefaultMultimediaConfig()
	cfg.Items = items
	setup, err := experiments.LoadMultimedia(cfg)
	if err != nil {
		return err
	}
	st := setup.Store.Stats()
	fmt.Fprintf(w, "# Figure 6 — combining meet and fulltext search (normalized)\n")
	fmt.Fprintf(w, "# multimedia document: %d nodes, %d paths, %d associations\n",
		st.Nodes, st.Paths, st.Associations)
	fmt.Fprintf(w, "# distance\tfulltext_ms\tmeet_us\tfulltext_and_meet_ms\n")
	rows, err := experiments.Fig6(setup, iters)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.4f\t%.3f\t%.4f\n", r.Distance, r.FulltextMS, r.MeetUS, r.CombinedMS)
	}
	return nil
}

func fig7(w io.Writer, pubs int) error {
	cfg := datagen.DefaultDBLPConfig()
	cfg.PubsPerVenueYear = pubs
	setup, err := experiments.LoadDBLP(cfg)
	if err != nil {
		return err
	}
	st := setup.Store.Stats()
	fmt.Fprintf(w, "# Figure 7 — DBLP case study: meet after full-text search\n")
	fmt.Fprintf(w, "# bibliography: %d nodes, %d paths, %d associations\n",
		st.Nodes, st.Paths, st.Associations)
	fmt.Fprintf(w, "# year_low\tinput_size\toutput_cardinality\tmeet_ms\tfalse_positives\n")
	rows, err := experiments.Fig7(setup, 1999, 1984)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3f\t%d\n", r.YearLow, r.InputSize, r.Output, r.MeetMS, r.FalsePositives)
	}
	return nil
}

func scaling(w io.Writer, pubs int) error {
	cfg := datagen.DefaultDBLPConfig()
	cfg.PubsPerVenueYear = pubs
	setup, err := experiments.LoadDBLP(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Input-cardinality scaling (Section 5: \"scales well, i.e., linear\")\n")
	fmt.Fprintf(w, "# input_size\toutput_cardinality\tmeet_ms\n")
	rows, err := experiments.InputScaling(setup, 10)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.3f\n", r.Inputs, r.Output, r.MeetMS)
	}
	return nil
}

func ablation(w io.Writer, pubs, iters int) error {
	cfg := datagen.DefaultDBLPConfig()
	cfg.PubsPerVenueYear = pubs
	setup, err := experiments.LoadDBLP(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Ablation — parent navigation: per-OID array vs BAT join\n")
	fmt.Fprintf(w, "# strategy\tper_op_ns\tresults_agree\n")
	rows, err := experiments.AblationParent(setup, iters)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%v\n", r.Name, r.PerOpNS, r.CheckedOK)
	}
	return nil
}

func explosion(w io.Writer, pubs int) error {
	cfg := datagen.DefaultDBLPConfig()
	cfg.PubsPerVenueYear = pubs
	setup, err := experiments.LoadDBLP(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Minimal meets vs all-pairs baseline (the Section 1 explosion)\n")
	fmt.Fprintf(w, "# year_low\t|O1|\t|O2|\tminimal_results\tminimal_ms\tbaseline_results\tbaseline_pairs\tbaseline_ms\n")
	for _, low := range []int{1999, 1997, 1995} {
		row, err := experiments.Explosion(setup, low)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.3f\t%d\t%d\t%.3f\n",
			low, row.Inputs1, row.Inputs2, row.MinimalResults, row.MinimalMS,
			row.BaselineResults, row.BaselinePairs, row.BaselineMS)
	}
	return nil
}
