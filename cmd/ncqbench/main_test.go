package main

import (
	"bytes"
	"strings"
	"testing"
)

func exec(t *testing.T, argv ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(argv, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestBenchFig7Small(t *testing.T) {
	code, out, errOut := exec(t, "-experiment", "fig7", "-pubs", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "# Figure 7") {
		t.Errorf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 3 header lines + 16 data rows.
	if len(lines) != 19 {
		t.Errorf("lines = %d, want 19\n%s", len(lines), out)
	}
	// The 1985 row repeats the 1986 output (no ICDE in 1985).
	var out1986, out1985 string
	for _, l := range lines {
		if strings.HasPrefix(l, "1986\t") {
			out1986 = strings.Split(l, "\t")[2]
		}
		if strings.HasPrefix(l, "1985\t") {
			out1985 = strings.Split(l, "\t")[2]
		}
	}
	if out1985 == "" || out1985 != out1986 {
		t.Errorf("1985 step broken: %q vs %q", out1985, out1986)
	}
}

func TestBenchFig6Small(t *testing.T) {
	code, out, _ := exec(t, "-experiment", "fig6", "-items", "20", "-iters", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "# Figure 6") {
		t.Errorf("header missing:\n%s", out)
	}
	// 21 data rows for distances 0..20.
	data := 0
	for _, l := range strings.Split(out, "\n") {
		if l != "" && !strings.HasPrefix(l, "#") {
			data++
		}
	}
	if data != 21 {
		t.Errorf("data rows = %d, want 21", data)
	}
}

func TestBenchScalingAndAblationAndExplosion(t *testing.T) {
	code, out, _ := exec(t, "-experiment", "scaling", "-pubs", "2")
	if code != 0 || !strings.Contains(out, "# Input-cardinality") {
		t.Errorf("scaling: code %d\n%s", code, out)
	}
	code, out, _ = exec(t, "-experiment", "ablation", "-pubs", "2", "-iters", "1")
	if code != 0 || !strings.Contains(out, "parent-bat-join") {
		t.Errorf("ablation: code %d\n%s", code, out)
	}
	if !strings.Contains(out, "true") {
		t.Error("ablation strategies disagree")
	}
	code, out, _ = exec(t, "-experiment", "explosion", "-pubs", "2")
	if code != 0 || !strings.Contains(out, "baseline_pairs") {
		t.Errorf("explosion: code %d\n%s", code, out)
	}
}

func TestBenchErrors(t *testing.T) {
	if code, _, errOut := exec(t, "-experiment", "bogus"); code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("code %d, stderr %q", code, errOut)
	}
	if code, _, _ := exec(t, "-badflag"); code != 2 {
		t.Error("bad flag accepted")
	}
}
