// Command ncqd serves nearest concept queries over HTTP/JSON: a
// long-running daemon around a shared document corpus with a result
// cache — the paper's "power of querying with the simplicity of
// searching" as a service.
//
// Usage:
//
//	ncqd -addr :8334 -load 'docs/*.xml'
//
// Endpoints:
//
//	POST   /v2/query       the unified endpoint: {"doc":...,"terms":[...],
//	                       "limit":N,"cursor":...,"timeout_ms":N} or
//	                       {"batch":[{...},{...}]} — single doc, whole corpus
//	                       and batches in one schema, with cursor pagination
//	                       (410 Gone when a cursor outlives a corpus
//	                       mutation) and per-request deadlines; ?stream=1
//	                       streams a term request as NDJSON — one meet per
//	                       line the moment the global rank yields it, then
//	                       a {"trailer":true,...} line with the counters
//	POST   /v1/query       {"terms":["Bit","1999"],"exclude_root":true}
//	                       or {"doc":"bib","query":"SELECT meet(e1,e2) FROM ..."}
//	POST   /v1/query/batch {"queries":[{...},{...}]} — many queries, one round trip
//	PUT    /v1/docs/{name} load/replace a document (body = XML); ?shards=K
//	                       splits it into K parallel subtree shards
//	GET    /v1/docs/{name} inspect a document
//	DELETE /v1/docs/{name} evict a document
//	GET    /v1/docs        list documents
//	GET    /v1/healthz     liveness
//	GET    /v1/stats       corpus, cache and traffic counters
//	GET    /v1/metrics     Prometheus text exposition
//
// Flags tune the cache byte budget, the per-document upload limit and
// the corpus fan-out width; -load preloads documents at start-up, each
// registered under its base name without the extension: XML files
// (split into -shards shards apiece), .snap snapshot files, and
// snapshot directories of shard-NNN.snap files as the durable store
// writes them (their own framing decides plain vs sharded; -shards does
// not apply). -thesaurus loads synonym classes — one comma-separated
// class per line — that vague-mode queries with "expand" broaden their
// terms through. -pprof-addr serves net/http/pprof on a separate
// listener (off by default) so a live daemon can be profiled without
// exposing the profiler on the query port.
//
// Durability: with -data-dir the corpus survives restarts and crashes.
// Every PUT persists per-shard snapshots plus a record in an
// append-only write-ahead log before it is acknowledged, and boot
// replays the log over the snapshots back to the exact pre-shutdown
// generation. -fsync picks the log's fsync policy (always, batch or
// off); see docs/OPERATIONS.md for the trade-offs and the recovery
// playbook.
//
// Observability and admission: logs are structured (log/slog) on
// stderr — -log-format selects text or json, -log-level the minimum
// level; every request emits one log line and /v1/metrics serves the
// Prometheus metrics documented in docs/OPERATIONS.md. -max-inflight
// caps concurrently executing query requests, -max-queue and
// -queue-wait size the wait queue in front of that cap; excess load is
// shed with 429 + Retry-After instead of queuing unboundedly.
//
// Cluster mode: with -coordinator the daemon serves no corpus of its
// own. Instead -workers names a comma-separated list of worker nodes
// (plain ncqd daemons); documents are placed on workers by consistent
// hashing of their names and /v2/query scatter-gathers every worker's
// NDJSON stream into one exact globally ranked answer:
//
//	ncqd -addr :8334 -node-name w1          # worker 1
//	ncqd -addr :8335 -node-name w2          # worker 2
//	ncqd -addr :8333 -coordinator -workers localhost:8334,localhost:8335
//
// -node-name and -role label the node on /v1/healthz and /v1/stats;
// -worker-timeout, -retry and -poll-interval tune the coordinator's
// per-worker deadline, its bounded retry of idempotent reads, and how
// often it refreshes the worker generation vector.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ncq"
	"ncq/internal/cluster"
	"ncq/internal/durable"
	"ncq/internal/server"
	"ncq/internal/shard"
	"ncq/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is the testable entry point. When ready is non-nil it receives
// the daemon's base URL once the listener is accepting connections.
func run(argv []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("ncqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8334", "listen address")
		cacheBytes = fs.Int64("cache-bytes", 64<<20, "query result cache budget in bytes (0 disables)")
		cacheTTL   = fs.Duration("cache-ttl", 0, "query result cache TTL (0 = entries never expire by age)")
		maxBody    = fs.Int64("max-body", 32<<20, "maximum document upload size in bytes")
		workers    = fs.String("workers", "", "corpus query fan-out width (single node, 0 = GOMAXPROCS); with -coordinator, the comma-separated worker addresses")
		load       = fs.String("load", "", "glob of XML files, .snap snapshot files or snapshot directories to preload")
		shards     = fs.Int("shards", 1, "shards per preloaded XML document (1 = unsharded; snapshots keep their own framing)")
		thesaurus  = fs.String("thesaurus", "", "file of synonym classes (one comma-separated class per line) for vague-mode term expansion")
		dataDir    = fs.String("data-dir", "", "durable mode: persist documents (per-shard snapshots + write-ahead log) in this directory and recover them at boot (empty = in-memory only)")
		fsyncMode  = fs.String("fsync", "batch", "durable mode fsync policy for WAL appends: \"always\", \"batch\" or \"off\"")
		gracePeri  = fs.Duration("grace", 5*time.Second, "shutdown grace period")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")

		coordinator  = fs.Bool("coordinator", false, "run as a cluster coordinator over -workers instead of serving a local corpus")
		nodeName     = fs.String("node-name", "", "node identity on /v1/healthz, /v1/stats and stream headers (default \"ncqd\")")
		role         = fs.String("role", "", "topology label on /v1/healthz and /v1/stats (\"single\", \"worker\"; coordinators are always \"coordinator\")")
		workerTimout = fs.Duration("worker-timeout", 30*time.Second, "coordinator: per-worker deadline, spanning a whole streamed answer")
		retries      = fs.Int("retry", 1, "coordinator: retries of idempotent worker reads after a transport error or 5xx")
		pollInterval = fs.Duration("poll-interval", 2*time.Second, "coordinator: how often to refresh the worker generation vector")

		logFormat   = fs.String("log-format", "text", "log output format: \"text\" or \"json\"")
		logLevel    = fs.String("log-level", "info", "minimum log level: \"debug\", \"info\", \"warn\" or \"error\"")
		maxInflight = fs.Int("max-inflight", 0, "admission control: maximum concurrently executing query requests (0 disables)")
		maxQueue    = fs.Int("max-queue", 0, "admission control: query requests allowed to wait for an execution slot beyond -max-inflight")
		queueWait   = fs.Duration("queue-wait", time.Second, "admission control: how long a queued query request may wait before it is shed with 429")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: ncqd [-addr :8334] [-cache-bytes N] [-cache-ttl D] [-max-body N] [-workers N] [-load GLOB] [-shards K] [-thesaurus FILE] [-data-dir DIR] [-fsync always|batch|off] [-pprof-addr ADDR] [-log-format text|json] [-log-level L] [-max-inflight N] [-max-queue N] [-queue-wait D]\n       ncqd -coordinator -workers HOST:PORT,HOST:PORT,... [-addr :8334] [-worker-timeout D] [-retry N] [-poll-interval D]")
		return 2
	}
	if *cacheTTL < 0 {
		fmt.Fprintln(stderr, "ncqd: -cache-ttl must be non-negative")
		return 2
	}
	if *shards < 0 || *shards > shard.MaxShards {
		fmt.Fprintf(stderr, "ncqd: -shards must be between 0 and %d\n", shard.MaxShards)
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "ncqd: -log-level: %v\n", err)
		return 2
	}
	hopts := &slog.HandlerOptions{Level: level}
	var lh slog.Handler
	switch *logFormat {
	case "text":
		lh = slog.NewTextHandler(stderr, hopts)
	case "json":
		lh = slog.NewJSONHandler(stderr, hopts)
	default:
		fmt.Fprintf(stderr, "ncqd: -log-format must be \"text\" or \"json\", not %q\n", *logFormat)
		return 2
	}
	nn := *nodeName
	if nn == "" {
		nn = "ncqd"
	}
	rl := *role
	switch {
	case *coordinator:
		rl = "coordinator"
	case rl == "":
		rl = "single"
	}
	logger := slog.New(lh).With("node", nn, "role", rl)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fsyncPolicy, err := wal.ParsePolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintf(stderr, "ncqd: -fsync: %v\n", err)
		return 2
	}

	var handler http.Handler
	if *coordinator {
		if *load != "" {
			fmt.Fprintln(stderr, "ncqd: -load does not apply to a coordinator; load documents through PUT /v1/docs/{name}")
			return 2
		}
		if *dataDir != "" {
			fmt.Fprintln(stderr, "ncqd: -data-dir does not apply to a coordinator; workers own the durable state")
			return 2
		}
		if *thesaurus != "" {
			fmt.Fprintln(stderr, "ncqd: -thesaurus does not apply to a coordinator; install synonym classes on the workers")
			return 2
		}
		wks, err := cluster.ParseWorkers(*workers)
		if err != nil {
			fmt.Fprintf(stderr, "ncqd: -workers: %v\n", err)
			return 2
		}
		coord, err := cluster.New(cluster.Config{
			NodeName:      *nodeName,
			Workers:       wks,
			WorkerTimeout: *workerTimout,
			Retries:       *retries,
			CacheBytes:    *cacheBytes,
			CacheTTL:      *cacheTTL,
			PollInterval:  *pollInterval,
			Logger:        logger,
			MaxInFlight:   *maxInflight,
			MaxQueue:      *maxQueue,
			QueueWait:     *queueWait,
		})
		if err != nil {
			logger.Error("start failed", "err", err)
			return 1
		}
		go coord.Poll(ctx)
		logger.Info("coordinating workers", "workers", len(wks))
		handler = coord.Handler()
	} else {
		fanout := 0
		if *workers != "" {
			n, err := strconv.Atoi(*workers)
			if err != nil || n < 0 {
				fmt.Fprintf(stderr, "ncqd: -workers must be a non-negative fan-out width (or a worker list with -coordinator)\n")
				return 2
			}
			fanout = n
		}
		corpus := ncq.NewCorpus()
		corpus.SetParallelism(fanout)
		if *thesaurus != "" {
			// Installed BEFORE durable recovery on purpose: SetThesaurus
			// bumps the corpus generation, and recovery's
			// RestoreGeneration overwrites it with the exact pre-shutdown
			// value — so a restart with the same -thesaurus keeps
			// pre-shutdown cursors valid instead of mass-expiring them.
			t, err := loadThesaurus(*thesaurus)
			if err != nil {
				logger.Error("start failed", "err", err)
				return 1
			}
			corpus.SetThesaurus(t)
			logger.Info("loaded thesaurus", "file", *thesaurus)
		}
		var store *durable.Store
		if *dataDir != "" {
			// Recovery before anything else touches the corpus: replay the
			// WAL over the persisted snapshots to the exact pre-shutdown
			// (or pre-crash) generation, then hook every later mutation.
			store, err = durable.Open(*dataDir, fsyncPolicy, corpus)
			if err != nil {
				logger.Error("recovery failed", "err", err, "data-dir", *dataDir)
				return 1
			}
			defer store.Close()
			st := store.Stats()
			logger.Info("recovered corpus",
				"docs", corpus.Len(),
				"generation", corpus.Generation(),
				"wal_records", st.ReplayRecords,
				"log_truncated", st.WAL.Truncated,
				"elapsed", st.ReplayDuration)
		}
		if *load != "" {
			n, err := preload(corpus, store, *load, *shards)
			if err != nil {
				logger.Error("start failed", "err", err)
				return 1
			}
			logger.Info("preloaded documents", "docs", n)
		}
		opts := []server.Option{
			server.WithCacheBytes(*cacheBytes),
			server.WithCacheTTL(*cacheTTL),
			server.WithMaxBody(*maxBody),
			server.WithNodeName(*nodeName),
			server.WithRole(*role),
			server.WithLogger(logger),
			server.WithAdmission(*maxInflight, *maxQueue, *queueWait),
		}
		if store != nil {
			opts = append(opts, server.WithDurability(store))
		}
		handler = server.New(corpus, opts...).Handler()
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		pprofSrv, err := servePprof(*pprofAddr, logger)
		if err != nil {
			logger.Error("start failed", "err", err)
			return 1
		}
		defer pprofSrv.Close()
	}

	errCh := make(chan error, 1)
	ln, err := newListener(httpSrv)
	if err != nil {
		logger.Error("start failed", "err", err)
		return 1
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if ready != nil {
		ready <- "http://" + ln.Addr().String()
	}
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		logger.Error("serve failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePeri)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown failed", "err", err)
		return 1
	}
	logger.Info("bye")
	return 0
}

// servePprof starts the opt-in profiling listener: net/http/pprof on
// its own mux and its own address, so the serving port never exposes
// the profiler and a live daemon can be profiled without redeploying.
func servePprof(addr string, logger *slog.Logger) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	logger.Info("pprof listening", "addr", ln.Addr().String())
	go srv.Serve(ln) //nolint:errcheck // closed on shutdown
	return srv, nil
}

// loadThesaurus parses the -thesaurus file into synonym classes.
func loadThesaurus(file string) (*ncq.Thesaurus, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, fmt.Errorf("-thesaurus: %w", err)
	}
	defer f.Close()
	t, err := ncq.ParseThesaurus(f)
	if err != nil {
		return nil, fmt.Errorf("-thesaurus %s: %w", file, err)
	}
	return t, nil
}

// preload loads every path matching the glob into the corpus, each
// under its base name without the extension (docs/dblp.xml -> dblp).
// Three input shapes are understood:
//
//   - an XML file, split into up to shards subtree shards when
//     shards > 1;
//   - a .snap file written by SaveSnapshot, loaded as a plain member
//     (its own framing, not -shards, decides its shape);
//   - a snapshot directory holding shard-NNN.snap files — the layout
//     the durable store writes — registered as one member under the
//     directory's name (a durable "g<gen>-" prefix is stripped).
//
// With a durable store attached the documents register through it —
// they replace any recovered document of the same name and persist
// like any PUT; without one they go straight into the in-memory
// corpus.
func preload(corpus *ncq.Corpus, store *durable.Store, glob string, shards int) (int, error) {
	files, err := filepath.Glob(glob)
	if err != nil {
		return 0, fmt.Errorf("bad -load glob: %w", err)
	}
	if len(files) == 0 {
		return 0, fmt.Errorf("-load %q matched no files", glob)
	}
	for _, file := range files {
		if info, err := os.Stat(file); err == nil && info.IsDir() {
			if err := preloadSnapshotDir(corpus, store, file); err != nil {
				return 0, err
			}
			continue
		}
		f, err := os.Open(file)
		if err != nil {
			return 0, err
		}
		name := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		if filepath.Ext(file) == ".snap" {
			db, err := ncq.OpenSnapshot(f)
			f.Close()
			if err != nil {
				return 0, fmt.Errorf("%s: %w", file, err)
			}
			if err := registerPlain(corpus, store, name, db); err != nil {
				return 0, fmt.Errorf("%s: %w", file, err)
			}
			continue
		}
		if shards > 1 {
			doc, err := ncq.ParseDocument(f)
			f.Close()
			if err != nil {
				return 0, fmt.Errorf("%s: %w", file, err)
			}
			if store != nil {
				var dbs []*ncq.Database
				for _, sd := range shard.Split(doc, shards) {
					db, err := ncq.FromDocument(sd)
					if err != nil {
						return 0, fmt.Errorf("%s: %w", file, err)
					}
					dbs = append(dbs, db)
				}
				if _, err := store.PutShards(name, dbs); err != nil {
					return 0, fmt.Errorf("%s: %w", file, err)
				}
			} else if _, _, err := corpus.AddSharded(name, doc, shards); err != nil {
				return 0, err
			}
			continue
		}
		db, err := ncq.Open(f)
		f.Close()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", file, err)
		}
		if err := registerPlain(corpus, store, name, db); err != nil {
			return 0, fmt.Errorf("%s: %w", file, err)
		}
	}
	return len(files), nil
}

// registerPlain registers one plain member, through the durable store
// when attached so the preload persists like any PUT.
func registerPlain(corpus *ncq.Corpus, store *durable.Store, name string, db *ncq.Database) error {
	if store != nil {
		_, err := store.PutPlain(name, db)
		return err
	}
	return corpus.Add(name, db)
}

// snapMemberName derives a member name from a snapshot directory's base
// name: the durable store's "g<gen>-" generation prefix is stripped and
// its path escaping undone, so pointing -load at a data directory's
// snapshot folders re-registers documents under their original names.
func snapMemberName(base string) string {
	if rest, ok := strings.CutPrefix(base, "g"); ok {
		i := 0
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		if i > 0 && i < len(rest) && rest[i] == '-' {
			base = rest[i+1:]
		}
	}
	if unescaped, err := url.PathUnescape(base); err == nil {
		base = unescaped
	}
	return base
}

// preloadSnapshotDir loads a directory of shard-NNN.snap files — the
// per-member layout the durable store writes — as one corpus member.
// The snapshots' own shard framing decides the member's shape: a
// single standalone snapshot registers plain, anything else sharded.
func preloadSnapshotDir(corpus *ncq.Corpus, store *durable.Store, dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.snap"))
	if err != nil {
		return fmt.Errorf("%s: %w", dir, err)
	}
	if len(files) == 0 {
		return fmt.Errorf("%s: no shard-*.snap files in snapshot directory", dir)
	}
	sort.Strings(files)
	dbs := make([]*ncq.Database, 0, len(files))
	plain := false
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		db, _, shardCount, err := ncq.OpenSnapshotShard(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if shardCount <= 1 {
			plain = true
		}
		dbs = append(dbs, db)
	}
	name := snapMemberName(filepath.Base(dir))
	if plain && len(dbs) == 1 {
		if err := registerPlain(corpus, store, name, dbs[0]); err != nil {
			return fmt.Errorf("%s: %w", dir, err)
		}
		return nil
	}
	if store != nil {
		if _, err := store.PutShards(name, dbs); err != nil {
			return fmt.Errorf("%s: %w", dir, err)
		}
		return nil
	}
	if _, err := corpus.AddShardDBs(name, dbs); err != nil {
		return fmt.Errorf("%s: %w", dir, err)
	}
	return nil
}
