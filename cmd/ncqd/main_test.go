package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ncq"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the daemon goroutine
// writes stderr while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stderr, nil); code != 2 {
		t.Errorf("exit = %d", code)
	}
	if code := run([]string{"positional"}, &stderr, nil); code != 2 {
		t.Errorf("positional args: exit = %d", code)
	}
}

func TestBadLoadGlob(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-load", filepath.Join(t.TempDir(), "*.xml")}, &stderr, nil); code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "matched no files") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestPreload(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bib.xml"),
		[]byte(`<bib><book><author>Bit</author><year>1999</year></book></bib>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "refs.xml"),
		[]byte(`<refs><entry><who>Bit</who></entry></refs>`), 0o644); err != nil {
		t.Fatal(err)
	}
	corpus := ncq.NewCorpus()
	n, err := preload(corpus, nil, filepath.Join(dir, "*.xml"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || corpus.Len() != 2 {
		t.Fatalf("preloaded %d, corpus len %d", n, corpus.Len())
	}
	if _, ok := corpus.Get("bib"); !ok {
		t.Error("doc not registered under its base name")
	}

	// Sharded preload registers the same logical names.
	sharded := ncq.NewCorpus()
	if _, err := preload(sharded, nil, filepath.Join(dir, "*.xml"), 4); err != nil {
		t.Fatal(err)
	}
	if sharded.Len() != 2 || !sharded.Has("bib") {
		t.Errorf("sharded preload: len %d", sharded.Len())
	}
	if sharded.ShardCount("bib") < 1 {
		t.Error("bib has no shards")
	}

	// A malformed member fails the whole preload, sharded or not.
	if err := os.WriteFile(filepath.Join(dir, "bad.xml"), []byte("<unclosed>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := preload(ncq.NewCorpus(), nil, filepath.Join(dir, "*.xml"), 1); err == nil {
		t.Error("malformed file accepted")
	}
	if _, err := preload(ncq.NewCorpus(), nil, filepath.Join(dir, "*.xml"), 4); err == nil {
		t.Error("malformed file accepted by sharded preload")
	}
}

// TestPprofEndpoint boots the daemon with the opt-in profiling
// listener and smoke-tests /debug/pprof/ on it — and only on it: the
// serving port must not expose the profiler.
func TestPprofEndpoint(t *testing.T) {
	var stderr syncBuffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0"}, &stderr, ready)
	}()
	var base string
	select {
	case base = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}

	// The pprof address is reported on stderr before the main listener
	// comes up, so it is present by now.
	m := regexp.MustCompile(`msg="pprof listening".* addr=(\S+)`).FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no pprof address in stderr: %s", stderr.String())
	}
	resp, err := http.Get("http://" + m[1] + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: %d %.200s", resp.StatusCode, body)
	}

	// The query port serves no profiler.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("main listener exposes /debug/pprof/")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit = %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never shut down; stderr: %s", stderr.String())
	}
}

// TestServeAndShutdown boots the daemon on an ephemeral port with a
// preloaded document, queries it over real HTTP, and stops it with
// SIGTERM — the full service lifecycle.
func TestServeAndShutdown(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bib.xml"),
		[]byte(`<bib><book><author>Bit</author><year>1999</year></book></bib>`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-load", filepath.Join(dir, "*.xml")},
			&stderr, ready)
	}()
	var base string
	select {
	case base = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"doc":"bib","terms":["Bit","1999"],"exclude_root":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"tag":"book"`) {
		t.Errorf("query: %d %s", resp.StatusCode, body)
	}

	// The streaming form serves the same answer as NDJSON over a real
	// connection: meet lines first, one trailer line last.
	resp, err = http.Post(base+"/v2/query?stream=1", "application/json",
		strings.NewReader(`{"doc":"bib","terms":["Bit","1999"],"exclude_root":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Errorf("stream query: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], `"meet"`) ||
		!strings.Contains(lines[len(lines)-1], `"trailer":true`) {
		t.Errorf("stream body:\n%s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit = %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never shut down; stderr: %s", stderr.String())
	}
}

// TestDurableLifecycle is the operator's crash drill as a test: boot
// with -data-dir, mutate over real HTTP, terminate, boot a second
// daemon on the same directory and observe the same corpus at the same
// generation.
func TestDurableLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	docs := t.TempDir()
	if err := os.WriteFile(filepath.Join(docs, "bib.xml"),
		[]byte(`<bib><book><author>Bit</author><year>1999</year></book></bib>`), 0o644); err != nil {
		t.Fatal(err)
	}

	boot := func(extra ...string) (string, chan int, *syncBuffer) {
		stderr := &syncBuffer{}
		ready := make(chan string, 1)
		done := make(chan int, 1)
		args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-fsync", "always"}, extra...)
		go func() { done <- run(args, stderr, ready) }()
		select {
		case base := <-ready:
			return base, done, stderr
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
			return "", nil, nil
		}
	}
	stopDaemon := func(done chan int, stderr *syncBuffer) {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("exit = %d; stderr: %s", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon never shut down; stderr: %s", stderr.String())
		}
	}

	// First life: preload one doc from disk, add a sharded one over HTTP.
	base, done, stderr := boot("-load", filepath.Join(docs, "*.xml"))
	req, err := http.NewRequest("PUT", base+"/v1/docs/refs?shards=2",
		strings.NewReader(`<refs><entry><who>Bit</who></entry><entry><who>Code</who></entry></refs>`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT refs: %d", resp.StatusCode)
	}
	gen := resp.Header.Get("X-NCQ-Generation")
	stopDaemon(done, stderr)

	// Second life: no -load; everything must come back from the data dir.
	base, done, stderr = boot()
	resp, err = http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"terms":["Bit","1999"],"exclude_root":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"tag":"book"`) {
		t.Errorf("query after restart: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"generation":`+gen) || !strings.Contains(string(body), `"docs":2`) {
		t.Errorf("healthz after restart (want generation %s, 2 docs): %s", gen, body)
	}
	if !strings.Contains(stderr.String(), "recovered corpus") {
		t.Errorf("no recovery log line; stderr: %s", stderr.String())
	}
	stopDaemon(done, stderr)
}

func TestCoordinatorRejectsDataDir(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-coordinator", "-workers", "localhost:1", "-data-dir", t.TempDir()}, &stderr, nil)
	if code != 2 || !strings.Contains(stderr.String(), "-data-dir") {
		t.Errorf("exit = %d, stderr = %q", code, stderr.String())
	}
}

func TestBadFsyncFlag(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-fsync", "sometimes"}, &stderr, nil); code != 2 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "-fsync") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestPreloadSnapshots covers the two snapshot shapes -load accepts
// beyond XML: a .snap file written by SaveSnapshot, and a snapshot
// directory of shard-NNN.snap files in the durable store's layout
// (generation prefix and path escaping included).
func TestPreloadSnapshots(t *testing.T) {
	dir := t.TempDir()
	db, err := ncq.OpenString(`<bib><book><author>Bit</author><year>1999</year></book></bib>`)
	if err != nil {
		t.Fatal(err)
	}

	// A plain .snap file registers under its base name.
	f, err := os.Create(filepath.Join(dir, "bib.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A durable-layout snapshot directory registers the sharded member
	// under its unescaped, generation-stripped name.
	shardDir := filepath.Join(dir, "g7-my%20doc")
	if err := os.Mkdir(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	shards := []string{
		`<refs><entry><who>Bit</who></entry></refs>`,
		`<refs><entry><who>Code</who></entry></refs>`,
	}
	for i, xml := range shards {
		sdb, err := ncq.OpenString(xml)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := os.Create(filepath.Join(shardDir, fmt.Sprintf("shard-%03d.snap", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sdb.SaveSnapshotShard(sf, i, len(shards)); err != nil {
			t.Fatal(err)
		}
		sf.Close()
	}

	corpus := ncq.NewCorpus()
	n, err := preload(corpus, nil, filepath.Join(dir, "*"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || corpus.Len() != 2 {
		t.Fatalf("preloaded %d entries, corpus len %d", n, corpus.Len())
	}
	if !corpus.Has("bib") {
		t.Error("snapshot file not registered under its base name")
	}
	if !corpus.Has("my doc") {
		t.Errorf("snapshot directory not registered; members = %v", corpus.Names())
	}
	if corpus.ShardCount("my doc") != 2 {
		t.Errorf("shard count = %d, want 2", corpus.ShardCount("my doc"))
	}
	// The snapshot members answer queries like any preloaded XML.
	meets, _, err := corpus.MeetOfTermsIn("bib", ncq.ExcludeRoot(), "Bit", "1999")
	if err != nil || len(meets) == 0 {
		t.Errorf("snapshot member does not answer: %v %v", meets, err)
	}

	// A directory without shard files fails the preload.
	empty := filepath.Join(t.TempDir(), "vacant")
	if err := os.Mkdir(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := preload(ncq.NewCorpus(), nil, empty, 1); err == nil {
		t.Error("empty snapshot directory accepted")
	}
	// A truncated .snap file fails the preload.
	if err := os.WriteFile(filepath.Join(dir, "bad.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := preload(ncq.NewCorpus(), nil, filepath.Join(dir, "*.snap"), 1); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

// TestThesaurusFlag boots the daemon with -thesaurus and checks the
// synonym classes reach vague-mode expansion over real HTTP.
func TestThesaurusFlag(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bib.xml"),
		[]byte(`<bib><book><author>Bit</author><year>1999</year></book></bib>`), 0o644); err != nil {
		t.Fatal(err)
	}
	thFile := filepath.Join(dir, "synonyms.txt")
	if err := os.WriteFile(thFile,
		[]byte("# test classes\nbinary, Bit\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stderr syncBuffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0",
			"-load", filepath.Join(dir, "*.xml"), "-thesaurus", thFile}, &stderr, ready)
	}()
	var base string
	select {
	case base = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}

	post := func(body string) string {
		resp, err := http.Post(base+"/v2/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %d %s", resp.StatusCode, raw)
		}
		return string(raw)
	}
	exact := post(`{"doc":"bib","terms":["binary","1999"],"exclude_root":true}`)
	if strings.Contains(exact, `"tag"`) {
		t.Errorf("exact mode expanded the synonym: %s", exact)
	}
	expanded := post(`{"doc":"bib","terms":["binary","1999"],"exclude_root":true,"vague":{"expand":true}}`)
	if !strings.Contains(expanded, `"tag":"book"`) {
		t.Errorf("expansion found nothing: %s", expanded)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit = %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never shut down; stderr: %s", stderr.String())
	}
}

// TestBadThesaurusFile pins the boot-time failures: a missing file and
// a malformed class line both refuse to start.
func TestBadThesaurusFile(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-thesaurus", filepath.Join(t.TempDir(), "absent.txt")}, &stderr, nil); code != 1 {
		t.Errorf("missing file: exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "-thesaurus") {
		t.Errorf("stderr = %q", stderr.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("loneterm\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-thesaurus", bad}, &stderr, nil); code != 1 {
		t.Errorf("malformed file: exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "synonym class") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestCoordinatorRejectsThesaurus: synonym classes belong on the
// workers that execute the expansion, not on the merge-only node.
func TestCoordinatorRejectsThesaurus(t *testing.T) {
	th := filepath.Join(t.TempDir(), "syn.txt")
	if err := os.WriteFile(th, []byte("a, b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	code := run([]string{"-coordinator", "-workers", "localhost:1", "-thesaurus", th}, &stderr, nil)
	if code != 2 || !strings.Contains(stderr.String(), "-thesaurus") {
		t.Errorf("exit = %d, stderr = %q", code, stderr.String())
	}
}
